//! # DISC — Density-Based Incremental Clustering by Striding
//!
//! A production-quality Rust reproduction of *DISC: Density-Based
//! Incremental Clustering by Striding over Streaming Data* (ICDE 2021).
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`](mod@core) — the DISC engine ([`Disc`]): exact incremental
//!   DBSCAN over sliding windows, with MS-BFS and epoch-based R-tree
//!   probing;
//! * [`index`] — the in-memory R-tree substrate;
//! * [`window`] — sliding-window drivers and synthetic dataset generators;
//! * [`baselines`] — DBSCAN, IncDBSCAN, EXTRA-N, ρ₂-DBSCAN, DBSTREAM,
//!   EDMStream;
//! * [`metrics`] — ARI/NMI/purity and the DBSCAN-equivalence oracle;
//! * [`telemetry`] — recorders, latency histograms, Prometheus/JSONL
//!   exporters (see `DESIGN.md` §9);
//! * [`geom`] — points, boxes and small utilities.
//!
//! ## Quick start
//!
//! ```
//! use disc::prelude::*;
//!
//! // A labelled synthetic stream: 3 Gaussian blobs, round-robin emission.
//! let records = datasets::gaussian_blobs::<2>(3_000, 3, 0.5, 7);
//! let mut window = SlidingWindow::new(records, 1_000, 100);
//!
//! let mut disc = Disc::new(DiscConfig::new(1.0, 5));
//! disc.apply(&window.fill());
//! while let Some(batch) = window.advance() {
//!     let stats = disc.apply(&batch);
//!     assert!(stats.range_searches() > 0);
//! }
//! assert!(disc.num_clusters() >= 3);
//! ```

pub use disc_baselines as baselines;
pub use disc_core as core;
pub use disc_geom as geom;
pub use disc_index as index;
pub use disc_metrics as metrics;
pub use disc_telemetry as telemetry;
pub use disc_window as window;

pub use disc_core::{Disc, DiscConfig, PointLabel, SlideStats};

/// Everything needed by typical consumers, in one import.
pub mod prelude {
    pub use crate::baselines::{
        DbStream, DbStreamConfig, Dbscan, EdmStream, EdmStreamConfig, ExtraN, IncDbscan, RhoDbscan,
        WindowClusterer,
    };
    pub use crate::core::{
        ClusterTracker, Disc, DiscConfig, Evolution, GraphDisc, PointLabel, SlideStats,
    };
    pub use crate::geom::{Point, PointId};
    pub use crate::metrics::{ari, nmi, purity};
    pub use crate::telemetry::{Recorder, Registry, SharedRecorder, SlideEvent};
    pub use crate::window::{datasets, Record, SlideBatch, SlidingWindow, TimeWindow, TimedRecord};
}
