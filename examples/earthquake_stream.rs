//! Seismic-event clustering in 4D — the paper's IRIS scenario.
//!
//! Earthquake events arrive as `(lat, lon, depth/10, magnitude×10)` records
//! (the paper's normalised coordinates). A decade-long window slides over
//! the stream; clusters correspond to active fault systems. The example
//! tracks cluster evolution events (splits, merges, emergences) that DISC
//! detects incrementally — information a from-scratch method cannot report.
//!
//! Run with:
//! ```sh
//! cargo run --release --example earthquake_stream
//! ```

use disc::prelude::*;

fn main() {
    let records = datasets::iris_like(30_000, 1960);
    let mut w = SlidingWindow::new(records, 6_000, 300);

    let mut disc = Disc::new(DiscConfig::new(2.0, 6));
    disc.apply(&w.fill());
    println!(
        "initial decade: {} fault systems across {} events",
        disc.num_clusters(),
        disc.window_len()
    );

    let mut totals = (0usize, 0usize, 0usize); // splits, merges, emerged
    let mut slide = 0usize;
    while let Some(batch) = w.advance() {
        slide += 1;
        let stats = disc.apply(&batch);
        totals.0 += stats.splits;
        totals.1 += stats.merges;
        totals.2 += stats.emerged;
        if stats.splits + stats.merges + stats.emerged > 0 {
            println!(
                "slide {slide:>3}: {} clusters | +{} splits +{} merges +{} emerged",
                disc.num_clusters(),
                stats.splits,
                stats.merges,
                stats.emerged
            );
        }
    }

    let (cores, borders, noise) = disc.census();
    println!("\n--- seismic stream summary ---");
    println!("final fault systems   : {}", disc.num_clusters());
    println!("census                : {cores} cores / {borders} borders / {noise} noise");
    println!(
        "evolution events      : {} splits, {} merges, {} emergences",
        totals.0, totals.1, totals.2
    );
    println!(
        "avg range searches    : {:.0} per slide",
        disc.index_stats().range_searches as f64 / (slide as f64 + 1.0)
    );
}
