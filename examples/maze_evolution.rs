//! Maze quality comparison — exact vs. summarisation-based clustering.
//!
//! Re-creates the §VI-E experiment in miniature: the Maze workload (labelled
//! spreading trajectories) is clustered by DISC, DBSTREAM and EDMStream, and
//! each method's Adjusted Rand Index against the ground truth is reported as
//! the window grows. Exact methods hold ARI ≈ 1 while the summarisation
//! methods degrade — the trade-off the paper quantifies in Fig. 9.
//!
//! Also dumps a final cluster snapshot to `out/maze_snapshot.csv` in the
//! spirit of Fig. 12 (plot it with any CSV-aware tool).
//!
//! Run with:
//! ```sh
//! cargo run --release --example maze_evolution
//! ```

use disc::prelude::*;
use std::path::Path;

fn truth_of(w: &SlidingWindow<2>) -> Vec<i64> {
    w.current_truth()
        .map(|(_, t)| t.map(|v| v as i64).unwrap_or(-1))
        .collect()
}

fn run_method<M: WindowClusterer<2>>(
    mut m: M,
    records: &[Record<2>],
    window: usize,
    stride: usize,
) -> (String, f64) {
    let mut w = SlidingWindow::new(records.to_vec(), window, stride);
    m.apply(&w.fill());
    while let Some(b) = w.advance() {
        m.apply(&b);
    }
    let truth = truth_of(&w);
    let pred: Vec<i64> = m.assignments().into_iter().map(|(_, l)| l).collect();
    (m.name().to_string(), ari(&truth, &pred))
}

fn main() {
    let records = datasets::maze(30_000, 60, 11);
    let stride_frac = 20; // stride = window / 20 (5%)

    println!(
        "{:<12} {:>8} {:>8} {:>8}",
        "window", "DISC", "DBSTREAM", "EDMStream"
    );
    for window in [2_000usize, 4_000, 8_000] {
        let stride = window / stride_frac;
        let (_, disc_ari) =
            run_method(Disc::new(DiscConfig::new(0.6, 6)), &records, window, stride);
        let (_, dbs_ari) = run_method(
            DbStream::new(DbStreamConfig {
                radius: 0.7,
                ..DbStreamConfig::default()
            }),
            &records,
            window,
            stride,
        );
        let (_, edm_ari) = run_method(
            EdmStream::new(EdmStreamConfig {
                radius: 0.7,
                delta: 2.0,
                ..EdmStreamConfig::default()
            }),
            &records,
            window,
            stride,
        );
        println!("{window:<12} {disc_ari:>8.3} {dbs_ari:>8.3} {edm_ari:>8.3}");
    }

    // Fig. 12-style snapshot dump.
    let window = 6_000usize;
    let mut w = SlidingWindow::new(records, window, window / stride_frac);
    let mut disc = Disc::new(DiscConfig::new(0.6, 6));
    disc.apply(&w.fill());
    for _ in 0..10 {
        if let Some(b) = w.advance() {
            disc.apply(&b);
        }
    }
    std::fs::create_dir_all("out").expect("create out/");
    let snapshot = disc.snapshot();
    disc::window::csv::write_snapshot(Path::new("out/maze_snapshot.csv"), &snapshot)
        .expect("write snapshot");
    println!(
        "\nwrote out/maze_snapshot.csv ({} points, {} clusters)",
        snapshot.len(),
        disc.num_clusters()
    );
}
