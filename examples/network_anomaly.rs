//! Online network anomaly detection — the paper's third motivating
//! application (§I cites unsupervised anomaly detection in network
//! communication).
//!
//! Flows arrive as 3D behavioural feature vectors; normal traffic forms
//! dense service-profile clusters, attacks are scattered. Under
//! density-based clustering, **noise points are the anomaly candidates** —
//! and because DISC keeps the window's clustering exact at every slide, the
//! anomaly flags are exactly what offline DBSCAN would produce, at a
//! fraction of the cost. The example reports per-slide precision/recall of
//! "noise = anomaly" against the generator's ground truth.
//!
//! Run with:
//! ```sh
//! cargo run --release --example network_anomaly
//! ```

use disc::prelude::*;

fn main() {
    let records = datasets::netflow_like(60_000, 443);
    let window = 8_000usize;
    let stride = 400usize;
    let mut w = SlidingWindow::new(records, window, stride);

    // ε tuned to the service-profile spread; τ so that profile members are
    // cores and scattered attacks are not.
    let mut disc = Disc::new(DiscConfig::new(0.8, 8));
    disc.apply(&w.fill());

    let mut agg = (0usize, 0usize, 0usize); // (true pos, flagged, actual)
    let mut slide = 0usize;
    loop {
        // Evaluate the current window: flagged = noise-labelled points.
        let truth: std::collections::HashMap<PointId, bool> =
            w.current_truth().map(|(id, t)| (id, t.is_none())).collect();
        let mut tp = 0usize;
        let mut flagged = 0usize;
        let actual = truth.values().filter(|&&a| a).count();
        for (id, label) in disc.assignments() {
            if label < 0 {
                flagged += 1;
                if truth[&id] {
                    tp += 1;
                }
            }
        }
        agg.0 += tp;
        agg.1 += flagged;
        agg.2 += actual;
        if slide.is_multiple_of(20) {
            let precision = tp as f64 / flagged.max(1) as f64;
            let recall = tp as f64 / actual.max(1) as f64;
            println!(
                "slide {slide:>3}: {} service profiles | {flagged:>3} flagged, {actual:>3} true anomalies | precision {precision:.2} recall {recall:.2}",
                disc.num_clusters()
            );
        }
        slide += 1;
        match w.advance() {
            Some(batch) => {
                disc.apply(&batch);
            }
            None => break,
        }
    }

    let precision = agg.0 as f64 / agg.1.max(1) as f64;
    let recall = agg.0 as f64 / agg.2.max(1) as f64;
    println!("\n--- anomaly detection summary ({slide} slides) ---");
    println!("aggregate precision   : {precision:.3}");
    println!("aggregate recall      : {recall:.3}");
    println!(
        "avg update cost       : {} range searches/slide",
        disc.index_stats().range_searches / slide.max(1) as u64
    );
    assert!(recall > 0.8, "exact clustering must catch most anomalies");
}
