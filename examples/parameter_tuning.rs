//! Parameter estimation — the Table II methodology, end to end.
//!
//! The paper picks each dataset's (ε, τ) "based on a K-distance graph"
//! (and, for DTG, sets τ to the average number of in-range neighbours).
//! This example runs that procedure on three workloads, prints the
//! K-distance curve's head/knee/tail so the shape is visible in a
//! terminal, and validates the estimate by clustering with it.
//!
//! Run with:
//! ```sh
//! cargo run --release --example parameter_tuning
//! ```

use disc::core::kdistance;
use disc::prelude::*;

fn tune<const D: usize>(name: &str, records: Vec<Record<D>>, window: usize, stride: usize) {
    println!("=== {name} ({}D, {} records) ===", D, records.len());

    let k = 2 * D;
    let curve = kdistance::kdistance_curve(&records, k, 1_500);
    let knee = kdistance::knee_index(&curve);
    println!(
        "k-distance curve (k = {k}): head {:.4}  knee[{knee}] {:.4}  tail {:.4}",
        curve[0],
        curve[knee],
        curve[curve.len() - 1]
    );

    let est = kdistance::estimate(&records, 1_500);
    println!("estimate: eps = {:.4}, tau = {}", est.eps, est.tau);

    let mut w = SlidingWindow::new(records, window, stride);
    let mut disc = Disc::new(DiscConfig::new(est.eps, est.tau));
    disc.apply(&w.fill());
    while let Some(b) = w.advance() {
        disc.apply(&b);
    }
    let (cores, borders, noise) = disc.census();
    println!(
        "clustering at the estimate: {} clusters | {cores} cores / {borders} borders / {noise} noise\n",
        disc.num_clusters()
    );
}

fn main() {
    tune("Maze", datasets::maze(20_000, 60, 7), 6_000, 300);
    tune("COVID-like", datasets::covid_like(12_000, 7), 4_000, 200);
    tune("IRIS-like", datasets::iris_like(20_000, 7), 6_000, 300);
}
