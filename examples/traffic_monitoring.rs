//! Ground-traffic monitoring — the paper's motivating DTG scenario.
//!
//! A fleet of vehicles reports GPS fixes while driving a road grid with
//! congestion hot-spots. The distance threshold is set small enough to tell
//! apart roads in close proximity (the resolution argument of §I), and the
//! sliding window advances with a small stride so congestion is detected
//! promptly. DISC is compared online against re-running DBSCAN from
//! scratch, demonstrating identical results at a fraction of the searches.
//!
//! Run with:
//! ```sh
//! cargo run --release --example traffic_monitoring
//! ```

use disc::prelude::*;

fn main() {
    let profile = disc::window::datasets::DTG_PROFILE;
    let records = datasets::dtg_like(40_000, 2026);
    let window = 8_000usize;
    let stride = 400usize; // 5% of the window
    let mut w = SlidingWindow::new(records, window, stride);

    let mut disc = Disc::new(DiscConfig::new(profile.eps, profile.tau));
    let mut dbscan = Dbscan::new(profile.eps, profile.tau);

    let fill = w.fill();
    disc.apply(&fill);
    WindowClusterer::apply(&mut dbscan, &fill);

    let mut disc_time = std::time::Duration::ZERO;
    let mut dbscan_time = std::time::Duration::ZERO;
    let mut slides = 0u32;

    while let Some(batch) = w.advance() {
        slides += 1;
        let t = std::time::Instant::now();
        disc.apply(&batch);
        disc_time += t.elapsed();

        let t = std::time::Instant::now();
        WindowClusterer::apply(&mut dbscan, &batch);
        dbscan_time += t.elapsed();

        // The two methods must agree (up to renaming / border ambiguity):
        // compare congestion-cluster counts every few slides.
        if slides.is_multiple_of(5) {
            let a: std::collections::HashSet<i64> = disc
                .assignments()
                .into_iter()
                .map(|(_, l)| l)
                .filter(|&l| l >= 0)
                .collect();
            let b: std::collections::HashSet<i64> = WindowClusterer::assignments(&dbscan)
                .into_iter()
                .map(|(_, l)| l)
                .filter(|&l| l >= 0)
                .collect();
            println!(
                "slide {slides:>3}: {} congested areas (DISC) vs {} (DBSCAN from scratch)",
                a.len(),
                b.len()
            );
            assert_eq!(a.len(), b.len(), "exactness violated");
        }
    }

    let speedup = dbscan_time.as_secs_f64() / disc_time.as_secs_f64();
    println!("\n--- traffic monitoring summary ---");
    println!("slides processed      : {slides}");
    println!("DISC total time       : {disc_time:?}");
    println!("DBSCAN total time     : {dbscan_time:?}");
    println!("speedup               : {speedup:.1}x");
    println!(
        "range searches        : DISC {} vs DBSCAN {}",
        disc.index_stats().range_searches,
        disc_baselines::WindowClusterer::range_searches(&dbscan),
    );
}
