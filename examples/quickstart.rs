//! Quickstart: cluster a labelled synthetic stream and watch the clusters
//! evolve as the window slides.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use disc::prelude::*;

fn main() {
    // Three Gaussian blobs emitted round-robin: every window sees them all.
    let records = datasets::gaussian_blobs::<2>(20_000, 3, 0.5, 42);
    let mut window = SlidingWindow::new(records, 4_000, 400);

    // ε = 1.0, τ = 5 (τ counts the point itself, as in the paper).
    let mut disc = Disc::new(DiscConfig::new(1.0, 5));

    // Fill the initial window, then stride through the stream.
    let fill = window.fill();
    let stats = disc.apply(&fill);
    println!(
        "initial window: {} points, {} clusters ({} range searches)",
        disc.window_len(),
        disc.num_clusters(),
        stats.range_searches()
    );

    let mut slide = 0usize;
    while let Some(batch) = window.advance() {
        slide += 1;
        let stats = disc.apply(&batch);
        let (cores, borders, noise) = disc.census();
        println!(
            "slide {slide:>3}: {} clusters | {cores} cores {borders} borders {noise} noise | \
             {} ex-cores {} neo-cores | {:?}",
            disc.num_clusters(),
            stats.ex_cores,
            stats.neo_cores,
            stats.elapsed
        );
    }

    // Compare the final clustering with the generator's ground truth.
    let truth: Vec<i64> = window
        .current_truth()
        .map(|(_, t)| t.map(|v| v as i64).unwrap_or(-1))
        .collect();
    let pred: Vec<i64> = disc.assignments().into_iter().map(|(_, l)| l).collect();
    println!("final ARI vs ground truth: {:.4}", ari(&truth, &pred));
}
