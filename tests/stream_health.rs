//! Drift-detector properties over real generator streams.
//!
//! The health driver feeds `DriftMonitor::standard` three cheap per-slide
//! signals (mean ε-neighbor count, a low-density fraction, arrival-centroid
//! shift). Two properties make those detectors trustworthy:
//!
//! * **No false fires.** Over ~1000 slides of every stationary generator in
//!   the workspace, the Page–Hinkley layer must stay silent. A monitor that
//!   cries wolf on ordinary variation trains operators to ignore it.
//! * **Guaranteed fires.** After a genuine density step change, the monitor
//!   must declare a change-point within a bounded number of slides — a
//!   detector that never fires is just an expensive gauge.
//!
//! The signals here mirror `disc run`'s health driver (sampled brute-force
//! neighbor counts, so no engine is needed), keeping the property about the
//! detectors themselves rather than about clustering.

use disc_geom::{Point, PointId};
use disc_telemetry::{DriftMonitor, DriftVerdict};
use disc_window::{datasets, Record, SlideBatch, SlidingWindow};

/// Deterministic every-k-th sample, as the CLI's health driver does (no RNG:
/// repeated runs over the same stream must produce identical verdicts).
fn stride_sample<T: Copy>(items: &[T], cap: usize) -> Vec<T> {
    if items.len() <= cap {
        return items.to_vec();
    }
    let step = items.len().div_ceil(cap);
    items.iter().copied().step_by(step).collect()
}

/// One slide's drift signals from window geometry alone.
struct Signals<const D: usize> {
    eps: f64,
    tau: usize,
    prev_centroid: Option<[f64; D]>,
}

impl<const D: usize> Signals<D> {
    fn new(eps: f64, tau: usize) -> Self {
        Signals {
            eps,
            tau,
            prev_centroid: None,
        }
    }

    /// `(neighbor_mean, low_density_fraction, arrival_shift)` for one slide:
    /// sampled ε-neighbor counts over the incoming probes, the fraction of
    /// probes below the core threshold, and the arrival-centroid shift.
    fn observe(&mut self, w: &SlidingWindow<D>, batch: &SlideBatch<D>) -> (f64, f64, f64) {
        let probes = stride_sample(&batch.incoming, 32);
        let window: Vec<(PointId, Point<D>)> = w.current().collect();
        let sample = stride_sample(&window, 256);
        let (mut neighbor_mean, mut sparse) = (0.0, 0.0);
        if !probes.is_empty() && !sample.is_empty() {
            let scale = window.len() as f64 / sample.len() as f64;
            let mut total = 0usize;
            let mut below = 0usize;
            for (pid, p) in &probes {
                let near = sample
                    .iter()
                    .filter(|(qid, q)| qid != pid && p.dist(q) <= self.eps)
                    .count();
                total += near;
                if scale * near as f64 + 1.0 < self.tau as f64 {
                    below += 1;
                }
            }
            neighbor_mean = scale * total as f64 / probes.len() as f64;
            sparse = below as f64 / probes.len() as f64;
        }
        let mut shift = 0.0;
        if !batch.incoming.is_empty() {
            let mut centroid = [0.0f64; D];
            for (_, p) in &batch.incoming {
                for (c, x) in centroid.iter_mut().zip(p.coords().iter()) {
                    *c += x;
                }
            }
            for c in &mut centroid {
                *c /= batch.incoming.len() as f64;
            }
            if let Some(prev) = self.prev_centroid {
                shift = centroid
                    .iter()
                    .zip(prev.iter())
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
            }
            self.prev_centroid = Some(centroid);
        }
        (neighbor_mean, sparse, shift)
    }
}

/// Streams `recs` through a window, feeding the monitor each slide; returns
/// the verdicts in slide order.
fn drive<const D: usize>(
    recs: Vec<Record<D>>,
    eps: f64,
    tau: usize,
    window: usize,
    stride: usize,
) -> Vec<DriftVerdict> {
    let mut w = SlidingWindow::new(recs, window, stride);
    let mut signals = Signals::<D>::new(eps, tau);
    let mut monitor = DriftMonitor::standard(16);
    let mut verdicts = Vec::new();
    let fill = w.fill();
    let (nm, nf, shift) = signals.observe(&w, &fill);
    verdicts.push(monitor.observe(&[
        ("neighbor_mean", nm),
        ("noise_fraction", nf),
        ("arrival_shift", shift),
    ]));
    while let Some(batch) = w.advance() {
        let (nm, nf, shift) = signals.observe(&w, &batch);
        verdicts.push(monitor.observe(&[
            ("neighbor_mean", nm),
            ("noise_fraction", nf),
            ("arrival_shift", shift),
        ]));
    }
    verdicts
}

const WINDOW: usize = 512;
const STRIDE: usize = 16;
const SLIDES: usize = 1000;
const N: usize = WINDOW + SLIDES * STRIDE;

fn assert_no_false_fire(name: &str, verdicts: &[DriftVerdict]) {
    assert!(verdicts.len() > SLIDES, "{name}: too few slides");
    for (i, v) in verdicts.iter().enumerate() {
        assert!(
            v.changed.is_none(),
            "{name}: false change-point on slide {i} ({:?}, score {:.2})",
            v.changed,
            v.score
        );
    }
}

#[test]
fn stationary_maze_does_not_false_fire() {
    let verdicts = drive(datasets::maze(N, 16, 11), 0.5, 4, WINDOW, STRIDE);
    assert_no_false_fire("maze", &verdicts);
}

#[test]
fn stationary_dtg_does_not_false_fire() {
    let verdicts = drive(datasets::dtg_like(N, 12), 0.5, 4, WINDOW, STRIDE);
    assert_no_false_fire("dtg_like", &verdicts);
}

#[test]
fn stationary_geolife_does_not_false_fire() {
    let verdicts = drive(datasets::geolife_like(N, 13), 1.5, 4, WINDOW, STRIDE);
    assert_no_false_fire("geolife_like", &verdicts);
}

#[test]
fn stationary_covid_does_not_false_fire() {
    let verdicts = drive(datasets::covid_like(N, 14), 1.0, 4, WINDOW, STRIDE);
    assert_no_false_fire("covid_like", &verdicts);
}

#[test]
fn stationary_iris_does_not_false_fire() {
    let verdicts = drive(datasets::iris_like(N, 15), 1.5, 4, WINDOW, STRIDE);
    assert_no_false_fire("iris_like", &verdicts);
}

/// A blob whose spread quadruples mid-stream: the mean ε-neighbor count
/// steps down hard, and the monitor must catch it quickly — but not before.
#[test]
fn density_step_change_fires_within_bounded_slides() {
    let step_at = 400usize; // slides of stationary prefix
    let dense: Vec<Record<2>> =
        datasets::gaussian_blobs::<2>(WINDOW + step_at * STRIDE, 1, 0.4, 21);
    let sparse: Vec<Record<2>> = datasets::gaussian_blobs::<2>(400 * STRIDE, 1, 1.6, 22);
    let recs: Vec<Record<2>> = dense.into_iter().chain(sparse).collect();
    let verdicts = drive(recs, 0.5, 4, WINDOW, STRIDE);

    let first_fire = verdicts.iter().position(|v| v.changed.is_some());
    let fired = first_fire.expect("a 4x density step must fire a change-point");
    assert!(
        fired >= step_at,
        "fired on slide {fired}, before the step at {step_at}"
    );
    assert!(
        fired <= step_at + 64,
        "fired on slide {fired}, more than 64 slides after the step at {step_at}"
    );
    let which = verdicts[fired].changed.unwrap();
    assert!(
        which == "neighbor_mean" || which == "noise_fraction",
        "a density step should fire a density signal, not {which}"
    );
}
