//! Integration tests through the `disc` facade crate: the public API a
//! downstream user sees, exercised across crates.

use disc::prelude::*;

#[test]
fn prelude_covers_a_full_pipeline() {
    let records = datasets::gaussian_blobs::<2>(3_000, 3, 0.5, 7);
    let mut window = SlidingWindow::new(records, 1_000, 100);
    let mut disc = Disc::new(DiscConfig::new(1.0, 5));
    disc.apply(&window.fill());
    while let Some(batch) = window.advance() {
        disc.apply(&batch);
    }
    assert!(disc.num_clusters() >= 3);

    let truth: Vec<i64> = window
        .current_truth()
        .map(|(_, t)| t.map(|v| v as i64).unwrap_or(-1))
        .collect();
    let pred: Vec<i64> = disc.assignments().into_iter().map(|(_, l)| l).collect();
    assert!(ari(&truth, &pred) > 0.95, "blobs must be near-perfect");
    assert!(nmi(&truth, &pred) > 0.9);
    assert!(purity(&truth, &pred) > 0.95);
}

#[test]
fn every_method_runs_through_the_common_trait() {
    let records = datasets::covid_like(1_500, 3);
    let window = 500;
    let stride = 100;
    let methods: Vec<Box<dyn WindowClusterer<2>>> = vec![
        Box::new(Disc::new(DiscConfig::new(1.2, 5))),
        Box::new(Dbscan::new(1.2, 5)),
        Box::new(IncDbscan::new(1.2, 5)),
        Box::new(ExtraN::new(1.2, 5, window, stride)),
        Box::new(RhoDbscan::new(1.2, 5, 0.01)),
        Box::new(DbStream::new(DbStreamConfig::default())),
        Box::new(EdmStream::new(EdmStreamConfig::default())),
    ];
    for mut m in methods {
        let mut w = SlidingWindow::new(records.clone(), window, stride);
        m.apply(&w.fill());
        while let Some(b) = w.advance() {
            m.apply(&b);
        }
        let a = m.assignments();
        assert_eq!(a.len(), window, "{} lost points", m.name());
        assert!(
            a.windows(2).all(|w| w[0].0 < w[1].0),
            "{} assignments not sorted",
            m.name()
        );
    }
}

#[test]
fn exact_methods_agree_on_cluster_structure() {
    let records = datasets::maze(2_000, 10, 19);
    let window = 600;
    let stride = 150;
    let eps = 0.6;
    let tau = 5;

    let run = |mut m: Box<dyn WindowClusterer<2>>| -> Vec<(PointId, i64)> {
        let mut w = SlidingWindow::new(records.clone(), window, stride);
        m.apply(&w.fill());
        while let Some(b) = w.advance() {
            m.apply(&b);
        }
        m.assignments()
    };
    let disc = run(Box::new(Disc::new(DiscConfig::new(eps, tau))));
    let dbscan = run(Box::new(Dbscan::new(eps, tau)));
    let inc = run(Box::new(IncDbscan::new(eps, tau)));
    let extran = run(Box::new(ExtraN::new(eps, tau, window, stride)));

    // All four must produce ARI 1.0 against each other (ARI is insensitive
    // to cluster renaming; borders are unambiguous in this workload's
    // well-separated trajectories).
    let labels = |a: &[(PointId, i64)]| a.iter().map(|(_, l)| *l).collect::<Vec<_>>();
    let d = labels(&disc);
    assert_eq!(ari(&d, &labels(&dbscan)), 1.0, "DISC vs DBSCAN");
    assert_eq!(ari(&d, &labels(&inc)), 1.0, "DISC vs IncDBSCAN");
    assert_eq!(ari(&d, &labels(&extran)), 1.0, "DISC vs EXTRA-N");
}

#[test]
fn equivalence_oracle_accepts_disc_against_dbscan() {
    use disc::metrics::{assert_dbscan_equivalent, Labeling};
    let records = datasets::iris_like(800, 3);
    let (eps, tau) = (2.0, 4);
    let mut w = SlidingWindow::new(records, 300, 60);
    let mut d = Disc::new(DiscConfig::new(eps, tau));
    let mut db = Dbscan::new(eps, tau);
    let fill = w.fill();
    d.apply(&fill);
    WindowClusterer::apply(&mut db, &fill);
    loop {
        let pts: Vec<(PointId, Point<4>)> = w.current().collect();
        let da = disc::core::engine::Disc::assignments(&d);
        let ba = WindowClusterer::assignments(&db);
        assert_dbscan_equivalent(
            &Labeling {
                points: &pts,
                assignment: &da,
            },
            &Labeling {
                points: &pts,
                assignment: &ba,
            },
            eps,
            tau,
        );
        match w.advance() {
            Some(b) => {
                d.apply(&b);
                WindowClusterer::apply(&mut db, &b);
            }
            None => break,
        }
    }
}

#[test]
fn tracker_follows_disc_events() {
    use disc::core::{ClusterTracker, Evolution};
    let records = datasets::maze(3_000, 8, 5);
    let mut w = SlidingWindow::new(records, 800, 200);
    let mut disc = Disc::new(DiscConfig::new(0.6, 5));
    let mut tracker = ClusterTracker::new();
    disc.apply(&w.fill());
    let first = tracker.observe(&disc.assignments());
    assert!(!first.is_empty());
    assert!(first.iter().all(|e| matches!(e, Evolution::Emerged { .. })));
    while let Some(b) = w.advance() {
        disc.apply(&b);
        tracker.observe(&disc.assignments());
    }
    assert!(tracker.slides_seen() > 5);
}

#[test]
fn kdistance_estimate_feeds_disc() {
    use disc::core::kdistance;
    let records = datasets::geolife_like(4_000, 9);
    let est = kdistance::estimate(&records, 1_000);
    let mut w = SlidingWindow::new(records, 1_000, 250);
    let mut disc = Disc::new(DiscConfig::new(est.eps, est.tau));
    disc.apply(&w.fill());
    while let Some(b) = w.advance() {
        disc.apply(&b);
    }
    // The estimate must produce a non-degenerate clustering: some clusters,
    // and not everything in one blob or all noise.
    let (cores, _, noise) = disc.census();
    assert!(disc.num_clusters() >= 1, "no clusters at estimated params");
    assert!(cores > 0);
    assert!(noise < 1_000);
}

#[test]
fn csv_roundtrip_preserves_clustering_inputs() {
    let records = datasets::covid_like(500, 21);
    let dir = std::env::temp_dir().join("disc_facade_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("stream.csv");
    disc::window::csv::write_records(&path, &records).unwrap();
    let back: Vec<Record<2>> = disc::window::csv::read_records(&path).unwrap();
    assert_eq!(back.len(), records.len());
    for (a, b) in records.iter().zip(back.iter()) {
        assert!(a.point.dist(&b.point) < 1e-9);
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn index_is_usable_standalone() {
    use disc::index::RTree;
    let mut tree: RTree<3> = RTree::new();
    for i in 0..500u64 {
        let f = i as f64;
        tree.insert(
            PointId(i),
            Point::new([f.sin() * 10.0, f.cos() * 10.0, f / 100.0]),
        );
    }
    let hits = tree.ball_count(&Point::new([0.0, 10.0, 2.5]), 3.0);
    assert!(hits > 0);
    let nn = tree.nearest(&Point::new([0.0, 0.0, 0.0]), 5);
    assert_eq!(nn.len(), 5);
    assert!(nn.windows(2).all(|w| w[0].1 <= w[1].1));
}

#[test]
fn runs_are_deterministic() {
    // Hidden nondeterminism (e.g. randomised hash iteration affecting
    // border adoption or class processing order) would break replayability;
    // two identical runs must agree exactly, including cluster ids.
    let run = || {
        let records = datasets::covid_like(2_000, 99);
        let mut w = SlidingWindow::new(records, 600, 120);
        let mut disc = Disc::new(DiscConfig::new(1.2, 5));
        disc.apply(&w.fill());
        let mut trace: Vec<Vec<(PointId, i64)>> = vec![disc.assignments()];
        while let Some(b) = w.advance() {
            disc.apply(&b);
            trace.push(disc.assignments());
        }
        trace
    };
    assert_eq!(run(), run());
}

#[test]
fn time_window_drives_every_method() {
    // The time-based model must be consumable by the whole method family.
    let records = datasets::gaussian_blobs::<2>(1_500, 3, 0.5, 77);
    let stamped = disc::window::timewindow::stamp_with_gaps(records, &[1.0, 1.0, 0.2, 4.0]);
    let mut methods: Vec<Box<dyn WindowClusterer<2>>> = vec![
        Box::new(Disc::new(DiscConfig::new(1.0, 4))),
        Box::new(Dbscan::new(1.0, 4)),
        Box::new(IncDbscan::new(1.0, 4)),
    ];
    for m in &mut methods {
        let mut w = TimeWindow::new(stamped.clone(), 300.0, 40.0);
        m.apply(&w.fill());
        while let Some(b) = w.advance() {
            m.apply(&b);
        }
        assert_eq!(m.assignments().len(), w.current_len(), "{}", m.name());
    }
}
