//! Tier-1 smoke for the parallel slide engine, through the `disc` facade:
//! the wide engine must produce bit-identical output to the sequential
//! one at every width, on both backends. The exhaustive matrix (five
//! datasets, randomised streams, provenance multisets) lives in
//! `crates/core/tests/parallel_exactness.rs`; this keeps a representative
//! slice in the default `cargo test` tier so the guarantee cannot rot
//! unnoticed.

use disc::index::{CurveIndex, GridIndex, RTree, SpatialBackend};
use disc::prelude::*;

fn lockstep<const D: usize, B: SpatialBackend<D>>(records: Vec<Record<D>>) {
    let widths = [2usize, 4];
    let mut oracle: Disc<D, B> = Disc::with_index(DiscConfig::new(1.0, 5).with_threads(1));
    let mut wide: Vec<Disc<D, B>> = widths
        .iter()
        .map(|&t| Disc::with_index(DiscConfig::new(1.0, 5).with_threads(t)))
        .collect();
    let mut w = SlidingWindow::new(records, 250, 60);
    let mut batch = Some(w.fill());
    let mut slides = 0;
    while let Some(b) = batch {
        slides += 1;
        let want = oracle.apply(&b);
        for (d, &t) in wide.iter_mut().zip(&widths) {
            let got = d.apply(&b);
            assert_eq!(got.ex_cores, want.ex_cores, "width {t}");
            assert_eq!(got.neo_cores, want.neo_cores, "width {t}");
            assert_eq!(
                d.assignments(),
                oracle.assignments(),
                "width {t} diverged at slide {slides}"
            );
        }
        batch = w.advance();
    }
    assert!(slides > 3, "stream too short to exercise evolution");
}

#[test]
fn wide_engine_is_bit_identical_on_rtree() {
    lockstep::<2, RTree<2>>(datasets::gaussian_blobs::<2>(900, 4, 0.6, 7));
}

#[test]
fn wide_engine_is_bit_identical_on_grid() {
    lockstep::<2, GridIndex<2>>(datasets::gaussian_blobs::<2>(900, 4, 0.6, 7));
}

#[test]
fn wide_engine_is_bit_identical_on_curve() {
    lockstep::<2, CurveIndex<2>>(datasets::gaussian_blobs::<2>(900, 4, 0.6, 7));
}
