//! Soak test: a long stream with churn, verifying structural invariants
//! and DBSCAN agreement at checkpoints rather than every slide (kept light
//! enough for debug-profile CI).

use disc::prelude::*;

#[test]
fn long_stream_soak_with_checkpoint_verification() {
    // Interleave three workload characters into one stream: dense blobs,
    // winding trajectories, uniform noise.
    let mut recs = datasets::maze(6_000, 20, 31);
    let blobs = datasets::gaussian_blobs::<2>(3_000, 4, 0.7, 32);
    let noise = datasets::uniform::<2>(1_000, 80.0, 33);
    for (i, r) in blobs.into_iter().enumerate() {
        recs.insert((i * 3) % recs.len(), r);
    }
    for (i, r) in noise.into_iter().enumerate() {
        recs.insert((i * 9) % recs.len(), r);
    }

    let window = 1_200;
    let stride = 120;
    let (eps, tau) = (0.8, 5);
    let mut w = SlidingWindow::new(recs, window, stride);
    let mut disc = Disc::new(DiscConfig::new(eps, tau));
    disc.apply(&w.fill());

    let mut slide = 0usize;
    let mut checkpoints = 0usize;
    while let Some(batch) = w.advance() {
        disc.apply(&batch);
        slide += 1;
        if slide.is_multiple_of(13) {
            // Checkpoint: full invariant sweep + DBSCAN agreement on core
            // structure.
            disc.check_invariants();
            // A fresh DBSCAN instance clusters the current window from
            // scratch, independent of any incremental state.
            let current: Vec<(PointId, Point<2>)> = w.current().collect();
            let mut dbscan = Dbscan::new(eps, tau);
            let fill = SlideBatch {
                incoming: current,
                outgoing: Vec::new(),
            };
            WindowClusterer::apply(&mut dbscan, &fill);

            let a = disc.assignments();
            let b = WindowClusterer::assignments(&dbscan);
            assert_eq!(a.len(), b.len());
            for ((ida, la), (idb, lb)) in a.iter().zip(b.iter()) {
                assert_eq!(ida, idb);
                assert_eq!(*la < 0, *lb < 0, "slide {slide}: {ida} noise flag");
            }
            let ca: std::collections::HashSet<i64> =
                a.iter().map(|(_, l)| *l).filter(|&l| l >= 0).collect();
            let cb: std::collections::HashSet<i64> =
                b.iter().map(|(_, l)| *l).filter(|&l| l >= 0).collect();
            assert_eq!(ca.len(), cb.len(), "slide {slide}: cluster count");
            checkpoints += 1;
        }
    }
    assert!(slide > 50, "soak must cover many slides, got {slide}");
    assert!(checkpoints >= 4);
}
