//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! miniature property-testing harness with the subset of the proptest API the
//! test suites use: the `proptest!` macro, `ProptestConfig::with_cases`,
//! range/tuple/`prop_oneof!`/`prop::collection::vec` strategies, `prop_map`,
//! and the `prop_assert*` macros.
//!
//! Differences from the real crate, deliberate for size:
//!
//! * no shrinking — a failing case reports its case index and the test's
//!   deterministic seed, which is enough to replay under a debugger;
//! * value streams are deterministic per test name (no `PROPTEST_` env
//!   handling, no regression-file persistence — `*.proptest-regressions`
//!   files are ignored);
//! * `prop_assert!`/`prop_assert_eq!` panic immediately instead of
//!   returning `TestCaseError`.

use std::ops::{Range, RangeInclusive};

/// Harness configuration; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic generator driving every strategy (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// A source of random values of one type.
///
/// Unlike the real proptest there is no value tree: `sample` yields the
/// final value directly.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A constant strategy (mirrors `proptest::strategy::Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
    (A, B, C, D, E, F, G);
    (A, B, C, D, E, F, G, H);
}

/// Object-safe strategy, used by `prop_oneof!` arms.
pub trait DynStrategy {
    type Value;

    fn sample_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;

    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// Boxes a strategy for use in a heterogeneous `prop_oneof!` arm list.
pub fn boxed<T, S>(s: S) -> Box<dyn DynStrategy<Value = T>>
where
    S: Strategy<Value = T> + 'static,
{
    Box::new(s)
}

/// Weighted union of strategies, the engine behind `prop_oneof!`.
pub struct OneOf<T> {
    arms: Vec<(u32, Box<dyn DynStrategy<Value = T>>)>,
}

impl<T> OneOf<T> {
    pub fn new(arms: Vec<(u32, Box<dyn DynStrategy<Value = T>>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        assert!(arms.iter().any(|(w, _)| *w > 0), "all arm weights are zero");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.below(total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.sample_dyn(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range");
    }
}

/// The `prop::` namespace re-exported by the prelude.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// Accepted size specifications for [`vec`].
        #[derive(Clone, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi_inclusive: usize,
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi_inclusive: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                assert!(r.start() <= r.end(), "empty size range");
                SizeRange {
                    lo: *r.start(),
                    hi_inclusive: *r.end(),
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange {
                    lo: n,
                    hi_inclusive: n,
                }
            }
        }

        /// `Vec` strategy: `len` sampled from `size`, elements from
        /// `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// Output of [`vec`].
        #[derive(Clone, Debug)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
                let len = self.size.lo + rng.below(span) as usize;
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// Uniform `bool` strategy.
        #[derive(Clone, Copy, Debug)]
        pub struct Any;

        /// The value `prop::bool::ANY`.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

/// Derives a per-test seed from the test's name, deterministically.
pub fn seed_for(test_name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Everything the test files import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        boxed, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, OneOf,
        ProptestConfig, Strategy, TestRng,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(($weight as u32, $crate::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $((1u32, $crate::boxed($strat))),+
        ])
    };
}

/// The harness macro. Accepts the same shape as the real crate:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u64..100, v in prop::collection::vec(0i64..5, 1..20)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@tests ($cfg:expr)) => {};
    (@tests ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let __strategies = ($($strat,)+);
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::new(
                    __seed ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let ($($arg,)+) = $crate::Strategy::sample(&__strategies, &mut __rng);
                $body
            }
        }
        $crate::proptest!(@tests ($cfg) $($rest)*);
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@tests ($cfg) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@tests ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_sample_in_bounds() {
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let x = Strategy::sample(&(0u64..10), &mut rng);
            assert!(x < 10);
            let f = Strategy::sample(&(-1.0..1.0f64), &mut rng);
            assert!((-1.0..1.0).contains(&f));
            let v = Strategy::sample(&prop::collection::vec(-1i64..6, 3..=5), &mut rng);
            assert!((3..=5).contains(&v.len()));
            assert!(v.iter().all(|x| (-1..6).contains(x)));
        }
    }

    #[test]
    fn oneof_respects_zero_weight_arms() {
        let s = prop_oneof![
            1 => Just(1u8),
            0 => Just(2u8),
        ];
        let mut rng = TestRng::new(9);
        for _ in 0..50 {
            assert_eq!(Strategy::sample(&s, &mut rng), 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn harness_runs_with_mapped_and_tuple_strategies(
            pair in (0usize..5, -2.0..2.0f64).prop_map(|(a, b)| (a + 1, b)),
            flag in prop::bool::ANY,
        ) {
            let (a, b) = pair;
            prop_assert!((1..=5).contains(&a));
            prop_assert!((-2.0..2.0).contains(&b));
            let _ = flag;
        }
    }
}
