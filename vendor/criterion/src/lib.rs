//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! miniature wall-clock benchmark harness with the API surface the `benches/`
//! targets use: `Criterion::{default, sample_size, bench_function,
//! benchmark_group}`, `BenchmarkGroup::{bench_with_input, finish}`,
//! `BenchmarkId::from_parameter`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros (both invocation forms).
//!
//! Instead of criterion's statistical machinery it reports the mean, min,
//! and max time per iteration over `sample_size` samples, each sample sized
//! to run for roughly `measure_ms / sample_size` milliseconds. Good enough
//! for the relative comparisons the repo's benches make; not a substitute
//! for real criterion when the registry is reachable.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Harness entry point.
pub struct Criterion {
    sample_size: usize,
    /// Total measurement budget per benchmark, milliseconds.
    measure_ms: u64,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Honour a benchmark-name filter passed on the command line so
        // `cargo bench --bench foo -- some/prefix` works like criterion.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench" && a != "--test");
        Criterion {
            sample_size: 20,
            measure_ms: 600,
            filter,
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark (builder, same as criterion).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    fn skip(&self, id: &str) -> bool {
        match &self.filter {
            Some(f) => !id.contains(f.as_str()),
            None => false,
        }
    }

    /// Runs one benchmark closure.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.skip(id) {
            return self;
        }
        let mut b = Bencher::new(self.sample_size, self.measure_ms);
        f(&mut b);
        b.report(id);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
        }
    }
}

/// A named group; ids are reported as `group/id`.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterised benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        if self.c.skip(&full) {
            return self;
        }
        let mut b = Bencher::new(self.c.sample_size, self.c.measure_ms);
        f(&mut b, input);
        b.report(&full);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifier of a parameterised benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId(p.to_string())
    }

    pub fn new(name: impl Display, p: impl Display) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

/// Passed to the benchmark closure; `iter` does the timing.
pub struct Bencher {
    sample_size: usize,
    measure_ms: u64,
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(sample_size: usize, measure_ms: u64) -> Self {
        Bencher {
            sample_size,
            measure_ms,
            samples: Vec::new(),
            iters_per_sample: 0,
        }
    }

    /// Times `f`, collecting `sample_size` samples.
    pub fn iter<R, F>(&mut self, mut f: F)
    where
        F: FnMut() -> R,
    {
        // Warm up and size the samples: grow the iteration count until one
        // sample takes at least measure_ms / sample_size.
        let target = Duration::from_millis((self.measure_ms / self.sample_size as u64).max(1));
        let mut iters = 1u64;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= target || iters >= (1 << 20) {
                break elapsed / iters as u32;
            }
            // Aim straight for the target from the measured rate.
            let scale = (target.as_nanos() as f64 / elapsed.as_nanos().max(1) as f64).ceil();
            iters = (iters as f64 * scale.clamp(2.0, 1_000.0)) as u64;
        };
        let _ = per_iter;
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<50} (no measurement — closure never called iter)");
            return;
        }
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        let mean: Duration = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "{id:<50} time: [{} {} {}] ({} samples x {} iters)",
            fmt(*min),
            fmt(mean),
            fmt(*max),
            self.samples.len(),
            self.iters_per_sample,
        );
    }
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Re-export point used by generated code.
pub fn run_groups(groups: &[&dyn Fn()]) {
    for g in groups {
        g();
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default().sample_size(3);
        // Shrink the budget so the test is quick.
        c.measure_ms = 10;
        let mut ran = 0u64;
        c.bench_function("stub/self_test", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_ids_compose() {
        let mut c = Criterion::default().sample_size(2);
        c.measure_ms = 4;
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &n| {
            b.iter(|| std::hint::black_box(n * 2))
        });
        group.finish();
    }
}
