//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the minimal API surface it actually uses: a seedable
//! generator (`StdRng::seed_from_u64`), `Rng::gen_range` over the numeric
//! range types that appear in the code base, and `Rng::gen_bool`. The
//! generator is xoshiro256++, seeded through SplitMix64 exactly like the
//! real `rand` seeds small-state generators, so streams are deterministic
//! per seed and statistically solid for the synthetic datasets here.
//! Distribution details differ from upstream `rand`; nothing in this
//! workspace depends on the exact streams, only on determinism.

pub mod rngs {
    /// Deterministic xoshiro256++ generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl StdRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Seeding entry point (subset of the real trait).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling entry points (subset of the real trait).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        rngs::StdRng::next_u64(self)
    }
}

#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges `gen_range` accepts.
pub trait SampleRange<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is negligible at the span sizes used here.
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u = rng.gen_range(5usize..9);
            assert!((5..9).contains(&u));
            let i = rng.gen_range(-4i64..-1);
            assert!((-4..-1).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }
}
