//! Property tests for the quality metrics.

use disc_metrics::{ari, nmi, purity};
use proptest::prelude::*;

fn labeling(n: usize) -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(-1i64..6, n..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn ari_is_symmetric(a in labeling(40), b in labeling(40)) {
        prop_assert!((ari(&a, &b) - ari(&b, &a)).abs() < 1e-12);
        prop_assert!((nmi(&a, &b) - nmi(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn ari_is_one_on_self(a in labeling(40)) {
        prop_assert!((ari(&a, &a) - 1.0).abs() < 1e-12);
        prop_assert!((nmi(&a, &a) - 1.0).abs() < 1e-12);
        prop_assert_eq!(purity(&a, &a), 1.0);
    }

    #[test]
    fn ari_is_invariant_under_renaming(a in labeling(60), b in labeling(60)) {
        // Apply an arbitrary injective relabelling to b.
        let renamed: Vec<i64> = b.iter().map(|&l| if l < 0 { -1 } else { l * 17 + 3 }).collect();
        prop_assert!((ari(&a, &b) - ari(&a, &renamed)).abs() < 1e-12);
        prop_assert!((nmi(&a, &b) - nmi(&a, &renamed)).abs() < 1e-12);
    }

    #[test]
    fn ari_bounded(a in labeling(50), b in labeling(50)) {
        let v = ari(&a, &b);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&v), "ari = {v}");
        let m = nmi(&a, &b);
        prop_assert!((0.0..=1.0).contains(&m), "nmi = {m}");
        let p = purity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&p), "purity = {p}");
    }

    #[test]
    fn permuting_points_together_changes_nothing(
        pairs in prop::collection::vec((-1i64..5, -1i64..5), 10..60),
        seed in 0u64..1000,
    ) {
        let (a, b): (Vec<i64>, Vec<i64>) = pairs.iter().copied().unzip();
        // Deterministic shuffle of the paired labelings.
        let mut idx: Vec<usize> = (0..a.len()).collect();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        for i in (1..idx.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            idx.swap(i, j);
        }
        let pa: Vec<i64> = idx.iter().map(|&i| a[i]).collect();
        let pb: Vec<i64> = idx.iter().map(|&i| b[i]).collect();
        prop_assert!((ari(&a, &b) - ari(&pa, &pb)).abs() < 1e-12);
        prop_assert!((nmi(&a, &b) - nmi(&pa, &pb)).abs() < 1e-12);
        prop_assert!((purity(&a, &b) - purity(&pa, &pb)).abs() < 1e-12);
    }
}
