//! The DBSCAN-equivalence oracle.
//!
//! DISC claims to produce "exactly the same clustering results" as DBSCAN.
//! Formally that means, for a fixed window and (ε, τ):
//!
//! 1. the same points are **cores**, and the core partition is identical up
//!    to cluster renaming;
//! 2. the same points are **noise** (no core within ε);
//! 3. every remaining point is a **border** attached to *some* cluster with
//!    a core in its ε-neighbourhood — DBSCAN itself leaves the choice among
//!    several qualifying clusters unspecified (it depends on scan order),
//!    so any qualifying attachment counts as equal.
//!
//! This module checks those three conditions from raw geometry, without
//! trusting either side's internal state.

use disc_geom::{FxHashMap, Point, PointId};

/// A labelled window: positions plus cluster assignments (`-1` = noise).
pub struct Labeling<'a, const D: usize> {
    /// `(id, position)` of every window point.
    pub points: &'a [(PointId, Point<D>)],
    /// `(id, cluster)` sorted or unsorted; must cover exactly `points`.
    pub assignment: &'a [(PointId, i64)],
}

/// Why two labelings are not equivalent.
#[derive(Debug, Clone, PartialEq)]
pub enum EquivalenceError {
    /// The two labelings cover different point sets.
    PointSetMismatch,
    /// A point is a core but noise/differently-partitioned, or vice versa.
    CoreMismatch {
        /// Offending point.
        id: PointId,
        /// Human-readable explanation.
        detail: String,
    },
    /// A border/noise point is attached incorrectly.
    BorderMismatch {
        /// Offending point.
        id: PointId,
        /// Human-readable explanation.
        detail: String,
    },
}

/// Checks DBSCAN-equivalence of two labelings of the same window.
///
/// `eps`/`tau` define the ground truth core predicate (τ self-inclusive).
/// O(n²) — an oracle for tests and experiment validation, not a hot path.
pub fn dbscan_equivalent<const D: usize>(
    a: &Labeling<'_, D>,
    b: &Labeling<'_, D>,
    eps: f64,
    tau: usize,
) -> Result<(), EquivalenceError> {
    let la: FxHashMap<PointId, i64> = a.assignment.iter().copied().collect();
    let lb: FxHashMap<PointId, i64> = b.assignment.iter().copied().collect();
    if la.len() != lb.len() || la.keys().any(|k| !lb.contains_key(k)) {
        return Err(EquivalenceError::PointSetMismatch);
    }

    // Ground truth from geometry.
    let pts = a.points;
    let n = pts.len();
    if n != la.len() {
        return Err(EquivalenceError::PointSetMismatch);
    }
    let mut neigh: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in 0..n {
            if pts[i].1.within(&pts[j].1, eps) {
                neigh[i].push(j);
            }
        }
    }
    let is_core: Vec<bool> = (0..n).map(|i| neigh[i].len() >= tau).collect();

    // 1. Core partitions must be bijective between the two labelings.
    let mut map_ab: FxHashMap<i64, i64> = FxHashMap::default();
    let mut map_ba: FxHashMap<i64, i64> = FxHashMap::default();
    for i in 0..n {
        let id = pts[i].0;
        let (ca, cb) = (la[&id], lb[&id]);
        if is_core[i] {
            if ca < 0 || cb < 0 {
                return Err(EquivalenceError::CoreMismatch {
                    id,
                    detail: format!("core labelled a={ca} b={cb}"),
                });
            }
            if let Some(&prev) = map_ab.get(&ca) {
                if prev != cb {
                    return Err(EquivalenceError::CoreMismatch {
                        id,
                        detail: format!("cluster a={ca} maps to both {prev} and {cb}"),
                    });
                }
            } else {
                map_ab.insert(ca, cb);
            }
            if let Some(&prev) = map_ba.get(&cb) {
                if prev != ca {
                    return Err(EquivalenceError::CoreMismatch {
                        id,
                        detail: format!("cluster b={cb} maps to both {prev} and {ca}"),
                    });
                }
            } else {
                map_ba.insert(cb, ca);
            }
        }
    }

    // 2 & 3. Noise and border legality, per side.
    for (side, labels) in [("a", &la), ("b", &lb)] {
        for i in 0..n {
            let id = pts[i].0;
            if is_core[i] {
                continue;
            }
            let l = labels[&id];
            let legal: Vec<i64> = neigh[i]
                .iter()
                .filter(|&&j| is_core[j])
                .map(|&j| labels[&pts[j].0])
                .collect();
            if legal.is_empty() {
                if l >= 0 {
                    return Err(EquivalenceError::BorderMismatch {
                        id,
                        detail: format!("{side}: noise point labelled {l}"),
                    });
                }
            } else if l < 0 {
                return Err(EquivalenceError::BorderMismatch {
                    id,
                    detail: format!("{side}: border point labelled noise"),
                });
            } else if !legal.contains(&l) {
                return Err(EquivalenceError::BorderMismatch {
                    id,
                    detail: format!("{side}: border labelled {l}, legal {legal:?}"),
                });
            }
        }
    }
    Ok(())
}

/// Panicking wrapper around [`dbscan_equivalent`] for tests.
pub fn assert_dbscan_equivalent<const D: usize>(
    a: &Labeling<'_, D>,
    b: &Labeling<'_, D>,
    eps: f64,
    tau: usize,
) {
    if let Err(e) = dbscan_equivalent(a, b, eps, tau) {
        panic!("labelings are not DBSCAN-equivalent: {e:?}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts2(coords: &[[f64; 2]]) -> Vec<(PointId, Point<2>)> {
        coords
            .iter()
            .enumerate()
            .map(|(i, c)| (PointId(i as u64), Point::new(*c)))
            .collect()
    }

    fn assignment(labels: &[i64]) -> Vec<(PointId, i64)> {
        labels
            .iter()
            .enumerate()
            .map(|(i, &l)| (PointId(i as u64), l))
            .collect()
    }

    /// A 5-point line with spacing 1 and one far point; eps=1, tau=3 makes
    /// the middle points cores.
    fn line() -> Vec<(PointId, Point<2>)> {
        pts2(&[
            [0.0, 0.0],
            [1.0, 0.0],
            [2.0, 0.0],
            [3.0, 0.0],
            [4.0, 0.0],
            [100.0, 0.0],
        ])
    }

    #[test]
    fn identical_labelings_pass() {
        let p = line();
        let l = assignment(&[0, 0, 0, 0, 0, -1]);
        let a = Labeling {
            points: &p,
            assignment: &l,
        };
        let b = Labeling {
            points: &p,
            assignment: &l,
        };
        assert!(dbscan_equivalent(&a, &b, 1.0, 3).is_ok());
    }

    #[test]
    fn renaming_passes() {
        let p = line();
        let l1 = assignment(&[5, 5, 5, 5, 5, -1]);
        let l2 = assignment(&[9, 9, 9, 9, 9, -1]);
        let a = Labeling {
            points: &p,
            assignment: &l1,
        };
        let b = Labeling {
            points: &p,
            assignment: &l2,
        };
        assert!(dbscan_equivalent(&a, &b, 1.0, 3).is_ok());
    }

    #[test]
    fn noise_mislabelled_as_cluster_fails() {
        let p = line();
        let l1 = assignment(&[0, 0, 0, 0, 0, -1]);
        let l2 = assignment(&[0, 0, 0, 0, 0, 0]);
        let a = Labeling {
            points: &p,
            assignment: &l1,
        };
        let b = Labeling {
            points: &p,
            assignment: &l2,
        };
        let err = dbscan_equivalent(&a, &b, 1.0, 3).unwrap_err();
        assert!(matches!(err, EquivalenceError::BorderMismatch { .. }));
    }

    #[test]
    fn split_core_partition_fails() {
        let p = line();
        let l1 = assignment(&[0, 0, 0, 0, 0, -1]);
        // Second labeling splits the line's cores into two clusters.
        let l2 = assignment(&[0, 0, 0, 1, 1, -1]);
        let a = Labeling {
            points: &p,
            assignment: &l1,
        };
        let b = Labeling {
            points: &p,
            assignment: &l2,
        };
        assert!(dbscan_equivalent(&a, &b, 1.0, 3).is_err());
    }

    #[test]
    fn ambiguous_border_may_differ() {
        // Two line clusters with a non-core point exactly between their
        // endpoints: with eps=1.6, tau=4 the middle point has only three
        // self-inclusive neighbours (itself + both endpoints), so it is a
        // border of BOTH clusters and either attachment is legal.
        let mut coords: Vec<[f64; 2]> = Vec::new();
        for i in 0..7 {
            coords.push([-3.0 + 0.5 * i as f64, 0.0]); // cluster A: -3.0..=0.0
        }
        for i in 0..7 {
            coords.push([3.0 + 0.5 * i as f64, 0.0]); // cluster B: 3.0..=6.0
        }
        coords.push([1.5, 0.0]); // the shared border
        let p = pts2(&coords);
        let eps = 1.6;
        let mut l1: Vec<i64> = vec![0; 7];
        l1.extend(vec![1; 7]);
        l1.push(0); // border attached to A
        let mut l2: Vec<i64> = vec![0; 7];
        l2.extend(vec![1; 7]);
        l2.push(1); // border attached to B
        let l1 = assignment(&l1);
        let l2 = assignment(&l2);
        let a = Labeling {
            points: &p,
            assignment: &l1,
        };
        let b = Labeling {
            points: &p,
            assignment: &l2,
        };
        assert!(
            dbscan_equivalent(&a, &b, eps, 4).is_ok(),
            "both attachments are legal for a two-sided border"
        );
    }

    #[test]
    fn different_point_sets_fail_fast() {
        let p1 = line();
        let p2 = pts2(&[[0.0, 0.0]]);
        let l1 = assignment(&[0, 0, 0, 0, 0, -1]);
        let l2 = assignment(&[-1]);
        let a = Labeling {
            points: &p1,
            assignment: &l1,
        };
        let b = Labeling {
            points: &p2,
            assignment: &l2,
        };
        assert_eq!(
            dbscan_equivalent(&a, &b, 1.0, 3).unwrap_err(),
            EquivalenceError::PointSetMismatch
        );
    }
}
