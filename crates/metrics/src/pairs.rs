//! Pair-counting and information-theoretic quality measures.
//!
//! Inputs are parallel label slices; labels `< 0` denote noise. Following
//! the common convention for evaluating density-based clusterings (and the
//! paper's usage), noise is treated as a class of its own — a method that
//! dumps everything into noise scores near zero, not undefined.

use disc_geom::FxHashMap;

/// Joint and marginal label counts.
type Contingency = (
    FxHashMap<(i64, i64), u64>,
    FxHashMap<i64, u64>,
    FxHashMap<i64, u64>,
);

/// Builds the contingency table between two labelings.
fn contingency(a: &[i64], b: &[i64]) -> Contingency {
    assert_eq!(a.len(), b.len(), "labelings must cover the same points");
    let mut joint: FxHashMap<(i64, i64), u64> = FxHashMap::default();
    let mut ca: FxHashMap<i64, u64> = FxHashMap::default();
    let mut cb: FxHashMap<i64, u64> = FxHashMap::default();
    for (&x, &y) in a.iter().zip(b.iter()) {
        *joint.entry((x, y)).or_insert(0) += 1;
        *ca.entry(x).or_insert(0) += 1;
        *cb.entry(y).or_insert(0) += 1;
    }
    (joint, ca, cb)
}

fn choose2(n: u64) -> f64 {
    (n as f64) * (n.saturating_sub(1) as f64) / 2.0
}

/// Adjusted Rand Index in `[-1, 1]`; `1` iff the partitions are identical,
/// `≈ 0` for independent partitions.
///
/// ```
/// use disc_metrics::ari;
/// // Same partition under different names scores 1.0 …
/// assert_eq!(ari(&[0, 0, 1, 1], &[7, 7, 3, 3]), 1.0);
/// // … splitting a cluster does not.
/// assert!(ari(&[0, 0, 0, 0], &[0, 0, 1, 1]) < 1.0);
/// ```
pub fn ari(a: &[i64], b: &[i64]) -> f64 {
    let n = a.len() as u64;
    if n < 2 {
        return 1.0;
    }
    let (joint, ca, cb) = contingency(a, b);
    let sum_ij: f64 = joint.values().map(|&v| choose2(v)).sum();
    let sum_a: f64 = ca.values().map(|&v| choose2(v)).sum();
    let sum_b: f64 = cb.values().map(|&v| choose2(v)).sum();
    let total = choose2(n);
    let expected = sum_a * sum_b / total;
    let max_index = 0.5 * (sum_a + sum_b);
    if (max_index - expected).abs() < 1e-12 {
        // Both partitions are trivial (all-in-one or all-singletons): they
        // are identical iff the observed index hits the maximum.
        return if (sum_ij - max_index).abs() < 1e-12 {
            1.0
        } else {
            0.0
        };
    }
    (sum_ij - expected) / (max_index - expected)
}

/// Normalised mutual information in `[0, 1]` (arithmetic normalisation).
pub fn nmi(a: &[i64], b: &[i64]) -> f64 {
    let n = a.len() as f64;
    if a.is_empty() {
        return 1.0;
    }
    let (joint, ca, cb) = contingency(a, b);
    let mut mi = 0.0;
    for (&(x, y), &nxy) in &joint {
        let pxy = nxy as f64 / n;
        let px = ca[&x] as f64 / n;
        let py = cb[&y] as f64 / n;
        mi += pxy * (pxy / (px * py)).ln();
    }
    let h = |c: &FxHashMap<i64, u64>| -> f64 {
        c.values()
            .map(|&v| {
                let p = v as f64 / n;
                -p * p.ln()
            })
            .sum()
    };
    let (ha, hb) = (h(&ca), h(&cb));
    if ha == 0.0 || hb == 0.0 {
        // Either partition is a single cluster, so its entropy — and the
        // mutual information — is zero and the ratio would be 0/0 when
        // both collapse. Define the measure at the corner: 1 iff the
        // partitions are identical (both trivial), 0 otherwise.
        return if ha == 0.0 && hb == 0.0 { 1.0 } else { 0.0 };
    }
    let denom = 0.5 * (ha + hb);
    (mi / denom).clamp(0.0, 1.0)
}

/// Purity of `pred` against `truth`: the fraction of points whose predicted
/// cluster's majority truth class matches their own.
pub fn purity(truth: &[i64], pred: &[i64]) -> f64 {
    assert_eq!(truth.len(), pred.len());
    if truth.is_empty() {
        return 1.0;
    }
    let mut per_cluster: FxHashMap<i64, FxHashMap<i64, u64>> = FxHashMap::default();
    for (&t, &p) in truth.iter().zip(pred.iter()) {
        *per_cluster.entry(p).or_default().entry(t).or_insert(0) += 1;
    }
    let correct: u64 = per_cluster
        .values()
        .map(|counts| counts.values().copied().max().unwrap_or(0))
        .sum();
    correct as f64 / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        let a = vec![0, 0, 1, 1, 2, -1];
        assert_eq!(ari(&a, &a), 1.0);
        assert!((nmi(&a, &a) - 1.0).abs() < 1e-12);
        assert_eq!(purity(&a, &a), 1.0);
    }

    #[test]
    fn renamed_clusters_still_score_one() {
        let a = vec![0, 0, 1, 1, 2, 2];
        let b = vec![7, 7, 3, 3, 9, 9];
        assert!((ari(&a, &b) - 1.0).abs() < 1e-12);
        assert!((nmi(&a, &b) - 1.0).abs() < 1e-12);
        assert_eq!(purity(&a, &b), 1.0);
    }

    #[test]
    fn ari_matches_hand_computed_example() {
        // Classic example: n=6, X = {a,a,a,b,b,b}, Y = {a,a,b,b,c,c}.
        let x = vec![0, 0, 0, 1, 1, 1];
        let y = vec![0, 0, 1, 1, 2, 2];
        // Contingency: [[2,1,0],[0,1,2]]
        // sum_ij C2 = 1 + 0 + 0 + 0 + 0 + 1 = 2
        // sum_a = 2*C(3,2) = 6; sum_b = 3*C(2,2)=3; total = C(6,2)=15
        // expected = 6*3/15 = 1.2; max = 4.5; ARI = (2-1.2)/(4.5-1.2)
        let want = (2.0 - 1.2) / (4.5 - 1.2);
        assert!((ari(&x, &y) - want).abs() < 1e-12);
    }

    #[test]
    fn independent_partitions_score_near_zero() {
        // Perfectly crossed partitions: ARI must be ~0 (slightly negative
        // values are legal).
        let x = vec![0, 0, 1, 1, 0, 0, 1, 1];
        let y = vec![0, 1, 0, 1, 0, 1, 0, 1];
        assert!(ari(&x, &y).abs() < 0.2);
    }

    #[test]
    fn opposite_partitions_can_go_negative() {
        let x = vec![0, 1, 0, 1];
        let y = vec![0, 0, 1, 1];
        assert!(ari(&x, &y) <= 0.0);
    }

    #[test]
    fn noise_is_a_class() {
        // Dumping a cluster into noise must hurt the score.
        let truth = vec![0, 0, 0, 1, 1, 1];
        let pred = vec![0, 0, 0, -1, -1, -1];
        assert!(
            (ari(&truth, &pred) - 1.0).abs() < 1e-12,
            "consistent relabel"
        );
        let pred_bad = vec![-1, -1, -1, -1, -1, -1];
        assert!(ari(&truth, &pred_bad) < 0.5);
    }

    #[test]
    fn purity_rewards_fragmentation_but_nmi_does_not() {
        // Each point its own cluster: purity 1, NMI < 1 — a known contrast.
        let truth = vec![0, 0, 1, 1];
        let pred = vec![0, 1, 2, 3];
        assert_eq!(purity(&truth, &pred), 1.0);
        assert!(nmi(&truth, &pred) < 1.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(ari(&[], &[]), 1.0);
        assert_eq!(ari(&[3], &[5]), 1.0);
        let all_one_a = vec![0; 10];
        let all_one_b = vec![4; 10];
        assert_eq!(ari(&all_one_a, &all_one_b), 1.0);
        assert_eq!(nmi(&all_one_a, &all_one_b), 1.0);
    }

    #[test]
    fn nmi_single_cluster_vs_single_cluster_is_one() {
        // Both entropies are zero (0/0): defined as 1.0 — the partitions
        // are identical up to renaming. Must not be NaN.
        let v = nmi(&[0; 16], &[-1; 16]);
        assert!(!v.is_nan());
        assert_eq!(v, 1.0);
    }

    #[test]
    fn nmi_single_cluster_vs_multi_cluster_is_zero() {
        // One side trivial, the other not: zero mutual information by
        // definition, and the score must be 0.0, not NaN.
        let single = vec![7; 8];
        let multi = vec![0, 0, 1, 1, 2, 2, 3, 3];
        for (a, b) in [(&single, &multi), (&multi, &single)] {
            let v = nmi(a, b);
            assert!(!v.is_nan());
            assert_eq!(v, 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "same points")]
    fn length_mismatch_is_rejected() {
        let _ = ari(&[0, 1], &[0]);
    }
}
