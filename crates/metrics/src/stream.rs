//! Cheap per-slide stream-quality signals.
//!
//! The offline measures in [`pairs`](crate::pairs) need a ground truth or
//! an oracle pass; these helpers need only consecutive engine outputs, so
//! the CLI's health auditor can compute them every slide at O(window)
//! cost:
//!
//! * [`label_churn`] — fraction of window-surviving points whose cluster
//!   assignment changed across a slide (up to a consistent renaming this
//!   is the slide-to-slide instability of the clustering);
//! * [`noise_fraction`] — share of the window labelled noise;
//! * [`cluster_sizes`] / [`cluster_count`] — the non-noise census the
//!   lifecycle tracker folds.
//!
//! All inputs are `(PointId, label)` slices as returned by the engines'
//! `assignments()` (sorted by id, noise `< 0`).

use disc_geom::{FxHashMap, PointId};

/// Fraction of points present in both assignment snapshots whose label
/// changed, after matching each old cluster to the new cluster that
/// absorbed the plurality of its surviving members (so a pure renaming
/// scores 0). Returns 0.0 when no points survive.
///
/// ```
/// use disc_geom::PointId;
/// use disc_metrics::label_churn;
/// let id = PointId;
/// let prev = vec![(id(1), 0), (id(2), 0), (id(3), 1)];
/// // Same partition, new names: no churn.
/// let next = vec![(id(1), 9), (id(2), 9), (id(3), 4)];
/// assert_eq!(label_churn(&prev, &next), 0.0);
/// // Point 3 defects into the other cluster: 1 of 3 survivors moved.
/// let split = vec![(id(1), 9), (id(2), 9), (id(3), 9)];
/// assert!((label_churn(&prev, &split) - 1.0 / 3.0).abs() < 1e-12);
/// ```
pub fn label_churn(prev: &[(PointId, i64)], curr: &[(PointId, i64)]) -> f64 {
    let prev_by_id: FxHashMap<PointId, i64> = prev.iter().copied().collect();
    // Joint counts over survivors: (old label, new label) → points.
    let mut joint: FxHashMap<(i64, i64), u64> = FxHashMap::default();
    let mut survivors = 0u64;
    for &(id, new) in curr {
        if let Some(&old) = prev_by_id.get(&id) {
            *joint.entry((old, new)).or_insert(0) += 1;
            survivors += 1;
        }
    }
    if survivors == 0 {
        return 0.0;
    }
    // Greedy injective matching over real clusters, largest overlap first:
    // each old cluster claims at most one new cluster and vice versa, so a
    // pure renaming is free but a merge strands the smaller constituent.
    // Noise is never a rename target — cluster→noise and noise→cluster are
    // churn, noise→noise is stable.
    let mut overlaps: Vec<(u64, i64, i64)> = joint
        .iter()
        .filter(|(&(old, new), _)| old >= 0 && new >= 0)
        .map(|(&(old, new), &count)| (count, old, new))
        .collect();
    overlaps.sort_unstable_by(|a, b| (b.0, a.1, a.2).cmp(&(a.0, b.1, b.2)));
    let mut old_taken: FxHashMap<i64, ()> = FxHashMap::default();
    let mut new_taken: FxHashMap<i64, ()> = FxHashMap::default();
    let mut stable: u64 = joint
        .iter()
        .filter(|(&(old, new), _)| old < 0 && new < 0)
        .map(|(_, &count)| count)
        .sum();
    for (count, old, new) in overlaps {
        if old_taken.contains_key(&old) || new_taken.contains_key(&new) {
            continue;
        }
        old_taken.insert(old, ());
        new_taken.insert(new, ());
        stable += count;
    }
    1.0 - stable as f64 / survivors as f64
}

/// Share of the window labelled noise (`label < 0`). Empty windows count
/// as fully clustered (0.0).
pub fn noise_fraction(assignments: &[(PointId, i64)]) -> f64 {
    if assignments.is_empty() {
        return 0.0;
    }
    let noise = assignments.iter().filter(|&&(_, l)| l < 0).count();
    noise as f64 / assignments.len() as f64
}

/// Sizes of the non-noise clusters, as `(label, size)` sorted by label —
/// the census [`LifecycleAnalytics`](disc_telemetry) folds each slide.
pub fn cluster_sizes(assignments: &[(PointId, i64)]) -> Vec<(i64, u64)> {
    let mut sizes: FxHashMap<i64, u64> = FxHashMap::default();
    for &(_, label) in assignments {
        if label >= 0 {
            *sizes.entry(label).or_insert(0) += 1;
        }
    }
    let mut out: Vec<(i64, u64)> = sizes.into_iter().collect();
    out.sort_unstable();
    out
}

/// Number of non-noise clusters.
pub fn cluster_count(assignments: &[(PointId, i64)]) -> u64 {
    cluster_sizes(assignments).len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(pairs: &[(u64, i64)]) -> Vec<(PointId, i64)> {
        pairs.iter().map(|&(id, l)| (PointId(id), l)).collect()
    }

    #[test]
    fn renaming_is_not_churn() {
        let prev = tag(&[(1, 0), (2, 0), (3, 1), (4, 1)]);
        let next = tag(&[(1, 5), (2, 5), (3, 8), (4, 8)]);
        assert_eq!(label_churn(&prev, &next), 0.0);
    }

    #[test]
    fn churn_counts_defectors_among_survivors_only() {
        let prev = tag(&[(1, 0), (2, 0), (3, 0), (4, 1)]);
        // Point 4 left the window; point 5 arrived (ignored — no history);
        // point 3 moved from cluster 0's successor into another cluster.
        let next = tag(&[(1, 2), (2, 2), (3, 7), (5, 7)]);
        assert!((label_churn(&prev, &next) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn noise_transitions_are_churn() {
        let prev = tag(&[(1, 0), (2, -1)]);
        // 1 fell to noise, 2 stayed noise.
        let next = tag(&[(1, -1), (2, -1)]);
        assert_eq!(label_churn(&prev, &next), 0.5);
    }

    #[test]
    fn disjoint_windows_have_no_churn() {
        let prev = tag(&[(1, 0), (2, 0)]);
        let next = tag(&[(3, 0), (4, 1)]);
        assert_eq!(label_churn(&prev, &next), 0.0);
        assert_eq!(label_churn(&[], &[]), 0.0);
    }

    #[test]
    fn noise_fraction_counts_negative_labels() {
        assert_eq!(noise_fraction(&[]), 0.0);
        let a = tag(&[(1, 0), (2, -1), (3, 4), (4, -2)]);
        assert_eq!(noise_fraction(&a), 0.5);
    }

    #[test]
    fn census_excludes_noise_and_sorts() {
        let a = tag(&[(1, 3), (2, 0), (3, -1), (4, 3), (5, 0), (6, 0)]);
        assert_eq!(cluster_sizes(&a), vec![(0, 3), (3, 2)]);
        assert_eq!(cluster_count(&a), 2);
        assert_eq!(cluster_count(&tag(&[(1, -1)])), 0);
    }
}
