//! Clustering quality metrics and exactness oracles.
//!
//! * [`ari`] — Adjusted Rand Index (Hubert & Arabie 1985), the quality
//!   measure of the paper's Figs. 9–10;
//! * [`nmi`] — normalised mutual information, a secondary quality check;
//! * [`purity`] — majority-class purity;
//! * [`equivalence`] — the DBSCAN-equivalence oracle used by tests: exact
//!   core partitions, legal border attachment, identical noise.

pub mod equivalence;
pub mod pairs;

pub use equivalence::{assert_dbscan_equivalent, dbscan_equivalent, EquivalenceError, Labeling};
pub use pairs::{ari, nmi, purity};
