//! Clustering quality metrics and exactness oracles.
//!
//! * [`ari`] — Adjusted Rand Index (Hubert & Arabie 1985), the quality
//!   measure of the paper's Figs. 9–10;
//! * [`nmi`] — normalised mutual information, a secondary quality check;
//! * [`purity`] — majority-class purity;
//! * [`equivalence`] — the DBSCAN-equivalence oracle used by tests: exact
//!   core partitions, legal border attachment, identical noise;
//! * [`stream`] — cheap per-slide health signals (label churn, noise
//!   fraction, cluster census) needing no ground truth.

pub mod equivalence;
pub mod pairs;
pub mod stream;

pub use equivalence::{assert_dbscan_equivalent, dbscan_equivalent, EquivalenceError, Labeling};
pub use pairs::{ari, nmi, purity};
pub use stream::{cluster_count, cluster_sizes, label_churn, noise_fraction};
