//! The JSONL validators are run against operator-supplied files (CI smoke
//! checks, offline analysis), so they must *reject*, never *crash*: for
//! arbitrary input — binary garbage, truncated JSON, deeply nested
//! structures, near-miss schema lines — `Json::parse`, `validate_jsonl`,
//! and `from_jsonl` must return an `Err`, not panic.

use disc_telemetry::{Json, ProvenanceEvent, SlideEvent};
use proptest::prelude::*;

/// Near-miss corpus: lines adjacent to the real schemas, plus classic
/// parser-killers. None may panic; the schema validators must reject all.
#[test]
fn corpus_of_hostile_lines_is_rejected_without_panicking() {
    let corpus = [
        "",
        "}",
        "{",
        "[",
        "[[[[[[[[[[[[[[[[[[[[[[[[[[[[",
        "{\"slide\":}",
        "{\"slide\": 1e309}",
        "{\"slide\": -1, \"kind\": \"ex_core_detected\", \"id\": 0, \"rep\": 0, \"n\": 0, \"reason\": \"\"}",
        "{\"slide\": 1, \"kind\": \"no_such_kind\", \"id\": 0, \"rep\": 0, \"n\": 0, \"reason\": \"\"}",
        "{\"slide\": 1, \"kind\": \"ex_core_detected\", \"id\": 0, \"rep\": 0, \"n\": 0, \"reason\": \"\", \"extra\": 1}",
        "{\"slide\": 1, \"slide\": 1, \"kind\": \"ex_core_detected\", \"id\": 0, \"rep\": 0, \"n\": 0, \"reason\": \"\"}",
        "null",
        "true",
        "\"just a string\"",
        "{\"seq\": \"not a number\"}",
        "{\"engine\": 7}",
        "\u{0}\u{0}\u{0}",
        "{\"slide\": 18446744073709551616}",
        "{\"a\": \"\\udead\"}",
        "{\"a\": \"unterminated",
    ];
    for line in corpus {
        assert!(
            SlideEvent::validate_jsonl(line).is_err(),
            "accepted {line:?}"
        );
        assert!(SlideEvent::from_jsonl(line).is_err());
        assert!(ProvenanceEvent::validate_jsonl(line).is_err());
        assert!(ProvenanceEvent::from_jsonl(line).is_err());
    }
}

/// The panicking wrappers accept what the engines actually emit.
#[test]
fn wrappers_accept_emitted_lines() {
    SlideEvent::assert_valid_jsonl(&SlideEvent::default().to_jsonl());
    let ev = ProvenanceEvent {
        slide: 3,
        kind: disc_telemetry::ProvenanceKind::ExCoreDetected { id: 17 },
    };
    ProvenanceEvent::assert_valid_jsonl(&ev.to_jsonl());
}

#[test]
#[should_panic(expected = "invalid slide-event JSONL line")]
fn slide_wrapper_panics_with_the_line_in_the_message() {
    SlideEvent::assert_valid_jsonl("{\"seq\": 1}");
}

#[test]
#[should_panic(expected = "invalid provenance JSONL line")]
fn provenance_wrapper_panics_with_the_line_in_the_message() {
    ProvenanceEvent::assert_valid_jsonl("not json");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Raw byte fuzz (lossily decoded to text, as an operator's shell
    /// pipeline would): parse and both validators must return, not panic.
    #[test]
    fn validators_never_panic_on_arbitrary_bytes(
        bytes in prop::collection::vec(0u8..=255, 0..120),
    ) {
        let line = String::from_utf8_lossy(&bytes);
        let _ = Json::parse(&line);
        let _ = SlideEvent::validate_jsonl(&line);
        let _ = SlideEvent::from_jsonl(&line);
        let _ = ProvenanceEvent::validate_jsonl(&line);
        let _ = ProvenanceEvent::from_jsonl(&line);
    }

    /// Structured fuzz: mutate one byte of a *valid* line. The result must
    /// either still validate (the flip hit insignificant whitespace or a
    /// digit) or be rejected — never a panic.
    #[test]
    fn validators_never_panic_on_mutated_valid_lines(
        at_frac in 0.0f64..1.0,
        byte in 0u8..=255,
    ) {
        let valid = SlideEvent::default().to_jsonl();
        let mut bytes = valid.into_bytes();
        let at = ((bytes.len() - 1) as f64 * at_frac) as usize;
        bytes[at] = byte;
        let line = String::from_utf8_lossy(&bytes);
        let _ = SlideEvent::validate_jsonl(&line);
        let _ = SlideEvent::from_jsonl(&line);
    }
}
