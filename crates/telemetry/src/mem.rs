//! Byte accounting: the [`MemoryFootprint`] trait and its report tree.
//!
//! Every stateful component in the workspace (stores, spatial backends,
//! the DSU, engines, window buffers, WAL/checkpoint writers) answers the
//! question *"how many heap bytes are you holding right now?"* through
//! this trait. The answer is a [`FootprintNode`]: a labeled tree whose
//! leaves are byte counts, so a component's footprint decomposes into the
//! same sub-structures its code does (`engine → points / index / dsu`).
//!
//! # Estimated, not measured
//!
//! Footprints are *capacity accounting*, not allocator introspection:
//! `Vec` contributions are `capacity() * size_of::<T>()`, hash maps use
//! the [`map_bytes`] model of the std (hashbrown-based) `HashMap` layout.
//! The counting-allocator cross-check in `disc-index` holds these
//! estimates to within ±15% of real allocation deltas. Process-level
//! truth comes from [`rss_bytes`], which reads procfs and is published
//! alongside the per-component gauges as `disc_rss_bytes`.

/// One labeled node in a footprint tree.
///
/// `bytes` counts only what this node owns *exclusively* (its own heap
/// blocks); child contributions live in `children`. [`total`] sums the
/// subtree.
///
/// [`total`]: FootprintNode::total
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FootprintNode {
    /// Component label, e.g. `"points"` or `"index"`.
    pub label: &'static str,
    /// Bytes owned exclusively by this node (excluding children).
    pub bytes: u64,
    /// Sub-component footprints.
    pub children: Vec<FootprintNode>,
}

impl FootprintNode {
    /// A leaf holding `bytes` under `label`.
    pub fn leaf(label: &'static str, bytes: usize) -> Self {
        FootprintNode {
            label,
            bytes: bytes as u64,
            children: Vec::new(),
        }
    }

    /// An interior node owning nothing itself, aggregating `children`.
    pub fn branch(label: &'static str, children: Vec<FootprintNode>) -> Self {
        FootprintNode {
            label,
            bytes: 0,
            children,
        }
    }

    /// Total bytes in this subtree.
    pub fn total(&self) -> u64 {
        self.bytes + self.children.iter().map(|c| c.total()).sum::<u64>()
    }

    /// Flattens the tree into `(slash/joined/path, subtree_total)` pairs,
    /// depth-first, the root first. Useful for publishing one gauge per
    /// component.
    pub fn flatten(&self) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        self.flatten_into(String::new(), &mut out);
        out
    }

    fn flatten_into(&self, prefix: String, out: &mut Vec<(String, u64)>) {
        let path = if prefix.is_empty() {
            self.label.to_string()
        } else {
            format!("{prefix}/{}", self.label)
        };
        out.push((path.clone(), self.total()));
        for c in &self.children {
            c.flatten_into(path.clone(), out);
        }
    }

    /// Renders the tree as an indented byte report (for humans).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(0, &mut out);
        out
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        out.push_str(&format!(
            "{:indent$}{}: {}\n",
            "",
            self.label,
            fmt_bytes(self.total()),
            indent = depth * 2
        ));
        for c in &self.children {
            c.render_into(depth + 1, out);
        }
    }
}

/// Anything that can account for its heap usage.
pub trait MemoryFootprint {
    /// This component's footprint tree.
    fn footprint(&self) -> FootprintNode;

    /// Total bytes (the footprint tree's sum).
    fn mem_bytes(&self) -> u64 {
        self.footprint().total()
    }
}

/// Estimated heap bytes of a std `HashMap`/`HashSet` table holding
/// entries of `entry_size` bytes at usable capacity `cap`.
///
/// Models the hashbrown `RawTable` layout behind std's hash containers:
/// one allocation of `buckets` slots plus `buckets + GROUP_WIDTH` control
/// bytes, where usable capacity is ⅞ of the bucket count (and 3 of 4 for
/// the smallest table). The inverse — buckets from `capacity()` — is
/// exact for every power-of-two table size.
pub fn map_bytes(cap: usize, entry_size: usize) -> usize {
    if cap == 0 {
        return 0;
    }
    let buckets = if cap <= 3 {
        4
    } else {
        ((cap * 8).div_ceil(7)).next_power_of_two()
    };
    // Group width is 16 on SSE2 targets, 8 on the generic fallback; 16 is
    // the common case and the difference is noise at any real size.
    buckets * entry_size + buckets + 16
}

/// Resident set size of this process in bytes, from `/proc/self/statm`.
/// `None` off Linux or if procfs is unreadable.
pub fn rss_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    // Page size is 4 KiB on every target this workspace builds for;
    // sysconf would need libc, which the workspace deliberately avoids.
    Some(pages * 4096)
}

/// Formats a byte count with a binary-unit suffix.
pub fn fmt_bytes(bytes: u64) -> String {
    const KIB: f64 = 1024.0;
    let b = bytes as f64;
    if b >= KIB * KIB * KIB {
        format!("{:.2} GiB", b / (KIB * KIB * KIB))
    } else if b >= KIB * KIB {
        format!("{:.2} MiB", b / (KIB * KIB))
    } else if b >= KIB {
        format!("{:.1} KiB", b / KIB)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FootprintNode {
        FootprintNode {
            label: "engine",
            bytes: 10,
            children: vec![
                FootprintNode::leaf("points", 100),
                FootprintNode::branch(
                    "index",
                    vec![
                        FootprintNode::leaf("nodes", 50),
                        FootprintNode::leaf("stamps", 25),
                    ],
                ),
            ],
        }
    }

    #[test]
    fn totals_sum_subtrees() {
        let n = sample();
        assert_eq!(n.total(), 185);
        assert_eq!(n.children[1].total(), 75);
        assert_eq!(FootprintNode::leaf("x", 7).total(), 7);
        assert_eq!(FootprintNode::branch("x", vec![]).total(), 0);
    }

    #[test]
    fn flatten_paths_are_slash_joined_depth_first() {
        let flat = sample().flatten();
        let paths: Vec<&str> = flat.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(
            paths,
            vec![
                "engine",
                "engine/points",
                "engine/index",
                "engine/index/nodes",
                "engine/index/stamps",
            ]
        );
        assert_eq!(flat[0].1, 185, "root path carries the grand total");
        assert_eq!(flat[2].1, 75, "interior paths carry subtree totals");
    }

    #[test]
    fn render_is_indented_and_humane() {
        let text = sample().render();
        assert!(text.starts_with("engine: 185 B\n"), "{text}");
        assert!(text.contains("\n  points: 100 B\n"), "{text}");
        assert!(text.contains("\n    nodes: 50 B\n"), "{text}");
    }

    #[test]
    fn trait_total_matches_tree() {
        struct Fixed;
        impl MemoryFootprint for Fixed {
            fn footprint(&self) -> FootprintNode {
                sample()
            }
        }
        assert_eq!(Fixed.mem_bytes(), 185);
    }

    #[test]
    fn map_bytes_tracks_std_hashmap_capacity() {
        assert_eq!(map_bytes(0, 16), 0);
        // Smallest table: 4 buckets, 3 usable.
        assert_eq!(map_bytes(3, 16), 4 * 16 + 4 + 16);
        // 7 usable → 8 buckets; 14 → 16; 28 → 32.
        assert_eq!(map_bytes(7, 16), 8 * 16 + 8 + 16);
        assert_eq!(map_bytes(14, 16), 16 * 16 + 16 + 16);
        assert_eq!(map_bytes(28, 16), 32 * 16 + 32 + 16);
        // The inverse is consistent with what std actually reserves.
        let mut m: std::collections::HashMap<u64, u64> = Default::default();
        for i in 0..1000u64 {
            m.insert(i, i);
        }
        let est = map_bytes(m.capacity(), std::mem::size_of::<(u64, u64)>());
        // 1000 entries fit in 2048 buckets (1792 usable).
        assert_eq!(est, 2048 * 16 + 2048 + 16);
    }

    #[test]
    fn rss_is_present_and_plausible_on_linux() {
        if !cfg!(target_os = "linux") {
            return;
        }
        let rss = rss_bytes().expect("procfs readable on linux");
        assert!(rss > 1024 * 1024, "a test process exceeds 1 MiB: {rss}");
    }

    #[test]
    fn bytes_format_scales_units() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00 MiB");
        assert_eq!(fmt_bytes(5 * 1024 * 1024 * 1024), "5.00 GiB");
    }
}
