//! Log-bucketed (HDR-style) histograms.
//!
//! A [`LogHistogram`] covers the whole `u64` range with buckets whose width
//! grows geometrically: values below 2^SUB_BITS get exact unit buckets, and
//! every power-of-two octave above that is split into 2^SUB_BITS linear
//! sub-buckets. With `SUB_BITS = 5` the maximal relative error of any
//! reported quantile is 2^-5 ≈ 3.1%, which is plenty for latency tails,
//! while `record` stays a handful of bit operations with **no allocation**
//! after construction — cheap enough for per-slide hot paths.
//!
//! The scheme is the same one HdrHistogram and Prometheus native histograms
//! use; we keep it dependency-free. Recorded values are plain `u64`s; by
//! convention the engine records **nanoseconds** (see the crate docs), and
//! the Prometheus exporter divides by 1e9 when a metric is named `*_seconds`.

/// Linear sub-bucket bits per octave (2^5 = 32 sub-buckets, ≈3.1% error).
const SUB_BITS: u32 = 5;
const SUB_COUNT: usize = 1 << SUB_BITS;
const SUB_MASK: u64 = (SUB_COUNT - 1) as u64;
/// Bucket count covering all of `u64`: one unit range plus
/// `64 - SUB_BITS` octaves of `SUB_COUNT` sub-buckets each.
const BUCKETS: usize = (64 - SUB_BITS as usize) * SUB_COUNT + SUB_COUNT;

/// Index of the bucket holding `v`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUB_BITS;
        let sub = ((v >> shift) & SUB_MASK) as usize;
        (((msb - SUB_BITS + 1) as usize) << SUB_BITS) + sub
    }
}

/// Largest value mapped to bucket `i` (the bucket's inclusive upper bound).
#[inline]
fn bucket_upper(i: usize) -> u64 {
    let octave = (i >> SUB_BITS) as u32;
    if octave == 0 {
        return i as u64;
    }
    let shift = octave - 1;
    let sub = (i as u64) & SUB_MASK;
    // Lower bound of the *next* bucket, minus one. The very top bucket's
    // "next lower bound" is 2^64, so go through u128 and clamp.
    let upper = ((SUB_COUNT as u128 + sub as u128 + 1) << shift) - 1;
    upper.min(u64::MAX as u128) as u64
}

/// A fixed-size log-bucketed histogram of `u64` samples.
///
/// ~15 KiB of counts; construction is the only allocation. Supports
/// recording, merging, and quantile queries; quantiles are reported as the
/// upper bound of the bucket containing the requested rank (conservative,
/// within the 3.1% bucket error of the true value).
#[derive(Clone)]
pub struct LogHistogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0u64; BUCKETS].into_boxed_slice().try_into().unwrap(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: an upper bound on the sample
    /// at rank `ceil(q · count)`, within one bucket width. Returns 0 when
    /// the histogram is empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The true max is exact; don't over-report the top bucket.
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (p50).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Resets the histogram to its empty state without releasing the
    /// bucket storage — the merge/clear pair lets a driver keep one
    /// scratch histogram per repetition and fold it into an aggregate
    /// (see `disc-bench`'s repeated measurements) with zero allocation.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Calls `f(upper_bound, cumulative_count)` for every *non-empty*
    /// bucket in ascending order — the shape Prometheus' cumulative
    /// `_bucket{le=...}` series needs. The final call always carries the
    /// total count (the `+Inf` bucket is the caller's to add).
    pub fn for_each_cumulative(&self, mut f: impl FnMut(u64, u64)) {
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            f(bucket_upper(i), cum);
        }
    }

    /// A compact copy of the summary statistics.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            p50: self.p50(),
            p90: self.p90(),
            p99: self.p99(),
        }
    }
}

/// Summary statistics of a [`LogHistogram`] at one point in time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Recorded samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        // Every value maps to a bucket whose bounds contain it, and bucket
        // indices never decrease with the value.
        let mut vals: Vec<u64> = Vec::new();
        for shift in 0..63 {
            for off in [0u64, 1, 3] {
                vals.push((1u64 << shift).saturating_add(off));
            }
        }
        vals.push(u64::MAX);
        vals.sort_unstable();
        let mut prev_idx = 0usize;
        for &v in &vals {
            let i = bucket_index(v);
            assert!(i < BUCKETS);
            assert!(i >= prev_idx, "index regressed at {v}");
            assert!(bucket_upper(i) >= v, "upper bound below value {v}");
            if i > 0 {
                assert!(bucket_upper(i - 1) < v, "value {v} fits prior bucket");
            }
            prev_idx = i;
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
        assert_eq!(h.quantile(0.5), 15);
        assert_eq!(h.quantile(1.0), 31);
    }

    #[test]
    fn quantiles_within_bucket_error() {
        let mut h = LogHistogram::new();
        for i in 1..=10_000u64 {
            h.record(i * 1_000); // 1ms .. 10s in us
        }
        let p50 = h.p50() as f64;
        let p99 = h.p99() as f64;
        assert!((p50 - 5_000_000.0).abs() / 5_000_000.0 < 0.04, "p50 {p50}");
        assert!((p99 - 9_900_000.0).abs() / 9_900_000.0 < 0.04, "p99 {p99}");
        assert_eq!(h.max(), 10_000_000);
        assert_eq!(h.quantile(1.0), 10_000_000, "top quantile is the exact max");
        assert!(h.mean() > 0.0);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.snapshot(), HistSnapshot::default());
        let mut calls = 0;
        h.for_each_cumulative(|_, _| calls += 1);
        assert_eq!(calls, 0);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut both = LogHistogram::new();
        for i in 0..500u64 {
            let v = i * 37 + 5;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.sum(), both.sum());
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());
        assert_eq!(a.p50(), both.p50());
        assert_eq!(a.p99(), both.p99());
    }

    #[test]
    fn clear_resets_to_the_empty_state() {
        let mut h = LogHistogram::new();
        for v in [1u64, 1 << 20, u64::MAX] {
            h.record(v);
        }
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.snapshot(), HistSnapshot::default());
        let mut calls = 0;
        h.for_each_cumulative(|_, _| calls += 1);
        assert_eq!(calls, 0);
        // The cleared histogram records again from scratch.
        h.record(7);
        assert_eq!(h.min(), 7);
        assert_eq!(h.max(), 7);
        assert_eq!(h.p50(), 7);
    }

    mod merge_properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Merging per-chunk histograms is indistinguishable from
            /// recording the whole stream into one histogram — the
            /// guarantee the bench harness relies on when aggregating
            /// repetitions via merge/clear.
            #[test]
            fn merged_percentiles_equal_whole_stream_percentiles(
                samples in prop::collection::vec(0u64..u64::MAX, 1..300),
                chunk in 1usize..50,
            ) {
                let mut whole = LogHistogram::new();
                let mut merged = LogHistogram::new();
                let mut scratch = LogHistogram::new();
                for part in samples.chunks(chunk) {
                    scratch.clear();
                    for &v in part {
                        scratch.record(v);
                        whole.record(v);
                    }
                    merged.merge(&scratch);
                }
                prop_assert_eq!(merged.snapshot(), whole.snapshot());
                for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
                    prop_assert_eq!(merged.quantile(q), whole.quantile(q));
                }
            }
        }
    }

    #[test]
    fn cumulative_iteration_ends_at_total_count() {
        let mut h = LogHistogram::new();
        for v in [3u64, 3, 100, 5_000, 1 << 40] {
            h.record(v);
        }
        let mut last_cum = 0;
        let mut last_le = 0;
        h.for_each_cumulative(|le, cum| {
            assert!(le > last_le || last_cum == 0);
            assert!(cum > last_cum);
            last_le = le;
            last_cum = cum;
        });
        assert_eq!(last_cum, h.count());
        assert!(last_le >= 1 << 40);
    }

    #[test]
    fn snapshot_mirrors_accessors() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, h.count());
        assert_eq!(s.sum, h.sum());
        assert_eq!(s.p50, h.p50());
        assert_eq!(s.p90, h.p90());
        assert_eq!(s.p99, h.p99());
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
    }
}
