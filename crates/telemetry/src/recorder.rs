//! The [`Recorder`] trait: the engines' one telemetry entry point.
//!
//! Engines hold an `Arc<dyn Recorder>` and publish to it once per slide.
//! The default [`NoopRecorder`] reports `enabled() == false`, letting hot
//! paths skip event assembly entirely — with telemetry off, the total cost
//! per slide is one virtual call and a branch.

use crate::event::SlideEvent;
use crate::provenance::ProvenanceEvent;
use std::sync::Arc;

/// A telemetry backend: monotone counters, gauges, duration histograms,
/// and structured slide events.
///
/// Metric names are `&'static str` so recording never allocates; the
/// convention is Prometheus-style snake case with a unit suffix
/// (`disc_slide_seconds`, `disc_index_range_searches_total`). Histogram
/// samples are **nanoseconds**; the Prometheus exporter converts metrics
/// named `*_seconds` on render.
pub trait Recorder: Send + Sync {
    /// Whether callers should bother assembling telemetry at all. Engines
    /// check this once per slide and skip publication when false.
    fn enabled(&self) -> bool {
        true
    }

    /// Adds `delta` to the monotone counter `name`.
    fn counter_add(&self, name: &'static str, delta: u64);

    /// Sets gauge `name` to `value`.
    fn gauge_set(&self, name: &'static str, value: f64);

    /// Sets the `{label_key="label_value"}` sample of gauge family `name`
    /// to `value` (e.g. `disc_mem_bytes{component="points"}`). Default:
    /// dropped, so recorders that predate labels need not opt in.
    fn gauge_set_labeled(
        &self,
        name: &'static str,
        label_key: &'static str,
        label_value: &str,
        value: f64,
    ) {
        let _ = (name, label_key, label_value, value);
    }

    /// Records one duration sample (nanoseconds) into histogram `name`.
    fn record_nanos(&self, name: &'static str, nanos: u64);

    /// Records a [`Duration`](std::time::Duration) sample.
    fn record_duration(&self, name: &'static str, d: std::time::Duration) {
        self.record_nanos(name, d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Emits one structured slide event.
    fn emit(&self, event: &SlideEvent);

    /// Emits one causal provenance event (see
    /// [`provenance`](crate::provenance)). Default: dropped, so recorders
    /// that only care about metrics need not opt in.
    fn emit_provenance(&self, event: &ProvenanceEvent) {
        let _ = event;
    }
}

/// The zero-cost default recorder: drops everything, reports disabled.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn counter_add(&self, _name: &'static str, _delta: u64) {}

    fn gauge_set(&self, _name: &'static str, _value: f64) {}

    fn record_nanos(&self, _name: &'static str, _nanos: u64) {}

    fn emit(&self, _event: &SlideEvent) {}
}

/// A shared no-op recorder, the default wired into every engine.
pub fn noop() -> Arc<dyn Recorder> {
    Arc::new(NoopRecorder)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_inert() {
        let r = noop();
        assert!(!r.enabled());
        r.counter_add("x_total", 5);
        r.gauge_set("g", 1.0);
        r.gauge_set_labeled("g_bytes", "component", "points", 2.0);
        r.record_nanos("h_seconds", 100);
        r.record_duration("h_seconds", std::time::Duration::from_micros(3));
        r.emit(&SlideEvent::default());
        r.emit_provenance(&ProvenanceEvent {
            slide: 1,
            kind: crate::provenance::ProvenanceKind::ExCoreDetected { id: 1 },
        });
    }
}
