//! Chrome trace-event exporter for [`SpanRecord`]s.
//!
//! Renders a span batch as the `chrome://tracing` / Perfetto JSON object
//! format: `{"traceEvents": [...]}` where each span becomes one complete
//! (`"ph": "X"`) event with microsecond `ts`/`dur`. Span attributes land in
//! `args`, along with the span/parent ids so the tree structure survives
//! the flat encoding. [`validate_chrome_trace`] is the CI-side checker.

use crate::json::{escape, Json};
use crate::span::SpanRecord;
use std::fmt::Write as _;

/// Renders spans as a Chrome trace-event JSON document.
///
/// Timestamps are the tracer-epoch offsets scaled to microseconds (the
/// format's native unit) with nanosecond precision kept in the fraction.
/// All events share `pid`/`tid` 1: engines are single-threaded and the
/// viewer nests events on one track by time containment.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(64 + spans.len() * 128);
    out.push_str("{\"traceEvents\": [");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n  {{\"name\": \"{}\", \"cat\": \"disc\", \"ph\": \"X\", \"ts\": {:.3}, \
             \"dur\": {:.3}, \"pid\": 1, \"tid\": 1, \"args\": {{\"span\": {}, \"parent\": {}",
            escape(s.name),
            s.start_ns as f64 / 1e3,
            s.dur_ns as f64 / 1e3,
            s.id,
            s.parent,
        );
        for (k, v) in &s.args {
            let _ = write!(out, ", \"{}\": {}", escape(k), v);
        }
        out.push_str("}}");
    }
    out.push_str("\n]}\n");
    out
}

/// Validates a Chrome trace document produced by [`chrome_trace_json`]
/// (and, structurally, anything `chrome://tracing` would load): a root
/// object with a `traceEvents` array of complete events carrying `name`,
/// `ph == "X"`, numeric non-negative `ts`/`dur`, and numeric `pid`/`tid`.
/// Returns the number of events.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let doc = Json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .ok_or_else(|| "missing traceEvents".to_string())?
        .as_array()
        .ok_or_else(|| "traceEvents is not an array".to_string())?;
    for (i, ev) in events.iter().enumerate() {
        let fail = |msg: &str| Err(format!("event {i}: {msg}"));
        if ev.get("name").and_then(Json::as_str).is_none() {
            return fail("missing string name");
        }
        if ev.get("ph").and_then(Json::as_str) != Some("X") {
            return fail("ph must be \"X\"");
        }
        for key in ["ts", "dur"] {
            match ev.get(key).and_then(Json::as_f64) {
                Some(v) if v >= 0.0 => {}
                _ => return fail(&format!("{key} must be a non-negative number")),
            }
        }
        for key in ["pid", "tid"] {
            if ev.get(key).and_then(Json::as_f64).is_none() {
                return fail(&format!("{key} must be a number"));
            }
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Tracer;

    fn sample_spans() -> Vec<SpanRecord> {
        let mut t = Tracer::new();
        let slide = t.begin("slide");
        let collect = t.begin("collect");
        t.end_with_args(collect, &[("range_searches", 12)]);
        t.end_with_args(slide, &[("seq", 1)]);
        t.drain()
    }

    #[test]
    fn export_validates_and_preserves_structure() {
        let spans = sample_spans();
        let text = chrome_trace_json(&spans);
        assert_eq!(validate_chrome_trace(&text).unwrap(), 2);
        let doc = Json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let collect = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("collect"))
            .unwrap();
        let slide = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("slide"))
            .unwrap();
        // Parent link and args survive the round trip.
        assert_eq!(
            collect.get("args").unwrap().get("parent").unwrap().as_u64(),
            slide.get("args").unwrap().get("span").unwrap().as_u64(),
        );
        assert_eq!(
            collect
                .get("args")
                .unwrap()
                .get("range_searches")
                .unwrap()
                .as_u64(),
            Some(12)
        );
        // The child is contained in the parent on the timeline.
        let ts = |e: &Json| e.get("ts").unwrap().as_f64().unwrap();
        let dur = |e: &Json| e.get("dur").unwrap().as_f64().unwrap();
        assert!(ts(collect) >= ts(slide));
        assert!(ts(collect) + dur(collect) <= ts(slide) + dur(slide) + 1e-3);
    }

    #[test]
    fn empty_batch_is_still_a_valid_document() {
        let text = chrome_trace_json(&[]);
        assert_eq!(validate_chrome_trace(&text).unwrap(), 0);
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": 3}").is_err());
        assert!(
            validate_chrome_trace("{\"traceEvents\": [{\"name\": \"x\", \"ph\": \"B\"}]}").is_err()
        );
        assert!(validate_chrome_trace(
            "{\"traceEvents\": [{\"name\": \"x\", \"ph\": \"X\", \"ts\": -1, \"dur\": 0, \
             \"pid\": 1, \"tid\": 1}]}"
        )
        .is_err());
    }
}
