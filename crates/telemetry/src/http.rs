//! A tiny blocking Prometheus scrape endpoint (feature `http`).
//!
//! One listener thread, one connection at a time, std-only. Serves the
//! owning [`Registry`]'s current render on every `GET` (any path), which
//! is exactly what a Prometheus scraper needs and nothing more. Not a
//! general HTTP server: requests are read until the blank line and the
//! response is written in one shot.

use crate::registry::Registry;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Handle to a running scrape listener; the thread runs until process
/// exit (scrapes are cheap and the listener owns no engine state).
pub struct PromServer {
    local_addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl PromServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9090"`, or port 0 for ephemeral) and
    /// serves `registry.render_prometheus()` to every request on a
    /// background thread.
    pub fn spawn(addr: &str, registry: Arc<Registry>) -> std::io::Result<PromServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = shutdown.clone();
        std::thread::Builder::new()
            .name("disc-prom".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        let _ = serve_one(stream, &registry);
                    }
                }
            })?;
        Ok(PromServer {
            local_addr,
            shutdown,
        })
    }

    /// The bound address (useful when spawned on port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Asks the listener thread to exit after its next accepted
    /// connection. Best-effort: the thread blocks in `accept`, so
    /// shutdown completes lazily; process exit reaps it regardless.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }
}

fn serve_one(stream: TcpStream, registry: &Registry) -> std::io::Result<()> {
    stream.set_read_timeout(Some(std::time::Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(std::time::Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    // Drain the request head; we serve the same body regardless.
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let body = registry.render_prometheus();
    let mut stream = stream;
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    #[test]
    fn serves_registry_render_over_http() {
        let registry = Arc::new(Registry::new());
        registry.counter_add("disc_slides_total", 7);
        registry.record_nanos("disc_slide_seconds", 5_000);
        let server = PromServer::spawn("127.0.0.1:0", registry.clone()).unwrap();
        let addr = server.local_addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        use std::io::Read;
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("text/plain"));
        let body = response.split("\r\n\r\n").nth(1).unwrap();
        let samples = crate::prom::parse_prometheus(body).unwrap();
        assert!(samples.iter().any(|s| s.name == "disc_slides_total"));
        server.shutdown();
        // Poke the listener once so the thread can observe the flag.
        let _ = TcpStream::connect(addr);
    }
}
