//! Stream-health primitives: drift detectors, cluster lifecycle analytics,
//! and the per-slide health event schema.
//!
//! The engine's existing telemetry answers "how fast is the stream?"
//! (latency histograms, work counters) and "how big is it?" (the byte
//! accounting of `mem`). This module answers "is the clustering still
//! *good*?" with three layers:
//!
//! * [`DriftMonitor`] — an EWMA z-score plus a two-sided Page–Hinkley test
//!   per signal, folded into one `disc_drift_score` gauge and a change-point
//!   verdict. Signals are plain `f64`s, so the monitor is engine-agnostic.
//! * [`LifecycleAnalytics`] — folds the provenance stream and per-slide
//!   cluster censuses into birth/death records, lifetime and size-at-death
//!   histograms, and split/merge churn rates.
//! * [`HealthEvent`] — the flat JSONL record the CLI appends per slide
//!   (`--health-out`), with the same strict `validate_jsonl` contract as
//!   the slide-event and provenance schemas.

use crate::hist::{HistSnapshot, LogHistogram};
use crate::json::Json;
use crate::provenance::{ProvenanceEvent, ProvenanceKind};
use std::collections::BTreeMap;

/// Exponentially weighted mean/variance tracker.
///
/// `observe` returns the *signed* z-score of the sample against the
/// statistics accumulated so far (0.0 until the estimate has warmed up),
/// then folds the sample in. The standard deviation is floored at a small
/// fraction of the running mean so near-constant signals do not turn
/// floating-point jitter into huge scores.
#[derive(Clone, Debug)]
pub struct Ewma {
    alpha: f64,
    mean: f64,
    var: f64,
    n: u64,
}

impl Ewma {
    /// A tracker with smoothing factor `alpha` in `(0, 1]` (smaller adapts
    /// more slowly, making step changes stand out longer).
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0);
        Ewma {
            alpha,
            mean: 0.0,
            var: 0.0,
            n: 0,
        }
    }

    /// Current mean estimate.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Samples observed so far.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// True before the first sample.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Scores `x` against the current estimate, then updates it.
    pub fn observe(&mut self, x: f64) -> f64 {
        if !x.is_finite() {
            return 0.0;
        }
        if self.n == 0 {
            self.mean = x;
            self.n = 1;
            return 0.0;
        }
        let floor = 0.02 * self.mean.abs().max(0.02);
        let std = self.var.sqrt().max(floor);
        let z = ((x - self.mean) / std).clamp(-1e3, 1e3);
        // Winsorized update once calibrated: a gross outlier moves the
        // estimate as if it were a 4σ sample. Without this, a step change
        // balloons the variance within two slides and masks itself from
        // the change-point layer before it can accumulate. The first
        // samples update raw — winsorizing against the still-floored σ
        // would keep the variance from ever learning the signal's scale.
        let diff = if self.n >= 16 {
            (x - self.mean).clamp(-4.0 * std, 4.0 * std)
        } else {
            x - self.mean
        };
        let incr = self.alpha * diff;
        self.mean += incr;
        self.var = (1.0 - self.alpha) * (self.var + diff * incr);
        self.n += 1;
        z
    }
}

/// Two-sided Page–Hinkley change-point test over a z-scored signal.
///
/// Maintains the cumulative deviation `m_t = Σ (zᵢ − δ·sign)` in both
/// directions and fires when the excursion from its running extremum
/// exceeds `λ`. Over a stationary z-score sequence the walk drifts back
/// toward the extremum at rate `δ` per slide, so false fires need an
/// excursion of `λ` against that drift (probability ≈ `exp(−2δλ)`).
/// After a fire the test resets and re-arms.
#[derive(Clone, Debug)]
pub struct PageHinkley {
    delta: f64,
    lambda: f64,
    up: f64,
    up_min: f64,
    down: f64,
    down_max: f64,
}

impl PageHinkley {
    /// A test with tolerance `delta` (per-slide drift allowance) and
    /// threshold `lambda` (cumulative excursion that declares a change).
    pub fn new(delta: f64, lambda: f64) -> Self {
        assert!(delta >= 0.0 && lambda > 0.0);
        PageHinkley {
            delta,
            lambda,
            up: 0.0,
            up_min: 0.0,
            down: 0.0,
            down_max: 0.0,
        }
    }

    /// Folds one z-score in; true when a change-point fires (then resets).
    pub fn observe(&mut self, z: f64) -> bool {
        self.up += z - self.delta;
        self.up_min = self.up_min.min(self.up);
        self.down += z + self.delta;
        self.down_max = self.down_max.max(self.down);
        let fired = self.up - self.up_min > self.lambda || self.down_max - self.down > self.lambda;
        if fired {
            self.up = 0.0;
            self.up_min = 0.0;
            self.down = 0.0;
            self.down_max = 0.0;
        }
        fired
    }
}

/// One named signal's detector: EWMA z-scoring feeding Page–Hinkley.
#[derive(Clone, Debug)]
pub struct DriftDetector {
    /// Signal name (shows up in the change-point report).
    pub name: &'static str,
    ewma: Ewma,
    ph: PageHinkley,
    warmup: u64,
    seen: u64,
    last_z: f64,
}

/// Cap on the z-score fed into Page–Hinkley. With λ = 12 a single slide
/// can contribute at most `Z_CAP − δ = 2.5` toward a fire, so no spike —
/// however extreme — declares a change alone; it takes ≥ 5 consecutive
/// saturated slides. The *reported* score stays unclamped.
const Z_CAP: f64 = 4.0;

impl DriftDetector {
    /// A detector with the workspace's default parameters: slow EWMA
    /// (α = 0.05, a ~20-slide time constant so steps stay anomalous long
    /// enough to accumulate), Page–Hinkley δ = 1.5, λ = 12. δ of 1.5σ
    /// tolerates the autocorrelated swings stationary streams produce
    /// (orbiting trajectories wander density by ~1.4σ for dozens of
    /// slides); the false-fire probability per stationary excursion is
    /// ≈`exp(−2δλ)` = `exp(−36)`, while a genuine step saturating the
    /// z-cap fires in ⌈λ/(4−δ)⌉ = 5 slides. `warmup` calibration slides
    /// fire nothing.
    pub fn new(name: &'static str, warmup: u64) -> Self {
        DriftDetector {
            name,
            ewma: Ewma::new(0.05),
            ph: PageHinkley::new(1.5, 12.0),
            warmup,
            seen: 0,
            last_z: 0.0,
        }
    }

    /// Scores one sample: `(|z|, fired)`.
    pub fn observe(&mut self, x: f64) -> (f64, bool) {
        let z = self.ewma.observe(x);
        self.seen += 1;
        if self.seen <= self.warmup {
            self.last_z = 0.0;
            return (0.0, false);
        }
        self.last_z = z.abs();
        (z.abs(), self.ph.observe(z.clamp(-Z_CAP, Z_CAP)))
    }

    /// |z| of the most recent sample (0 during warmup).
    pub fn last_score(&self) -> f64 {
        self.last_z
    }
}

/// Verdict of one [`DriftMonitor::observe`] round.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriftVerdict {
    /// Max |z| across the signals this slide (σ units).
    pub score: f64,
    /// The signal whose Page–Hinkley test fired, if any.
    pub changed: Option<&'static str>,
}

/// A bundle of [`DriftDetector`]s over named signals.
///
/// The published `disc_drift_score` is the max |z| across signals: ≈1.0 is
/// ordinary variation, ≥3.0 a three-sigma excursion. A change-point is
/// only declared by the Page–Hinkley layer, which needs the excursion to
/// *persist* — single-slide spikes score high but do not fire.
#[derive(Clone, Debug, Default)]
pub struct DriftMonitor {
    detectors: Vec<DriftDetector>,
    changes: u64,
    last: f64,
}

impl DriftMonitor {
    /// An empty monitor; add signals with [`track`](DriftMonitor::track).
    pub fn new() -> Self {
        DriftMonitor::default()
    }

    /// The monitor the CLI runs: mean ε-neighbor count, noise fraction and
    /// arrival-geometry shift, calibrated over `warmup` slides.
    pub fn standard(warmup: u64) -> Self {
        let mut m = DriftMonitor::new();
        for name in ["neighbor_mean", "noise_fraction", "arrival_shift"] {
            m.track(name, warmup);
        }
        m
    }

    /// Registers a signal.
    pub fn track(&mut self, name: &'static str, warmup: u64) {
        self.detectors.push(DriftDetector::new(name, warmup));
    }

    /// Folds one slide's samples in, by signal name (unknown names are
    /// ignored; missing signals simply do not advance their detector).
    pub fn observe(&mut self, samples: &[(&str, f64)]) -> DriftVerdict {
        let mut score = 0.0f64;
        let mut changed = None;
        for d in &mut self.detectors {
            let Some((_, x)) = samples.iter().find(|(n, _)| *n == d.name) else {
                continue;
            };
            let (s, fired) = d.observe(*x);
            score = score.max(s);
            if fired && changed.is_none() {
                changed = Some(d.name);
            }
        }
        if changed.is_some() {
            self.changes += 1;
        }
        self.last = score;
        DriftVerdict { score, changed }
    }

    /// The most recent composite score.
    pub fn score(&self) -> f64 {
        self.last
    }

    /// Change-points declared so far.
    pub fn changes(&self) -> u64 {
        self.changes
    }
}

/// A cluster's birth/death record, keyed by its (engine-stable) label.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClusterRecord {
    /// Slide the label first appeared.
    pub born: u64,
    /// Slide the label was last observed alive.
    pub last_seen: u64,
    /// Slide the label disappeared (None while alive).
    pub died: Option<u64>,
    /// Size at the last observation.
    pub last_size: u64,
    /// Largest observed size.
    pub peak_size: u64,
}

/// A death notice drained from [`LifecycleAnalytics::observe_clusters`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClusterDeath {
    /// The label that disappeared.
    pub label: i64,
    /// Slides from birth to death.
    pub lifetime: u64,
    /// Member count at the last sighting.
    pub size: u64,
}

/// Aggregated lifecycle statistics (see [`LifecycleAnalytics::stats`]).
#[derive(Clone, Debug, Default)]
pub struct LifecycleStats {
    /// Labels ever observed.
    pub born: u64,
    /// Labels that have disappeared.
    pub died: u64,
    /// Labels alive at the latest census.
    pub alive: u64,
    /// Distribution of lifetimes (slides) over dead clusters.
    pub lifetime: HistSnapshot,
    /// Distribution of sizes at death.
    pub size_at_death: HistSnapshot,
    /// Splits per censused slide.
    pub split_rate: f64,
    /// Merges per censused slide.
    pub merge_rate: f64,
}

/// Folds cluster evolution into per-cluster birth/death records.
///
/// Two feeds compose: [`observe_provenance`](Self::observe_provenance)
/// consumes the engine's causal stream (split/merge/emerge/dissipate
/// events — the churn-rate numerators, plus births for emerged clusters),
/// and [`observe_clusters`](Self::observe_clusters) takes a per-slide
/// census of `(label, size)` pairs, which pins down exact birth and death
/// slides for *every* label including those present since the initial
/// fill.
#[derive(Clone, Debug, Default)]
pub struct LifecycleAnalytics {
    clusters: BTreeMap<i64, ClusterRecord>,
    lifetimes: LogHistogram,
    death_sizes: LogHistogram,
    splits: u64,
    merges: u64,
    emerged: u64,
    dissipated: u64,
    slides: u64,
}

impl LifecycleAnalytics {
    /// An empty fold.
    pub fn new() -> Self {
        LifecycleAnalytics::default()
    }

    /// Folds one provenance event in (structural churn counters; births
    /// for clusters that emerge mid-stream).
    pub fn observe_provenance(&mut self, ev: &ProvenanceEvent) {
        match ev.kind {
            ProvenanceKind::ClusterSplit { .. } => self.splits += 1,
            ProvenanceKind::ClusterMerge { .. } => self.merges += 1,
            ProvenanceKind::ClusterEmerged { cluster, size, .. } => {
                self.emerged += 1;
                self.clusters
                    .entry(cluster as i64)
                    .or_insert(ClusterRecord {
                        born: ev.slide,
                        last_seen: ev.slide,
                        died: None,
                        last_size: size,
                        peak_size: size,
                    });
            }
            ProvenanceKind::ClusterDied { .. } => self.dissipated += 1,
            _ => {}
        }
    }

    /// Takes one slide's census of `(label, size)` pairs, returning the
    /// death notices for labels that vanished since the previous census.
    pub fn observe_clusters(&mut self, slide: u64, census: &[(i64, u64)]) -> Vec<ClusterDeath> {
        self.slides += 1;
        for &(label, size) in census {
            let rec = self.clusters.entry(label).or_insert(ClusterRecord {
                born: slide,
                last_seen: slide,
                died: None,
                last_size: size,
                peak_size: size,
            });
            rec.last_seen = slide;
            rec.died = None;
            rec.last_size = size;
            rec.peak_size = rec.peak_size.max(size);
        }
        let mut deaths = Vec::new();
        for (&label, rec) in self.clusters.iter_mut() {
            if rec.died.is_none() && rec.last_seen < slide {
                rec.died = Some(slide);
                let lifetime = slide - rec.born;
                self.lifetimes.record(lifetime);
                self.death_sizes.record(rec.last_size);
                deaths.push(ClusterDeath {
                    label,
                    lifetime,
                    size: rec.last_size,
                });
            }
        }
        deaths
    }

    /// The record for `label`, if ever observed.
    pub fn record(&self, label: i64) -> Option<&ClusterRecord> {
        self.clusters.get(&label)
    }

    /// Aggregated statistics over everything folded so far.
    pub fn stats(&self) -> LifecycleStats {
        let died = self.clusters.values().filter(|r| r.died.is_some()).count() as u64;
        let slides = self.slides.max(1) as f64;
        LifecycleStats {
            born: self.clusters.len() as u64,
            died,
            alive: self.clusters.len() as u64 - died,
            lifetime: self.lifetimes.snapshot(),
            size_at_death: self.death_sizes.snapshot(),
            split_rate: self.splits as f64 / slides,
            merge_rate: self.merges as f64 / slides,
        }
    }

    /// Structural churn counters folded from provenance:
    /// `(splits, merges, emerged, dissipated)`.
    pub fn churn_counts(&self) -> (u64, u64, u64, u64) {
        (self.splits, self.merges, self.emerged, self.dissipated)
    }
}

/// Clamps a unit-interval value to parts-per-million (the JSONL schema is
/// integer-only, like the slide-event schema).
pub fn ppm(v: f64) -> u64 {
    if !v.is_finite() || v <= 0.0 {
        0
    } else {
        (v * 1e6).round().min(1e6) as u64
    }
}

/// Parts-per-million back to the unit interval.
pub fn from_ppm(v: u64) -> f64 {
    v as f64 / 1e6
}

/// One slide's health record, as a flat integer JSONL line.
///
/// Fractions are parts-per-million (`*_ppm`); `drift_ppm` is the drift
/// score × 10⁶ saturated at 10⁹ (scores are σ units, not fractions).
/// `ari_ppm`/`nmi_ppm`/`purity_ppm` are only meaningful when `audited`
/// is 1 — the auditor ran on this slide.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HealthEvent {
    /// Slide sequence number (matches the slide-event `seq`).
    pub slide: u64,
    /// Distinct clusters in the window.
    pub clusters: u64,
    /// Label churn among window-surviving points, ppm.
    pub churn_ppm: u64,
    /// Noise fraction of the window, ppm.
    pub noise_ppm: u64,
    /// Ex-cores this slide over current cores, ppm.
    pub excore_ratio_ppm: u64,
    /// Drift score × 10⁶ (saturated).
    pub drift_ppm: u64,
    /// 1 when a drift change-point fired this slide.
    pub drift_changed: u64,
    /// 1 when the quality auditor ran this slide.
    pub audited: u64,
    /// Adjusted Rand index vs the DBSCAN oracle, ppm.
    pub ari_ppm: u64,
    /// Normalised mutual information vs the oracle, ppm.
    pub nmi_ppm: u64,
    /// Purity vs the oracle, ppm.
    pub purity_ppm: u64,
    /// Alert rules currently firing.
    pub alerts_active: u64,
}

/// The health JSONL schema: exactly these keys, all non-negative integers.
pub const HEALTH_SCHEMA_KEYS: [&str; 12] = [
    "slide",
    "clusters",
    "churn_ppm",
    "noise_ppm",
    "excore_ratio_ppm",
    "drift_ppm",
    "drift_changed",
    "audited",
    "ari_ppm",
    "nmi_ppm",
    "purity_ppm",
    "alerts_active",
];

impl HealthEvent {
    /// Renders the event as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        format!(
            "{{\"slide\":{},\"clusters\":{},\"churn_ppm\":{},\"noise_ppm\":{},\
             \"excore_ratio_ppm\":{},\"drift_ppm\":{},\"drift_changed\":{},\
             \"audited\":{},\"ari_ppm\":{},\"nmi_ppm\":{},\"purity_ppm\":{},\
             \"alerts_active\":{}}}",
            self.slide,
            self.clusters,
            self.churn_ppm,
            self.noise_ppm,
            self.excore_ratio_ppm,
            self.drift_ppm,
            self.drift_changed,
            self.audited,
            self.ari_ppm,
            self.nmi_ppm,
            self.purity_ppm,
            self.alerts_active,
        )
    }

    /// Validates one line against the schema: every key present as a
    /// non-negative integer, no unknown keys.
    pub fn validate_jsonl(line: &str) -> Result<(), String> {
        let doc = Json::parse(line)?;
        let Json::Obj(members) = &doc else {
            return Err("health line is not a JSON object".to_string());
        };
        for key in HEALTH_SCHEMA_KEYS {
            match doc.get(key) {
                Some(v) if v.as_u64().is_some() => {}
                Some(_) => return Err(format!("key {key:?} is not a non-negative integer")),
                None => return Err(format!("missing key {key:?}")),
            }
        }
        if let Some((k, _)) = members
            .iter()
            .find(|(k, _)| !HEALTH_SCHEMA_KEYS.contains(&k.as_str()))
        {
            return Err(format!("unknown key {k:?}"));
        }
        Ok(())
    }

    /// Panicking form of [`validate_jsonl`](Self::validate_jsonl).
    pub fn assert_valid_jsonl(line: &str) {
        if let Err(e) = Self::validate_jsonl(line) {
            panic!("invalid health JSONL line {line:?}: {e}");
        }
    }

    /// Parses a previously-emitted line back (round-trip helper).
    pub fn from_jsonl(line: &str) -> Result<HealthEvent, String> {
        Self::validate_jsonl(line)?;
        let doc = Json::parse(line)?;
        let num = |k: &str| doc.get(k).and_then(Json::as_u64).unwrap();
        Ok(HealthEvent {
            slide: num("slide"),
            clusters: num("clusters"),
            churn_ppm: num("churn_ppm"),
            noise_ppm: num("noise_ppm"),
            excore_ratio_ppm: num("excore_ratio_ppm"),
            drift_ppm: num("drift_ppm"),
            drift_changed: num("drift_changed"),
            audited: num("audited"),
            ari_ppm: num("ari_ppm"),
            nmi_ppm: num("nmi_ppm"),
            purity_ppm: num("purity_ppm"),
            alerts_active: num("alerts_active"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_tracks_mean_and_scores_outliers() {
        let mut e = Ewma::new(0.1);
        for _ in 0..50 {
            e.observe(10.0);
        }
        assert!((e.mean() - 10.0).abs() < 1e-9);
        // A constant signal scores its own value at zero…
        assert_eq!(e.observe(10.0), 0.0);
        // …and a big excursion at a large positive z.
        assert!(e.observe(20.0) > 3.0);
        // Negative excursions score negative.
        let mut e = Ewma::new(0.1);
        for i in 0..100 {
            e.observe(10.0 + if i % 2 == 0 { 0.5 } else { -0.5 });
        }
        assert!(e.observe(5.0) < -3.0);
    }

    #[test]
    fn page_hinkley_needs_persistence_not_spikes() {
        let mut ph = PageHinkley::new(0.4, 15.0);
        // One huge spike followed by stationarity: no fire.
        assert!(!ph.observe(10.0));
        for _ in 0..100 {
            assert!(!ph.observe(0.0), "stationary tail must not fire");
        }
        // A persistent 2σ shift fires within a bounded number of slides.
        let mut ph = PageHinkley::new(0.4, 15.0);
        let mut fired_at = None;
        for i in 0..100 {
            if ph.observe(2.0) {
                fired_at = Some(i);
                break;
            }
        }
        assert!(fired_at.unwrap() <= 12, "fired at {fired_at:?}");
        // And symmetric downward shifts fire too.
        let mut ph = PageHinkley::new(0.4, 15.0);
        assert!((0..100).any(|_| ph.observe(-2.0)));
    }

    #[test]
    fn drift_monitor_scores_and_fires_on_step_change() {
        let mut m = DriftMonitor::standard(8);
        // Warmup + stationary phase: nothing fires, scores stay small.
        for _ in 0..200 {
            let v = m.observe(&[
                ("neighbor_mean", 40.0),
                ("noise_fraction", 0.1),
                ("arrival_shift", 0.5),
            ]);
            assert_eq!(v.changed, None);
        }
        // Step change in the neighbor count: fires within bounded slides.
        let mut fired = None;
        for i in 0..50 {
            let v = m.observe(&[
                ("neighbor_mean", 4.0),
                ("noise_fraction", 0.1),
                ("arrival_shift", 0.5),
            ]);
            assert!(v.score > 1.0, "step must score high");
            if let Some(signal) = v.changed {
                fired = Some((i, signal));
                break;
            }
        }
        let (at, signal) = fired.expect("step change must fire");
        assert!(at <= 20, "fired at {at}");
        assert_eq!(signal, "neighbor_mean");
        assert_eq!(m.changes(), 1);
    }

    #[test]
    fn drift_monitor_is_quiet_during_warmup() {
        let mut m = DriftMonitor::standard(32);
        for i in 0..32 {
            // Wild swings during calibration neither score nor fire.
            let v = m.observe(&[("neighbor_mean", if i % 2 == 0 { 1.0 } else { 100.0 })]);
            assert_eq!(v.score, 0.0);
            assert_eq!(v.changed, None);
        }
    }

    #[test]
    fn lifecycle_census_tracks_births_deaths_and_lifetimes() {
        let mut lc = LifecycleAnalytics::new();
        assert!(lc.observe_clusters(1, &[(0, 50), (1, 30)]).is_empty());
        assert!(lc.observe_clusters(2, &[(0, 55), (1, 10)]).is_empty());
        // Cluster 1 vanishes at slide 3; cluster 2 is born.
        let deaths = lc.observe_clusters(3, &[(0, 60), (2, 20)]);
        assert_eq!(
            deaths,
            vec![ClusterDeath {
                label: 1,
                lifetime: 2,
                size: 10
            }]
        );
        // A dead label is only reported once.
        assert!(lc.observe_clusters(4, &[(0, 60), (2, 25)]).is_empty());
        let s = lc.stats();
        assert_eq!((s.born, s.died, s.alive), (3, 1, 2));
        assert_eq!(s.lifetime.count, 1);
        assert_eq!(s.size_at_death.max, 10);
        let rec = lc.record(0).unwrap();
        assert_eq!((rec.born, rec.last_seen, rec.died), (1, 4, None));
        assert_eq!(rec.peak_size, 60);
    }

    #[test]
    fn lifecycle_folds_provenance_churn() {
        let mut lc = LifecycleAnalytics::new();
        let ev = |slide, kind| ProvenanceEvent { slide, kind };
        lc.observe_provenance(&ev(
            2,
            ProvenanceKind::ClusterEmerged {
                cluster: 7,
                rep: 1,
                size: 4,
            },
        ));
        lc.observe_provenance(&ev(
            3,
            ProvenanceKind::ClusterSplit {
                old: 7,
                parts: 2,
                rep: 1,
            },
        ));
        lc.observe_provenance(&ev(
            4,
            ProvenanceKind::ClusterMerge {
                winner: 7,
                merged: 2,
                rep: 1,
            },
        ));
        lc.observe_provenance(&ev(5, ProvenanceKind::ClusterDied { rep: 9, size: 3 }));
        assert_eq!(lc.churn_counts(), (1, 1, 1, 1));
        assert_eq!(lc.record(7).unwrap().born, 2);
        // Census slides set the churn-rate denominator.
        lc.observe_clusters(3, &[(7, 4)]);
        lc.observe_clusters(4, &[(7, 4)]);
        let s = lc.stats();
        assert_eq!(s.split_rate, 0.5);
        assert_eq!(s.merge_rate, 0.5);
    }

    #[test]
    fn ppm_clamps_and_round_trips() {
        assert_eq!(ppm(0.5), 500_000);
        assert_eq!(ppm(-0.1), 0);
        assert_eq!(ppm(2.0), 1_000_000);
        assert_eq!(ppm(f64::NAN), 0);
        assert!((from_ppm(ppm(0.123456)) - 0.123456).abs() < 1e-6);
    }

    #[test]
    fn health_event_round_trips_and_validates_strictly() {
        let ev = HealthEvent {
            slide: 9,
            clusters: 4,
            churn_ppm: 12_000,
            noise_ppm: 81_000,
            excore_ratio_ppm: 5_000,
            drift_ppm: 2_400_000,
            drift_changed: 1,
            audited: 1,
            ari_ppm: 993_000,
            nmi_ppm: 981_000,
            purity_ppm: 1_000_000,
            alerts_active: 2,
        };
        let line = ev.to_jsonl();
        HealthEvent::assert_valid_jsonl(&line);
        assert_eq!(HealthEvent::from_jsonl(&line).unwrap(), ev);
        HealthEvent::assert_valid_jsonl(&HealthEvent::default().to_jsonl());

        let missing = line.replace("\"audited\":1,", "");
        assert!(HealthEvent::validate_jsonl(&missing)
            .unwrap_err()
            .contains("audited"));
        let unknown = line.replace("\"audited\":1", "\"audited\":1,\"bogus\":2");
        assert!(HealthEvent::validate_jsonl(&unknown)
            .unwrap_err()
            .contains("bogus"));
        let wrong = line.replace("\"audited\":1", "\"audited\":-1");
        assert!(HealthEvent::validate_jsonl(&wrong).is_err());
        assert!(HealthEvent::validate_jsonl("[]").is_err());
    }
}
