//! Hierarchical span tracing for slide internals.
//!
//! Aggregate metrics (counters, histograms) answer "how expensive are
//! slides on average"; spans answer "where did the time go inside *this*
//! slide". A [`Tracer`] records a tree of named, timed spans — the engine
//! opens `slide → collect/cluster/adoption → msbfs …` around the phases it
//! already runs — into a plain per-engine buffer. Engines are single
//! threaded over `&mut self`, so there is no lock anywhere on the hot
//! path; the buffer is drained between slides by whoever owns the engine.
//!
//! A tracer is **disabled by default** and every recording entry point
//! checks one `enabled` flag first, so an instrumented-but-untraced engine
//! pays a single predictable branch per span site and touches no memory.
//! Exporters for the two common consumers live next door:
//! [`chrome_trace_json`](crate::chrome::chrome_trace_json) (load the file
//! in `chrome://tracing` / Perfetto) and
//! [`folded_stacks`](crate::folded::folded_stacks) (pipe into
//! `inferno-flamegraph`).

use std::time::Instant;

/// Handle to an open span, returned by [`Tracer::begin`].
///
/// The zero id is the "disabled" sentinel: closing it is a no-op, so call
/// sites never need to re-check whether tracing is on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanId(u32);

impl SpanId {
    /// The sentinel handle handed out while the tracer is disabled.
    pub const NONE: SpanId = SpanId(0);

    /// Whether this is the disabled sentinel.
    pub fn is_none(&self) -> bool {
        self.0 == 0
    }
}

/// One completed span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span id, unique over the tracer's lifetime (1-based; ids stay
    /// unique across [`Tracer::drain`] calls so multi-slide exports can
    /// concatenate batches).
    pub id: u32,
    /// Id of the enclosing span, or 0 for a root span.
    pub parent: u32,
    /// Static span name (`"slide"`, `"collect"`, `"msbfs"`, …).
    pub name: &'static str,
    /// Start offset in nanoseconds since the tracer's epoch.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// Numeric attributes attached at close (range-search counts etc.).
    pub args: Vec<(&'static str, u64)>,
}

/// A single-threaded span recorder with an explicit open-span stack.
///
/// Parent links are inferred from nesting: [`begin`](Tracer::begin) pushes
/// onto the stack, [`end`](Tracer::end) pops. Spans must therefore close
/// in LIFO order — which the engine's phase structure guarantees.
#[derive(Debug)]
pub struct Tracer {
    enabled: bool,
    epoch: Instant,
    /// Completed and in-flight spans since the last drain.
    spans: Vec<SpanRecord>,
    /// Ids of currently-open spans (innermost last).
    stack: Vec<u32>,
    /// Id of `spans[0]`, so ids survive drains: `index = id - base`.
    base: u32,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl Tracer {
    /// An enabled tracer with an empty buffer.
    pub fn new() -> Self {
        Tracer {
            enabled: true,
            ..Tracer::disabled()
        }
    }

    /// A disabled tracer: every call is one branch and nothing else. This
    /// is what engines embed by default.
    pub fn disabled() -> Self {
        Tracer {
            enabled: false,
            epoch: Instant::now(),
            spans: Vec::new(),
            stack: Vec::new(),
            base: 1,
        }
    }

    /// Whether spans are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a span named `name` under the innermost open span. Returns
    /// [`SpanId::NONE`] (and records nothing) while disabled.
    #[inline]
    pub fn begin(&mut self, name: &'static str) -> SpanId {
        if !self.enabled {
            return SpanId::NONE;
        }
        self.begin_recorded(name)
    }

    fn begin_recorded(&mut self, name: &'static str) -> SpanId {
        let id = self.base + self.spans.len() as u32;
        let parent = self.stack.last().copied().unwrap_or(0);
        self.spans.push(SpanRecord {
            id,
            parent,
            name,
            start_ns: self.epoch.elapsed().as_nanos() as u64,
            dur_ns: 0,
            args: Vec::new(),
        });
        self.stack.push(id);
        SpanId(id)
    }

    /// Closes `span` with no attributes. No-op for [`SpanId::NONE`].
    #[inline]
    pub fn end(&mut self, span: SpanId) {
        if span.is_none() {
            return;
        }
        self.close(span, &[]);
    }

    /// Closes `span`, attaching numeric attributes. No-op for
    /// [`SpanId::NONE`].
    #[inline]
    pub fn end_with_args(&mut self, span: SpanId, args: &[(&'static str, u64)]) {
        if span.is_none() {
            return;
        }
        self.close(span, args);
    }

    fn close(&mut self, span: SpanId, args: &[(&'static str, u64)]) {
        let popped = self.stack.pop();
        debug_assert_eq!(popped, Some(span.0), "spans must close in LIFO order");
        let now = self.epoch.elapsed().as_nanos() as u64;
        let rec = &mut self.spans[(span.0 - self.base) as usize];
        rec.dur_ns = now.saturating_sub(rec.start_ns);
        rec.args.extend_from_slice(args);
    }

    /// Completed spans recorded since the last drain.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Number of buffered spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Takes the buffered spans, leaving the tracer recording. Call with no
    /// spans open (between slides); ids keep increasing across drains so
    /// drained batches can be concatenated into one export.
    pub fn drain(&mut self) -> Vec<SpanRecord> {
        debug_assert!(self.stack.is_empty(), "drain with open spans");
        self.base += self.spans.len() as u32;
        std::mem::take(&mut self.spans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        assert!(!t.enabled());
        let s = t.begin("slide");
        assert!(s.is_none());
        t.end_with_args(s, &[("k", 1)]);
        t.end(s);
        assert!(t.is_empty());
        assert!(t.drain().is_empty());
    }

    #[test]
    fn nesting_infers_parents() {
        let mut t = Tracer::new();
        let root = t.begin("slide");
        let a = t.begin("collect");
        t.end(a);
        let b = t.begin("cluster");
        let c = t.begin("msbfs");
        t.end_with_args(c, &[("starters", 3)]);
        t.end(b);
        t.end_with_args(root, &[("seq", 7)]);

        let spans = t.drain();
        assert_eq!(spans.len(), 4);
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        assert_eq!(by_name("slide").parent, 0);
        assert_eq!(by_name("collect").parent, by_name("slide").id);
        assert_eq!(by_name("cluster").parent, by_name("slide").id);
        assert_eq!(by_name("msbfs").parent, by_name("cluster").id);
        assert_eq!(by_name("msbfs").args, vec![("starters", 3)]);
        assert_eq!(by_name("slide").args, vec![("seq", 7)]);
        // The root encloses every child in time.
        let root = by_name("slide");
        for s in &spans {
            assert!(s.start_ns >= root.start_ns);
            assert!(s.start_ns + s.dur_ns <= root.start_ns + root.dur_ns);
        }
    }

    #[test]
    fn ids_stay_unique_across_drains() {
        let mut t = Tracer::new();
        let a = t.begin("slide");
        t.end(a);
        let first = t.drain();
        let b = t.begin("slide");
        let c = t.begin("collect");
        t.end(c);
        t.end(b);
        let second = t.drain();
        let mut ids: Vec<u32> = first.iter().chain(second.iter()).map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3, "ids must not repeat across drains");
        // Parent links still resolve within the concatenated batch.
        let collect = second.iter().find(|s| s.name == "collect").unwrap();
        assert!(second.iter().any(|s| s.id == collect.parent));
    }
}
