//! Pluggable sinks for structured slide events.

use crate::event::SlideEvent;
use std::io::Write;
use std::sync::Mutex;

/// Receives every [`SlideEvent`] a [`Registry`](crate::Registry) is asked
/// to emit. Sinks must be shareable across threads (the engine publishes,
/// an exporter thread may flush).
pub trait EventSink: Send + Sync {
    /// Consumes one event.
    fn emit(&self, event: &SlideEvent);

    /// Flushes any buffering (called on drop of the owning registry and by
    /// drivers at end of run).
    fn flush(&self) {}
}

/// Writes one JSON line per event to any `Write` target — the
/// `--metrics-out FILE.jsonl` sink.
pub struct JsonlSink<W: Write + Send> {
    out: Mutex<std::io::BufWriter<W>>,
}

impl JsonlSink<std::fs::File> {
    /// Creates (truncating) `path` and writes events to it.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(JsonlSink::new(std::fs::File::create(path)?))
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(out: W) -> Self {
        JsonlSink {
            out: Mutex::new(std::io::BufWriter::new(out)),
        }
    }
}

impl<W: Write + Send> EventSink for JsonlSink<W> {
    fn emit(&self, event: &SlideEvent) {
        let mut out = self.out.lock().expect("jsonl sink poisoned");
        // Telemetry must never take the engine down; drop on I/O error.
        let _ = writeln!(out, "{}", event.to_jsonl());
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("jsonl sink poisoned").flush();
    }
}

/// Buffers events in memory — the test sink.
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<SlideEvent>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// A copy of everything emitted so far.
    pub fn events(&self) -> Vec<SlideEvent> {
        self.events.lock().expect("memory sink poisoned").clone()
    }

    /// Number of events emitted so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("memory sink poisoned").len()
    }

    /// Whether nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EventSink for MemorySink {
    fn emit(&self, event: &SlideEvent) {
        self.events
            .lock()
            .expect("memory sink poisoned")
            .push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_sink_writes_valid_lines() {
        let buf: Vec<u8> = Vec::new();
        let sink = JsonlSink::new(buf);
        let ev = SlideEvent {
            seq: 1,
            engine: "disc",
            backend: "rtree",
            ..SlideEvent::default()
        };
        sink.emit(&ev);
        sink.emit(&ev);
        let out = sink.out.into_inner().unwrap().into_inner().unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            SlideEvent::validate_jsonl(line).unwrap();
        }
    }

    #[test]
    fn memory_sink_accumulates() {
        let sink = MemorySink::new();
        assert!(sink.is_empty());
        sink.emit(&SlideEvent::default());
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.events()[0], SlideEvent::default());
    }
}
