//! The standard [`Recorder`] implementation: a named-metric registry.

use crate::event::SlideEvent;
use crate::hist::{HistSnapshot, LogHistogram};
use crate::provenance::{ProvenanceEvent, ProvenanceSink};
use crate::recorder::Recorder;
use crate::sink::EventSink;
use std::collections::BTreeMap;
use std::sync::Mutex;

#[derive(Default)]
struct Inner {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    /// Labeled gauge families: name → (label_key, label_value) → sample.
    labeled_gauges: BTreeMap<&'static str, BTreeMap<(&'static str, String), f64>>,
    histograms: BTreeMap<&'static str, LogHistogram>,
    events_emitted: u64,
    provenance_emitted: u64,
}

/// A thread-safe metric registry plus an optional event sink.
///
/// Engines publish through the [`Recorder`] trait; exporters read back via
/// [`render_prometheus`](Registry::render_prometheus) (exposition text) or
/// the typed accessors. Names are `&'static str`, sorted deterministically
/// (BTreeMap) so renders are stable across runs.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
    sink: Option<Box<dyn EventSink>>,
    prov_sink: Option<Box<dyn ProvenanceSink>>,
}

impl Registry {
    /// An empty registry with no event sink.
    pub fn new() -> Self {
        Registry::default()
    }

    /// An empty registry forwarding slide events to `sink`.
    pub fn with_sink(sink: Box<dyn EventSink>) -> Self {
        Registry {
            inner: Mutex::new(Inner::default()),
            sink: Some(sink),
            prov_sink: None,
        }
    }

    /// Builder: forwards provenance events to `sink` (call before sharing
    /// the registry behind an `Arc`).
    pub fn with_provenance(mut self, sink: Box<dyn ProvenanceSink>) -> Self {
        self.prov_sink = Some(sink);
        self
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("telemetry registry poisoned")
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of gauge `name`.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.lock().gauges.get(name).copied()
    }

    /// Current value of the `{label_key="label_value"}` sample of gauge
    /// family `name`.
    pub fn labeled_gauge_value(
        &self,
        name: &str,
        label_key: &str,
        label_value: &str,
    ) -> Option<f64> {
        self.lock()
            .labeled_gauges
            .get(name)?
            .iter()
            .find(|((k, v), _)| *k == label_key && v == label_value)
            .map(|(_, value)| *value)
    }

    /// All samples of gauge family `name`, as
    /// `((label_key, label_value), sample)` in label order.
    pub fn labeled_gauge_samples(&self, name: &str) -> Vec<((&'static str, String), f64)> {
        self.lock()
            .labeled_gauges
            .get(name)
            .map(|family| family.iter().map(|(k, v)| (k.clone(), *v)).collect())
            .unwrap_or_default()
    }

    /// Summary snapshot of histogram `name`.
    pub fn histogram_snapshot(&self, name: &str) -> Option<HistSnapshot> {
        self.lock().histograms.get(name).map(|h| h.snapshot())
    }

    /// Events emitted through this registry so far.
    pub fn events_emitted(&self) -> u64 {
        self.lock().events_emitted
    }

    /// Provenance events emitted through this registry so far.
    pub fn provenance_emitted(&self) -> u64 {
        self.lock().provenance_emitted
    }

    /// Names of all counters touched so far.
    pub fn counter_names(&self) -> Vec<&'static str> {
        self.lock().counters.keys().copied().collect()
    }

    /// Renders the whole registry in Prometheus text exposition format
    /// (version 0.0.4). Histograms named `*_seconds` have their
    /// nanosecond samples converted to seconds.
    pub fn render_prometheus(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        for (name, value) in &inner.counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        for (name, value) in &inner.gauges {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
        }
        for (name, family) in &inner.labeled_gauges {
            out.push_str(&format!("# TYPE {name} gauge\n"));
            for ((key, label), value) in family {
                out.push_str(&format!("{name}{{{key}=\"{label}\"}} {value}\n"));
            }
        }
        for (name, hist) in &inner.histograms {
            let scale = if name.ends_with("_seconds") {
                1e-9
            } else {
                1.0
            };
            out.push_str(&format!("# TYPE {name} histogram\n"));
            hist.for_each_cumulative(|le, cum| {
                out.push_str(&format!(
                    "{name}_bucket{{le=\"{}\"}} {cum}\n",
                    le as f64 * scale
                ));
            });
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", hist.count()));
            out.push_str(&format!("{name}_sum {}\n", hist.sum() as f64 * scale));
            out.push_str(&format!("{name}_count {}\n", hist.count()));
        }
        out
    }

    /// Flushes the attached sinks, if any.
    pub fn flush(&self) {
        if let Some(sink) = &self.sink {
            sink.flush();
        }
        if let Some(sink) = &self.prov_sink {
            sink.flush();
        }
    }
}

impl Drop for Registry {
    fn drop(&mut self) {
        self.flush();
    }
}

impl Recorder for Registry {
    fn counter_add(&self, name: &'static str, delta: u64) {
        *self.lock().counters.entry(name).or_insert(0) += delta;
    }

    fn gauge_set(&self, name: &'static str, value: f64) {
        self.lock().gauges.insert(name, value);
    }

    fn gauge_set_labeled(
        &self,
        name: &'static str,
        label_key: &'static str,
        label_value: &str,
        value: f64,
    ) {
        // A family must be plain or labeled, never both, or the exposition
        // would carry two `# TYPE` headers for one name.
        self.lock()
            .labeled_gauges
            .entry(name)
            .or_default()
            .insert((label_key, label_value.to_string()), value);
    }

    fn record_nanos(&self, name: &'static str, nanos: u64) {
        self.lock()
            .histograms
            .entry(name)
            .or_default()
            .record(nanos);
    }

    fn emit(&self, event: &SlideEvent) {
        self.lock().events_emitted += 1;
        if let Some(sink) = &self.sink {
            sink.emit(event);
        }
    }

    fn emit_provenance(&self, event: &ProvenanceEvent) {
        self.lock().provenance_emitted += 1;
        if let Some(sink) = &self.prov_sink {
            sink.emit(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;
    use std::sync::Arc;

    #[test]
    fn counters_gauges_histograms_accumulate() {
        let r = Registry::new();
        r.counter_add("a_total", 2);
        r.counter_add("a_total", 3);
        r.gauge_set("g", 1.5);
        r.gauge_set("g", 2.5);
        for v in [100u64, 200, 300] {
            r.record_nanos("h_seconds", v);
        }
        assert_eq!(r.counter_value("a_total"), 5);
        assert_eq!(r.counter_value("untouched"), 0);
        assert_eq!(r.gauge_value("g"), Some(2.5));
        let h = r.histogram_snapshot("h_seconds").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 600);
        assert_eq!(h.max, 300);
        assert_eq!(r.counter_names(), vec!["a_total"]);
    }

    #[test]
    fn labeled_gauges_store_and_render_per_label() {
        let r = Registry::new();
        r.gauge_set_labeled("disc_mem_bytes", "component", "points", 100.0);
        r.gauge_set_labeled("disc_mem_bytes", "component", "index", 50.0);
        r.gauge_set_labeled("disc_mem_bytes", "component", "points", 120.0);
        assert_eq!(
            r.labeled_gauge_value("disc_mem_bytes", "component", "points"),
            Some(120.0)
        );
        assert_eq!(
            r.labeled_gauge_value("disc_mem_bytes", "component", "missing"),
            None
        );
        let samples = r.labeled_gauge_samples("disc_mem_bytes");
        assert_eq!(samples.len(), 2);
        let text = r.render_prometheus();
        assert_eq!(text.matches("# TYPE disc_mem_bytes gauge").count(), 1);
        assert!(text.contains("disc_mem_bytes{component=\"points\"} 120\n"));
        assert!(text.contains("disc_mem_bytes{component=\"index\"} 50\n"));
        // The render round-trips through the workspace's own parser.
        crate::prom::parse_prometheus(&text).unwrap();
    }

    #[test]
    fn emit_counts_and_forwards_to_sink() {
        let sink = Arc::new(MemorySink::new());
        struct Fwd(Arc<MemorySink>);
        impl EventSink for Fwd {
            fn emit(&self, ev: &SlideEvent) {
                self.0.emit(ev);
            }
        }
        let r = Registry::with_sink(Box::new(Fwd(sink.clone())));
        assert_eq!(r.events_emitted(), 0);
        r.emit(&SlideEvent::default());
        assert_eq!(r.events_emitted(), 1);
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn provenance_counts_and_forwards_to_its_sink() {
        use crate::provenance::{MemoryProvenanceSink, ProvenanceKind};
        let sink = Arc::new(MemoryProvenanceSink::new());
        struct Fwd(Arc<MemoryProvenanceSink>);
        impl ProvenanceSink for Fwd {
            fn emit(&self, ev: &ProvenanceEvent) {
                self.0.emit(ev);
            }
        }
        let r = Registry::new().with_provenance(Box::new(Fwd(sink.clone())));
        assert_eq!(r.provenance_emitted(), 0);
        r.emit_provenance(&ProvenanceEvent {
            slide: 3,
            kind: ProvenanceKind::NeoCoreDetected { id: 9 },
        });
        assert_eq!(r.provenance_emitted(), 1);
        assert_eq!(r.events_emitted(), 0, "slide-event channel untouched");
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.events()[0].slide, 3);
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let r = Arc::new(Registry::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let r = r.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    r.counter_add("t_total", 1);
                    r.record_nanos("t_seconds", 1000);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.counter_value("t_total"), 400);
        assert_eq!(r.histogram_snapshot("t_seconds").unwrap().count, 400);
    }
}
