//! A minimal JSON value model, writer helpers, and parser.
//!
//! The workspace is offline and serde-free; the telemetry exporters only
//! need flat objects of numbers and short strings, and the CI smoke checker
//! needs to *read* them back. This module provides exactly that: string
//! escaping for the writers and a small recursive-descent parser returning
//! a [`Json`] tree for the validators. It is not a general-purpose JSON
//! library (no surrogate-pair escapes on output, f64 numbers only), which
//! is fine for the telemetry schema it serves.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document (rejecting trailing garbage).
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Member lookup on objects (`None` elsewhere or when absent).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as a non-negative integer, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Escapes `s` for inclusion in a JSON string literal (without the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| "dangling escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| "bad \\u escape".to_string())?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogates are not paired up; the telemetry
                            // schema never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {text:?}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_telemetry_object() {
        let j =
            Json::parse(r#"{"seq": 3, "engine": "disc", "total_ns": 12345, "ok": true}"#).unwrap();
        assert_eq!(j.get("seq").unwrap().as_u64(), Some(3));
        assert_eq!(j.get("engine").unwrap().as_str(), Some("disc"));
        assert_eq!(j.get("total_ns").unwrap().as_u64(), Some(12345));
        assert_eq!(j.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn parses_nested_arrays_and_numbers() {
        let j = Json::parse(r#"[1, -2.5, 1e3, [], {"a": [null, false]}]"#).unwrap();
        let items = j.as_array().unwrap();
        assert_eq!(items[0].as_f64(), Some(1.0));
        assert_eq!(items[1].as_f64(), Some(-2.5));
        assert_eq!(items[2].as_f64(), Some(1000.0));
        assert_eq!(items[3], Json::Arr(vec![]));
        assert_eq!(
            items[4].get("a").unwrap().as_array().unwrap(),
            &[Json::Null, Json::Bool(false)]
        );
    }

    #[test]
    fn escape_round_trips_through_parser() {
        let nasty = "line\nbreak \"quoted\" back\\slash\ttab \u{1} unicode é";
        let doc = format!("{{\"k\": \"{}\"}}", escape(nasty));
        let j = Json::parse(&doc).unwrap();
        assert_eq!(j.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\": }",
            "nul",
            "1 2",
            "\"open",
            "{\"a\":1,}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn u64_guardrails() {
        assert_eq!(Json::parse("3.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("\"42\"").unwrap().as_u64(), None);
    }
}
