//! Prometheus text-format exposition: a validating parser.
//!
//! Rendering lives on [`Registry::render_prometheus`](crate::Registry);
//! this module holds the other direction — a small parser for the 0.0.4
//! text format, used by the round-trip tests (and handy for scraping our
//! own exporter in integration tests). It validates the structural rules
//! that matter for our output: sample lines parse, histogram buckets are
//! cumulative and non-decreasing, and `_count` matches the `+Inf` bucket.

/// One parsed sample line.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Metric name (including any `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs, in source order (our exporter only emits `le`).
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A metric kind declared by a `# TYPE` line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// A monotone counter.
    Counter,
    /// A settable gauge (the kind `disc_mem_bytes{component=...}` uses).
    Gauge,
    /// A bucketed histogram (`_bucket`/`_sum`/`_count` series).
    Histogram,
    /// A quantile summary (accepted, not produced by our exporter).
    Summary,
    /// Explicitly untyped.
    Untyped,
}

impl MetricKind {
    fn parse(s: &str) -> Option<Self> {
        match s {
            "counter" => Some(MetricKind::Counter),
            "gauge" => Some(MetricKind::Gauge),
            "histogram" => Some(MetricKind::Histogram),
            "summary" => Some(MetricKind::Summary),
            "untyped" => Some(MetricKind::Untyped),
            _ => None,
        }
    }
}

/// Parses Prometheus text exposition, returning every sample line.
///
/// Enforces: comment lines are `# HELP`/`# TYPE`; `# TYPE` lines declare a
/// valid metric name with a known kind (`counter`, `gauge`, `histogram`,
/// `summary`, `untyped`), at most once per family; sample lines have a
/// valid metric name, optional `{k="v",...}` labels and a float value;
/// samples of a counter- or gauge-typed family use the declared name
/// exactly (no histogram suffixes), and histogram-typed families only the
/// `_bucket`/`_sum`/`_count` series; for every `<name>_bucket` series,
/// cumulative counts are non-decreasing in `le` order of appearance and
/// the `+Inf` bucket equals `<name>_count`.
///
/// Samples with *no* `# TYPE` header are tolerated (real exporters elide
/// them); [`parse_prometheus_strict`] rejects those too.
pub fn parse_prometheus(text: &str) -> Result<Vec<Sample>, String> {
    parse_inner(text, false)
}

/// [`parse_prometheus`], additionally requiring every sample to belong to
/// a family declared by a preceding `# TYPE` line. This is the form the
/// round-trip tests hold our own exporter to: `Registry` always declares.
pub fn parse_prometheus_strict(text: &str) -> Result<Vec<Sample>, String> {
    parse_inner(text, true)
}

fn parse_inner(text: &str, strict: bool) -> Result<Vec<Sample>, String> {
    use std::collections::BTreeMap;
    let mut samples = Vec::new();
    let mut types: BTreeMap<String, MetricKind> = BTreeMap::new();
    let mut sample_lines: Vec<usize> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(decl) = comment.strip_prefix("TYPE") {
                let mut it = decl.split_whitespace();
                let name = it
                    .next()
                    .ok_or_else(|| format!("line {}: TYPE without a metric name", lineno + 1))?;
                if !valid_name(name) {
                    return Err(format!(
                        "line {}: TYPE declares invalid name {name:?}",
                        lineno + 1
                    ));
                }
                let kind_text = it
                    .next()
                    .ok_or_else(|| format!("line {}: TYPE {name} without a kind", lineno + 1))?;
                let kind = MetricKind::parse(kind_text).ok_or_else(|| {
                    format!("line {}: unknown metric kind {kind_text:?}", lineno + 1)
                })?;
                if types.insert(name.to_string(), kind).is_some() {
                    return Err(format!("line {}: duplicate TYPE for {name:?}", lineno + 1));
                }
            } else if !comment.starts_with("HELP") {
                return Err(format!("line {}: unknown comment kind", lineno + 1));
            }
            continue;
        }
        samples.push(parse_sample(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
        sample_lines.push(lineno + 1);
    }
    for (s, lineno) in samples.iter().zip(&sample_lines) {
        validate_sample_kind(s, &types, strict).map_err(|e| format!("line {lineno}: {e}"))?;
    }
    validate_histograms(&samples)?;
    Ok(samples)
}

/// Checks one sample against the declared `# TYPE` table: counter/gauge
/// samples use the declared name verbatim, histogram samples one of the
/// three series suffixes; in strict mode an undeclared family is an error.
fn validate_sample_kind(
    s: &Sample,
    types: &std::collections::BTreeMap<String, MetricKind>,
    strict: bool,
) -> Result<(), String> {
    if let Some(kind) = types.get(&s.name) {
        return match kind {
            MetricKind::Histogram => Err(format!(
                "{}: histogram-typed family sampled without _bucket/_sum/_count",
                s.name
            )),
            _ => Ok(()),
        };
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = s.name.strip_suffix(suffix) {
            match types.get(base) {
                Some(MetricKind::Histogram) | Some(MetricKind::Summary) => return Ok(()),
                Some(kind) => {
                    return Err(format!(
                        "{}: series suffix on a {kind:?}-typed family",
                        s.name
                    ))
                }
                None => {}
            }
        }
    }
    if strict {
        return Err(format!("{}: sample without a # TYPE header", s.name));
    }
    Ok(())
}

fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (head, value_text) = match line.find('{') {
        Some(_) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| "unclosed label set".to_string())?;
            (line[..close + 1].to_string(), line[close + 1..].trim())
        }
        None => {
            let mut it = line.splitn(2, char::is_whitespace);
            let name = it.next().unwrap_or_default().to_string();
            (name, it.next().unwrap_or_default().trim())
        }
    };
    let (name, labels) = match head.find('{') {
        Some(brace) => {
            let name = head[..brace].to_string();
            let body = &head[brace + 1..head.len() - 1];
            (name, parse_labels(body)?)
        }
        None => (head, Vec::new()),
    };
    if !valid_name(&name) {
        return Err(format!("invalid metric name {name:?}"));
    }
    if value_text.is_empty() {
        return Err("missing sample value".to_string());
    }
    let value = match value_text {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v
            .parse::<f64>()
            .map_err(|_| format!("invalid sample value {v:?}"))?,
    };
    Ok(Sample {
        name,
        labels,
        value,
    })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let body = body.trim();
    if body.is_empty() {
        return Ok(labels);
    }
    for pair in body.split(',') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue; // trailing comma is legal in the format
        }
        let eq = pair
            .find('=')
            .ok_or_else(|| format!("label without '=': {pair:?}"))?;
        let key = pair[..eq].trim();
        let raw = pair[eq + 1..].trim();
        if !valid_name(key) {
            return Err(format!("invalid label name {key:?}"));
        }
        if raw.len() < 2 || !raw.starts_with('"') || !raw.ends_with('"') {
            return Err(format!("label value not quoted: {raw:?}"));
        }
        let val = raw[1..raw.len() - 1]
            .replace("\\\"", "\"")
            .replace("\\n", "\n")
            .replace("\\\\", "\\");
        labels.push((key.to_string(), val));
    }
    Ok(labels)
}

fn validate_histograms(samples: &[Sample]) -> Result<(), String> {
    use std::collections::BTreeMap;
    // base name -> (last cumulative, inf bucket, count value)
    let mut last_cum: BTreeMap<&str, f64> = BTreeMap::new();
    let mut inf: BTreeMap<&str, f64> = BTreeMap::new();
    let mut last_le: BTreeMap<&str, f64> = BTreeMap::new();
    for s in samples {
        if let Some(base) = s.name.strip_suffix("_bucket") {
            let le_text = s
                .label("le")
                .ok_or_else(|| format!("{}: bucket without le label", s.name))?;
            let le = match le_text {
                "+Inf" => f64::INFINITY,
                v => v
                    .parse::<f64>()
                    .map_err(|_| format!("{base}: invalid le {v:?}"))?,
            };
            if let Some(&prev) = last_le.get(base) {
                if le <= prev {
                    return Err(format!("{base}: le values not increasing"));
                }
            }
            last_le.insert(base, le);
            if let Some(&prev) = last_cum.get(base) {
                if s.value < prev {
                    return Err(format!("{base}: bucket counts decreased"));
                }
            }
            last_cum.insert(base, s.value);
            if le.is_infinite() {
                inf.insert(base, s.value);
            }
        }
    }
    for s in samples {
        if let Some(base) = s.name.strip_suffix("_count") {
            if let Some(&inf_count) = inf.get(base) {
                if (inf_count - s.value).abs() > f64::EPSILON {
                    return Err(format!(
                        "{base}: +Inf bucket {} != count {}",
                        inf_count, s.value
                    ));
                }
            }
        }
    }
    // Every histogram with buckets must close with +Inf.
    for (base, _) in last_cum {
        if !inf.contains_key(base) {
            return Err(format!("{base}: histogram missing +Inf bucket"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use crate::registry::Registry;

    #[test]
    fn registry_render_round_trips_through_parser() {
        let r = Registry::new();
        r.counter_add("disc_slides_total", 12);
        r.counter_add("disc_index_range_searches_total", 480);
        r.gauge_set("disc_window_points", 1000.0);
        for i in 1..=200u64 {
            r.record_nanos("disc_slide_seconds", i * 10_000);
        }
        let text = r.render_prometheus();
        let samples = parse_prometheus(&text).unwrap();
        let find = |n: &str| samples.iter().find(|s| s.name == n).unwrap();
        assert_eq!(find("disc_slides_total").value, 12.0);
        assert_eq!(find("disc_window_points").value, 1000.0);
        assert_eq!(find("disc_slide_seconds_count").value, 200.0);
        // Sum rendered in seconds: 10us * (1+..+200) = 0.201s
        let sum = find("disc_slide_seconds_sum").value;
        assert!((sum - 0.201).abs() < 1e-9, "sum {sum}");
        // Buckets cumulative, ending at +Inf = count.
        let buckets: Vec<&Sample> = samples
            .iter()
            .filter(|s| s.name == "disc_slide_seconds_bucket")
            .collect();
        assert!(buckets.len() > 2);
        assert_eq!(buckets.last().unwrap().label("le"), Some("+Inf"));
        assert_eq!(buckets.last().unwrap().value, 200.0);
    }

    #[test]
    fn parser_rejects_structural_violations() {
        // Decreasing bucket counts.
        let bad =
            "h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n";
        assert!(parse_prometheus(bad).unwrap_err().contains("decreased"));
        // +Inf mismatch with count.
        let bad = "h_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_count 3\n";
        assert!(parse_prometheus(bad).unwrap_err().contains("!= count"));
        // Missing +Inf closer.
        let bad = "h_bucket{le=\"1\"} 2\n";
        assert!(parse_prometheus(bad).unwrap_err().contains("+Inf"));
        // Garbage value / name.
        assert!(parse_prometheus("metric abc\n").is_err());
        assert!(parse_prometheus("1metric 2\n").is_err());
        assert!(parse_prometheus("# FOO bar\n").is_err());
        // le values must increase.
        let bad = "h_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\n";
        assert!(parse_prometheus(bad).unwrap_err().contains("increasing"));
    }

    #[test]
    fn gauge_typed_families_parse_and_round_trip() {
        let r = Registry::new();
        r.gauge_set("disc_window_points", 1000.0);
        r.gauge_set_labeled("disc_mem_bytes", "component", "points", 4096.0);
        r.gauge_set_labeled("disc_mem_bytes", "component", "index", 2048.0);
        r.counter_add("disc_slides_total", 3);
        r.record_nanos("disc_slide_seconds", 5_000);
        let text = r.render_prometheus();
        // The registry declares every family, so even the strict parser
        // accepts its render.
        let samples = parse_prometheus_strict(&text).unwrap();
        let mem: Vec<&Sample> = samples
            .iter()
            .filter(|s| s.name == "disc_mem_bytes")
            .collect();
        assert_eq!(mem.len(), 2);
        assert!(mem
            .iter()
            .any(|s| s.label("component") == Some("points") && s.value == 4096.0));
    }

    #[test]
    fn hostile_gauge_without_type_header() {
        // The hostile-corpus case: a gauge sample with no `# TYPE` header.
        // Lenient parsing tolerates it (exporters in the wild elide
        // headers); strict parsing names the offender.
        let headerless = "disc_mem_bytes{component=\"points\"} 4096\n";
        assert_eq!(parse_prometheus(headerless).unwrap().len(), 1);
        let err = parse_prometheus_strict(headerless).unwrap_err();
        assert!(err.contains("disc_mem_bytes"), "{err}");
        assert!(err.contains("# TYPE"), "{err}");
        // With the header, both accept.
        let headed = format!("# TYPE disc_mem_bytes gauge\n{headerless}");
        assert_eq!(parse_prometheus_strict(&headed).unwrap().len(), 1);
    }

    #[test]
    fn type_declarations_are_validated() {
        // Unknown kind, nameless/kindless declarations, duplicates.
        assert!(parse_prometheus("# TYPE m widget\nm 1\n")
            .unwrap_err()
            .contains("widget"));
        assert!(parse_prometheus("# TYPE\n").unwrap_err().contains("TYPE"));
        assert!(parse_prometheus("# TYPE m\n").unwrap_err().contains("kind"));
        assert!(parse_prometheus("# TYPE 1bad gauge\n")
            .unwrap_err()
            .contains("invalid name"));
        let dup = "# TYPE m gauge\n# TYPE m counter\nm 1\n";
        assert!(parse_prometheus(dup).unwrap_err().contains("duplicate"));
        // A histogram-typed family sampled without a series suffix.
        let bare = "# TYPE h histogram\nh 3\n";
        assert!(parse_prometheus(bare).unwrap_err().contains("_bucket"));
        // A series suffix hanging off a gauge-typed family.
        let suffixed = "# TYPE g_bytes gauge\ng_bytes_count 3\n";
        assert!(parse_prometheus(suffixed).unwrap_err().contains("Gauge"));
        // Gauges may be negative or non-integral; counters with a header
        // still parse any float (the format does not forbid it).
        let ok = "# TYPE g gauge\ng -2.5\n";
        assert_eq!(parse_prometheus_strict(ok).unwrap()[0].value, -2.5);
    }

    #[test]
    fn labels_and_specials_parse() {
        let text = "m{a=\"x\",b=\"y z\"} 1.5\nn +Inf\nempty{} 0\n";
        let samples = parse_prometheus(text).unwrap();
        assert_eq!(samples[0].label("a"), Some("x"));
        assert_eq!(samples[0].label("b"), Some("y z"));
        assert_eq!(samples[0].label("c"), None);
        assert!(samples[1].value.is_infinite());
        assert!(samples[2].labels.is_empty());
    }
}
