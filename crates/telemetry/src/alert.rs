//! A declarative alert engine over registry metrics.
//!
//! Rules load from a small TOML subset or JSON (`disc run --alerts
//! rules.toml`), evaluate once per slide against a metric-lookup closure,
//! and run a firing→resolved state machine per rule: a rule fires after
//! its condition holds for `for_slides` consecutive evaluations and
//! resolves after it clears for `clear_slides`. Transitions are emitted as
//! [`AlertEvent`]s — a strict JSONL schema with the same `validate_jsonl`
//! contract as the other telemetry streams — and the current firing set is
//! published as `disc_alert_active{rule="..."}` gauges.
//!
//! The TOML subset is deliberately tiny (no deps, no tables-in-tables):
//!
//! ```toml
//! [[rule]]
//! name = "quality-floor"        # required, unique
//! metric = "disc_quality_ari"   # required: a gauge or counter name
//! op = "lt"                     # gt | ge | lt | le
//! threshold = 0.80
//! for_slides = 2                # optional, default 1
//! clear_slides = 1              # optional, default 1
//! severity = "critical"        # optional, default "warning"
//! trend = false                 # optional: compare per-slide delta instead
//! ```
//!
//! The same rules in JSON: `{"rules": [{"name": ..., "metric": ...}]}` or
//! a bare array.

use crate::json::Json;
use crate::recorder::Recorder;

/// Comparison operator of a rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlertOp {
    /// value > threshold
    Gt,
    /// value ≥ threshold
    Ge,
    /// value < threshold
    Lt,
    /// value ≤ threshold
    Le,
}

impl AlertOp {
    /// Parses `"gt"`, `"ge"`, `"lt"`, `"le"` (or the symbols).
    pub fn parse(s: &str) -> Option<AlertOp> {
        match s {
            "gt" | ">" => Some(AlertOp::Gt),
            "ge" | ">=" => Some(AlertOp::Ge),
            "lt" | "<" => Some(AlertOp::Lt),
            "le" | "<=" => Some(AlertOp::Le),
            _ => None,
        }
    }

    /// The canonical spelling (what the JSONL stream carries).
    pub fn as_str(&self) -> &'static str {
        match self {
            AlertOp::Gt => "gt",
            AlertOp::Ge => "ge",
            AlertOp::Lt => "lt",
            AlertOp::Le => "le",
        }
    }

    /// Whether `value` breaches `threshold` under this operator.
    pub fn holds(&self, value: f64, threshold: f64) -> bool {
        match self {
            AlertOp::Gt => value > threshold,
            AlertOp::Ge => value >= threshold,
            AlertOp::Lt => value < threshold,
            AlertOp::Le => value <= threshold,
        }
    }
}

/// One declarative alert rule.
#[derive(Clone, Debug, PartialEq)]
pub struct AlertRule {
    /// Unique rule name (the `rule` label of `disc_alert_active`).
    pub name: String,
    /// Metric to look up each slide (gauge or counter).
    pub metric: String,
    /// Comparison operator.
    pub op: AlertOp,
    /// Threshold the metric is compared against.
    pub threshold: f64,
    /// Consecutive breaching evaluations before the rule fires.
    pub for_slides: u64,
    /// Consecutive clear evaluations before a firing rule resolves.
    pub clear_slides: u64,
    /// Free-form severity string carried on events.
    pub severity: String,
    /// Trend mode: evaluate the per-slide delta instead of the level.
    pub trend: bool,
}

impl AlertRule {
    /// A level rule with defaults (`for_slides` 1, `clear_slides` 1,
    /// severity `"warning"`).
    pub fn new(name: &str, metric: &str, op: AlertOp, threshold: f64) -> Self {
        AlertRule {
            name: name.to_string(),
            metric: metric.to_string(),
            op,
            threshold,
            for_slides: 1,
            clear_slides: 1,
            severity: "warning".to_string(),
            trend: false,
        }
    }
}

/// Parses an alert-rules document: JSON when it parses as JSON (an array
/// of rule objects or `{"rules": [...]}`), the TOML subset otherwise.
pub fn parse_rules(text: &str) -> Result<Vec<AlertRule>, String> {
    let trimmed = text.trim_start();
    if trimmed.starts_with('{') || (trimmed.starts_with('[') && !trimmed.starts_with("[[")) {
        parse_rules_json(text)
    } else {
        parse_rules_toml(text)
    }
}

fn parse_rules_json(text: &str) -> Result<Vec<AlertRule>, String> {
    let doc = Json::parse(text)?;
    let items = match (&doc, doc.get("rules")) {
        (_, Some(Json::Arr(items))) => items.as_slice(),
        (Json::Arr(items), _) => items.as_slice(),
        _ => return Err("expected a JSON array of rules or {\"rules\": [...]}".to_string()),
    };
    let mut rules = Vec::new();
    for (i, item) in items.iter().enumerate() {
        let ctx = |e: String| format!("rule {}: {e}", i + 1);
        let str_key = |k: &str| -> Result<Option<String>, String> {
            match item.get(k) {
                None => Ok(None),
                Some(Json::Str(s)) => Ok(Some(s.clone())),
                Some(_) => Err(ctx(format!("key {k:?} is not a string"))),
            }
        };
        let num_key = |k: &str| -> Result<Option<f64>, String> {
            match item.get(k) {
                None => Ok(None),
                Some(v) => v
                    .as_f64()
                    .map(Some)
                    .ok_or_else(|| ctx(format!("key {k:?} is not a number"))),
            }
        };
        let name = str_key("name")?.ok_or_else(|| ctx("missing \"name\"".into()))?;
        let metric = str_key("metric")?.ok_or_else(|| ctx("missing \"metric\"".into()))?;
        let op_s = str_key("op")?.unwrap_or_else(|| "gt".to_string());
        let op = AlertOp::parse(&op_s)
            .ok_or_else(|| ctx(format!("bad op {op_s:?} (gt, ge, lt, le)")))?;
        let threshold = num_key("threshold")?.ok_or_else(|| ctx("missing \"threshold\"".into()))?;
        let mut rule = AlertRule::new(&name, &metric, op, threshold);
        if let Some(v) = num_key("for_slides")? {
            rule.for_slides = v as u64;
        }
        if let Some(v) = num_key("clear_slides")? {
            rule.clear_slides = v as u64;
        }
        if let Some(s) = str_key("severity")? {
            rule.severity = s;
        }
        if let Some(Json::Bool(b)) = item.get("trend") {
            rule.trend = *b;
        }
        rules.push(rule);
    }
    finish_rules(rules)
}

fn parse_rules_toml(text: &str) -> Result<Vec<AlertRule>, String> {
    struct Draft {
        name: Option<String>,
        metric: Option<String>,
        op: AlertOp,
        threshold: Option<f64>,
        for_slides: u64,
        clear_slides: u64,
        severity: String,
        trend: bool,
        header_line: usize,
    }
    let fresh = |line| Draft {
        name: None,
        metric: None,
        op: AlertOp::Gt,
        threshold: None,
        for_slides: 1,
        clear_slides: 1,
        severity: "warning".to_string(),
        trend: false,
        header_line: line,
    };
    let mut rules = Vec::new();
    let mut current: Option<Draft> = None;
    let close = |d: Draft, rules: &mut Vec<AlertRule>| -> Result<(), String> {
        let name = d
            .name
            .ok_or_else(|| format!("line {}: rule has no name", d.header_line))?;
        let metric = d
            .metric
            .ok_or_else(|| format!("rule {name:?}: missing metric"))?;
        let threshold = d
            .threshold
            .ok_or_else(|| format!("rule {name:?}: missing threshold"))?;
        let mut rule = AlertRule::new(&name, &metric, d.op, threshold);
        rule.for_slides = d.for_slides;
        rule.clear_slides = d.clear_slides;
        rule.severity = d.severity;
        rule.trend = d.trend;
        rules.push(rule);
        Ok(())
    };
    for (i, raw) in text.lines().enumerate() {
        let line = match raw.split_once('#') {
            Some((head, _)) => head.trim(),
            None => raw.trim(),
        };
        if line.is_empty() {
            continue;
        }
        if line == "[[rule]]" {
            if let Some(d) = current.take() {
                close(d, &mut rules)?;
            }
            current = Some(fresh(i + 1));
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "line {}: expected `key = value` or [[rule]]",
                i + 1
            ));
        };
        let (key, value) = (key.trim(), value.trim());
        let d = current
            .as_mut()
            .ok_or_else(|| format!("line {}: {key:?} appears before any [[rule]]", i + 1))?;
        let as_str = |v: &str| -> Result<String, String> {
            let v = v
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| format!("line {}: {key} wants a quoted string", i + 1))?;
            Ok(v.to_string())
        };
        let as_num = |v: &str| -> Result<f64, String> {
            v.parse::<f64>()
                .map_err(|_| format!("line {}: {key} wants a number, got {v:?}", i + 1))
        };
        match key {
            "name" => d.name = Some(as_str(value)?),
            "metric" => d.metric = Some(as_str(value)?),
            "op" => {
                let s = as_str(value)?;
                d.op = AlertOp::parse(&s)
                    .ok_or_else(|| format!("line {}: bad op {s:?} (gt, ge, lt, le)", i + 1))?;
            }
            "threshold" => d.threshold = Some(as_num(value)?),
            "for_slides" => d.for_slides = as_num(value)? as u64,
            "clear_slides" => d.clear_slides = as_num(value)? as u64,
            "severity" => d.severity = as_str(value)?,
            "trend" => {
                d.trend = match value {
                    "true" => true,
                    "false" => false,
                    other => {
                        return Err(format!(
                            "line {}: trend wants true/false, got {other:?}",
                            i + 1
                        ))
                    }
                }
            }
            other => return Err(format!("line {}: unknown key {other:?}", i + 1)),
        }
    }
    if let Some(d) = current.take() {
        close(d, &mut rules)?;
    }
    finish_rules(rules)
}

fn finish_rules(rules: Vec<AlertRule>) -> Result<Vec<AlertRule>, String> {
    if rules.is_empty() {
        return Err("no rules defined".to_string());
    }
    for (i, r) in rules.iter().enumerate() {
        if rules[..i].iter().any(|o| o.name == r.name) {
            return Err(format!("duplicate rule name {:?}", r.name));
        }
        if r.for_slides == 0 || r.clear_slides == 0 {
            return Err(format!(
                "rule {:?}: for_slides/clear_slides must be ≥ 1",
                r.name
            ));
        }
    }
    Ok(rules)
}

/// A firing→resolved transition, as a flat JSONL record.
#[derive(Clone, Debug, PartialEq)]
pub struct AlertEvent {
    /// Slide of the transition.
    pub slide: u64,
    /// Rule name.
    pub rule: String,
    /// Metric the rule watches.
    pub metric: String,
    /// Operator (canonical spelling).
    pub op: &'static str,
    /// The rule's threshold.
    pub threshold: f64,
    /// The metric value that drove the transition.
    pub value: f64,
    /// Rule severity.
    pub severity: String,
    /// `"firing"` or `"resolved"`.
    pub state: &'static str,
}

/// The alert JSONL schema's string keys.
pub const ALERT_SCHEMA_STR_KEYS: [&str; 5] = ["rule", "metric", "op", "severity", "state"];

/// The alert JSONL schema's numeric keys (`slide` is a non-negative
/// integer; `threshold`/`value` are arbitrary finite numbers).
pub const ALERT_SCHEMA_NUM_KEYS: [&str; 3] = ["slide", "threshold", "value"];

/// Formats a finite f64 as a JSON number (non-finite values collapse to 0,
/// which the schema's validator would otherwise reject).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

impl AlertEvent {
    /// Renders the event as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        format!(
            "{{\"slide\":{},\"rule\":\"{}\",\"metric\":\"{}\",\"op\":\"{}\",\
             \"threshold\":{},\"value\":{},\"severity\":\"{}\",\"state\":\"{}\"}}",
            self.slide,
            crate::json::escape(&self.rule),
            crate::json::escape(&self.metric),
            self.op,
            json_num(self.threshold),
            json_num(self.value),
            crate::json::escape(&self.severity),
            self.state,
        )
    }

    /// Validates one line against the alert schema: all keys present with
    /// the right types, `state` one of `firing`/`resolved`, no unknown
    /// keys.
    pub fn validate_jsonl(line: &str) -> Result<(), String> {
        let doc = Json::parse(line)?;
        let Json::Obj(members) = &doc else {
            return Err("alert line is not a JSON object".to_string());
        };
        for key in ALERT_SCHEMA_STR_KEYS {
            match doc.get(key) {
                Some(Json::Str(_)) => {}
                Some(_) => return Err(format!("key {key:?} is not a string")),
                None => return Err(format!("missing key {key:?}")),
            }
        }
        for key in ALERT_SCHEMA_NUM_KEYS {
            match doc.get(key) {
                Some(v) if v.as_f64().is_some() => {}
                Some(_) => return Err(format!("key {key:?} is not a number")),
                None => return Err(format!("missing key {key:?}")),
            }
        }
        if doc.get("slide").and_then(Json::as_u64).is_none() {
            return Err("key \"slide\" is not a non-negative integer".to_string());
        }
        match doc.get("state").and_then(Json::as_str) {
            Some("firing") | Some("resolved") => {}
            Some(other) => return Err(format!("bad state {other:?} (firing or resolved)")),
            None => unreachable!("checked above"),
        }
        if doc
            .get("op")
            .and_then(Json::as_str)
            .and_then(AlertOp::parse)
            .is_none()
        {
            return Err("bad op (gt, ge, lt, le)".to_string());
        }
        let known =
            |k: &str| ALERT_SCHEMA_STR_KEYS.contains(&k) || ALERT_SCHEMA_NUM_KEYS.contains(&k);
        if let Some((k, _)) = members.iter().find(|(k, _)| !known(k)) {
            return Err(format!("unknown key {k:?}"));
        }
        Ok(())
    }

    /// Panicking form of [`validate_jsonl`](Self::validate_jsonl).
    pub fn assert_valid_jsonl(line: &str) {
        if let Err(e) = Self::validate_jsonl(line) {
            panic!("invalid alert JSONL line {line:?}: {e}");
        }
    }

    /// Parses a previously-emitted line back (round-trip helper).
    pub fn from_jsonl(line: &str) -> Result<AlertEvent, String> {
        Self::validate_jsonl(line)?;
        let doc = Json::parse(line)?;
        let s = |k: &str| doc.get(k).and_then(Json::as_str).unwrap().to_string();
        Ok(AlertEvent {
            slide: doc.get("slide").and_then(Json::as_u64).unwrap(),
            rule: s("rule"),
            metric: s("metric"),
            op: AlertOp::parse(doc.get("op").and_then(Json::as_str).unwrap())
                .unwrap()
                .as_str(),
            threshold: doc.get("threshold").and_then(Json::as_f64).unwrap(),
            value: doc.get("value").and_then(Json::as_f64).unwrap(),
            severity: s("severity"),
            state: match doc.get("state").and_then(Json::as_str).unwrap() {
                "firing" => "firing",
                _ => "resolved",
            },
        })
    }
}

#[derive(Clone, Debug, Default)]
struct RuleState {
    breached: u64,
    cleared: u64,
    firing: bool,
    prev: Option<f64>,
}

/// The per-slide alert evaluator.
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    states: Vec<RuleState>,
    fired_total: u64,
}

impl AlertEngine {
    /// An engine over `rules` (see [`parse_rules`]).
    pub fn new(rules: Vec<AlertRule>) -> Self {
        let states = rules.iter().map(|_| RuleState::default()).collect();
        AlertEngine {
            rules,
            states,
            fired_total: 0,
        }
    }

    /// The rules under evaluation.
    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// Evaluates every rule against `lookup` for `slide`, returning the
    /// state transitions. A metric `lookup` cannot resolve counts as
    /// not-breached (no data never fires an alert, but it can resolve one).
    pub fn evaluate(
        &mut self,
        slide: u64,
        lookup: &dyn Fn(&str) -> Option<f64>,
    ) -> Vec<AlertEvent> {
        let mut events = Vec::new();
        for (rule, st) in self.rules.iter().zip(self.states.iter_mut()) {
            let raw = lookup(&rule.metric);
            let value = match (rule.trend, raw, st.prev) {
                (false, v, _) => v,
                (true, Some(v), Some(p)) => Some(v - p),
                (true, _, _) => None,
            };
            if rule.trend {
                st.prev = raw;
            }
            let breach = value.is_some_and(|v| rule.op.holds(v, rule.threshold));
            if breach {
                st.breached += 1;
                st.cleared = 0;
            } else {
                st.cleared += 1;
                st.breached = 0;
            }
            let transition = if !st.firing && st.breached >= rule.for_slides {
                st.firing = true;
                self.fired_total += 1;
                Some("firing")
            } else if st.firing && st.cleared >= rule.clear_slides {
                st.firing = false;
                Some("resolved")
            } else {
                None
            };
            if let Some(state) = transition {
                events.push(AlertEvent {
                    slide,
                    rule: rule.name.clone(),
                    metric: rule.metric.clone(),
                    op: rule.op.as_str(),
                    threshold: rule.threshold,
                    value: value.unwrap_or(0.0),
                    severity: rule.severity.clone(),
                    state,
                });
            }
        }
        events
    }

    /// Names of the rules currently firing.
    pub fn active(&self) -> Vec<&str> {
        self.rules
            .iter()
            .zip(self.states.iter())
            .filter(|(_, st)| st.firing)
            .map(|(r, _)| r.name.as_str())
            .collect()
    }

    /// Total firing transitions so far (what `--alerts-fatal` gates on).
    pub fn fired_total(&self) -> u64 {
        self.fired_total
    }

    /// Publishes one `disc_alert_active{rule="..."}` gauge per rule
    /// (1 firing, 0 clear).
    pub fn publish(&self, rec: &dyn Recorder) {
        for (rule, st) in self.rules.iter().zip(self.states.iter()) {
            rec.gauge_set_labeled(
                "disc_alert_active",
                "rule",
                &rule.name,
                if st.firing { 1.0 } else { 0.0 },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOML: &str = r#"
# Stream-health alert rules.
[[rule]]
name = "quality-floor"
metric = "disc_quality_ari"
op = "lt"
threshold = 0.8
for_slides = 2
severity = "critical"

[[rule]]
name = "drift"
metric = "disc_drift_score"
op = "gt"          # trailing comment
threshold = 3.0
clear_slides = 3
trend = false
"#;

    #[test]
    fn toml_subset_parses_both_rules() {
        let rules = parse_rules(TOML).unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].name, "quality-floor");
        assert_eq!(rules[0].op, AlertOp::Lt);
        assert_eq!(rules[0].threshold, 0.8);
        assert_eq!(rules[0].for_slides, 2);
        assert_eq!(rules[0].severity, "critical");
        assert_eq!(rules[1].clear_slides, 3);
        assert_eq!(rules[1].severity, "warning");
        assert!(!rules[1].trend);
    }

    #[test]
    fn json_rules_parse_in_both_shapes() {
        let body = r#"{"name": "hot", "metric": "disc_drift_score", "op": "ge",
                       "threshold": 2.5, "for_slides": 3, "trend": true}"#;
        for doc in [format!("[{body}]"), format!("{{\"rules\": [{body}]}}")] {
            let rules = parse_rules(&doc).unwrap();
            assert_eq!(rules.len(), 1);
            assert_eq!(rules[0].op, AlertOp::Ge);
            assert_eq!(rules[0].for_slides, 3);
            assert!(rules[0].trend);
        }
    }

    #[test]
    fn malformed_rules_are_rejected_with_context() {
        for (text, needle) in [
            ("", "no rules"),
            ("[[rule]]\nmetric = \"m\"\nthreshold = 1\n", "no name"),
            ("[[rule]]\nname = \"a\"\nthreshold = 1\n", "missing metric"),
            (
                "[[rule]]\nname = \"a\"\nmetric = \"m\"\n",
                "missing threshold",
            ),
            ("name = \"orphan\"\n", "before any [[rule]]"),
            (
                "[[rule]]\nname = \"a\"\nmetric = \"m\"\nthreshold = 1\nop = \"between\"\n",
                "bad op",
            ),
            (
                "[[rule]]\nname = \"a\"\nmetric = \"m\"\nthreshold = 1\nbogus = 2\n",
                "unknown key",
            ),
            ("just some words\n", "key = value"),
            (
                "[[rule]]\nname = \"a\"\nmetric = \"m\"\nthreshold = 1\n\
                 [[rule]]\nname = \"a\"\nmetric = \"m\"\nthreshold = 1\n",
                "duplicate",
            ),
            ("{\"rules\": 4}", "array"),
            ("[{\"metric\": \"m\", \"threshold\": 1}]", "name"),
        ] {
            let err = parse_rules(text).unwrap_err();
            assert!(err.contains(needle), "{text:?} → {err:?}");
        }
    }

    #[test]
    fn state_machine_fires_after_for_slides_and_resolves_after_clear() {
        let mut rule = AlertRule::new("f", "m", AlertOp::Gt, 10.0);
        rule.for_slides = 2;
        rule.clear_slides = 2;
        let mut eng = AlertEngine::new(vec![rule]);
        let at = |v: f64| move |_: &str| Some(v);
        // One breaching slide: pending, not firing.
        assert!(eng.evaluate(1, &at(11.0)).is_empty());
        assert!(eng.active().is_empty());
        // Second consecutive breach: fires.
        let evs = eng.evaluate(2, &at(12.0));
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].state, "firing");
        assert_eq!(evs[0].value, 12.0);
        assert_eq!(eng.active(), vec!["f"]);
        // A single clear slide does not resolve…
        assert!(eng.evaluate(3, &at(5.0)).is_empty());
        assert_eq!(eng.active(), vec!["f"]);
        // …the second does.
        let evs = eng.evaluate(4, &at(5.0));
        assert_eq!(evs[0].state, "resolved");
        assert!(eng.active().is_empty());
        assert_eq!(eng.fired_total(), 1);
        // A breach streak interrupted by a clear starts over.
        assert!(eng.evaluate(5, &at(11.0)).is_empty());
        assert!(eng.evaluate(6, &at(5.0)).is_empty());
        assert!(eng.evaluate(7, &at(11.0)).is_empty());
        assert_eq!(eng.evaluate(8, &at(11.0))[0].state, "firing");
    }

    #[test]
    fn missing_metric_never_fires_but_resolves() {
        let mut eng = AlertEngine::new(vec![AlertRule::new("m", "gone", AlertOp::Gt, 1.0)]);
        for slide in 1..=5 {
            assert!(eng.evaluate(slide, &|_| None).is_empty());
        }
        // Fire it, then withdraw the metric: the alert resolves.
        assert_eq!(eng.evaluate(6, &|_| Some(5.0))[0].state, "firing");
        assert_eq!(eng.evaluate(7, &|_| None)[0].state, "resolved");
    }

    #[test]
    fn trend_rules_compare_consecutive_deltas() {
        let mut rule = AlertRule::new("jump", "m", AlertOp::Gt, 9.0);
        rule.trend = true;
        let mut eng = AlertEngine::new(vec![rule]);
        // First sample has no delta yet.
        assert!(eng.evaluate(1, &|_| Some(100.0)).is_empty());
        // +5 per slide: under the threshold.
        assert!(eng.evaluate(2, &|_| Some(105.0)).is_empty());
        // +20 in one slide: fires.
        let evs = eng.evaluate(3, &|_| Some(125.0));
        assert_eq!(evs[0].state, "firing");
        assert_eq!(evs[0].value, 20.0);
    }

    #[test]
    fn publish_renders_active_gauges() {
        use crate::registry::Registry;
        let mut eng = AlertEngine::new(vec![
            AlertRule::new("hot", "m", AlertOp::Gt, 1.0),
            AlertRule::new("cold", "m", AlertOp::Lt, 0.0),
        ]);
        eng.evaluate(1, &|_| Some(2.0));
        let reg = Registry::new();
        eng.publish(&reg);
        assert_eq!(
            reg.labeled_gauge_value("disc_alert_active", "rule", "hot"),
            Some(1.0)
        );
        assert_eq!(
            reg.labeled_gauge_value("disc_alert_active", "rule", "cold"),
            Some(0.0)
        );
        let text = reg.render_prometheus();
        assert!(text.contains("disc_alert_active{rule=\"hot\"} 1"), "{text}");
        crate::prom::parse_prometheus(&text).unwrap();
    }

    #[test]
    fn alert_event_round_trips_and_validates_strictly() {
        let ev = AlertEvent {
            slide: 42,
            rule: "quality-floor".to_string(),
            metric: "disc_quality_ari".to_string(),
            op: "lt",
            threshold: 0.8,
            value: 0.62,
            severity: "critical".to_string(),
            state: "firing",
        };
        let line = ev.to_jsonl();
        AlertEvent::assert_valid_jsonl(&line);
        assert_eq!(AlertEvent::from_jsonl(&line).unwrap(), ev);

        let missing = line.replace("\"severity\":\"critical\",", "");
        assert!(AlertEvent::validate_jsonl(&missing)
            .unwrap_err()
            .contains("severity"));
        let unknown = line.replace("\"state\":\"firing\"", "\"state\":\"firing\",\"x\":1");
        assert!(AlertEvent::validate_jsonl(&unknown)
            .unwrap_err()
            .contains("unknown"));
        let bad_state = line.replace("\"state\":\"firing\"", "\"state\":\"armed\"");
        assert!(AlertEvent::validate_jsonl(&bad_state)
            .unwrap_err()
            .contains("armed"));
        let bad_slide = line.replace("\"slide\":42", "\"slide\":4.5");
        assert!(AlertEvent::validate_jsonl(&bad_slide).is_err());
        assert!(AlertEvent::validate_jsonl("{}").is_err());
    }
}
