//! Folded-stack exporter for [`SpanRecord`]s.
//!
//! The folded format — one `root;child;leaf <count>` line per distinct
//! stack — is what `inferno-flamegraph` and Brendan Gregg's original
//! `flamegraph.pl` consume. Each span contributes its **self time**
//! (duration minus the duration of its direct children) under its full
//! name path, and identical paths are aggregated, so the flame graph's
//! widths are exclusive times exactly as profiler users expect.

use crate::span::SpanRecord;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders spans as folded stacks with nanosecond self-time counts.
///
/// Lines are sorted by stack path (deterministic output). Spans whose
/// children fully cover them contribute no line.
pub fn folded_stacks(spans: &[SpanRecord]) -> String {
    // id → index, then each span's self time and name path via parents.
    let index: BTreeMap<u32, usize> = spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
    let mut child_ns = vec![0u64; spans.len()];
    for s in spans {
        if let Some(&pi) = index.get(&s.parent) {
            child_ns[pi] = child_ns[pi].saturating_add(s.dur_ns);
        }
    }
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        let self_ns = s.dur_ns.saturating_sub(child_ns[i]);
        if self_ns == 0 {
            continue;
        }
        let mut path = vec![s.name];
        let mut cur = s.parent;
        while let Some(&pi) = index.get(&cur) {
            path.push(spans[pi].name);
            cur = spans[pi].parent;
        }
        path.reverse();
        *stacks.entry(path.join(";")).or_insert(0) += self_ns;
    }
    let mut out = String::new();
    for (stack, ns) in stacks {
        let _ = writeln!(out, "{stack} {ns}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u32, parent: u32, name: &'static str, start_ns: u64, dur_ns: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name,
            start_ns,
            dur_ns,
            args: Vec::new(),
        }
    }

    #[test]
    fn self_time_excludes_children_and_paths_aggregate() {
        // slide(100) { collect(30), cluster(50) { msbfs(20), msbfs(10) } }
        let spans = vec![
            span(1, 0, "slide", 0, 100),
            span(2, 1, "collect", 0, 30),
            span(3, 1, "cluster", 30, 50),
            span(4, 3, "msbfs", 30, 20),
            span(5, 3, "msbfs", 50, 10),
        ];
        let text = folded_stacks(&spans);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec![
                "slide 20",
                "slide;cluster 20",
                "slide;cluster;msbfs 30",
                "slide;collect 30",
            ]
        );
    }

    #[test]
    fn fully_covered_spans_emit_no_line() {
        let spans = vec![span(1, 0, "slide", 0, 40), span(2, 1, "collect", 0, 40)];
        let text = folded_stacks(&spans);
        assert_eq!(text, "slide;collect 40\n");
    }

    #[test]
    fn multiple_roots_across_drained_slides_coexist() {
        let spans = vec![span(1, 0, "slide", 0, 10), span(2, 0, "slide", 20, 30)];
        assert_eq!(folded_stacks(&spans), "slide 40\n");
    }
}
