//! Structured per-slide span events.
//!
//! One [`SlideEvent`] is emitted per engine slide, carrying the full span
//! breakdown of the pipeline (stride apply → COLLECT → CLUSTER → adoption)
//! plus the index and MS-BFS work counters accumulated inside the slide.
//! Events flow through an [`EventSink`](crate::EventSink); the JSONL sink
//! writes one [`to_jsonl`](SlideEvent::to_jsonl) line per event, which is
//! the repo's offline-analysis exchange format (`--metrics-out`).

use crate::json::Json;

/// Everything observable about one slide, as a flat record.
///
/// Durations are nanoseconds; counters are deltas *for this slide* (the
/// cumulative totals live in the [`Registry`](crate::Registry)).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SlideEvent {
    /// Slide sequence number (1-based; the initial window fill is slide 1).
    pub seq: u64,
    /// Engine that produced the event (`"disc"`, `"dbscan"`, `"extran"`).
    pub engine: &'static str,
    /// Spatial backend in use (`"rtree"`, `"grid"`, or `""`).
    pub backend: &'static str,
    /// Window size after the slide.
    pub window_len: usize,
    /// Points admitted this slide.
    pub inserted: usize,
    /// Points retired this slide.
    pub removed: usize,
    /// Ex-cores identified (Def. 1).
    pub ex_cores: usize,
    /// Neo-cores identified (Def. 2).
    pub neo_cores: usize,
    /// Retro-reachable ex-core classes examined (Theorem 1 numerator).
    pub ex_classes: usize,
    /// Nascent-reachable neo-core classes examined.
    pub neo_classes: usize,
    /// Cluster splits observed.
    pub splits: usize,
    /// Cluster merges observed.
    pub merges: usize,
    /// Clusters that emerged.
    pub emerged: usize,
    /// Fallback adoption searches run.
    pub adoption_searches: usize,
    /// Connectivity-check instances run (MS-BFS or sequential).
    pub msbfs_instances: usize,
    /// Starters across all connectivity checks.
    pub msbfs_starters: usize,
    /// Queue expansions (vertex pops) across all connectivity checks.
    pub msbfs_rounds: usize,
    /// COLLECT phase duration (ns).
    pub collect_ns: u64,
    /// CLUSTER phase duration (ns).
    pub cluster_ns: u64,
    /// Adoption pass duration (ns).
    pub adoption_ns: u64,
    /// Whole-slide duration (ns).
    pub total_ns: u64,
    /// ε-range searches executed during the slide.
    pub range_searches: u64,
    /// Of which epoch-based probes.
    pub epoch_probes: u64,
    /// Index traversal units visited (tree nodes / grid cells).
    pub nodes_visited: u64,
    /// Point-to-point distance evaluations.
    pub distance_checks: u64,
    /// Subtrees / cells skipped by epoch pruning.
    pub subtrees_pruned: u64,
    /// Engine-state heap footprint after the slide, in bytes (the
    /// `MemoryFootprint` estimate; 0 when the engine does not account).
    pub mem_bytes: u64,
}

/// The JSONL schema: every emitted line carries exactly these keys.
/// `engine`/`backend` are strings; everything else is a non-negative
/// integer. [`SlideEvent::validate_jsonl`] enforces this.
pub const SCHEMA_STR_KEYS: [&str; 2] = ["engine", "backend"];

/// Numeric keys of the JSONL schema (see [`SCHEMA_STR_KEYS`]).
pub const SCHEMA_NUM_KEYS: [&str; 25] = [
    "seq",
    "window_len",
    "inserted",
    "removed",
    "ex_cores",
    "neo_cores",
    "ex_classes",
    "neo_classes",
    "splits",
    "merges",
    "emerged",
    "adoption_searches",
    "msbfs_instances",
    "msbfs_starters",
    "msbfs_rounds",
    "collect_ns",
    "cluster_ns",
    "adoption_ns",
    "total_ns",
    "range_searches",
    "epoch_probes",
    "nodes_visited",
    "distance_checks",
    "subtrees_pruned",
    "mem_bytes",
];

impl SlideEvent {
    /// Renders the event as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        format!(
            "{{\"seq\":{},\"engine\":\"{}\",\"backend\":\"{}\",\"window_len\":{},\
             \"inserted\":{},\"removed\":{},\"ex_cores\":{},\"neo_cores\":{},\
             \"ex_classes\":{},\"neo_classes\":{},\"splits\":{},\"merges\":{},\
             \"emerged\":{},\"adoption_searches\":{},\"msbfs_instances\":{},\
             \"msbfs_starters\":{},\"msbfs_rounds\":{},\"collect_ns\":{},\
             \"cluster_ns\":{},\"adoption_ns\":{},\"total_ns\":{},\
             \"range_searches\":{},\"epoch_probes\":{},\"nodes_visited\":{},\
             \"distance_checks\":{},\"subtrees_pruned\":{},\"mem_bytes\":{}}}",
            self.seq,
            crate::json::escape(self.engine),
            crate::json::escape(self.backend),
            self.window_len,
            self.inserted,
            self.removed,
            self.ex_cores,
            self.neo_cores,
            self.ex_classes,
            self.neo_classes,
            self.splits,
            self.merges,
            self.emerged,
            self.adoption_searches,
            self.msbfs_instances,
            self.msbfs_starters,
            self.msbfs_rounds,
            self.collect_ns,
            self.cluster_ns,
            self.adoption_ns,
            self.total_ns,
            self.range_searches,
            self.epoch_probes,
            self.nodes_visited,
            self.distance_checks,
            self.subtrees_pruned,
            self.mem_bytes,
        )
    }

    /// Validates one JSONL line against the slide-event schema: parses as
    /// an object, every schema key present with the right type, no unknown
    /// keys. This is the checker the CI smoke job and the CLI tests run.
    pub fn validate_jsonl(line: &str) -> Result<(), String> {
        let doc = Json::parse(line)?;
        let Json::Obj(members) = &doc else {
            return Err("event line is not a JSON object".to_string());
        };
        for key in SCHEMA_STR_KEYS {
            match doc.get(key) {
                Some(Json::Str(_)) => {}
                Some(_) => return Err(format!("key {key:?} is not a string")),
                None => return Err(format!("missing key {key:?}")),
            }
        }
        for key in SCHEMA_NUM_KEYS {
            match doc.get(key) {
                Some(v) if v.as_u64().is_some() => {}
                Some(_) => return Err(format!("key {key:?} is not a non-negative integer")),
                None => return Err(format!("missing key {key:?}")),
            }
        }
        let known = |k: &str| SCHEMA_STR_KEYS.contains(&k) || SCHEMA_NUM_KEYS.contains(&k);
        if let Some((k, _)) = members.iter().find(|(k, _)| !known(k)) {
            return Err(format!("unknown key {k:?}"));
        }
        Ok(())
    }

    /// Panicking form of [`validate_jsonl`](Self::validate_jsonl) for
    /// tests and CI checkers, where an invalid line should abort with the
    /// offending content in the message rather than thread a `Result`.
    pub fn assert_valid_jsonl(line: &str) {
        if let Err(e) = Self::validate_jsonl(line) {
            panic!("invalid slide-event JSONL line {line:?}: {e}");
        }
    }

    /// Parses a previously-emitted JSONL line back into an event
    /// (round-trip helper for offline analysis and tests).
    pub fn from_jsonl(line: &str) -> Result<SlideEvent, String> {
        Self::validate_jsonl(line)?;
        let doc = Json::parse(line)?;
        let num = |k: &str| doc.get(k).and_then(Json::as_u64).unwrap();
        let stat = |k: &str| -> &'static str {
            // Events only ever carry the engine/backend names baked into
            // the binaries; map them back to the static strings.
            match doc.get(k).and_then(Json::as_str).unwrap() {
                "disc" => "disc",
                "graphdisc" => "graphdisc",
                "dbscan" => "dbscan",
                "extran" => "extran",
                "rtree" => "rtree",
                "grid" => "grid",
                "curve" => "curve",
                _ => "",
            }
        };
        Ok(SlideEvent {
            seq: num("seq"),
            engine: stat("engine"),
            backend: stat("backend"),
            window_len: num("window_len") as usize,
            inserted: num("inserted") as usize,
            removed: num("removed") as usize,
            ex_cores: num("ex_cores") as usize,
            neo_cores: num("neo_cores") as usize,
            ex_classes: num("ex_classes") as usize,
            neo_classes: num("neo_classes") as usize,
            splits: num("splits") as usize,
            merges: num("merges") as usize,
            emerged: num("emerged") as usize,
            adoption_searches: num("adoption_searches") as usize,
            msbfs_instances: num("msbfs_instances") as usize,
            msbfs_starters: num("msbfs_starters") as usize,
            msbfs_rounds: num("msbfs_rounds") as usize,
            collect_ns: num("collect_ns"),
            cluster_ns: num("cluster_ns"),
            adoption_ns: num("adoption_ns"),
            total_ns: num("total_ns"),
            range_searches: num("range_searches"),
            epoch_probes: num("epoch_probes"),
            nodes_visited: num("nodes_visited"),
            distance_checks: num("distance_checks"),
            subtrees_pruned: num("subtrees_pruned"),
            mem_bytes: num("mem_bytes"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SlideEvent {
        SlideEvent {
            seq: 7,
            engine: "disc",
            backend: "grid",
            window_len: 1000,
            inserted: 50,
            removed: 50,
            ex_cores: 4,
            neo_cores: 6,
            ex_classes: 2,
            neo_classes: 3,
            splits: 1,
            merges: 0,
            emerged: 1,
            adoption_searches: 5,
            msbfs_instances: 2,
            msbfs_starters: 5,
            msbfs_rounds: 17,
            collect_ns: 120_000,
            cluster_ns: 80_000,
            adoption_ns: 9_000,
            total_ns: 215_000,
            range_searches: 160,
            epoch_probes: 30,
            nodes_visited: 900,
            distance_checks: 4_000,
            subtrees_pruned: 12,
            mem_bytes: 1_048_576,
        }
    }

    #[test]
    fn jsonl_line_validates_and_round_trips() {
        let ev = sample();
        let line = ev.to_jsonl();
        SlideEvent::validate_jsonl(&line).unwrap();
        assert_eq!(SlideEvent::from_jsonl(&line).unwrap(), ev);
    }

    #[test]
    fn default_event_is_schema_complete() {
        let line = SlideEvent::default().to_jsonl();
        SlideEvent::validate_jsonl(&line).unwrap();
    }

    #[test]
    fn validator_rejects_missing_and_unknown_keys() {
        let line = sample().to_jsonl();
        let missing = line.replace("\"splits\":1,", "");
        assert!(SlideEvent::validate_jsonl(&missing)
            .unwrap_err()
            .contains("splits"));
        let unknown = line.replace("\"splits\":1", "\"splits\":1,\"bogus\":2");
        assert!(SlideEvent::validate_jsonl(&unknown)
            .unwrap_err()
            .contains("bogus"));
        // A pre-mem_bytes (schema 24-key) line no longer validates.
        let old_schema = line.replace(",\"mem_bytes\":1048576", "");
        assert!(SlideEvent::validate_jsonl(&old_schema)
            .unwrap_err()
            .contains("mem_bytes"));
        let wrong_type = line.replace("\"splits\":1", "\"splits\":\"one\"");
        assert!(SlideEvent::validate_jsonl(&wrong_type).is_err());
        assert!(SlideEvent::validate_jsonl("[1,2]").is_err());
        assert!(SlideEvent::validate_jsonl("not json").is_err());
    }
}
