//! Causal slide provenance in the paper's vocabulary.
//!
//! Aggregate counters say *how many* splits happened; provenance says
//! *which* ex-core caused *which* cluster to split into *how many* parts.
//! Engines emit one [`ProvenanceEvent`] per structural decision — ex-/
//! neo-core detection, retro-reachable class formation (Theorem 1's unit
//! of work), MS-BFS start/termination, cluster split/merge/emergence/
//! dissipation, and border adoption — tagged with the slide they belong
//! to. Events ride the existing [`Recorder`](crate::Recorder) plumbing
//! (`emit_provenance`) as a second JSONL schema with its own validator,
//! and the CLI's `explain` subcommand reconstructs a causal narrative
//! from the stream.
//!
//! # JSONL schema
//!
//! Every line is a flat object with exactly six keys so downstream
//! tooling never needs schema-per-kind dispatch:
//!
//! | key      | type   | meaning                                          |
//! |----------|--------|--------------------------------------------------|
//! | `slide`  | number | 1-based slide sequence number                    |
//! | `kind`   | string | one of [`KINDS`]                                 |
//! | `id`     | number | primary subject (point or cluster id; 0 if n/a)  |
//! | `rep`    | number | secondary subject / class representative         |
//! | `n`      | number | cardinality (size, starters, rounds, parts, …)   |
//! | `reason` | string | MS-BFS termination reason (`""` otherwise)       |

use crate::json::Json;
use std::io::Write;
use std::sync::Mutex;

/// The closed set of `kind` strings the schema admits.
pub const KINDS: [&str; 10] = [
    "ex_core_detected",
    "neo_core_detected",
    "retro_class_formed",
    "msbfs_started",
    "msbfs_terminated",
    "cluster_split",
    "cluster_merge",
    "cluster_emerged",
    "cluster_died",
    "adoption",
];

/// Why an MS-BFS instance stopped (Alg. 3's two exits).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsBfsReason {
    /// Every starter met every other one — the class is connected and the
    /// search quit early (the common, cheap case).
    AllMet,
    /// Some traversal exhausted its component without meeting the rest —
    /// the class is disconnected (a split follows).
    Exhausted,
}

impl MsBfsReason {
    /// The schema string (`"all_met"` / `"exhausted"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            MsBfsReason::AllMet => "all_met",
            MsBfsReason::Exhausted => "exhausted",
        }
    }
}

/// What happened (one structural decision), in the paper's vocabulary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProvenanceKind {
    /// Point `id` was a core in the previous window but is not one now.
    ExCoreDetected {
        /// The demoted point.
        id: u64,
    },
    /// Point `id` became a core this slide.
    NeoCoreDetected {
        /// The promoted point.
        id: u64,
    },
    /// A retro-reachable class `R⁻` was assembled around representative
    /// `rep`; Theorem 1 lets CLUSTER run one connectivity check for all
    /// `size` ex-cores in it instead of one each.
    RetroClassFormed {
        /// The class representative (its first discovered ex-core).
        rep: u64,
        /// Number of ex-cores in the class.
        size: u64,
    },
    /// An MS-BFS instance launched over class `rep`'s minimal bonding
    /// cores `M⁻`.
    MsBfsStarted {
        /// The class representative.
        rep: u64,
        /// Number of simultaneous BFS starters (`|M⁻|`).
        starters: u64,
    },
    /// The MS-BFS instance over class `rep` stopped after `rounds`
    /// queue expansions.
    MsBfsTerminated {
        /// The class representative.
        rep: u64,
        /// Why it stopped.
        reason: MsBfsReason,
        /// Queue expansions performed (see `Connectivity::rounds`).
        rounds: u64,
    },
    /// Cluster `old` split into `parts` connected components; the
    /// component containing core `rep` kept the old label.
    ClusterSplit {
        /// The pre-slide cluster id.
        old: u64,
        /// Number of resulting components.
        parts: u64,
        /// A core in the surviving (label-keeping) component.
        rep: u64,
    },
    /// Neo-core `rep` bonded `merged` distinct clusters; `winner` is the
    /// cluster id that absorbed the rest.
    ClusterMerge {
        /// The absorbing cluster id.
        winner: u64,
        /// How many distinct clusters were united (≥ 2).
        merged: u64,
        /// The neo-core class representative that caused the merge.
        rep: u64,
    },
    /// Neo-core class `rep` touched no existing cluster; a fresh cluster
    /// `cluster` of `size` cores emerged.
    ClusterEmerged {
        /// The newly allocated cluster id.
        cluster: u64,
        /// The neo-core class representative.
        rep: u64,
        /// Number of cores in the emerging class.
        size: u64,
    },
    /// Retro class `rep` kept no bonding core (`M⁻ = ∅`): its region
    /// dissipated (the paper's dissipation condition).
    ClusterDied {
        /// The class representative (an ex-core of the dead region).
        rep: u64,
        /// Number of ex-cores that went down with it.
        size: u64,
    },
    /// Border point `border` was (re-)attached to core `core` by the
    /// adoption pass (§V).
    Adoption {
        /// The adopted border point.
        border: u64,
        /// The adopting core.
        core: u64,
    },
}

impl ProvenanceKind {
    /// The schema `kind` string for this event.
    pub fn name(&self) -> &'static str {
        match self {
            ProvenanceKind::ExCoreDetected { .. } => "ex_core_detected",
            ProvenanceKind::NeoCoreDetected { .. } => "neo_core_detected",
            ProvenanceKind::RetroClassFormed { .. } => "retro_class_formed",
            ProvenanceKind::MsBfsStarted { .. } => "msbfs_started",
            ProvenanceKind::MsBfsTerminated { .. } => "msbfs_terminated",
            ProvenanceKind::ClusterSplit { .. } => "cluster_split",
            ProvenanceKind::ClusterMerge { .. } => "cluster_merge",
            ProvenanceKind::ClusterEmerged { .. } => "cluster_emerged",
            ProvenanceKind::ClusterDied { .. } => "cluster_died",
            ProvenanceKind::Adoption { .. } => "adoption",
        }
    }

    /// The flat `(id, rep, n, reason)` field encoding for the schema.
    fn fields(&self) -> (u64, u64, u64, &'static str) {
        match *self {
            ProvenanceKind::ExCoreDetected { id } => (id, 0, 0, ""),
            ProvenanceKind::NeoCoreDetected { id } => (id, 0, 0, ""),
            ProvenanceKind::RetroClassFormed { rep, size } => (0, rep, size, ""),
            ProvenanceKind::MsBfsStarted { rep, starters } => (0, rep, starters, ""),
            ProvenanceKind::MsBfsTerminated {
                rep,
                reason,
                rounds,
            } => (0, rep, rounds, reason.as_str()),
            ProvenanceKind::ClusterSplit { old, parts, rep } => (old, rep, parts, ""),
            ProvenanceKind::ClusterMerge {
                winner,
                merged,
                rep,
            } => (winner, rep, merged, ""),
            ProvenanceKind::ClusterEmerged { cluster, rep, size } => (cluster, rep, size, ""),
            ProvenanceKind::ClusterDied { rep, size } => (0, rep, size, ""),
            ProvenanceKind::Adoption { border, core } => (border, core, 0, ""),
        }
    }
}

/// One structural decision, tagged with the slide it happened in.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProvenanceEvent {
    /// 1-based slide sequence number (matches `SlideEvent::seq`).
    pub slide: u64,
    /// The decision.
    pub kind: ProvenanceKind,
}

impl ProvenanceEvent {
    /// Renders the event as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let (id, rep, n, reason) = self.kind.fields();
        format!(
            "{{\"slide\": {}, \"kind\": \"{}\", \"id\": {}, \"rep\": {}, \"n\": {}, \
             \"reason\": \"{}\"}}",
            self.slide,
            self.kind.name(),
            id,
            rep,
            n,
            reason,
        )
    }

    /// Validates one JSONL line against the provenance schema: exactly the
    /// six keys, correct types, `kind` in [`KINDS`], `reason` one of
    /// `""`/`"all_met"`/`"exhausted"` (non-empty only on
    /// `msbfs_terminated`).
    pub fn validate_jsonl(line: &str) -> Result<(), String> {
        let doc = Json::parse(line)?;
        let Json::Obj(members) = &doc else {
            return Err("provenance line is not an object".to_string());
        };
        let expect: [&str; 6] = ["slide", "kind", "id", "rep", "n", "reason"];
        for key in expect {
            if doc.get(key).is_none() {
                return Err(format!("missing key {key:?}"));
            }
        }
        for (key, _) in members {
            if !expect.contains(&key.as_str()) {
                return Err(format!("unknown key {key:?}"));
            }
        }
        if members.len() != expect.len() {
            return Err("duplicate keys".to_string());
        }
        for key in ["slide", "id", "rep", "n"] {
            if doc.get(key).unwrap().as_u64().is_none() {
                return Err(format!("{key} must be a non-negative integer"));
            }
        }
        let kind = doc
            .get("kind")
            .unwrap()
            .as_str()
            .ok_or_else(|| "kind must be a string".to_string())?;
        if !KINDS.contains(&kind) {
            return Err(format!("unknown kind {kind:?}"));
        }
        let reason = doc
            .get("reason")
            .unwrap()
            .as_str()
            .ok_or_else(|| "reason must be a string".to_string())?;
        match (kind, reason) {
            ("msbfs_terminated", "all_met") | ("msbfs_terminated", "exhausted") => Ok(()),
            ("msbfs_terminated", other) => Err(format!("bad termination reason {other:?}")),
            (_, "") => Ok(()),
            (_, other) => Err(format!("reason {other:?} on non-termination kind {kind:?}")),
        }
    }

    /// Panicking form of [`validate_jsonl`](Self::validate_jsonl) for
    /// tests and CI checkers, where an invalid line should abort with the
    /// offending content in the message rather than thread a `Result`.
    pub fn assert_valid_jsonl(line: &str) {
        if let Err(e) = Self::validate_jsonl(line) {
            panic!("invalid provenance JSONL line {line:?}: {e}");
        }
    }

    /// Parses one JSONL line back into an event (validating as it goes).
    pub fn from_jsonl(line: &str) -> Result<ProvenanceEvent, String> {
        ProvenanceEvent::validate_jsonl(line)?;
        let doc = Json::parse(line)?;
        let num = |key: &str| doc.get(key).unwrap().as_u64().unwrap();
        let (slide, id, rep, n) = (num("slide"), num("id"), num("rep"), num("n"));
        let kind = match doc.get("kind").unwrap().as_str().unwrap() {
            "ex_core_detected" => ProvenanceKind::ExCoreDetected { id },
            "neo_core_detected" => ProvenanceKind::NeoCoreDetected { id },
            "retro_class_formed" => ProvenanceKind::RetroClassFormed { rep, size: n },
            "msbfs_started" => ProvenanceKind::MsBfsStarted { rep, starters: n },
            "msbfs_terminated" => ProvenanceKind::MsBfsTerminated {
                rep,
                reason: match doc.get("reason").unwrap().as_str().unwrap() {
                    "all_met" => MsBfsReason::AllMet,
                    _ => MsBfsReason::Exhausted,
                },
                rounds: n,
            },
            "cluster_split" => ProvenanceKind::ClusterSplit {
                old: id,
                parts: n,
                rep,
            },
            "cluster_merge" => ProvenanceKind::ClusterMerge {
                winner: id,
                merged: n,
                rep,
            },
            "cluster_emerged" => ProvenanceKind::ClusterEmerged {
                cluster: id,
                rep,
                size: n,
            },
            "cluster_died" => ProvenanceKind::ClusterDied { rep, size: n },
            _ => ProvenanceKind::Adoption {
                border: id,
                core: rep,
            },
        };
        Ok(ProvenanceEvent { slide, kind })
    }
}

/// Receives every [`ProvenanceEvent`] a recorder is asked to emit — the
/// provenance twin of [`EventSink`](crate::EventSink).
pub trait ProvenanceSink: Send + Sync {
    /// Consumes one event.
    fn emit(&self, event: &ProvenanceEvent);

    /// Flushes any buffering.
    fn flush(&self) {}
}

/// Writes one provenance JSON line per event — the `--provenance-out`
/// sink.
pub struct JsonlProvenanceSink<W: Write + Send> {
    out: Mutex<std::io::BufWriter<W>>,
}

impl JsonlProvenanceSink<std::fs::File> {
    /// Creates (truncating) `path` and writes events to it.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(JsonlProvenanceSink::new(std::fs::File::create(path)?))
    }
}

impl<W: Write + Send> JsonlProvenanceSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(out: W) -> Self {
        JsonlProvenanceSink {
            out: Mutex::new(std::io::BufWriter::new(out)),
        }
    }
}

impl<W: Write + Send> ProvenanceSink for JsonlProvenanceSink<W> {
    fn emit(&self, event: &ProvenanceEvent) {
        let mut out = self.out.lock().expect("provenance sink poisoned");
        // Telemetry must never take the engine down; drop on I/O error.
        let _ = writeln!(out, "{}", event.to_jsonl());
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("provenance sink poisoned").flush();
    }
}

/// Buffers provenance events in memory — the test sink.
#[derive(Default)]
pub struct MemoryProvenanceSink {
    events: Mutex<Vec<ProvenanceEvent>>,
}

impl MemoryProvenanceSink {
    /// An empty sink.
    pub fn new() -> Self {
        MemoryProvenanceSink::default()
    }

    /// A copy of everything emitted so far.
    pub fn events(&self) -> Vec<ProvenanceEvent> {
        self.events
            .lock()
            .expect("provenance sink poisoned")
            .clone()
    }

    /// Number of events emitted so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("provenance sink poisoned").len()
    }

    /// Whether nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ProvenanceSink for MemoryProvenanceSink {
    fn emit(&self, event: &ProvenanceEvent) {
        self.events
            .lock()
            .expect("provenance sink poisoned")
            .push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<ProvenanceEvent> {
        use ProvenanceKind::*;
        let kinds = vec![
            ExCoreDetected { id: 4 },
            NeoCoreDetected { id: 33 },
            RetroClassFormed { rep: 4, size: 3 },
            MsBfsStarted {
                rep: 4,
                starters: 3,
            },
            MsBfsTerminated {
                rep: 4,
                reason: MsBfsReason::Exhausted,
                rounds: 14,
            },
            MsBfsTerminated {
                rep: 9,
                reason: MsBfsReason::AllMet,
                rounds: 2,
            },
            ClusterSplit {
                old: 5,
                parts: 2,
                rep: 7,
            },
            ClusterMerge {
                winner: 3,
                merged: 2,
                rep: 33,
            },
            ClusterEmerged {
                cluster: 11,
                rep: 40,
                size: 5,
            },
            ClusterDied { rep: 8, size: 1 },
            Adoption {
                border: 40,
                core: 7,
            },
        ];
        kinds
            .into_iter()
            .map(|kind| ProvenanceEvent { slide: 17, kind })
            .collect()
    }

    #[test]
    fn every_kind_round_trips_through_jsonl() {
        for ev in samples() {
            let line = ev.to_jsonl();
            ProvenanceEvent::validate_jsonl(&line).unwrap_or_else(|e| {
                panic!("invalid line for {:?}: {e}\n{line}", ev.kind.name());
            });
            assert_eq!(ProvenanceEvent::from_jsonl(&line).unwrap(), ev);
        }
    }

    #[test]
    fn validator_rejects_schema_violations() {
        let good = ProvenanceEvent {
            slide: 1,
            kind: ProvenanceKind::ExCoreDetected { id: 2 },
        }
        .to_jsonl();
        ProvenanceEvent::validate_jsonl(&good).unwrap();
        for bad in [
            // wrong kind
            good.replace("ex_core_detected", "excore"),
            // missing key
            good.replace("\"reason\": \"\"", "\"reason\": \"\", \"extra\": 1"),
            // negative number
            good.replace("\"id\": 2", "\"id\": -2"),
            // string where number expected
            good.replace("\"id\": 2", "\"id\": \"2\""),
            // reason on non-termination kind
            good.replace("\"reason\": \"\"", "\"reason\": \"all_met\""),
            // not an object
            "[1, 2]".to_string(),
        ] {
            assert!(
                ProvenanceEvent::validate_jsonl(&bad).is_err(),
                "accepted {bad}"
            );
        }
        // termination must carry a recognised reason
        let term = ProvenanceEvent {
            slide: 1,
            kind: ProvenanceKind::MsBfsTerminated {
                rep: 1,
                reason: MsBfsReason::AllMet,
                rounds: 1,
            },
        }
        .to_jsonl();
        assert!(ProvenanceEvent::validate_jsonl(&term.replace("all_met", "done")).is_err());
        assert!(ProvenanceEvent::validate_jsonl(&term.replace("all_met", "")).is_err());
    }

    #[test]
    fn jsonl_sink_writes_valid_lines() {
        let sink = JsonlProvenanceSink::new(Vec::new());
        for ev in samples() {
            sink.emit(&ev);
        }
        let out = sink.out.into_inner().unwrap().into_inner().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), samples().len());
        for line in text.lines() {
            ProvenanceEvent::validate_jsonl(line).unwrap();
        }
    }

    #[test]
    fn memory_sink_accumulates() {
        let sink = MemoryProvenanceSink::new();
        assert!(sink.is_empty());
        for ev in samples() {
            sink.emit(&ev);
        }
        assert_eq!(sink.len(), samples().len());
        assert_eq!(sink.events(), samples());
    }
}
