//! `disc-telemetry` — zero-dependency observability for the DISC stack.
//!
//! The paper's whole evaluation reasons about cost through observable
//! proxies — range-search counts, epoch-probe savings, per-phase latency —
//! and a production streaming service is judged on sustained per-update
//! latency and its *tail*. This crate is the instrumentation layer that
//! makes those quantities measurable at runtime, cheaply:
//!
//! * [`LogHistogram`] — allocation-free log-bucketed (HDR-style) latency
//!   histograms with p50/p90/p99/max (≈3% bucket error).
//! * [`Recorder`] — the one trait engines publish to: monotone counters,
//!   gauges, duration histograms, and structured [`SlideEvent`]s. The
//!   default [`NoopRecorder`] reports `enabled() == false`, so an
//!   uninstrumented engine pays one virtual call and a branch per slide.
//! * [`Registry`] — the standard recorder: named metrics behind a mutex,
//!   rendered on demand as Prometheus text exposition
//!   ([`Registry::render_prometheus`], validated by
//!   [`prom::parse_prometheus`]), with an optional [`EventSink`].
//! * [`JsonlSink`] — one JSON line per slide for offline analysis (the
//!   CLI's `--metrics-out`); [`SlideEvent::validate_jsonl`] is the schema
//!   checker CI runs against the produced files.
//! * `http` feature — [`PromServer`], a tiny std-only scrape endpoint.
//!
//! # Conventions
//!
//! Metric names are Prometheus snake case with unit suffixes
//! (`disc_slide_seconds`, `disc_index_range_searches_total`). Histogram
//! samples are recorded in **nanoseconds**; the exporter divides metrics
//! named `*_seconds` by 1e9 at render time, so scrapes see base units.
//!
//! # Wiring
//!
//! ```
//! use disc_telemetry::{Recorder, Registry, SlideEvent};
//! use std::sync::Arc;
//!
//! let registry = Arc::new(Registry::new());
//! // An engine publishes per slide:
//! registry.counter_add("disc_slides_total", 1);
//! registry.record_nanos("disc_slide_seconds", 42_000);
//! registry.emit(&SlideEvent { seq: 1, engine: "disc", ..Default::default() });
//! // An exporter renders on demand:
//! let text = registry.render_prometheus();
//! assert!(text.contains("disc_slides_total 1"));
//! ```

pub mod alert;
pub mod chrome;
pub mod event;
pub mod folded;
pub mod health;
pub mod hist;
#[cfg(feature = "http")]
pub mod http;
pub mod json;
pub mod mem;
pub mod prom;
pub mod provenance;
pub mod recorder;
pub mod registry;
pub mod sink;
pub mod span;

pub use alert::{parse_rules, AlertEngine, AlertEvent, AlertOp, AlertRule};
pub use chrome::{chrome_trace_json, validate_chrome_trace};
pub use event::SlideEvent;
pub use folded::folded_stacks;
pub use health::{
    from_ppm, ppm, ClusterDeath, ClusterRecord, DriftDetector, DriftMonitor, DriftVerdict, Ewma,
    HealthEvent, LifecycleAnalytics, LifecycleStats, PageHinkley,
};
pub use hist::{HistSnapshot, LogHistogram};
#[cfg(feature = "http")]
pub use http::PromServer;
pub use json::Json;
pub use mem::{fmt_bytes, map_bytes, rss_bytes, FootprintNode, MemoryFootprint};
pub use prom::{parse_prometheus, parse_prometheus_strict, MetricKind, Sample};
pub use provenance::{
    JsonlProvenanceSink, MemoryProvenanceSink, MsBfsReason, ProvenanceEvent, ProvenanceKind,
    ProvenanceSink,
};
pub use recorder::{noop, NoopRecorder, Recorder};
pub use registry::Registry;
pub use sink::{EventSink, JsonlSink, MemorySink};
pub use span::{SpanId, SpanRecord, Tracer};

/// The trait-object handle engines store: cheap to clone, shareable with
/// exporter threads.
pub type SharedRecorder = std::sync::Arc<dyn Recorder>;
