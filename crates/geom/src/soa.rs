//! Struct-of-arrays point storage and batched distance kernels.
//!
//! The AoS `Point<D>` layout interleaves dimensions, so a scan that only
//! needs squared distances strides through memory `D` doubles at a time and
//! the autovectorizer has to gather. This module stores each dimension in
//! its own contiguous `Vec<f64>` (plus id and tick columns) and provides
//! batched kernels over those columns:
//!
//! * [`dist2_batch`] — squared distances of a contiguous row range to one
//!   center;
//! * [`eps_mask_block`] / [`eps_filter_mask`] — the ε-filter, returning hit
//!   bitmasks (one bit per row), written as a 4-wide manually unrolled loop
//!   so the accumulators vectorize;
//! * [`morton_key`] and friends — the space-filling-curve key used by the
//!   curve-ordered backend.
//!
//! ## Exactness
//!
//! Every kernel performs the *per-point* arithmetic in exactly the order of
//! [`Point::dist2`] (accumulate `diff * diff` dimension by dimension), so a
//! kernel answer is bit-identical to the scalar one; the unrolling is across
//! points, never within one point's accumulation. [`eps_mask_block_scalar`]
//! is the deliberately plain reference the fast path is tested against
//! (including under `-Ctarget-cpu=native` in CI).
//!
//! ## Why Morton and not Hilbert
//!
//! Both curves give the locality the curve backend needs (an ε-box decomposes
//! into O(log) contiguous key ranges). Morton wins on every axis we care
//! about here: the key is a pure bit-interleave (a handful of shifts per
//! point, trivially inverted for corner-distance rejection), and range
//! decomposition is a prefix-tree walk with exact per-node boxes. Hilbert's
//! better worst-case range count costs state-machine encode/decode per point
//! and a far hairier box-to-ranges routine; since every candidate run is
//! corner-rejected and exact-filtered anyway, the extra ranges Morton may
//! produce only cost a few binary searches.

use crate::point::Point;

/// Row id meaning "no row stored here" (free slot in slot-addressed uses).
pub const EMPTY_ROW: u64 = u64::MAX;

/// Struct-of-arrays storage for `D`-dimensional points: one contiguous
/// coordinate column per dimension plus parallel id and arrival-tick
/// columns. Rows are addressed positionally; higher layers decide what a
/// row index means (sorted rank for the curve backend, `id mod capacity`
/// slot for the engine's window store).
#[derive(Clone, Debug)]
pub struct PointStore<const D: usize> {
    cols: [Vec<f64>; D],
    ids: Vec<u64>,
    ticks: Vec<u64>,
}

impl<const D: usize> Default for PointStore<D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const D: usize> PointStore<D> {
    /// An empty store.
    pub fn new() -> Self {
        PointStore {
            cols: std::array::from_fn(|_| Vec::new()),
            ids: Vec::new(),
            ticks: Vec::new(),
        }
    }

    /// An empty store with room for `n` rows in every column.
    pub fn with_capacity(n: usize) -> Self {
        PointStore {
            cols: std::array::from_fn(|_| Vec::with_capacity(n)),
            ids: Vec::with_capacity(n),
            ticks: Vec::with_capacity(n),
        }
    }

    /// Number of rows (including [`EMPTY_ROW`] slots in slot-addressed use).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the store has no rows.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Heap bytes held across all columns (capacity accounting).
    pub fn heap_bytes(&self) -> usize {
        let f64s: usize = self.cols.iter().map(Vec::capacity).sum();
        (f64s + self.ids.capacity() + self.ticks.capacity()) * std::mem::size_of::<u64>()
    }

    /// Reserves room for `n` additional rows.
    pub fn reserve(&mut self, n: usize) {
        for c in &mut self.cols {
            c.reserve(n);
        }
        self.ids.reserve(n);
        self.ticks.reserve(n);
    }

    /// Appends a row; returns its index.
    pub fn push(&mut self, id: u64, tick: u64, p: &Point<D>) -> usize {
        for (d, c) in self.cols.iter_mut().enumerate() {
            c.push(p[d]);
        }
        self.ids.push(id);
        self.ticks.push(tick);
        self.ids.len() - 1
    }

    /// Inserts a row at `row`, shifting later rows right (O(len - row)).
    pub fn insert_row(&mut self, row: usize, id: u64, tick: u64, p: &Point<D>) {
        for (d, c) in self.cols.iter_mut().enumerate() {
            c.insert(row, p[d]);
        }
        self.ids.insert(row, id);
        self.ticks.insert(row, tick);
    }

    /// Removes the row at `row`, shifting later rows left (O(len - row)).
    pub fn remove_row(&mut self, row: usize) -> (u64, u64, Point<D>) {
        let p = self.point_at(row);
        for c in &mut self.cols {
            c.remove(row);
        }
        (self.ids.remove(row), self.ticks.remove(row), p)
    }

    /// Overwrites the row at `row`.
    pub fn set_row(&mut self, row: usize, id: u64, tick: u64, p: &Point<D>) {
        for (d, c) in self.cols.iter_mut().enumerate() {
            c[row] = p[d];
        }
        self.ids[row] = id;
        self.ticks[row] = tick;
    }

    /// Copies row `src` over row `dst` within the store.
    pub fn copy_row_within(&mut self, src: usize, dst: usize) {
        for c in &mut self.cols {
            c[dst] = c[src];
        }
        self.ids[dst] = self.ids[src];
        self.ticks[dst] = self.ticks[src];
    }

    /// Grows (or shrinks) to exactly `n` rows; new rows are [`EMPTY_ROW`]
    /// at the origin.
    pub fn resize_rows(&mut self, n: usize) {
        for c in &mut self.cols {
            c.resize(n, 0.0);
        }
        self.ids.resize(n, EMPTY_ROW);
        self.ticks.resize(n, 0);
    }

    /// Drops all rows past `n`.
    pub fn truncate(&mut self, n: usize) {
        for c in &mut self.cols {
            c.truncate(n);
        }
        self.ids.truncate(n);
        self.ticks.truncate(n);
    }

    /// Raw id of a row ([`EMPTY_ROW`] marks a free slot).
    #[inline]
    pub fn id_at(&self, row: usize) -> u64 {
        self.ids[row]
    }

    /// Arrival tick of a row.
    #[inline]
    pub fn tick_at(&self, row: usize) -> u64 {
        self.ticks[row]
    }

    /// Marks a row free ([`EMPTY_ROW`]).
    #[inline]
    pub fn clear_row(&mut self, row: usize) {
        self.ids[row] = EMPTY_ROW;
    }

    /// Reassembles the AoS view of a row.
    #[inline]
    pub fn point_at(&self, row: usize) -> Point<D> {
        Point::new(std::array::from_fn(|d| self.cols[d][row]))
    }

    /// The id column.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// The tick column.
    pub fn ticks(&self) -> &[u64] {
        &self.ticks
    }

    /// One coordinate column.
    pub fn col(&self, d: usize) -> &[f64] {
        &self.cols[d]
    }

    /// All coordinate columns as slices, kernel-ready.
    #[inline]
    pub fn col_slices(&self) -> [&[f64]; D] {
        std::array::from_fn(|d| self.cols[d].as_slice())
    }

    /// Compacts the store in place, keeping exactly the rows where
    /// `keep[row]` holds, preserving order. Every survivor moves at most
    /// once per column — O(len), independent of how the dropped rows are
    /// distributed (the teardown-tree idea applied to flat columns).
    pub fn compact_retain(&mut self, keep: &[bool]) {
        assert_eq!(keep.len(), self.len(), "mask length mismatch");
        let mut w = 0usize;
        for (r, &k) in keep.iter().enumerate() {
            if k {
                if w != r {
                    self.copy_row_within(r, w);
                }
                w += 1;
            }
        }
        self.truncate(w);
    }

    /// Compacts the store in place, keeping exactly the half-open row
    /// ranges in `runs` (sorted, disjoint, in order), preserving order.
    /// The run-chunked sibling of [`compact_retain`](Self::compact_retain):
    /// each surviving run moves with one `copy_within` (memmove) per
    /// column instead of a branch per row, which is what makes stride
    /// teardown on a windowed stream cheap — scattered evictions still
    /// leave survivor runs several rows long.
    pub fn compact_runs(&mut self, runs: &[(usize, usize)]) {
        let n = self.len();
        let mut w = 0usize;
        for &(s, e) in runs {
            assert!(
                s >= w && s <= e && e <= n,
                "runs must be sorted and in bounds"
            );
            if w != s {
                for c in &mut self.cols {
                    c.copy_within(s..e, w);
                }
                self.ids.copy_within(s..e, w);
                self.ticks.copy_within(s..e, w);
            }
            w += e - s;
        }
        self.truncate(w);
    }
}

impl<const D: usize> disc_telemetry::MemoryFootprint for PointStore<D> {
    fn footprint(&self) -> disc_telemetry::FootprintNode {
        disc_telemetry::FootprintNode::leaf("soa", self.heap_bytes())
    }
}

/// Squared distances from `center` to rows `[0, out.len())` of `cols`,
/// written into `out`. Per-row arithmetic matches [`Point::dist2`] exactly.
pub fn dist2_batch<const D: usize>(cols: &[&[f64]; D], center: &Point<D>, out: &mut [f64]) {
    let n = out.len();
    for c in cols {
        assert!(c.len() >= n, "column shorter than output");
    }
    for (i, slot) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (d, c) in cols.iter().enumerate() {
            let diff = c[i] - center[d];
            acc += diff * diff;
        }
        *slot = acc;
    }
}

/// ε-filter over rows `[start, start + n)` (`n <= 64`): bit `i` of the
/// returned mask is set iff row `start + i` lies within `sqrt(eps2)` of
/// `center` (inclusive, matching `N_ε`).
///
/// The main loop is manually unrolled 4 wide — four independent accumulators
/// across *points*, each still summing its dimensions in scalar order, so
/// answers are bit-identical to [`eps_mask_block_scalar`] while the
/// accumulator quartet vectorizes.
#[inline]
pub fn eps_mask_block<const D: usize>(
    cols: &[&[f64]; D],
    start: usize,
    n: usize,
    center: &Point<D>,
    eps2: f64,
) -> u64 {
    debug_assert!(n <= 64, "a mask block covers at most 64 rows");
    let mut mask = 0u64;
    let mut i = 0usize;
    while i + 4 <= n {
        let mut acc = [0.0f64; 4];
        for (d, c) in cols.iter().enumerate() {
            let cd = center[d];
            let lane = &c[start + i..start + i + 4];
            for (l, a) in acc.iter_mut().enumerate() {
                let diff = lane[l] - cd;
                *a += diff * diff;
            }
        }
        for (l, a) in acc.iter().enumerate() {
            mask |= ((*a <= eps2) as u64) << (i + l);
        }
        i += 4;
    }
    while i < n {
        let mut acc = 0.0;
        for (d, c) in cols.iter().enumerate() {
            let diff = c[start + i] - center[d];
            acc += diff * diff;
        }
        mask |= ((acc <= eps2) as u64) << i;
        i += 1;
    }
    mask
}

/// Plain-loop reference for [`eps_mask_block`]; the CI native-CPU smoke job
/// asserts the two produce identical masks on the same inputs.
pub fn eps_mask_block_scalar<const D: usize>(
    cols: &[&[f64]; D],
    start: usize,
    n: usize,
    center: &Point<D>,
    eps2: f64,
) -> u64 {
    debug_assert!(n <= 64);
    let mut mask = 0u64;
    for i in 0..n {
        let mut acc = 0.0;
        for (d, c) in cols.iter().enumerate() {
            let diff = c[start + i] - center[d];
            acc += diff * diff;
        }
        mask |= ((acc <= eps2) as u64) << i;
    }
    mask
}

/// Full-column ε-filter: clears `out` and fills it with one mask word per
/// 64-row block (rows `[0, n)`); returns the number of hits.
pub fn eps_filter_mask<const D: usize>(
    cols: &[&[f64]; D],
    n: usize,
    center: &Point<D>,
    eps2: f64,
    out: &mut Vec<u64>,
) -> usize {
    out.clear();
    let mut hits = 0usize;
    let mut start = 0usize;
    while start < n {
        let block = (n - start).min(64);
        let m = eps_mask_block(cols, start, block, center, eps2);
        hits += m.count_ones() as usize;
        out.push(m);
        start += block;
    }
    hits
}

// ---------------------------------------------------------------------
// Morton (Z-order) keys
// ---------------------------------------------------------------------

/// Bits per dimension of the Morton key for dimension `d`: 31/21/16 for
/// D = 2/3/4 (all of `B*D <= 64`, and `B <= 31` keeps the biased cell
/// coordinate comfortably inside `u32`).
pub const fn morton_bits(d: usize) -> u32 {
    let b = 64 / d;
    if b > 31 {
        31
    } else {
        b as u32
    }
}

/// Maps one coordinate to its biased cell index: `floor(x / cell)` shifted
/// by `2^(B-1)` so negative coordinates sort correctly, then clamped to
/// `[0, 2^B - 1]`. Clamping is monotone, so box containment survives it;
/// boundary cells stand for a half-unbounded region and are exempted from
/// corner-distance rejection by the curve backend.
#[inline]
pub fn morton_cell_coord(x: f64, inv_cell: f64, bits: u32) -> u32 {
    let bias = 1i64 << (bits - 1);
    let max = (1i64 << bits) - 1;
    let v = x * inv_cell;
    // `floor()` is a libm call on baseline x86-64 (no `roundsd` without
    // SSE4.1), and this sits on the key_of hot path — so floor via
    // truncating cast plus sign correction wherever the cast is exact.
    // |v| < 2^53 keeps `t as f64` lossless, so `t > v` detects exactly the
    // negative-fraction case; outside that range (and for NaN, whose
    // comparison is false) defer to the old `floor()` path, which the
    // final clamp saturates identically.
    let i = if v.abs() < 9.0e15 {
        let t = v as i64;
        t - ((t as f64 > v) as i64) + bias
    } else {
        v.floor() as i64 + bias
    };
    i.clamp(0, max) as u32
}

/// Biased cell coordinates of `p` for cell width `1.0 / inv_cell`.
#[inline]
pub fn morton_cells<const D: usize>(p: &Point<D>, inv_cell: f64) -> [u32; D] {
    let bits = morton_bits(D);
    std::array::from_fn(|d| morton_cell_coord(p[d], inv_cell, bits))
}

/// Spreads the low [`morton_bits`]`(D)` bits of `x` so that source bit `b`
/// lands at bit `b * D` — the per-dimension half of Morton interleaving.
/// Magic-mask doubling for the dimensions the backends ship (a handful of
/// shift/or/and steps); the bit-at-a-time loop remains as the fallback for
/// any other `D`.
#[inline]
fn morton_spread<const D: usize>(x: u32) -> u64 {
    let mut x = (x & low_mask(morton_bits(D))) as u64;
    match D {
        2 => {
            x = (x | (x << 16)) & 0x0000_ffff_0000_ffff;
            x = (x | (x << 8)) & 0x00ff_00ff_00ff_00ff;
            x = (x | (x << 4)) & 0x0f0f_0f0f_0f0f_0f0f;
            x = (x | (x << 2)) & 0x3333_3333_3333_3333;
            x = (x | (x << 1)) & 0x5555_5555_5555_5555;
        }
        3 => {
            x = (x | (x << 32)) & 0x001f_0000_0000_ffff;
            x = (x | (x << 16)) & 0x001f_0000_ff00_00ff;
            x = (x | (x << 8)) & 0x100f_00f0_0f00_f00f;
            x = (x | (x << 4)) & 0x10c3_0c30_c30c_30c3;
            x = (x | (x << 2)) & 0x1249_2492_4924_9249;
        }
        4 => {
            x = (x | (x << 24)) & 0x0000_00ff_0000_00ff;
            x = (x | (x << 12)) & 0x000f_000f_000f_000f;
            x = (x | (x << 6)) & 0x0303_0303_0303_0303;
            x = (x | (x << 3)) & 0x1111_1111_1111_1111;
        }
        _ => {
            let bits = morton_bits(D);
            let mut out = 0u64;
            for b in 0..bits {
                out |= ((x >> b) & 1) << (b as usize * D);
            }
            x = out;
        }
    }
    x
}

/// Inverse of [`morton_spread`]: gathers every `D`-th bit of `x` (starting
/// at bit 0) back into a dense coordinate.
#[inline]
fn morton_compress<const D: usize>(x: u64) -> u32 {
    let mut x = x;
    match D {
        2 => {
            x &= 0x5555_5555_5555_5555;
            x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
            x = (x | (x >> 2)) & 0x0f0f_0f0f_0f0f_0f0f;
            x = (x | (x >> 4)) & 0x00ff_00ff_00ff_00ff;
            x = (x | (x >> 8)) & 0x0000_ffff_0000_ffff;
            x = (x | (x >> 16)) & 0x0000_0000_ffff_ffff;
        }
        3 => {
            x &= 0x1249_2492_4924_9249;
            x = (x | (x >> 2)) & 0x10c3_0c30_c30c_30c3;
            x = (x | (x >> 4)) & 0x100f_00f0_0f00_f00f;
            x = (x | (x >> 8)) & 0x001f_0000_ff00_00ff;
            x = (x | (x >> 16)) & 0x001f_0000_0000_ffff;
            x = (x | (x >> 32)) & 0x001f_ffff;
        }
        4 => {
            x &= 0x1111_1111_1111_1111;
            x = (x | (x >> 3)) & 0x0303_0303_0303_0303;
            x = (x | (x >> 6)) & 0x000f_000f_000f_000f;
            x = (x | (x >> 12)) & 0x0000_00ff_0000_00ff;
            x = (x | (x >> 24)) & 0x0000_0000_0000_ffff;
        }
        _ => {
            let bits = morton_bits(D);
            let mut out = 0u64;
            for b in 0..bits {
                out |= ((x >> (b as usize * D)) & 1) << b;
            }
            x = out;
        }
    }
    (x as u32) & low_mask(morton_bits(D))
}

/// The low `bits` bits set (`bits <= 31` per [`morton_bits`]).
#[inline]
const fn low_mask(bits: u32) -> u32 {
    (1u32 << bits) - 1
}

/// Interleaves biased cell coordinates into a Morton key: bit `b` of
/// `cell[d]` lands at key bit `b * D + d`.
#[inline]
pub fn morton_encode<const D: usize>(cell: &[u32; D]) -> u64 {
    let mut key = 0u64;
    for (d, &c) in cell.iter().enumerate() {
        key |= morton_spread::<D>(c) << d;
    }
    key
}

/// Inverse of [`morton_encode`].
#[inline]
pub fn morton_decode<const D: usize>(key: u64) -> [u32; D] {
    std::array::from_fn(|d| morton_compress::<D>(key >> d))
}

/// Morton key of point `p` for cell width `1.0 / inv_cell`.
#[inline]
pub fn morton_key<const D: usize>(p: &Point<D>, inv_cell: f64) -> u64 {
    morton_encode(&morton_cells(p, inv_cell))
}

/// Decomposes the inclusive cell box `[lo, hi]` into sorted, disjoint,
/// inclusive Morton-key ranges covering exactly the box (prefix-tree
/// descent: disjoint nodes are skipped, contained nodes emit their whole
/// key range, straddling nodes split — the "large-range splitting" that
/// keeps the count O(log) per straddled boundary). If more than
/// `max_ranges` ranges would be emitted the remaining straddlers emit
/// their full node range instead — an over-cover, safe because callers
/// corner-reject and exact-filter every candidate anyway. Adjacent output
/// ranges are merged.
pub fn morton_ranges<const D: usize>(
    lo: &[u32; D],
    hi: &[u32; D],
    max_ranges: usize,
    out: &mut Vec<(u64, u64)>,
) {
    out.clear();
    let bits = morton_bits(D);
    morton_ranges_rec(lo, hi, 0u64, bits, &[0u32; D], max_ranges, out);
    // Merge ranges that touch: the descent emits them in ascending order.
    let mut w = 0usize;
    for r in 0..out.len() {
        if w > 0 && out[w - 1].1.saturating_add(1) >= out[r].0 {
            out[w - 1].1 = out[w - 1].1.max(out[r].1);
        } else {
            out[w] = out[r];
            w += 1;
        }
    }
    out.truncate(w);
}

fn morton_ranges_rec<const D: usize>(
    lo: &[u32; D],
    hi: &[u32; D],
    prefix: u64,
    level: u32,
    node_lo: &[u32; D],
    max_ranges: usize,
    out: &mut Vec<(u64, u64)>,
) {
    let span_bits = level as usize * D;
    let node_range = |prefix: u64| -> (u64, u64) {
        if span_bits >= 64 {
            (0, u64::MAX)
        } else {
            let start = prefix << span_bits;
            (start, start + ((1u64 << span_bits) - 1))
        }
    };
    // The node covers [node_lo[d], node_lo[d] + 2^level - 1] per dimension.
    let side = if level >= 32 { u64::MAX } else { 1u64 << level };
    let mut contained = true;
    for d in 0..D {
        let nlo = node_lo[d] as u64;
        let nhi = nlo + (side - 1).min(u32::MAX as u64);
        if nhi < lo[d] as u64 || nlo > hi[d] as u64 {
            return; // disjoint from the query box
        }
        if nlo < lo[d] as u64 || nhi > hi[d] as u64 {
            contained = false;
        }
    }
    if contained || level == 0 || out.len() >= max_ranges {
        // Fully inside, a single cell, or out of budget (over-cover).
        out.push(node_range(prefix));
        return;
    }
    let child_level = level - 1;
    for c in 0..(1u32 << D) {
        let child_lo: [u32; D] =
            std::array::from_fn(|d| node_lo[d] + (((c >> d) & 1) << child_level));
        morton_ranges_rec(
            lo,
            hi,
            (prefix << D) | c as u64,
            child_level,
            &child_lo,
            max_ranges,
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_bytes_counts_every_column_capacity() {
        use disc_telemetry::MemoryFootprint;
        let mut s: PointStore<3> = PointStore::with_capacity(100);
        // 3 coord columns + ids + ticks, all 8-byte elements.
        assert_eq!(s.heap_bytes(), 100 * 8 * 5);
        for i in 0..10u64 {
            s.push(i, 0, &Point::new([i as f64, 0.0, 0.0]));
        }
        assert_eq!(s.heap_bytes(), 100 * 8 * 5, "pushes within capacity");
        assert_eq!(s.mem_bytes(), s.heap_bytes() as u64);
        assert_eq!(PointStore::<2>::new().heap_bytes(), 0);
    }

    /// Deterministic xorshift so tests need no RNG dependency.
    struct Rng(u64);
    impl Rng {
        fn next_f64(&mut self) -> f64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            (self.0 >> 11) as f64 / (1u64 << 53) as f64 * 20.0 - 10.0
        }
    }

    fn random_store<const D: usize>(n: usize, seed: u64) -> PointStore<D> {
        let mut rng = Rng(seed | 1);
        let mut s = PointStore::new();
        for i in 0..n {
            let p = Point::new(std::array::from_fn(|_| rng.next_f64()));
            s.push(i as u64, i as u64, &p);
        }
        s
    }

    #[test]
    fn store_roundtrips_rows() {
        let mut s: PointStore<3> = PointStore::new();
        let p = Point::new([1.0, 2.0, 3.0]);
        let q = Point::new([4.0, 5.0, 6.0]);
        s.push(7, 100, &p);
        s.push(8, 101, &q);
        assert_eq!(s.len(), 2);
        assert_eq!(s.point_at(0), p);
        assert_eq!(s.id_at(1), 8);
        assert_eq!(s.tick_at(1), 101);
        s.insert_row(1, 9, 102, &Point::new([0.5, 0.5, 0.5]));
        assert_eq!(s.ids(), &[7, 9, 8]);
        let (id, tick, removed) = s.remove_row(1);
        assert_eq!((id, tick), (9, 102));
        assert_eq!(removed, Point::new([0.5, 0.5, 0.5]));
        assert_eq!(s.point_at(1), q);
    }

    #[test]
    fn compact_retain_preserves_order_and_moves_once() {
        let mut s: PointStore<2> = PointStore::new();
        for i in 0..10u64 {
            s.push(i, i, &Point::new([i as f64, -(i as f64)]));
        }
        let keep: Vec<bool> = (0..10).map(|i| i % 3 != 0).collect();
        s.compact_retain(&keep);
        assert_eq!(s.ids(), &[1, 2, 4, 5, 7, 8]);
        assert_eq!(s.point_at(2), Point::new([4.0, -4.0]));
    }

    #[test]
    fn dist2_batch_matches_point_dist2() {
        let s = random_store::<3>(100, 42);
        let center = Point::new([0.3, -0.7, 1.1]);
        let mut out = vec![0.0; s.len()];
        dist2_batch(&s.col_slices(), &center, &mut out);
        for (i, got) in out.iter().enumerate() {
            assert_eq!(*got, center.dist2(&s.point_at(i)), "row {i}");
        }
    }

    #[test]
    fn eps_masks_fast_and_scalar_agree_and_match_dist2() {
        // This test is also run by CI under RUSTFLAGS=-Ctarget-cpu=native to
        // certify the unrolled fast path against the scalar fallback.
        for d_seed in 1..6u64 {
            let s = random_store::<2>(130, d_seed);
            let cols = s.col_slices();
            let center = Point::new([0.0, 0.5]);
            for eps in [0.5, 3.0, 11.0] {
                let eps2 = eps * eps;
                let mut start = 0;
                while start < s.len() {
                    let n = (s.len() - start).min(64);
                    let fast = eps_mask_block(&cols, start, n, &center, eps2);
                    let slow = eps_mask_block_scalar(&cols, start, n, &center, eps2);
                    assert_eq!(fast, slow, "seed {d_seed} eps {eps} start {start}");
                    for i in 0..n {
                        let want = center.dist2(&s.point_at(start + i)) <= eps2;
                        assert_eq!((fast >> i) & 1 == 1, want);
                    }
                    start += n;
                }
            }
        }
    }

    #[test]
    fn eps_filter_mask_counts_hits() {
        let s = random_store::<4>(200, 9);
        let cols = s.col_slices();
        let center = Point::new([0.0; 4]);
        let mut mask = Vec::new();
        let hits = eps_filter_mask(&cols, s.len(), &center, 49.0, &mut mask);
        let brute = (0..s.len())
            .filter(|&i| center.dist2(&s.point_at(i)) <= 49.0)
            .count();
        assert_eq!(hits, brute);
        assert_eq!(mask.len(), s.len().div_ceil(64));
    }

    #[test]
    fn morton_encode_decode_roundtrip() {
        let cases2: Vec<[u32; 2]> = vec![[0, 0], [1, 2], [12345, 54321], [(1 << 31) - 1, 7]];
        for c in cases2 {
            assert_eq!(morton_decode::<2>(morton_encode(&c)), c);
        }
        let cases3: Vec<[u32; 3]> = vec![[0, 1, 2], [(1 << 21) - 1, 0, 99]];
        for c in cases3 {
            assert_eq!(morton_decode::<3>(morton_encode(&c)), c);
        }
        let cases4: Vec<[u32; 4]> = vec![[1, 2, 3, 4], [(1 << 16) - 1; 4]];
        for c in cases4 {
            assert_eq!(morton_decode::<4>(morton_encode(&c)), c);
        }
    }

    /// Bit-at-a-time reference interleave: bit `b` of `cell[d]` at key bit
    /// `b * D + d` — the definition the magic-mask fast paths must match.
    fn morton_encode_reference<const D: usize>(cell: &[u32; D]) -> u64 {
        let bits = morton_bits(D);
        let mut key = 0u64;
        for b in 0..bits {
            for (d, c) in cell.iter().enumerate() {
                key |= (((c >> b) & 1) as u64) << (b as usize * D + d);
            }
        }
        key
    }

    #[test]
    fn morton_magic_masks_match_the_bitwise_reference() {
        let mut rng = 0x9e37_79b9_u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng as u32
        };
        for _ in 0..2000 {
            let c2 = [
                next() & low_mask(morton_bits(2)),
                next() & low_mask(morton_bits(2)),
            ];
            let k2 = morton_encode(&c2);
            assert_eq!(k2, morton_encode_reference(&c2), "{c2:?}");
            assert_eq!(morton_decode::<2>(k2), c2);
            let m3 = low_mask(morton_bits(3));
            let c3 = [next() & m3, next() & m3, next() & m3];
            let k3 = morton_encode(&c3);
            assert_eq!(k3, morton_encode_reference(&c3), "{c3:?}");
            assert_eq!(morton_decode::<3>(k3), c3);
            let m4 = low_mask(morton_bits(4));
            let c4 = [next() & m4, next() & m4, next() & m4, next() & m4];
            let k4 = morton_encode(&c4);
            assert_eq!(k4, morton_encode_reference(&c4), "{c4:?}");
            assert_eq!(morton_decode::<4>(k4), c4);
        }
        // Extremes: all-zero and all-ones coordinates at every width.
        assert_eq!(
            morton_encode(&[low_mask(31); 2]),
            morton_encode_reference(&[low_mask(31); 2])
        );
        assert_eq!(
            morton_encode(&[low_mask(21); 3]),
            morton_encode_reference(&[low_mask(21); 3])
        );
        assert_eq!(
            morton_encode(&[low_mask(16); 4]),
            morton_encode_reference(&[low_mask(16); 4])
        );
        assert_eq!(morton_encode(&[0u32; 3]), 0);
    }

    #[test]
    fn morton_keys_order_locally() {
        // Points in the same cell share a key; neighbouring cells differ.
        let a = morton_key(&Point::new([0.1, 0.1]), 1.0);
        let b = morton_key(&Point::new([0.9, 0.9]), 1.0);
        let c = morton_key(&Point::new([1.1, 0.1]), 1.0);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Negative coordinates get distinct cells too.
        let n = morton_key(&Point::new([-0.5, 0.1]), 1.0);
        assert_ne!(n, a);
    }

    #[test]
    fn morton_ranges_cover_box_exactly() {
        // Every key of every cell in the box is covered, and nothing outside
        // the box is covered (when the budget allows exact decomposition).
        let lo = [100u32, 200u32];
        let hi = [104u32, 203u32];
        let mut ranges = Vec::new();
        morton_ranges(&lo, &hi, 1024, &mut ranges);
        for w in ranges.windows(2) {
            assert!(w[0].1 < w[1].0, "ranges sorted and disjoint");
        }
        let covered = |key: u64| ranges.iter().any(|&(s, e)| s <= key && key <= e);
        for x in 95..110u32 {
            for y in 195..208u32 {
                let inside = (100..=104).contains(&x) && (200..=203).contains(&y);
                assert_eq!(
                    covered(morton_encode(&[x, y])),
                    inside,
                    "cell ({x},{y}) coverage"
                );
            }
        }
    }

    #[test]
    fn morton_ranges_budget_overcovers_but_never_undercovers() {
        let lo = [10u32, 20u32, 30u32];
        let hi = [25u32, 33u32, 41u32];
        let mut tight = Vec::new();
        morton_ranges(&lo, &hi, 4096, &mut tight);
        let mut coarse = Vec::new();
        morton_ranges(&lo, &hi, 4, &mut coarse);
        assert!(coarse.len() <= tight.len());
        // Everything the tight cover includes, the coarse cover includes.
        for &(s, e) in &tight {
            for key in [s, e, (s + e) / 2] {
                assert!(
                    coarse.iter().any(|&(cs, ce)| cs <= key && key <= ce),
                    "budgeted cover lost key {key}"
                );
            }
        }
    }

    #[test]
    fn morton_range_count_stays_small_for_query_boxes() {
        // The 3^D neighbourhood of an ε-ball is the common case; the
        // decomposition must stay in the tens, not thousands.
        let mut ranges = Vec::new();
        for base in [7u32, 100, 1 << 20, (1 << 30) - 2] {
            morton_ranges(&[base, base + 1], &[base + 2, base + 3], 128, &mut ranges);
            assert!(
                ranges.len() <= 9,
                "3x3 box split into {} ranges at {base}",
                ranges.len()
            );
        }
    }
}
