//! Axis-aligned bounding boxes, the building block of the R-tree.

use crate::point::Point;

/// An axis-aligned bounding box in `D` dimensions.
///
/// Boxes are closed on both ends; a degenerate box (`lo == hi`) represents a
/// single point, which is how leaf entries of the R-tree are stored.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aabb<const D: usize> {
    lo: Point<D>,
    hi: Point<D>,
}

impl<const D: usize> Aabb<D> {
    /// A box covering exactly one point.
    #[inline]
    pub fn from_point(p: Point<D>) -> Self {
        Aabb { lo: p, hi: p }
    }

    /// Builds a box from explicit corners. Panics in debug builds if any
    /// `lo` coordinate exceeds the matching `hi` coordinate.
    #[inline]
    pub fn new(lo: Point<D>, hi: Point<D>) -> Self {
        debug_assert!((0..D).all(|i| lo[i] <= hi[i]), "inverted AABB");
        Aabb { lo, hi }
    }

    /// The "empty" box: inverted infinities, identity for [`Aabb::merge`].
    #[inline]
    pub fn empty() -> Self {
        Aabb {
            lo: Point::new([f64::INFINITY; D]),
            hi: Point::new([f64::NEG_INFINITY; D]),
        }
    }

    /// Whether this is the identity/empty box.
    #[inline]
    pub fn is_empty(&self) -> bool {
        (0..D).any(|i| self.lo[i] > self.hi[i])
    }

    /// Lower corner.
    #[inline]
    pub fn lo(&self) -> Point<D> {
        self.lo
    }

    /// Upper corner.
    #[inline]
    pub fn hi(&self) -> Point<D> {
        self.hi
    }

    /// Smallest box covering both operands.
    #[inline]
    pub fn merge(&self, other: &Aabb<D>) -> Aabb<D> {
        Aabb {
            lo: self.lo.min(&other.lo),
            hi: self.hi.max(&other.hi),
        }
    }

    /// Grows the box in place to cover `p`.
    #[inline]
    pub fn extend_point(&mut self, p: &Point<D>) {
        self.lo = self.lo.min(p);
        self.hi = self.hi.max(p);
    }

    /// Grows the box in place to cover `other`.
    #[inline]
    pub fn extend(&mut self, other: &Aabb<D>) {
        self.lo = self.lo.min(&other.lo);
        self.hi = self.hi.max(&other.hi);
    }

    /// Whether `p` lies inside (inclusive).
    #[inline]
    pub fn contains_point(&self, p: &Point<D>) -> bool {
        (0..D).all(|i| self.lo[i] <= p[i] && p[i] <= self.hi[i])
    }

    /// Whether `other` is fully inside this box (inclusive).
    #[inline]
    pub fn contains(&self, other: &Aabb<D>) -> bool {
        (0..D).all(|i| self.lo[i] <= other.lo[i] && other.hi[i] <= self.hi[i])
    }

    /// Whether the boxes overlap (inclusive).
    #[inline]
    pub fn intersects(&self, other: &Aabb<D>) -> bool {
        (0..D).all(|i| self.lo[i] <= other.hi[i] && other.lo[i] <= self.hi[i])
    }

    /// Hyper-volume. Empty boxes report zero.
    #[inline]
    pub fn volume(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let mut v = 1.0;
        for i in 0..D {
            v *= self.hi[i] - self.lo[i];
        }
        v
    }

    /// Half-perimeter (sum of extents), a cheaper split heuristic than
    /// volume when extents collapse to zero in some dimension.
    #[inline]
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (0..D).map(|i| self.hi[i] - self.lo[i]).sum()
    }

    /// How much the volume would grow if `other` were merged in.
    #[inline]
    pub fn enlargement(&self, other: &Aabb<D>) -> f64 {
        self.merge(other).volume() - self.volume()
    }

    /// Squared distance from `p` to the nearest point of the box
    /// (zero if `p` is inside).
    #[inline]
    pub fn dist2_to_point(&self, p: &Point<D>) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            let c = p[i];
            let d = if c < self.lo[i] {
                self.lo[i] - c
            } else if c > self.hi[i] {
                c - self.hi[i]
            } else {
                0.0
            };
            acc += d * d;
        }
        acc
    }

    /// Squared distance from `p` to the farthest point of the box.
    ///
    /// If this is within the query radius, every point stored under the box
    /// is a match and the subtree can be handled wholesale.
    #[inline]
    pub fn max_dist2_to_point(&self, p: &Point<D>) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            let d = (p[i] - self.lo[i]).abs().max((p[i] - self.hi[i]).abs());
            acc += d * d;
        }
        acc
    }

    /// Whether a ball of radius `eps` around `center` intersects the box.
    #[inline]
    pub fn intersects_ball(&self, center: &Point<D>, eps: f64) -> bool {
        self.dist2_to_point(center) <= eps * eps
    }

    /// The box of side `2*eps` centred on `center`: the search rectangle of
    /// an ε-range query.
    #[inline]
    pub fn ball_bounds(center: &Point<D>, eps: f64) -> Aabb<D> {
        let mut lo = *center;
        let mut hi = *center;
        for i in 0..D {
            lo[i] -= eps;
            hi[i] += eps;
        }
        Aabb { lo, hi }
    }

    /// Centre of the box along dimension `dim`.
    #[inline]
    pub fn center_along(&self, dim: usize) -> f64 {
        0.5 * (self.lo[dim] + self.hi[dim])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bx(lo: [f64; 2], hi: [f64; 2]) -> Aabb<2> {
        Aabb::new(Point::new(lo), Point::new(hi))
    }

    #[test]
    fn empty_box_is_merge_identity() {
        let e = Aabb::<2>::empty();
        let b = bx([1.0, 2.0], [3.0, 4.0]);
        assert!(e.is_empty());
        assert_eq!(e.merge(&b), b);
        assert_eq!(b.merge(&e), b);
        assert_eq!(e.volume(), 0.0);
    }

    #[test]
    fn merge_covers_both_operands() {
        let a = bx([0.0, 0.0], [1.0, 1.0]);
        let b = bx([2.0, -1.0], [3.0, 0.5]);
        let m = a.merge(&b);
        assert!(m.contains(&a));
        assert!(m.contains(&b));
        assert_eq!(m.lo().coords(), [0.0, -1.0]);
        assert_eq!(m.hi().coords(), [3.0, 1.0]);
    }

    #[test]
    fn intersection_is_inclusive_on_shared_edges() {
        let a = bx([0.0, 0.0], [1.0, 1.0]);
        let b = bx([1.0, 1.0], [2.0, 2.0]);
        let c = bx([1.01, 1.01], [2.0, 2.0]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn volume_and_margin() {
        let a = bx([0.0, 0.0], [2.0, 3.0]);
        assert_eq!(a.volume(), 6.0);
        assert_eq!(a.margin(), 5.0);
        assert_eq!(a.enlargement(&bx([0.0, 0.0], [4.0, 3.0])), 6.0);
    }

    #[test]
    fn dist2_to_point_inside_edge_and_corner() {
        let a = bx([0.0, 0.0], [2.0, 2.0]);
        assert_eq!(a.dist2_to_point(&Point::new([1.0, 1.0])), 0.0);
        assert_eq!(a.dist2_to_point(&Point::new([3.0, 1.0])), 1.0);
        assert_eq!(a.dist2_to_point(&Point::new([3.0, 3.0])), 2.0);
    }

    #[test]
    fn max_dist2_reaches_opposite_corner() {
        let a = bx([0.0, 0.0], [2.0, 2.0]);
        assert_eq!(a.max_dist2_to_point(&Point::new([0.0, 0.0])), 8.0);
        assert_eq!(a.max_dist2_to_point(&Point::new([1.0, 1.0])), 2.0);
    }

    #[test]
    fn ball_bounds_covers_the_ball() {
        let b = Aabb::ball_bounds(&Point::new([1.0, 1.0]), 0.5);
        assert_eq!(b.lo().coords(), [0.5, 0.5]);
        assert_eq!(b.hi().coords(), [1.5, 1.5]);
        assert!(b.intersects_ball(&Point::new([1.9, 1.0]), 0.5));
    }

    #[test]
    fn extend_point_grows_box() {
        let mut b = Aabb::from_point(Point::new([1.0, 1.0]));
        b.extend_point(&Point::new([-1.0, 4.0]));
        assert_eq!(b.lo().coords(), [-1.0, 1.0]);
        assert_eq!(b.hi().coords(), [1.0, 4.0]);
        assert!(b.contains_point(&Point::new([0.0, 2.0])));
    }
}
