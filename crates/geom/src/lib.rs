//! Geometric primitives shared by the DISC clustering workspace.
//!
//! The paper evaluates DISC on 2-, 3-, and 4-dimensional point streams, so
//! everything here is generic over a compile-time dimension `D`. The crate
//! also provides the small utility types every other crate needs: stable
//! point identifiers, an axis-aligned bounding box, and a fast (FxHash-style)
//! hasher for the id-keyed maps on the hot paths.

pub mod aabb;
pub mod fxhash;
pub mod point;
pub mod soa;

pub use aabb::Aabb;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use point::{Point, PointId};
