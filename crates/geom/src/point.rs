//! Points and point identifiers.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A stable identifier for a point in a stream.
///
/// Ids are assigned in arrival order by the stream machinery and are never
/// reused within one run, so they double as arrival timestamps under the
/// count-based sliding-window model.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PointId(pub u64);

impl PointId {
    /// Returns the raw arrival index.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for PointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for PointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u64> for PointId {
    #[inline]
    fn from(v: u64) -> Self {
        PointId(v)
    }
}

/// A point in `D`-dimensional Euclidean space.
///
/// Coordinates are `f64` throughout; the datasets in the paper are
/// geographic or normalised physical coordinates for which `f64` is the
/// natural representation.
#[derive(Clone, Copy, PartialEq)]
pub struct Point<const D: usize> {
    coords: [f64; D],
}

impl<const D: usize> Point<D> {
    /// Creates a point from its coordinate array.
    #[inline]
    pub const fn new(coords: [f64; D]) -> Self {
        Point { coords }
    }

    /// The origin (all coordinates zero).
    #[inline]
    pub const fn origin() -> Self {
        Point { coords: [0.0; D] }
    }

    /// Returns the coordinate array.
    #[inline]
    pub fn coords(&self) -> [f64; D] {
        self.coords
    }

    /// Returns the coordinates as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.coords
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// All range predicates in the workspace compare squared distances
    /// against a squared radius, avoiding `sqrt` on the hot path.
    #[inline]
    pub fn dist2(&self, other: &Point<D>) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            let d = self.coords[i] - other.coords[i];
            acc += d * d;
        }
        acc
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: &Point<D>) -> f64 {
        self.dist2(other).sqrt()
    }

    /// Whether `other` lies within Euclidean distance `eps` (inclusive),
    /// matching the `N_ε(p)` neighbourhood definition of the paper.
    #[inline]
    pub fn within(&self, other: &Point<D>, eps: f64) -> bool {
        self.dist2(other) <= eps * eps
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(&self, other: &Point<D>) -> Point<D> {
        let mut out = self.coords;
        for (o, &theirs) in out.iter_mut().zip(other.coords.iter()) {
            if theirs < *o {
                *o = theirs;
            }
        }
        Point { coords: out }
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(&self, other: &Point<D>) -> Point<D> {
        let mut out = self.coords;
        for (o, &theirs) in out.iter_mut().zip(other.coords.iter()) {
            if theirs > *o {
                *o = theirs;
            }
        }
        Point { coords: out }
    }

    /// Returns true if every coordinate is finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.coords.iter().all(|c| c.is_finite())
    }
}

impl<const D: usize> Default for Point<D> {
    fn default() -> Self {
        Point::origin()
    }
}

impl<const D: usize> fmt::Debug for Point<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.coords.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

impl<const D: usize> Index<usize> for Point<D> {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.coords[i]
    }
}

impl<const D: usize> IndexMut<usize> for Point<D> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.coords[i]
    }
}

impl<const D: usize> From<[f64; D]> for Point<D> {
    #[inline]
    fn from(coords: [f64; D]) -> Self {
        Point { coords }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist2_matches_manual_computation() {
        let a = Point::new([0.0, 3.0]);
        let b = Point::new([4.0, 0.0]);
        assert_eq!(a.dist2(&b), 25.0);
        assert_eq!(a.dist(&b), 5.0);
    }

    #[test]
    fn within_is_inclusive_at_the_boundary() {
        let a = Point::new([0.0, 0.0]);
        let b = Point::new([3.0, 4.0]);
        assert!(a.within(&b, 5.0));
        assert!(!a.within(&b, 4.999));
    }

    #[test]
    fn min_max_are_componentwise() {
        let a = Point::new([1.0, 5.0, -2.0]);
        let b = Point::new([0.0, 7.0, -1.0]);
        assert_eq!(a.min(&b).coords(), [0.0, 5.0, -2.0]);
        assert_eq!(a.max(&b).coords(), [1.0, 7.0, -1.0]);
    }

    #[test]
    fn point_id_orders_by_arrival() {
        assert!(PointId(3) < PointId(10));
        assert_eq!(PointId::from(7).raw(), 7);
        assert_eq!(format!("{}", PointId(4)), "p4");
    }

    #[test]
    fn indexing_reads_and_writes_coordinates() {
        let mut p = Point::new([1.0, 2.0]);
        p[1] = 9.0;
        assert_eq!(p[0], 1.0);
        assert_eq!(p[1], 9.0);
    }

    #[test]
    fn is_finite_detects_nan_and_inf() {
        assert!(Point::new([1.0, 2.0]).is_finite());
        assert!(!Point::new([f64::NAN, 0.0]).is_finite());
        assert!(!Point::new([0.0, f64::INFINITY]).is_finite());
    }

    #[test]
    fn distance_is_symmetric_in_four_dimensions() {
        let a = Point::new([1.0, -2.0, 3.5, 0.0]);
        let b = Point::new([0.5, 4.0, -1.0, 2.0]);
        assert_eq!(a.dist2(&b), b.dist2(&a));
        assert!(a.dist2(&a) == 0.0);
    }
}
