//! A small FxHash-style hasher.
//!
//! The hot paths of DISC key hash maps by dense integer [`PointId`]s, for
//! which SipHash (the std default) is needlessly slow. This is the classic
//! multiply-rotate mix used by rustc's `FxHasher`, reimplemented here so the
//! workspace stays within its approved dependency set. HashDoS resistance is
//! irrelevant: keys are generated internally, never attacker-controlled.
//!
//! [`PointId`]: crate::point::PointId

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit golden-ratio constant used by the Fx mix.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx hashing state.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the Fx hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::PointId;

    #[test]
    fn maps_roundtrip_values() {
        let mut m: FxHashMap<PointId, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(PointId(i), (i * 3) as u32);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&PointId(i)), Some(&((i * 3) as u32)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn hash_differs_across_nearby_keys() {
        // Not a statistical test, just a smoke check that the mix is not
        // the identity on small integers (which would degrade the map).
        let h = |v: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(v);
            hasher.finish()
        };
        assert_ne!(h(1), h(2));
        assert_ne!(h(1) & 0xffff_0000_0000_0000, 0);
    }

    #[test]
    fn write_handles_unaligned_tails() {
        let h = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_ne!(h(b"abcdefgh"), h(b"abcdefg"));
        assert_ne!(h(b"abcdefghi"), h(b"abcdefgh"));
        assert_eq!(h(b"abc"), h(b"abc"));
    }

    #[test]
    fn sets_deduplicate() {
        let mut s: FxHashSet<PointId> = FxHashSet::default();
        s.insert(PointId(1));
        s.insert(PointId(1));
        s.insert(PointId(2));
        assert_eq!(s.len(), 2);
    }
}
