//! Criterion micro-bench: cost of the tracing instrumentation.
//!
//! Three variants of the same DISC slide workload: tracer disabled (the
//! default — every span site must cost no more than one branch), tracer
//! enabled with per-slide drains (the `--trace-out` configuration), and
//! tracer enabled with provenance recording on top. The disabled/absent
//! gap is the number the "tracing is free when off" claim rests on.

use criterion::{criterion_group, criterion_main, Criterion};
use disc_core::{Disc, DiscConfig};
use disc_telemetry::{ProvenanceEvent, ProvenanceSink, Registry, Tracer};
use disc_window::{datasets, SlidingWindow};
use std::hint::black_box;
use std::sync::Arc;

const WINDOW: usize = 4_000;
const STRIDE: usize = 200;
const EPS: f64 = 0.45;
const TAU: usize = 8;

/// Swallows events so the bench measures emission, not I/O.
struct NullSink;
impl ProvenanceSink for NullSink {
    fn emit(&self, _event: &ProvenanceEvent) {}
}

fn bench_variant<F>(c: &mut Criterion, name: &str, make: F)
where
    F: Fn() -> Disc<2>,
{
    let recs = datasets::dtg_like(WINDOW + STRIDE * 600, 7);
    let drain = name != "disabled";
    c.bench_function(&format!("tracing_overhead/{name}"), |b| {
        let mut w = SlidingWindow::new(recs.clone(), WINDOW, STRIDE);
        let mut m = make();
        m.apply(&w.fill());
        b.iter(|| {
            let batch = match w.advance() {
                Some(b) => b,
                None => {
                    w = SlidingWindow::new(recs.clone(), WINDOW, STRIDE);
                    m = make();
                    let fill = w.fill();
                    m.apply(&fill);
                    w.advance().expect("fresh stream has slides")
                }
            };
            m.apply(&batch);
            if drain {
                // Per-slide drain, exactly as the CLI collects spans.
                black_box(m.drain_spans());
            }
        });
    });
}

fn benches(c: &mut Criterion) {
    bench_variant(c, "disabled", || Disc::new(DiscConfig::new(EPS, TAU)));
    bench_variant(c, "spans", || {
        Disc::new(DiscConfig::new(EPS, TAU)).with_tracer(Tracer::new())
    });
    bench_variant(c, "spans_and_provenance", || {
        let reg = Arc::new(Registry::new().with_provenance(Box::new(NullSink)));
        Disc::new(DiscConfig::new(EPS, TAU))
            .with_recorder(reg)
            .with_tracer(Tracer::new())
    });
}

criterion_group! {
    name = group;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(group);
