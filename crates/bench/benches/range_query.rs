//! Criterion micro-bench: R-tree ε-range queries, plain vs epoch-probed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disc_geom::{Point, PointId};
use disc_index::{ProbeOutcome, RTree};
use disc_window::datasets;

fn build_tree(n: usize) -> (RTree<2>, Vec<Point<2>>) {
    let recs = datasets::dtg_like(n, 7);
    let items: Vec<(PointId, Point<2>)> = recs
        .iter()
        .enumerate()
        .map(|(i, r)| (PointId(i as u64), r.point))
        .collect();
    let queries: Vec<Point<2>> = recs.iter().step_by(97).map(|r| r.point).collect();
    (RTree::bulk_load(items), queries)
}

fn bench_plain_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_query/plain");
    for n in [4_000usize, 16_000] {
        let (mut tree, queries) = build_tree(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut qi = 0usize;
            b.iter(|| {
                let q = &queries[qi % queries.len()];
                qi += 1;
                std::hint::black_box(tree.ball_count(q, 0.45))
            });
        });
    }
    group.finish();
}

fn bench_epoch_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_query/epoch_probe");
    for n in [4_000usize, 16_000] {
        let (mut tree, queries) = build_tree(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut out = ProbeOutcome::default();
            let mut qi = 0usize;
            b.iter(|| {
                // Fresh instance per iteration: measures the probe itself.
                let probe = tree.begin_epoch();
                let q = &queries[qi % queries.len()];
                qi += 1;
                out.clear();
                let mut resolve = |o: u32| o;
                let mut all = |_: PointId| true;
                tree.epoch_probe(probe, q, 0.45, 0, &mut resolve, &mut all, &mut out);
                std::hint::black_box(out.fresh.len())
            });
        });
    }
    group.finish();
}

fn bench_insert_remove(c: &mut Criterion) {
    c.bench_function("range_query/insert_remove_cycle", |b| {
        let (mut tree, _) = build_tree(8_000);
        let mut i = 1_000_000u64;
        b.iter(|| {
            let p = Point::new([50.0 + (i % 97) as f64 * 0.01, 50.0]);
            tree.insert(PointId(i), p);
            assert!(tree.remove(PointId(i), p));
            i += 1;
        });
    });
}

criterion_group!(
    benches,
    bench_plain_query,
    bench_epoch_probe,
    bench_insert_remove
);
criterion_main!(benches);
