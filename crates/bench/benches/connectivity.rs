//! Criterion micro-bench: the MS-BFS / epoch ablation on the connectivity
//! check itself (the Fig. 8 hot path in isolation).
//!
//! Drives DISC over a Maze stream in each of the four optimisation
//! configurations; the dominant per-slide cost is the `M⁻`
//! density-connectedness check, so this isolates §IV's contributions.

use criterion::{criterion_group, criterion_main, Criterion};
use disc_core::{Disc, DiscConfig};
use disc_window::{datasets, SlidingWindow};

const WINDOW: usize = 3_000;
const STRIDE: usize = 150;

fn bench_variant(c: &mut Criterion, name: &str, cfg: DiscConfig) {
    let recs = datasets::maze(WINDOW + STRIDE * 400, 40, 11);
    c.bench_function(&format!("connectivity/{name}"), |b| {
        let mut w = SlidingWindow::new(recs.clone(), WINDOW, STRIDE);
        let mut disc = Disc::new(cfg);
        disc.apply(&w.fill());
        b.iter(|| {
            let batch = match w.advance() {
                Some(batch) => batch,
                None => {
                    w = SlidingWindow::new(recs.clone(), WINDOW, STRIDE);
                    disc = Disc::new(cfg);
                    let fill = w.fill();
                    disc.apply(&fill);
                    w.advance().expect("fresh stream has slides")
                }
            };
            disc.apply(&batch);
        });
    });
}

fn benches(c: &mut Criterion) {
    let cfg = DiscConfig::new(0.6, 6);
    bench_variant(c, "none", cfg.without_msbfs().without_epoch_probe());
    bench_variant(c, "epoch_only", cfg.without_msbfs());
    bench_variant(c, "msbfs_only", cfg.without_epoch_probe());
    bench_variant(c, "both", cfg);
}

criterion_group! {
    name = group;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(group);
