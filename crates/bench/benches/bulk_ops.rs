//! Criterion micro-bench: batched slide mutations vs per-point, and
//! multi-center ε-ball traversal vs repeated single-center queries.
//!
//! Covers stride ratios of 1%, 5% and 10% at windows of 4k and 32k points,
//! mirroring `slide_update.rs` conventions (dtg-like data, ε = 0.45). A
//! final non-timed target prints the `Stats` node-visit counters at the 5%
//! stride so the traversal saving is visible next to the wall-clock numbers.

use std::collections::VecDeque;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disc_geom::{Point, PointId};
use disc_index::RTree;
use disc_window::datasets;

const EPS: f64 = 0.45;
const WINDOWS: [usize; 2] = [4_000, 32_000];
const STRIDE_PCTS: [usize; 3] = [1, 5, 10];

/// Endless stream of stride-sized batches with fresh, increasing ids.
struct StrideStream {
    pts: Vec<Point<2>>,
    pos: usize,
    next_id: u64,
    stride: usize,
}

impl StrideStream {
    fn new(window: usize, stride: usize) -> Self {
        let recs = datasets::dtg_like(window + stride * 64, 7);
        StrideStream {
            pts: recs.iter().map(|r| r.point).collect(),
            pos: 0,
            next_id: 0,
            stride,
        }
    }

    fn next_stride(&mut self) -> Vec<(PointId, Point<2>)> {
        (0..self.stride)
            .map(|_| {
                let p = self.pts[self.pos];
                self.pos = (self.pos + 1) % self.pts.len();
                let id = PointId(self.next_id);
                self.next_id += 1;
                (id, p)
            })
            .collect()
    }
}

/// Builds a window-sized tree plus the queue of strides it holds.
fn fill(
    window: usize,
    stride: usize,
) -> (RTree<2>, VecDeque<Vec<(PointId, Point<2>)>>, StrideStream) {
    let mut stream = StrideStream::new(window, stride);
    let mut queue: VecDeque<Vec<(PointId, Point<2>)>> = VecDeque::new();
    let mut all: Vec<(PointId, Point<2>)> = Vec::with_capacity(window);
    for _ in 0..window / stride {
        let s = stream.next_stride();
        all.extend_from_slice(&s);
        queue.push_back(s);
    }
    (RTree::bulk_load(all), queue, stream)
}

fn bench_slide_mutation(c: &mut Criterion) {
    let mut group = c.benchmark_group("bulk_ops/slide_mutation");
    for window in WINDOWS {
        for pct in STRIDE_PCTS {
            let stride = window * pct / 100;
            let tag = format!("{window}x{pct}pct");
            group.bench_with_input(BenchmarkId::new("per_point", &tag), &stride, |b, _| {
                let (mut tree, mut queue, mut stream) = fill(window, stride);
                b.iter(|| {
                    let incoming = stream.next_stride();
                    for (id, p) in &incoming {
                        tree.insert(*id, *p);
                    }
                    let outgoing = queue.pop_front().expect("window holds strides");
                    for (id, p) in &outgoing {
                        assert!(tree.remove(*id, *p));
                    }
                    queue.push_back(incoming);
                    std::hint::black_box(tree.len())
                });
            });
            group.bench_with_input(BenchmarkId::new("bulk", &tag), &stride, |b, _| {
                let (mut tree, mut queue, mut stream) = fill(window, stride);
                b.iter(|| {
                    let incoming = stream.next_stride();
                    tree.bulk_insert(incoming.clone());
                    let outgoing = queue.pop_front().expect("window holds strides");
                    assert_eq!(tree.bulk_remove(&outgoing), outgoing.len());
                    queue.push_back(incoming);
                    std::hint::black_box(tree.len())
                });
            });
        }
    }
    group.finish();
}

/// One stride's worth of query centers. Taken as a contiguous chunk of the
/// stream, exactly like the COLLECT phases do: a stride is temporally
/// adjacent, so its points are spatially clustered and the multi-center
/// walk can retire centers early.
fn centers_for(tree_pts: &[Point<2>], stride: usize) -> Vec<Point<2>> {
    tree_pts[..stride.min(tree_pts.len())].to_vec()
}

fn bench_ball_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("bulk_ops/ball_queries");
    for window in WINDOWS {
        for pct in STRIDE_PCTS {
            let stride = window * pct / 100;
            let tag = format!("{window}x{pct}pct");
            let recs = datasets::dtg_like(window, 7);
            let pts: Vec<Point<2>> = recs.iter().map(|r| r.point).collect();
            let items: Vec<(PointId, Point<2>)> = pts
                .iter()
                .enumerate()
                .map(|(i, p)| (PointId(i as u64), *p))
                .collect();
            let centers = centers_for(&pts, stride);
            group.bench_with_input(BenchmarkId::new("single_center", &tag), &stride, |b, _| {
                let mut tree = RTree::bulk_load(items.clone());
                b.iter(|| {
                    let mut hits = 0usize;
                    for cpos in &centers {
                        tree.for_each_in_ball(cpos, EPS, |_, _| hits += 1);
                    }
                    std::hint::black_box(hits)
                });
            });
            group.bench_with_input(BenchmarkId::new("multi_center", &tag), &stride, |b, _| {
                let mut tree = RTree::bulk_load(items.clone());
                b.iter(|| {
                    let mut hits = 0usize;
                    tree.for_each_in_balls(&centers, EPS, |_, _, _| hits += 1);
                    std::hint::black_box(hits)
                });
            });
        }
    }
    group.finish();
}

/// Not a timing target: prints the node-visit counters at the 5% stride so
/// the structural saving of the shared traversal is on record alongside the
/// criterion numbers.
fn report_node_visits(_c: &mut Criterion) {
    println!("\nnode visits at 5% stride (Stats counters, one query round)");
    for window in WINDOWS {
        let stride = window / 20;
        let recs = datasets::dtg_like(window, 7);
        let pts: Vec<Point<2>> = recs.iter().map(|r| r.point).collect();
        let items: Vec<(PointId, Point<2>)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (PointId(i as u64), *p))
            .collect();
        let centers = centers_for(&pts, stride);
        let mut tree = RTree::bulk_load(items);

        tree.reset_stats();
        let mut hits_single = 0usize;
        for cpos in &centers {
            tree.for_each_in_ball(cpos, EPS, |_, _| hits_single += 1);
        }
        let per_point = tree.stats().nodes_visited;

        tree.reset_stats();
        let mut hits_multi = 0usize;
        tree.for_each_in_balls(&centers, EPS, |_, _, _| hits_multi += 1);
        let batched = tree.stats().bulk_nodes_visited;

        assert_eq!(hits_single, hits_multi, "traversals must agree");
        let ratio = per_point as f64 / batched.max(1) as f64;
        println!(
            "  window {window:>6}, {len:>5} centers: per-point {per_point:>8} visits, \
             batched {batched:>8} visits ({ratio:.2}x fewer)",
            len = centers.len(),
        );
    }
    println!();
}

criterion_group! {
    name = group;
    config = Criterion::default().sample_size(10);
    targets = bench_slide_mutation, bench_ball_queries, report_node_visits
}
criterion_main!(group);
