//! Criterion micro-bench: one sliding-window update per method.
//!
//! The per-slide counterpart of the paper's Fig. 4 at a fixed 5% stride,
//! for regression tracking of the hot path.

use criterion::{criterion_group, criterion_main, Criterion};
use disc_baselines::{Dbscan, ExtraN, IncDbscan, RhoDbscan, WindowClusterer};
use disc_core::{Disc, DiscConfig};
use disc_window::{datasets, SlidingWindow};

const WINDOW: usize = 4_000;
const STRIDE: usize = 200;
const EPS: f64 = 0.45;
const TAU: usize = 8;

fn bench_method<M, F>(c: &mut Criterion, name: &str, make: F)
where
    M: WindowClusterer<2>,
    F: Fn() -> M,
{
    let recs = datasets::dtg_like(WINDOW + STRIDE * 600, 7);
    c.bench_function(&format!("slide_update/{name}"), |b| {
        // One long stream; each iteration applies the next slide. Setup
        // (fill) happens outside the timed region.
        let mut w = SlidingWindow::new(recs.clone(), WINDOW, STRIDE);
        let mut m = make();
        m.apply(&w.fill());
        b.iter(|| {
            let batch = match w.advance() {
                Some(b) => b,
                None => {
                    // Stream exhausted: restart.
                    w = SlidingWindow::new(recs.clone(), WINDOW, STRIDE);
                    m = make();
                    let fill = w.fill();
                    m.apply(&fill);
                    w.advance().expect("fresh stream has slides")
                }
            };
            m.apply(&batch);
        });
    });
}

fn benches(c: &mut Criterion) {
    bench_method(c, "disc", || Disc::new(DiscConfig::new(EPS, TAU)));
    bench_method(c, "disc_no_bulk", || {
        Disc::new(DiscConfig::new(EPS, TAU).without_bulk_slide())
    });
    bench_method(c, "disc_no_opts", || {
        Disc::new(
            DiscConfig::new(EPS, TAU)
                .without_msbfs()
                .without_epoch_probe()
                .without_bulk_slide(),
        )
    });
    bench_method(c, "incdbscan", || IncDbscan::new(EPS, TAU));
    bench_method(c, "extran", || ExtraN::new(EPS, TAU, WINDOW, STRIDE));
    bench_method(c, "rho2_dbscan", || RhoDbscan::new(EPS, TAU, 0.001));
    bench_method(c, "dbscan_scratch", || Dbscan::new(EPS, TAU));
}

criterion_group! {
    name = group;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(group);
