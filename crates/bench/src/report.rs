//! Plain-text tables and CSV emission for experiment results.

use std::io::Write;
use std::path::Path;

/// A rectangular result table: header row plus data rows, printed aligned
/// to stdout and optionally dumped as CSV under `out/`.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given caption and columns.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "ragged table row");
        self.rows.push(cells);
    }

    /// Renders to an aligned text block.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the aligned table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }

    /// Writes the table as CSV to `out/<stem>.csv`.
    pub fn write_csv(&self, stem: &str) -> std::io::Result<std::path::PathBuf> {
        let dir = Path::new("out");
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{stem}.csv"));
        let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        f.flush()?;
        Ok(path)
    }
}

/// Formats a duration in adaptive units.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1000.0 {
        format!("{us:.1}us")
    } else if us < 1_000_000.0 {
        format!("{:.2}ms", us / 1000.0)
    } else {
        format!("{:.3}s", us / 1e6)
    }
}

/// Formats bytes in adaptive units.
pub fn fmt_bytes(b: usize) -> String {
    if b < 1024 {
        format!("{b}B")
    } else if b < 1024 * 1024 {
        format!("{:.1}KiB", b as f64 / 1024.0)
    } else {
        format!("{:.1}MiB", b as f64 / (1024.0 * 1024.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["method", "time"]);
        t.row(vec!["DISC".into(), "1.2ms".into()]);
        t.row(vec!["IncDBSCAN".into(), "10.5ms".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[3].len(), lines[4].len(), "rows must align");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_are_rejected() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(
            fmt_duration(std::time::Duration::from_micros(500)),
            "500.0us"
        );
        assert_eq!(
            fmt_duration(std::time::Duration::from_millis(12)),
            "12.00ms"
        );
        assert_eq!(fmt_duration(std::time::Duration::from_secs(2)), "2.000s");
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.0MiB");
    }
}
