//! Fig. 10 — DTG: ARI and per-point update latency vs window size.
//!
//! As Fig. 9 but on the DTG-like workload, with DBSCAN's own output as the
//! true labels (the paper does the same, DTG has no ground truth).
//! Expected shape: DBSTREAM is *slow* here (fine-grained clusters force
//! many micro-clusters) and summarisation ARI degrades; DISC holds ARI = 1.

use crate::report::{fmt_duration, Table};
use crate::runner::{measure_with_window, records_needed, tile, Measurement};
use crate::suites::{SEED, SLIDES};
use crate::Scale;
use disc_baselines::{DbStream, DbStreamConfig, Dbscan, EdmStream, EdmStreamConfig, RhoDbscan};
use disc_core::{Disc, DiscConfig};
use disc_geom::{Point, PointId};
use disc_metrics::ari;
use disc_window::datasets;

/// Window multipliers for the sweep.
pub const WINDOW_FACTORS: [f64; 3] = [0.5, 1.0, 2.0];

/// Runs the Fig. 10 suite.
pub fn run(scale: Scale) -> Table {
    let prof = datasets::DTG_PROFILE;
    let mut t = Table::new(
        "Fig. 10: DTG — ARI (vs DBSCAN truth) and per-point latency vs window",
        &["window", "method", "ARI", "latency/point", "p99 slide"],
    );
    for factor in WINDOW_FACTORS {
        let base = (scale.apply(prof.window) as f64 * factor) as usize;
        let (window, stride) = tile(base, (base / 20).max(1));
        let n = records_needed(window, stride, SLIDES);
        let recs = datasets::dtg_like(n, SEED);

        let runs: Vec<(Measurement, disc_window::SlidingWindow<2>)> = vec![
            measure_with_window(
                DbStream::new(DbStreamConfig {
                    radius: prof.eps * 1.1,
                    ..DbStreamConfig::default()
                }),
                &recs,
                window,
                stride,
                SLIDES,
            ),
            measure_with_window(
                EdmStream::new(EdmStreamConfig {
                    radius: prof.eps * 1.1,
                    delta: prof.eps * 3.0,
                    ..EdmStreamConfig::default()
                }),
                &recs,
                window,
                stride,
                SLIDES,
            ),
            measure_with_window(
                RhoDbscan::new(prof.eps, prof.tau, 0.1),
                &recs,
                window,
                stride,
                SLIDES,
            ),
            measure_with_window(
                RhoDbscan::new(prof.eps, prof.tau, 0.001),
                &recs,
                window,
                stride,
                SLIDES,
            ),
            measure_with_window(
                Disc::new(DiscConfig::new(prof.eps, prof.tau)),
                &recs,
                window,
                stride,
                SLIDES,
            ),
        ];
        let names = ["DBSTREAM", "EDMStream", "rho2(0.1)", "rho2(0.001)", "DISC"];

        // DBSCAN truth on the final window (same for every method: the
        // measured slide count is identical).
        let w = &runs[0].1;
        let pts: Vec<(PointId, Point<2>)> = w.current().collect();
        let (truth_map, _) = Dbscan::run(&pts, prof.eps, prof.tau);
        let mut ids: Vec<PointId> = pts.iter().map(|(id, _)| *id).collect();
        ids.sort_unstable();
        let truth: Vec<i64> = ids.iter().map(|id| truth_map[id]).collect();

        for (i, (m, _)) in runs.iter().enumerate() {
            let pred: Vec<i64> = m.assignments.iter().map(|(_, l)| *l).collect();
            t.row(vec![
                window.to_string(),
                names[i].to_string(),
                format!("{:.3}", ari(&truth, &pred)),
                fmt_duration(m.per_point),
                fmt_duration(m.p99_slide()),
            ]);
        }
    }
    t.print();
    let _ = t.write_csv("fig10_dtg_quality");
    t
}
