//! Extension experiment — spatial-backend ablation.
//!
//! DISC's COLLECT/CLUSTER phases only see the [`SpatialBackend`] trait, so
//! the R-tree and the uniform grid are interchangeable. This suite drives
//! both backends over the same DTG workload across window and stride sizes
//! and compares the index work (range searches, node/cell visits) and the
//! per-phase slide latency. Besides the usual CSV, it writes
//! `out/backend_ablation.json` with the per-phase duration breakdown so
//! downstream tooling can plot collect/cluster/adoption shares.
//!
//! [`SpatialBackend`]: disc_index::SpatialBackend

use crate::report::{fmt_duration, Table};
use crate::runner::{records_needed, slides_for, tile};
use crate::suites::SEED;
use crate::Scale;
use disc_core::{Disc, DiscConfig, SlideStats};
use disc_geom::PointId;
use disc_index::{CurveIndex, GridIndex, SpatialBackend};
use disc_telemetry::{HistSnapshot, LogHistogram, MemoryFootprint};
use disc_window::{datasets, Record, SlidingWindow};
use std::io::Write;
use std::time::Duration;

/// Averaged per-slide measurements for one backend on one configuration.
struct Run {
    backend: &'static str,
    window: usize,
    stride: usize,
    /// Worker threads the engine ran with (1 = sequential).
    threads: usize,
    /// Mean CPU utilization over the measurement: process CPU time /
    /// wall time, so 1.0 = one core fully busy and a perfectly scaling
    /// width-4 run reads ~4.0. 0.0 when the platform cannot report it
    /// (no procfs).
    cpu_util: f64,
    /// Total measured slides — `REPS` fresh passes merged, so this is the
    /// sample count behind the percentiles, not the stream length.
    slides: u32,
    avg_slide: Duration,
    /// Exact worst slide, accumulated directly — the headline summary must
    /// not inherit any histogram bucketing, however small.
    max_slide: Duration,
    /// Per-slide latency distribution (ns) — tails, not just the mean.
    latency: HistSnapshot,
    avg_collect: Duration,
    avg_cluster: Duration,
    avg_adoption: Duration,
    searches_per_slide: f64,
    visits_per_slide: f64,
    /// Stride-eviction cost (ns per evicted point): tearing the oldest
    /// stride out of a `window`-sized index, measured in isolation so the
    /// number reflects the backend's bulk-remove path alone — the curve
    /// backend's teardown-vs-per-node-delete claim lives here.
    evict_ns_per_point: f64,
    /// Largest accounted engine footprint observed at any slide boundary
    /// across the repetitions (the `MemoryFootprint` estimate, bytes).
    peak_bytes: u64,
    /// ARI of the engine's final window against a from-scratch DBSCAN
    /// oracle over the same points — an advisory quality column (the
    /// engine is exact, so anything below 1.0 is a finding, but the gate
    /// never judges it).
    quality_ari: f64,
    /// Noise fraction of the final window. Advisory context for the ARI:
    /// a stream that is mostly noise makes agreement cheap.
    noise_frac: f64,
}

impl Run {
    /// Peak footprint normalised per window point — the paper-style memory
    /// curve's y-axis, comparable across window sizes.
    fn bytes_per_point(&self) -> f64 {
        self.peak_bytes as f64 / self.window.max(1) as f64
    }
}

/// Process CPU time (user + system) from procfs; `None` where there is no
/// `/proc` (the suite then reports utilization 0.0 instead of guessing).
fn proc_cpu_time() -> Option<Duration> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // The comm field (2) may contain spaces; fields are reliable only
    // after its closing paren. utime/stime are fields 14/15 (1-based),
    // i.e. 11 and 12 tokens past the state field, in USER_HZ ticks
    // (100 on every Linux ABI this can run on).
    let rest = stat.rsplit_once(')')?.1;
    let mut it = rest.split_whitespace();
    let utime: u64 = it.nth(11)?.parse().ok()?;
    let stime: u64 = it.next()?.parse().ok()?;
    Some(Duration::from_millis((utime + stime) * 10))
}

/// Repetitions per configuration: tail percentiles from one 5-slide pass
/// are noise (cf. `measure_repeated`), and the committed `BENCH_disc.json`
/// feeds a regression gate, so each row merges the latency distributions
/// of this many fresh passes over the same stream.
const REPS: u32 = 3;

/// Measures the stride-eviction cost in isolation: fill the index with the
/// first `window` points (the bulk path, as the engine would), then time
/// one `bulk_remove` of the oldest stride. Best of `REPS` builds, in ns per
/// point actually removed — the slide loop cannot separate this from
/// COLLECT, so it gets its own clock.
fn evict_cost_ns<const D: usize, B: SpatialBackend<D>>(
    recs: &[Record<D>],
    eps: f64,
    window: usize,
    stride: usize,
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let items: Vec<(PointId, disc_geom::Point<D>)> = recs[..window]
            .iter()
            .enumerate()
            .map(|(i, r)| (PointId(i as u64), r.point))
            .collect();
        let evict = items[..stride].to_vec();
        let mut idx = B::from_batch(eps, items);
        let started = std::time::Instant::now();
        let removed = idx.bulk_remove(&evict);
        let ns = started.elapsed().as_nanos() as f64 / removed.max(1) as f64;
        best = best.min(ns);
    }
    best
}

fn drive<const D: usize, B: SpatialBackend<D>>(
    recs: &[Record<D>],
    eps: f64,
    tau: usize,
    window: usize,
    stride: usize,
    threads: usize,
    max_slides: u32,
) -> Run {
    let cpu_before = proc_cpu_time();
    let wall = std::time::Instant::now();

    let mut slides = 0u32;
    let mut total = Duration::ZERO;
    let mut max_slide = Duration::ZERO;
    let mut hist = LogHistogram::new();
    let mut collect = Duration::ZERO;
    let mut cluster = Duration::ZERO;
    let mut adoption = Duration::ZERO;
    let mut searches = 0u64;
    let mut visits = 0u64;
    let mut peak_bytes = 0u64;
    let mut last_window: Option<Vec<(PointId, disc_geom::Point<D>)>> = None;
    let mut last_assignments: Option<Vec<(PointId, i64)>> = None;
    for _ in 0..REPS {
        let mut w = SlidingWindow::new(recs.to_vec(), window, stride);
        let mut disc: Disc<D, B> =
            Disc::with_index(DiscConfig::new(eps, tau).with_threads(threads));
        disc.apply(&w.fill());
        peak_bytes = peak_bytes.max(disc.mem_bytes());
        let mut rep_slides = 0u32;
        while rep_slides < max_slides {
            let Some(batch) = w.advance() else { break };
            let s: SlideStats = disc.apply(&batch);
            total += s.elapsed;
            max_slide = max_slide.max(s.elapsed);
            hist.record(s.elapsed.as_nanos() as u64);
            collect += s.collect_time;
            cluster += s.cluster_time;
            adoption += s.adoption_time;
            searches += s.index.range_searches;
            visits += s.index.nodes_visited + s.index.bulk_nodes_visited;
            // Outside the timed section: accounting must not cost latency.
            peak_bytes = peak_bytes.max(disc.mem_bytes());
            rep_slides += 1;
        }
        slides += rep_slides;
        last_window = Some(w.current().collect());
        last_assignments = Some(disc.assignments());
    }
    let wall = wall.elapsed();
    let cpu_util = match (cpu_before, proc_cpu_time()) {
        (Some(a), Some(b)) if wall > Duration::ZERO => {
            b.saturating_sub(a).as_secs_f64() / wall.as_secs_f64()
        }
        _ => 0.0,
    };
    // Advisory quality: score the last rep's final window against a
    // from-scratch DBSCAN oracle (outside the timed section).
    let (quality_ari, noise_frac) = match (&last_window, &last_assignments) {
        (Some(window), Some(assignments)) if !window.is_empty() => {
            let (oracle, _) = disc_baselines::Dbscan::<D>::run(window, eps, tau);
            let engine_of: disc_geom::FxHashMap<PointId, i64> =
                assignments.iter().copied().collect();
            let (mut truth, mut pred) = (Vec::new(), Vec::new());
            for (id, _) in window {
                truth.push(oracle.get(id).copied().unwrap_or(-1));
                pred.push(engine_of.get(id).copied().unwrap_or(-1));
            }
            (
                disc_metrics::ari(&truth, &pred),
                disc_metrics::noise_fraction(assignments),
            )
        }
        _ => (0.0, 0.0),
    };
    let n = slides.max(1);
    Run {
        backend: B::NAME,
        window,
        stride,
        threads,
        cpu_util,
        slides,
        avg_slide: total / n,
        max_slide,
        latency: hist.snapshot(),
        avg_collect: collect / n,
        avg_cluster: cluster / n,
        avg_adoption: adoption / n,
        searches_per_slide: searches as f64 / n as f64,
        visits_per_slide: visits as f64 / n as f64,
        evict_ns_per_point: 0.0,
        peak_bytes,
        quality_ari,
        noise_frac,
    }
}

/// The worker widths every configuration is measured at. Width 1 is the
/// sequential engine (the regression gate's anchor); the wide rows show
/// what the parallel slide engine buys on this host.
const THREAD_WIDTHS: [usize; 3] = [1, 2, 4];

/// Drives all three backends over the five window/stride configurations at
/// each worker width. The eviction microbenchmark is width-independent
/// (bulk_remove is sequential on every backend), so it runs once per
/// (backend, config) and is stamped onto each width's row.
fn measure_configs(scale: Scale) -> Vec<Run> {
    let prof = datasets::DTG_PROFILE;
    let base = scale.apply(prof.window);
    let mut runs: Vec<Run> = Vec::new();
    for (wf, sf) in [(0.5, 0.05), (0.5, 0.2), (1.0, 0.05), (1.0, 0.2), (1.0, 0.5)] {
        let target = ((base as f64) * wf) as usize;
        let (window, stride) = tile(target.max(64), ((target as f64 * sf) as usize).max(1));
        let slides = slides_for(stride).min(40);
        let n = records_needed(window, stride, slides);
        let recs = datasets::dtg_like(n, SEED);
        let evict = [
            evict_cost_ns::<2, disc_index::RTree<2>>(&recs, prof.eps, window, stride),
            evict_cost_ns::<2, GridIndex<2>>(&recs, prof.eps, window, stride),
            evict_cost_ns::<2, CurveIndex<2>>(&recs, prof.eps, window, stride),
        ];
        for threads in THREAD_WIDTHS {
            runs.push(Run {
                evict_ns_per_point: evict[0],
                ..drive::<2, disc_index::RTree<2>>(
                    &recs, prof.eps, prof.tau, window, stride, threads, slides,
                )
            });
            runs.push(Run {
                evict_ns_per_point: evict[1],
                ..drive::<2, GridIndex<2>>(
                    &recs, prof.eps, prof.tau, window, stride, threads, slides,
                )
            });
            runs.push(Run {
                evict_ns_per_point: evict[2],
                ..drive::<2, CurveIndex<2>>(
                    &recs, prof.eps, prof.tau, window, stride, threads, slides,
                )
            });
        }
    }
    runs
}

/// Re-measures the suite and renders the headline summary **without**
/// touching `BENCH_disc.json` — the regression gate's fresh side.
pub fn fresh_summary(scale: Scale) -> String {
    summary_string(&measure_configs(scale))
}

/// Runs the backend ablation across window/stride sizes.
pub fn run(scale: Scale) -> Table {
    let mut t = Table::new(
        "Extension: R-tree vs grid vs curve backend (DTG)",
        &[
            "backend", "window", "stride", "thr", "cpu", "slide", "p50", "p99", "collect",
            "cluster", "adoption", "searches", "visits", "evict/pt", "peak mem", "B/pt",
        ],
    );
    let runs = measure_configs(scale);

    for r in &runs {
        t.row(vec![
            r.backend.to_string(),
            r.window.to_string(),
            r.stride.to_string(),
            r.threads.to_string(),
            format!("{:.2}", r.cpu_util),
            fmt_duration(r.avg_slide),
            fmt_duration(Duration::from_nanos(r.latency.p50)),
            fmt_duration(Duration::from_nanos(r.latency.p99)),
            fmt_duration(r.avg_collect),
            fmt_duration(r.avg_cluster),
            fmt_duration(r.avg_adoption),
            format!("{:.0}", r.searches_per_slide),
            format!("{:.0}", r.visits_per_slide),
            format!("{:.0}ns", r.evict_ns_per_point),
            crate::report::fmt_bytes(r.peak_bytes as usize),
            format!("{:.0}", r.bytes_per_point()),
        ]);
    }
    t.print();
    let _ = t.write_csv("backend_ablation");
    let _ = write_json(&runs);
    // Unit tests run this suite at tiny scale; skip the headline file so
    // `cargo test` never clobbers the committed release-run numbers.
    if !cfg!(test) {
        let _ = write_bench_summary(&runs);
    }
    t
}

/// Hand-rolled JSON report with the per-phase duration breakdown
/// (satellite of the bench harness; no serde in the workspace).
fn write_json(runs: &[Run]) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("out");
    std::fs::create_dir_all(dir)?;
    let path = dir.join("backend_ablation.json");
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
    writeln!(f, "[")?;
    for (i, r) in runs.iter().enumerate() {
        let sep = if i + 1 == runs.len() { "" } else { "," };
        writeln!(
            f,
            "  {{\"backend\": \"{}\", \"window\": {}, \"stride\": {}, \"threads\": {}, \
             \"cpu_util\": {:.2}, \"slides\": {}, \
             \"avg_slide_us\": {:.3}, \"avg_collect_us\": {:.3}, \"avg_cluster_us\": {:.3}, \
             \"avg_adoption_us\": {:.3}, \"searches_per_slide\": {:.1}, \
             \"visits_per_slide\": {:.1}, \"evict_ns_per_point\": {:.1}}}{}",
            r.backend,
            r.window,
            r.stride,
            r.threads,
            r.cpu_util,
            r.slides,
            r.avg_slide.as_secs_f64() * 1e6,
            r.avg_collect.as_secs_f64() * 1e6,
            r.avg_cluster.as_secs_f64() * 1e6,
            r.avg_adoption.as_secs_f64() * 1e6,
            r.searches_per_slide,
            r.visits_per_slide,
            r.evict_ns_per_point,
            sep,
        )?;
    }
    writeln!(f, "]")?;
    f.flush()?;
    Ok(path)
}

/// Machine-readable headline summary at the repo root (`BENCH_disc.json`),
/// one record per (suite, backend, window, stride, threads) with the tail
/// latencies.
/// CI and regression tooling diff this file across commits; it deliberately
/// lives next to the sources rather than under `out/` with the bulky
/// per-suite reports.
fn write_bench_summary(runs: &[Run]) -> std::io::Result<std::path::PathBuf> {
    // Anchor to the workspace root so the path is independent of the
    // working directory the harness was launched from.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_disc.json");
    write_bench_summary_to(runs, &path)
}

fn write_bench_summary_to(
    runs: &[Run],
    path: &std::path::Path,
) -> std::io::Result<std::path::PathBuf> {
    std::fs::write(path, summary_string(runs))?;
    Ok(path.to_path_buf())
}

/// Renders the headline summary (`BENCH_disc.json` schema). `max_slide_us`
/// comes from the run's direct accumulator, never the latency histogram,
/// so the reported worst case is exact regardless of bucket resolution.
fn summary_string(runs: &[Run]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("[\n");
    for (i, r) in runs.iter().enumerate() {
        let sep = if i + 1 == runs.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "  {{\"suite\": \"backend_ablation\", \"backend\": \"{}\", \"window\": {}, \
             \"stride\": {}, \"threads\": {}, \"slides\": {}, \"p50_slide_us\": {:.3}, \
             \"p99_slide_us\": {:.3}, \"max_slide_us\": {:.3}, \"searches_per_slide\": {:.1}, \
             \"cpu_util\": {:.2}, \"evict_ns_per_point\": {:.1}, \"peak_bytes\": {}, \
             \"bytes_per_point\": {:.1}, \"quality_ari\": {:.4}, \"noise_frac\": {:.4}}}{}",
            r.backend,
            r.window,
            r.stride,
            r.threads,
            r.slides,
            r.latency.p50 as f64 / 1e3,
            r.latency.p99 as f64 / 1e3,
            r.max_slide.as_secs_f64() * 1e6,
            r.searches_per_slide,
            r.cpu_util,
            r.evict_ns_per_point,
            r.peak_bytes,
            r.bytes_per_point(),
            r.quality_ari,
            r.noise_frac,
            sep,
        );
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dev-loop profiling of the acceptance row (window=8000, stride=1600);
    /// run with `--ignored --nocapture` in release to iterate on eviction
    /// cost without re-measuring the full 45-row suite.
    #[test]
    #[ignore]
    fn evict_profile_acceptance_row() {
        let recs = datasets::dtg_like(8000, SEED);
        for _ in 0..3 {
            let r = evict_cost_ns::<2, disc_index::RTree<2>>(&recs, 0.45, 8000, 1600);
            let g = evict_cost_ns::<2, GridIndex<2>>(&recs, 0.45, 8000, 1600);
            let c = evict_cost_ns::<2, CurveIndex<2>>(&recs, 0.45, 8000, 1600);
            eprintln!("rtree={r:.1}ns grid={g:.1}ns curve={c:.1}ns");
        }
    }

    #[test]
    fn small_scale_run_measures_all_backends() {
        let t = run(Scale(0.1));
        assert_eq!(t.rows.len(), 45, "5 configs x 3 backends x 3 widths");
        let backends: Vec<&str> = t.rows.iter().map(|r| r[0].as_str()).collect();
        assert!(
            backends.contains(&"rtree")
                && backends.contains(&"grid")
                && backends.contains(&"curve")
        );
        let widths: Vec<&str> = t.rows.iter().map(|r| r[3].as_str()).collect();
        assert!(widths.contains(&"1") && widths.contains(&"2") && widths.contains(&"4"));
        let json = std::fs::read_to_string("out/backend_ablation.json").unwrap();
        assert!(json.contains("\"avg_collect_us\""));
        assert!(json.contains("\"threads\""));
        assert!(json.contains("\"evict_ns_per_point\""));
        assert!(json.trim_start().starts_with('['));
    }

    #[test]
    fn bench_summary_has_the_headline_schema() {
        let recs = datasets::dtg_like(900, SEED);
        let runs = vec![
            drive::<2, disc_index::RTree<2>>(&recs, 0.5, 4, 500, 100, 1, 4),
            drive::<2, GridIndex<2>>(&recs, 0.5, 4, 500, 100, 2, 4),
            drive::<2, CurveIndex<2>>(&recs, 0.5, 4, 500, 100, 4, 4),
        ];
        let path = std::env::temp_dir().join("disc_bench_summary_test.json");
        write_bench_summary_to(&runs, &path).unwrap();
        let summary = std::fs::read_to_string(&path).unwrap();
        assert!(summary.trim_start().starts_with('['));
        assert_eq!(
            summary.matches("\"suite\": \"backend_ablation\"").count(),
            3
        );
        assert_eq!(summary.matches("\"backend\": \"rtree\"").count(), 1);
        assert_eq!(summary.matches("\"backend\": \"grid\"").count(), 1);
        assert_eq!(summary.matches("\"backend\": \"curve\"").count(), 1);
        assert_eq!(summary.matches("\"threads\": 1").count(), 1);
        assert_eq!(summary.matches("\"threads\": 2").count(), 1);
        assert_eq!(summary.matches("\"threads\": 4").count(), 1);
        for key in [
            "p50_slide_us",
            "p99_slide_us",
            "max_slide_us",
            "searches_per_slide",
            "cpu_util",
            "evict_ns_per_point",
            "peak_bytes",
            "bytes_per_point",
            "quality_ari",
            "noise_frac",
        ] {
            assert!(summary.contains(&format!("\"{key}\"")), "missing {key}");
        }
        // Every backend accounts its memory, so no row may report zero.
        assert!(!summary.contains("\"peak_bytes\": 0,"), "{summary}");
    }

    /// On Linux the CPU clock is available and a busy measurement reads a
    /// plausible utilization; elsewhere the suite reports exactly 0.0.
    #[test]
    fn cpu_utilization_is_measured_or_cleanly_absent() {
        let recs = datasets::dtg_like(1500, SEED);
        let r = drive::<2, GridIndex<2>>(&recs, 0.5, 4, 800, 200, 1, 3);
        if proc_cpu_time().is_some() {
            // USER_HZ ticks are 10ms; a short run can round to 0, but it
            // can never exceed the machine (with slack for tick rounding).
            let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
            assert!(
                r.cpu_util >= 0.0 && r.cpu_util <= cores as f64 + 1.0,
                "implausible utilization {}",
                r.cpu_util
            );
        } else {
            assert_eq!(r.cpu_util, 0.0);
        }
    }

    /// The gate's fresh side round-trips through the gate's own parser,
    /// and the reported max is the exact accumulator (never below the
    /// histogram's conservative p99).
    #[test]
    fn fresh_summary_round_trips_through_the_compare_parser() {
        let text = fresh_summary(Scale(0.05));
        let rows = crate::compare::parse_rows(&text).unwrap();
        assert_eq!(rows.len(), 45, "5 configs x 3 backends x 3 widths");
        for r in &rows {
            assert!(r.p50_us > 0.0);
            assert!(r.p50_us <= r.p99_us + 1e-6);
            assert!(
                r.p99_us <= r.max_us + 1e-6,
                "{}: p99 exceeds exact max",
                r.key()
            );
            assert!(THREAD_WIDTHS.contains(&(r.threads as usize)), "{}", r.key());
        }
        // Identical measurements always pass their own gate.
        assert!(crate::compare::compare(&rows, &rows, 0.25).passed());
    }
}
