//! Fig. 9 — Maze: ARI and per-point update latency vs window size.
//!
//! Methods: DBSTREAM, EDMStream (summarisation, insertion-only),
//! ρ₂-DBSCAN with ρ = 0.1 (low accuracy) and ρ = 0.001 (high accuracy),
//! and DISC. Truth is the Maze generator's per-trajectory labels.
//! Expected shape: summarisation methods are fastest but their ARI decays
//! as the window grows; ρ₂ and DISC hold ARI ≈ 1 with DISC faster.

use crate::report::{fmt_duration, Table};
use crate::runner::{measure_with_window, records_needed, tile, Measurement};
use crate::suites::{SEED, SLIDES};
use crate::Scale;
use disc_baselines::{DbStream, DbStreamConfig, EdmStream, EdmStreamConfig, RhoDbscan};
use disc_core::{Disc, DiscConfig};
use disc_metrics::ari;
use disc_window::datasets;

/// Window multipliers for the sweep.
pub const WINDOW_FACTORS: [f64; 3] = [0.5, 1.0, 2.0];

fn quality(m: &Measurement, w: &disc_window::SlidingWindow<2>) -> f64 {
    let truth: Vec<i64> = w
        .current_truth()
        .map(|(_, t)| t.map(|v| v as i64).unwrap_or(-1))
        .collect();
    let pred: Vec<i64> = m.assignments.iter().map(|(_, l)| *l).collect();
    ari(&truth, &pred)
}

/// Runs the Fig. 9 suite.
pub fn run(scale: Scale) -> Table {
    let prof = datasets::MAZE_PROFILE;
    let mut t = Table::new(
        "Fig. 9: Maze — ARI and per-point update latency vs window",
        &["window", "method", "ARI", "latency/point", "p99 slide"],
    );
    for factor in WINDOW_FACTORS {
        let base = (scale.apply(prof.window) as f64 * factor) as usize;
        let (window, stride) = tile(base, (base / 20).max(1));
        let n = records_needed(window, stride, SLIDES);
        let recs = datasets::maze(n, 60, SEED);

        let runs: Vec<(Measurement, disc_window::SlidingWindow<2>)> = vec![
            measure_with_window(
                DbStream::new(DbStreamConfig {
                    radius: prof.eps * 1.1,
                    ..DbStreamConfig::default()
                }),
                &recs,
                window,
                stride,
                SLIDES,
            ),
            measure_with_window(
                EdmStream::new(EdmStreamConfig {
                    radius: prof.eps * 1.1,
                    delta: prof.eps * 3.0,
                    ..EdmStreamConfig::default()
                }),
                &recs,
                window,
                stride,
                SLIDES,
            ),
            measure_with_window(
                RhoDbscan::new(prof.eps, prof.tau, 0.1),
                &recs,
                window,
                stride,
                SLIDES,
            ),
            measure_with_window(
                RhoDbscan::new(prof.eps, prof.tau, 0.001),
                &recs,
                window,
                stride,
                SLIDES,
            ),
            measure_with_window(
                Disc::new(DiscConfig::new(prof.eps, prof.tau)),
                &recs,
                window,
                stride,
                SLIDES,
            ),
        ];
        let names = ["DBSTREAM", "EDMStream", "rho2(0.1)", "rho2(0.001)", "DISC"];
        for (i, (m, w)) in runs.iter().enumerate() {
            t.row(vec![
                window.to_string(),
                names[i].to_string(),
                format!("{:.3}", quality(m, w)),
                fmt_duration(m.per_point),
                fmt_duration(m.p99_slide()),
            ]);
        }
    }
    t.print();
    let _ = t.write_csv("fig9_maze_quality");
    t
}
