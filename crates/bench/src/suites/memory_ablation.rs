//! Memory ablation — DISC vs EXTRA-N resident state at equal windows.
//!
//! The paper's efficiency argument (its memory figure) is that EXTRA-N
//! must *store* every point's neighborhood to answer slides, so its
//! resident state grows much faster than DISC's, which keeps only the
//! window points, the spatial index and the cluster structure. Both
//! engines now account their bytes through the same `MemoryFootprint`
//! trait, so this suite compares like with like: the peak accounted
//! footprint over a driven stream, per window size, on the same DTG
//! workload — plus the per-point cost, which is the curve the paper
//! plots.

use crate::report::{fmt_bytes, Table};
use crate::runner::{measure, records_needed, tile};
use crate::suites::{SEED, SLIDES};
use crate::Scale;
use disc_baselines::ExtraN;
use disc_core::{Disc, DiscConfig};
use disc_window::datasets;

/// Window multipliers relative to the profile default, as in Fig. 5.
pub const WINDOW_FACTORS: [f64; 4] = [0.5, 1.0, 2.0, 4.0];

/// One window size's peak footprints.
pub struct MemRun {
    /// Window size driven.
    pub window: usize,
    /// Stride driven (5% of the window, tiled).
    pub stride: usize,
    /// EXTRA-N's peak accounted bytes over the run.
    pub extran_peak: usize,
    /// DISC's peak accounted bytes over the run.
    pub disc_peak: usize,
}

impl MemRun {
    /// How many times more state EXTRA-N holds than DISC.
    pub fn ratio(&self) -> f64 {
        self.extran_peak as f64 / self.disc_peak.max(1) as f64
    }
}

/// Measures both engines at every window factor on the DTG analogue.
pub fn measure_windows(scale: Scale) -> Vec<MemRun> {
    let prof = datasets::DTG_PROFILE;
    let mut runs = Vec::new();
    for factor in WINDOW_FACTORS {
        let base = (scale.apply(prof.window) as f64 * factor) as usize;
        let (window, stride) = tile(base.max(64), (base / 20).max(1));
        let n = records_needed(window, stride, SLIDES);
        let recs = datasets::dtg_like(n, SEED);
        let exn = measure(
            ExtraN::new(prof.eps, prof.tau, window, stride),
            &recs,
            window,
            stride,
            SLIDES,
        );
        let disc = measure(
            Disc::new(DiscConfig::new(prof.eps, prof.tau)),
            &recs,
            window,
            stride,
            SLIDES,
        );
        runs.push(MemRun {
            window,
            stride,
            extran_peak: exn.peak_memory,
            disc_peak: disc.peak_memory,
        });
    }
    runs
}

/// Runs the memory ablation suite.
pub fn run(scale: Scale) -> Table {
    let mut t = Table::new(
        "Memory ablation: DISC vs EXTRA-N peak footprint (DTG, stride 5%)",
        &[
            "window",
            "stride",
            "EXTRA-N peak",
            "DISC peak",
            "EXTRA-N B/pt",
            "DISC B/pt",
            "ratio",
        ],
    );
    let runs = measure_windows(scale);
    for r in &runs {
        t.row(vec![
            r.window.to_string(),
            r.stride.to_string(),
            fmt_bytes(r.extran_peak),
            fmt_bytes(r.disc_peak),
            format!("{:.0}", r.extran_peak as f64 / r.window as f64),
            format!("{:.0}", r.disc_peak as f64 / r.window as f64),
            format!("{:.2}x", r.ratio()),
        ]);
    }
    t.print();
    if let Some(last) = runs.last() {
        println!(
            "headline: at window {}, EXTRA-N holds {:.2}x DISC's state \
             ({} vs {}) — the paper's memory-efficiency claim",
            last.window,
            last.ratio(),
            fmt_bytes(last.extran_peak),
            fmt_bytes(last.disc_peak),
        );
    }
    let _ = t.write_csv("memory_ablation");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance criterion: at every window size, DISC's accounted
    /// peak is strictly below EXTRA-N's at the same window — stored
    /// neighborhoods cost more than an index, at any scale.
    #[test]
    fn disc_stays_strictly_below_extran_at_equal_windows() {
        let runs = measure_windows(Scale(0.2));
        assert_eq!(runs.len(), WINDOW_FACTORS.len());
        for r in &runs {
            assert!(r.extran_peak > 0 && r.disc_peak > 0, "both sides account");
            assert!(
                r.disc_peak < r.extran_peak,
                "window {}: DISC {} must undercut EXTRA-N {}",
                r.window,
                r.disc_peak,
                r.extran_peak
            );
        }
    }

    #[test]
    fn table_has_one_row_per_window_factor() {
        let t = run(Scale(0.1));
        assert_eq!(t.rows.len(), WINDOW_FACTORS.len());
        for row in &t.rows {
            assert!(row[6].ends_with('x'), "ratio column renders: {row:?}");
        }
    }
}
