//! Extension experiment — the §IV materialised-graph strawman, measured.
//!
//! The paper rejects materialising the ε-adjacency graph because of its
//! maintenance cost. [`GraphDisc`] implements that rejected design; this
//! suite compares it against DISC across ε on the DTG workload: the graph
//! variant eliminates nearly all range searches, but its memory and its
//! per-slide list-surgery cost inflate with the neighbourhood size while
//! DISC's stay flat.
//!
//! [`GraphDisc`]: disc_core::GraphDisc

use crate::report::{fmt_bytes, fmt_duration, Table};
use crate::runner::{records_needed, tile};
use crate::suites::{SEED, SLIDES};
use crate::Scale;
use disc_core::{Disc, DiscConfig, GraphDisc};
use disc_window::{datasets, SlidingWindow};
use std::time::{Duration, Instant};

/// Runs the graph-materialisation ablation.
pub fn run(scale: Scale) -> Table {
    let prof = datasets::DTG_PROFILE;
    let mut t = Table::new(
        "Extension: DISC vs materialised-graph DISC (DTG, stride 5%)",
        &[
            "eps",
            "DISC/slide",
            "graph/slide",
            "DISC searches",
            "graph searches",
            "DISC mem",
            "graph mem",
        ],
    );
    let base = scale.apply(prof.window);
    let (window, stride) = tile(base, (base / 20).max(1));
    let n = records_needed(window, stride, SLIDES);
    let recs = datasets::dtg_like(n, SEED);

    for factor in [0.5, 1.0, 2.0, 4.0] {
        let eps = prof.eps * factor;

        let mut w = SlidingWindow::new(recs.clone(), window, stride);
        let mut disc = Disc::new(DiscConfig::new(eps, prof.tau));
        disc.apply(&w.fill());
        let s0 = disc.index_stats().range_searches;
        let mut disc_time = Duration::ZERO;
        let mut slides = 0u32;
        while slides < SLIDES {
            let Some(b) = w.advance() else { break };
            let t0 = Instant::now();
            disc.apply(&b);
            disc_time += t0.elapsed();
            slides += 1;
        }
        let disc_searches = (disc.index_stats().range_searches - s0) as f64 / slides.max(1) as f64;

        let mut w = SlidingWindow::new(recs.clone(), window, stride);
        let mut graph = GraphDisc::new(DiscConfig::new(eps, prof.tau));
        graph.apply(&w.fill());
        let g0 = graph.range_searches();
        let mut graph_time = Duration::ZERO;
        let mut gslides = 0u32;
        while gslides < SLIDES {
            let Some(b) = w.advance() else { break };
            let t0 = Instant::now();
            graph.apply(&b);
            graph_time += t0.elapsed();
            gslides += 1;
        }
        let graph_searches = (graph.range_searches() - g0) as f64 / gslides.max(1) as f64;

        t.row(vec![
            format!("{eps:.3}"),
            fmt_duration(disc_time / slides.max(1)),
            fmt_duration(graph_time / gslides.max(1)),
            format!("{disc_searches:.0}"),
            format!("{graph_searches:.0}"),
            fmt_bytes(disc.window_len() * 72),
            fmt_bytes(graph.memory_bytes()),
        ]);
    }
    t.print();
    let _ = t.write_csv("graph_ablation");
    t
}
