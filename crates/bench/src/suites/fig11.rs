//! Fig. 11 — update latency with varying ε: DISC vs ρ₂-DBSCAN.
//!
//! Expected shape: DISC wins at small ε (high resolution, where the grid
//! method's cell population explodes); ρ₂ catches up or overtakes only at
//! distance thresholds so large that the clustering collapses into one
//! blob (the paper deems that regime useless).

use crate::report::{fmt_duration, Table};
use crate::runner::{measure, records_needed, tile};
use crate::suites::{SEED, SLIDES};
use crate::Scale;
use disc_baselines::RhoDbscan;
use disc_core::{Disc, DiscConfig};
use disc_window::datasets;
use disc_window::Record;

fn sweep<const D: usize>(
    dataset: &str,
    gen: impl Fn(usize) -> Vec<Record<D>>,
    window_base: usize,
    tau: usize,
    eps_values: &[f64],
    scale: Scale,
    table: &mut Table,
) {
    let base = scale.apply(window_base);
    let (window, stride) = tile(base, (base / 20).max(1));
    let n = records_needed(window, stride, SLIDES);
    let recs = gen(n);
    for &eps in eps_values {
        let disc = measure(
            Disc::new(DiscConfig::new(eps, tau)),
            &recs,
            window,
            stride,
            SLIDES,
        );
        let rho_hi = measure(
            RhoDbscan::new(eps, tau, 0.001),
            &recs,
            window,
            stride,
            SLIDES,
        );
        let rho_lo = measure(RhoDbscan::new(eps, tau, 0.1), &recs, window, stride, SLIDES);
        table.row(vec![
            dataset.to_string(),
            format!("{eps}"),
            fmt_duration(disc.per_point),
            fmt_duration(rho_hi.per_point),
            fmt_duration(rho_lo.per_point),
        ]);
    }
}

/// Runs the Fig. 11 suite.
pub fn run(scale: Scale) -> Table {
    let mut t = Table::new(
        "Fig. 11: per-point update latency vs eps — DISC vs rho2-DBSCAN",
        &["dataset", "eps", "DISC", "rho2(0.001)", "rho2(0.1)"],
    );
    let maze = datasets::MAZE_PROFILE;
    sweep(
        "Maze",
        |n| datasets::maze(n, 60, SEED),
        maze.window,
        maze.tau,
        &[0.15, 0.3, 0.6, 1.2, 2.4, 4.8],
        scale,
        &mut t,
    );
    let dtg = datasets::DTG_PROFILE;
    sweep(
        "DTG",
        |n| datasets::dtg_like(n, SEED),
        dtg.window,
        dtg.tau,
        &[0.1, 0.2, 0.45, 0.9, 1.8, 3.6],
        scale,
        &mut t,
    );
    t.print();
    let _ = t.write_csv("fig11_eps_latency");
    t
}
