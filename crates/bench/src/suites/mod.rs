//! One suite per paper artefact. Each `run(scale)` prints its tables and
//! writes matching CSVs under `out/`.

pub mod backend_ablation;
pub mod evolution_stats;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod graph_ablation;
pub mod memory_ablation;
pub mod table2;

/// RNG seed used by every suite, so results are reproducible run-to-run.
pub const SEED: u64 = 20211_u64;

/// Measured slides per configuration: enough to average out noise while
/// keeping the full harness in the minutes range.
pub const SLIDES: u32 = 5;
