//! Table II — threshold values and window sizes per dataset.

use crate::report::Table;
use crate::Scale;
use disc_window::datasets;

/// Prints the Table II analogue (scaled defaults actually used).
pub fn run(scale: Scale) -> Table {
    let mut t = Table::new(
        "Table II: threshold values and window sizes (scaled synthetic analogues)",
        &["dataset", "dim", "tau", "eps", "window", "stream"],
    );
    for p in datasets::profiles() {
        t.row(vec![
            p.name.to_string(),
            p.dim.to_string(),
            p.tau.to_string(),
            format!("{}", p.eps),
            scale.apply(p.window).to_string(),
            scale.apply(p.stream_len).to_string(),
        ]);
    }
    t.print();
    let _ = t.write_csv("table2");
    t
}
