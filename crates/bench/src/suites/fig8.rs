//! Fig. 8 — effect of the two §IV optimisations (ablation).
//!
//! DISC with {neither, epoch-probing only, MS-BFS only, both}, per dataset,
//! stride 5%. Expected shape: each optimisation helps on its own, both
//! together are best. A fifth column layers the batched slide path (bulk
//! R-tree mutations + multi-center COLLECT traversal) on top of both.

use crate::report::{fmt_duration, Table};
use crate::runner::{measure, records_needed, tile};
use crate::suites::{SEED, SLIDES};
use crate::Scale;
use disc_core::{Disc, DiscConfig};
use disc_window::datasets::{self, Profile};
use disc_window::Record;

fn per_dataset<const D: usize>(
    gen: impl Fn(usize) -> Vec<Record<D>>,
    prof: Profile,
    scale: Scale,
    table: &mut Table,
) {
    let base = scale.apply(prof.window);
    let (window, stride) = tile(base, (base / 20).max(1));
    let n = records_needed(window, stride, SLIDES);
    let recs = gen(n);
    let cfg = DiscConfig::new(prof.eps, prof.tau);
    let variants: [(&str, DiscConfig); 5] = [
        (
            "none",
            cfg.without_msbfs()
                .without_epoch_probe()
                .without_bulk_slide(),
        ),
        ("epoch only", cfg.without_msbfs().without_bulk_slide()),
        (
            "MS-BFS only",
            cfg.without_epoch_probe().without_bulk_slide(),
        ),
        ("both", cfg.without_bulk_slide()),
        ("both + bulk", cfg),
    ];
    let mut cells = vec![prof.name.to_string()];
    for (_, v) in &variants {
        let m = measure(Disc::new(*v), &recs, window, stride, SLIDES);
        cells.push(fmt_duration(m.avg_slide));
    }
    table.row(cells);
}

/// Runs the Fig. 8 suite.
pub fn run(scale: Scale) -> Table {
    let mut t = Table::new(
        "Fig. 8: optimisation ablation (elapsed per slide, stride 5%)",
        &[
            "dataset",
            "none",
            "epoch only",
            "MS-BFS only",
            "both",
            "both + bulk",
        ],
    );
    per_dataset(
        |n| datasets::dtg_like(n, SEED),
        datasets::DTG_PROFILE,
        scale,
        &mut t,
    );
    per_dataset(
        |n| datasets::geolife_like(n, SEED),
        datasets::GEOLIFE_PROFILE,
        scale,
        &mut t,
    );
    per_dataset(
        |n| datasets::covid_like(n, SEED),
        datasets::COVID_PROFILE,
        scale,
        &mut t,
    );
    per_dataset(
        |n| datasets::iris_like(n, SEED),
        datasets::IRIS_PROFILE,
        scale,
        &mut t,
    );
    t.print();
    let _ = t.write_csv("fig8_ablation");
    t
}
