//! Fig. 5 — relative speedup over DBSCAN with a varying window size.
//!
//! Stride fixed at 5% of the window; window scaled ×{0.5, 1, 2, 4} of each
//! dataset's default. Expected shape: DISC's advantage grows with the
//! window; EXTRA-N's memory grows steeply (the paper's runs died on the
//! largest windows) — memory is reported alongside.

use crate::report::{fmt_bytes, fmt_duration, Table};
use crate::runner::{measure, records_needed, tile};
use crate::suites::{SEED, SLIDES};
use crate::Scale;
use disc_baselines::{Dbscan, ExtraN, IncDbscan};
use disc_core::{Disc, DiscConfig};
use disc_window::datasets::{self, Profile};
use disc_window::Record;

/// Window multipliers relative to each profile's default.
pub const WINDOW_FACTORS: [f64; 4] = [0.5, 1.0, 2.0, 4.0];

fn per_dataset<const D: usize>(
    gen: impl Fn(usize) -> Vec<Record<D>>,
    prof: Profile,
    scale: Scale,
    table: &mut Table,
) {
    for factor in WINDOW_FACTORS {
        let base = (scale.apply(prof.window) as f64 * factor) as usize;
        let stride = (base / 20).max(1); // 5%
        let (window, stride) = tile(base, stride);
        let n = records_needed(window, stride, SLIDES);
        let recs = gen(n);

        let db = measure(
            Dbscan::new(prof.eps, prof.tau),
            &recs,
            window,
            stride,
            3.min(SLIDES),
        );
        let inc = measure(
            IncDbscan::new(prof.eps, prof.tau),
            &recs,
            window,
            stride,
            SLIDES,
        );
        let exn = measure(
            ExtraN::new(prof.eps, prof.tau, window, stride),
            &recs,
            window,
            stride,
            SLIDES,
        );
        let disc = measure(
            Disc::new(DiscConfig::new(prof.eps, prof.tau)),
            &recs,
            window,
            stride,
            SLIDES,
        );

        let speedup = |m: &crate::runner::Measurement| {
            db.avg_slide.as_secs_f64() / m.avg_slide.as_secs_f64().max(1e-12)
        };
        table.row(vec![
            prof.name.to_string(),
            window.to_string(),
            fmt_duration(db.avg_slide),
            format!("{:.2}", speedup(&inc)),
            format!("{:.2}", speedup(&exn)),
            format!("{:.2}", speedup(&disc)),
            fmt_bytes(exn.memory),
            fmt_bytes(disc.memory),
        ]);
    }
}

/// Runs the Fig. 5 suite.
pub fn run(scale: Scale) -> Table {
    let mut t = Table::new(
        "Fig. 5: speedup over DBSCAN vs window (stride 5%)",
        &[
            "dataset",
            "window",
            "DBSCAN/slide",
            "IncDBSCAN x",
            "EXTRA-N x",
            "DISC x",
            "EXTRA-N mem",
            "DISC mem",
        ],
    );
    per_dataset(
        |n| datasets::dtg_like(n, SEED),
        datasets::DTG_PROFILE,
        scale,
        &mut t,
    );
    per_dataset(
        |n| datasets::geolife_like(n, SEED),
        datasets::GEOLIFE_PROFILE,
        scale,
        &mut t,
    );
    per_dataset(
        |n| datasets::covid_like(n, SEED),
        datasets::COVID_PROFILE,
        scale,
        &mut t,
    );
    per_dataset(
        |n| datasets::iris_like(n, SEED),
        datasets::IRIS_PROFILE,
        scale,
        &mut t,
    );
    t.print();
    let _ = t.write_csv("fig5_window_speedup");
    t
}
