//! Extension experiment — the §III-C evolution taxonomy, quantified.
//!
//! The paper's machinery is motivated by how rarely each evolution type
//! occurs: shrinks/expansions dominate, splits and mergers are rare, and
//! Theorem 1's class consolidation shrinks the number of connectivity
//! checks well below the number of ex-cores. This suite measures exactly
//! those per-slide quantities for every dataset at the default 5% stride.

use crate::report::Table;
use crate::runner::{records_needed, tile};
use crate::suites::{SEED, SLIDES};
use crate::Scale;
use disc_core::{Disc, DiscConfig};
use disc_window::datasets::{self, Profile};
use disc_window::{Record, SlidingWindow};

fn per_dataset<const D: usize>(
    gen: impl Fn(usize) -> Vec<Record<D>>,
    prof: Profile,
    scale: Scale,
    table: &mut Table,
) {
    let base = scale.apply(prof.window);
    let (window, stride) = tile(base, (base / 20).max(1));
    let slides = SLIDES.max(10);
    let recs = gen(records_needed(window, stride, slides));
    let mut w = SlidingWindow::new(recs, window, stride);
    let mut disc = Disc::new(DiscConfig::new(prof.eps, prof.tau));
    disc.apply(&w.fill());

    let mut sums = (0u64, 0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
    let mut n = 0u64;
    while n < slides as u64 {
        let Some(b) = w.advance() else { break };
        let s = disc.apply(&b);
        sums.0 += s.ex_cores as u64;
        sums.1 += s.ex_classes as u64;
        sums.2 += s.neo_cores as u64;
        sums.3 += s.neo_classes as u64;
        sums.4 += s.splits as u64;
        sums.5 += s.merges as u64;
        sums.6 += s.emerged as u64;
        n += 1;
    }
    let avg = |v: u64| format!("{:.1}", v as f64 / n.max(1) as f64);
    table.row(vec![
        prof.name.to_string(),
        avg(sums.0),
        avg(sums.1),
        format!("{:.1}x", sums.0 as f64 / sums.1.max(1) as f64),
        avg(sums.2),
        avg(sums.3),
        avg(sums.4),
        avg(sums.5),
        avg(sums.6),
    ]);
}

/// Runs the evolution-statistics suite.
pub fn run(scale: Scale) -> Table {
    let mut t = Table::new(
        "Extension: per-slide evolution statistics (stride 5%)",
        &[
            "dataset",
            "ex-cores",
            "ex-classes",
            "consolidation",
            "neo-cores",
            "neo-classes",
            "splits",
            "merges",
            "emerged",
        ],
    );
    per_dataset(
        |n| datasets::dtg_like(n, SEED),
        datasets::DTG_PROFILE,
        scale,
        &mut t,
    );
    per_dataset(
        |n| datasets::geolife_like(n, SEED),
        datasets::GEOLIFE_PROFILE,
        scale,
        &mut t,
    );
    per_dataset(
        |n| datasets::covid_like(n, SEED),
        datasets::COVID_PROFILE,
        scale,
        &mut t,
    );
    per_dataset(
        |n| datasets::iris_like(n, SEED),
        datasets::IRIS_PROFILE,
        scale,
        &mut t,
    );
    per_dataset(
        |n| datasets::maze(n, 60, SEED),
        datasets::MAZE_PROFILE,
        scale,
        &mut t,
    );
    t.print();
    let _ = t.write_csv("evolution_stats");
    t
}
