//! Fig. 6 — threshold effects: elapsed time with varying ε and τ (DTG).
//!
//! Stride fixed at 5%. Expected shape: every method slows as ε grows or τ
//! shrinks (more neighbours / more cores); DISC stays flattest across the
//! whole spectrum.

use crate::report::{fmt_duration, Table};
use crate::runner::{measure, records_needed, tile};
use crate::suites::{SEED, SLIDES};
use crate::Scale;
use disc_baselines::{ExtraN, IncDbscan};
use disc_core::{Disc, DiscConfig};
use disc_window::datasets;

/// Multipliers applied to the default ε.
pub const EPS_FACTORS: [f64; 4] = [0.5, 1.0, 2.0, 4.0];
/// Multipliers applied to the default τ.
pub const TAU_FACTORS: [f64; 4] = [0.5, 1.0, 2.0, 4.0];

fn sweep(
    scale: Scale,
    table: &mut Table,
    label: &str,
    configs: impl Iterator<Item = (String, f64, usize)>,
) {
    let prof = datasets::DTG_PROFILE;
    let base = scale.apply(prof.window);
    let (window, stride) = tile(base, (base / 20).max(1));
    let n = records_needed(window, stride, SLIDES);
    let recs = datasets::dtg_like(n, SEED);
    for (name, eps, tau) in configs {
        let inc = measure(IncDbscan::new(eps, tau), &recs, window, stride, SLIDES);
        let exn = measure(
            ExtraN::new(eps, tau, window, stride),
            &recs,
            window,
            stride,
            SLIDES,
        );
        let disc = measure(
            Disc::new(DiscConfig::new(eps, tau)),
            &recs,
            window,
            stride,
            SLIDES,
        );
        table.row(vec![
            label.to_string(),
            name,
            fmt_duration(inc.avg_slide),
            fmt_duration(exn.avg_slide),
            fmt_duration(disc.avg_slide),
        ]);
    }
}

/// Runs the Fig. 6 suite.
pub fn run(scale: Scale) -> Table {
    let prof = datasets::DTG_PROFILE;
    let mut t = Table::new(
        "Fig. 6: threshold effects on DTG (elapsed per slide, stride 5%)",
        &["sweep", "value", "IncDBSCAN", "EXTRA-N", "DISC"],
    );
    sweep(
        scale,
        &mut t,
        "eps",
        EPS_FACTORS
            .iter()
            .map(|f| (format!("{:.3}", prof.eps * f), prof.eps * f, prof.tau)),
    );
    sweep(
        scale,
        &mut t,
        "tau",
        TAU_FACTORS.iter().map(|f| {
            let tau = ((prof.tau as f64 * f).round() as usize).max(2);
            (tau.to_string(), prof.eps, tau)
        }),
    );
    t.print();
    let _ = t.write_csv("fig6_thresholds");
    t
}
