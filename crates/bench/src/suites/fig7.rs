//! Fig. 7 — range searches executed.
//!
//! (a) per dataset, stride 5%: searches per slide for DISC vs IncDBSCAN —
//! DISC must be consistently lower; (b) on DTG, searches relative to
//! DBSCAN across stride ratios — DISC below IncDBSCAN below DBSCAN (=1.0)
//! at small strides.

use crate::report::Table;
use crate::runner::{measure, records_needed, slides_for, tile};
use crate::suites::{SEED, SLIDES};
use crate::Scale;
use disc_baselines::{Dbscan, IncDbscan};
use disc_core::{Disc, DiscConfig};
use disc_window::datasets::{self, Profile};
use disc_window::Record;

fn part_a<const D: usize>(
    gen: impl Fn(usize) -> Vec<Record<D>>,
    prof: Profile,
    scale: Scale,
    table: &mut Table,
) {
    let base = scale.apply(prof.window);
    let (window, stride) = tile(base, (base / 20).max(1));
    let n = records_needed(window, stride, SLIDES);
    let recs = gen(n);
    let inc = measure(
        IncDbscan::new(prof.eps, prof.tau),
        &recs,
        window,
        stride,
        SLIDES,
    );
    let disc = measure(
        Disc::new(DiscConfig::new(prof.eps, prof.tau)),
        &recs,
        window,
        stride,
        SLIDES,
    );
    table.row(vec![
        prof.name.to_string(),
        format!("{:.0}", inc.searches_per_slide),
        format!("{:.0}", disc.searches_per_slide),
        format!(
            "{:.2}",
            inc.searches_per_slide / disc.searches_per_slide.max(1.0)
        ),
    ]);
}

/// Runs the Fig. 7 suite (both panels).
pub fn run(scale: Scale) -> (Table, Table) {
    let mut a = Table::new(
        "Fig. 7a: range searches per slide (stride 5%)",
        &["dataset", "IncDBSCAN", "DISC", "Inc/DISC"],
    );
    part_a(
        |n| datasets::dtg_like(n, SEED),
        datasets::DTG_PROFILE,
        scale,
        &mut a,
    );
    part_a(
        |n| datasets::geolife_like(n, SEED),
        datasets::GEOLIFE_PROFILE,
        scale,
        &mut a,
    );
    part_a(
        |n| datasets::covid_like(n, SEED),
        datasets::COVID_PROFILE,
        scale,
        &mut a,
    );
    part_a(
        |n| datasets::iris_like(n, SEED),
        datasets::IRIS_PROFILE,
        scale,
        &mut a,
    );
    a.print();
    let _ = a.write_csv("fig7a_range_searches");

    let mut b = Table::new(
        "Fig. 7b: range searches relative to DBSCAN on DTG (lower is better)",
        &["stride", "DBSCAN", "IncDBSCAN", "DISC"],
    );
    let prof = datasets::DTG_PROFILE;
    let base = scale.apply(prof.window);
    for pct in [0.5, 1.0, 5.0, 10.0, 25.0] {
        let stride = ((base as f64 * pct / 100.0).round() as usize).max(1);
        let (window, stride) = tile(base, stride);
        let slides = slides_for(stride);
        let n = records_needed(window, stride, slides);
        let recs = datasets::dtg_like(n, SEED);
        let db = measure(
            Dbscan::new(prof.eps, prof.tau),
            &recs,
            window,
            stride,
            3.min(SLIDES),
        );
        let inc = measure(
            IncDbscan::new(prof.eps, prof.tau),
            &recs,
            window,
            stride,
            slides,
        );
        let disc = measure(
            Disc::new(DiscConfig::new(prof.eps, prof.tau)),
            &recs,
            window,
            stride,
            slides,
        );
        b.row(vec![
            format!("{pct}%"),
            "1.00".to_string(),
            format!("{:.3}", inc.searches_per_slide / db.searches_per_slide),
            format!("{:.3}", disc.searches_per_slide / db.searches_per_slide),
        ]);
    }
    b.print();
    let _ = b.write_csv("fig7b_relative_searches");
    (a, b)
}
