//! Fig. 4 — relative speedup over DBSCAN with a varying stride size.
//!
//! For every dataset and stride ∈ {0.1, 0.5, 1, 5, 10, 25}% of the window,
//! measures the mean per-slide time of DISC, IncDBSCAN and EXTRA-N and
//! reports it relative to from-scratch DBSCAN. Expected shape: DISC best
//! at small strides, every incremental method ≈ DBSCAN (or worse) at 25%.

use crate::report::{fmt_duration, Table};
use crate::runner::{measure, records_needed, slides_for, tile};
use crate::suites::{SEED, SLIDES};
use crate::Scale;
use disc_baselines::{Dbscan, ExtraN, IncDbscan};
use disc_core::{Disc, DiscConfig};
use disc_window::datasets::{self, Profile};
use disc_window::Record;

/// Stride sizes as percentages of the window, as in the paper.
pub const STRIDE_PCTS: [f64; 6] = [0.1, 0.5, 1.0, 5.0, 10.0, 25.0];

fn per_dataset<const D: usize>(
    gen: impl Fn(usize) -> Vec<Record<D>>,
    prof: Profile,
    scale: Scale,
    table: &mut Table,
) {
    let base_window = scale.apply(prof.window);
    for pct in STRIDE_PCTS {
        let stride = ((base_window as f64 * pct / 100.0).round() as usize).max(1);
        let (window, stride) = tile(base_window, stride);
        let slides = slides_for(stride);
        let n = records_needed(window, stride, slides);
        let recs = gen(n);

        let db = measure(
            Dbscan::new(prof.eps, prof.tau),
            &recs,
            window,
            stride,
            3.min(SLIDES),
        );
        let inc = measure(
            IncDbscan::new(prof.eps, prof.tau),
            &recs,
            window,
            stride,
            slides,
        );
        let exn = measure(
            ExtraN::new(prof.eps, prof.tau, window, stride),
            &recs,
            window,
            stride,
            slides,
        );
        let disc = measure(
            Disc::new(DiscConfig::new(prof.eps, prof.tau)),
            &recs,
            window,
            stride,
            slides,
        );

        let speedup = |m: &crate::runner::Measurement| {
            db.avg_slide.as_secs_f64() / m.avg_slide.as_secs_f64().max(1e-12)
        };
        table.row(vec![
            prof.name.to_string(),
            format!("{pct}%"),
            fmt_duration(db.avg_slide),
            format!("{:.2}", speedup(&inc)),
            format!("{:.2}", speedup(&exn)),
            format!("{:.2}", speedup(&disc)),
        ]);
    }
}

/// Runs the Fig. 4 suite.
pub fn run(scale: Scale) -> Table {
    let mut t = Table::new(
        "Fig. 4: speedup over DBSCAN vs stride (higher is better)",
        &[
            "dataset",
            "stride",
            "DBSCAN/slide",
            "IncDBSCAN x",
            "EXTRA-N x",
            "DISC x",
        ],
    );
    per_dataset(
        |n| datasets::dtg_like(n, SEED),
        datasets::DTG_PROFILE,
        scale,
        &mut t,
    );
    per_dataset(
        |n| datasets::geolife_like(n, SEED),
        datasets::GEOLIFE_PROFILE,
        scale,
        &mut t,
    );
    per_dataset(
        |n| datasets::covid_like(n, SEED),
        datasets::COVID_PROFILE,
        scale,
        &mut t,
    );
    per_dataset(
        |n| datasets::iris_like(n, SEED),
        datasets::IRIS_PROFILE,
        scale,
        &mut t,
    );
    t.print();
    let _ = t.write_csv("fig4_stride_speedup");
    t
}
