//! Fig. 12 — cluster illustrations.
//!
//! Dumps the cluster snapshot each method produces on Maze and DTG to CSV
//! files under `out/` (one row per point: coordinates + cluster id, `-1`
//! noise). Render them with any plotting tool; DISC's snapshot is the
//! DBSCAN-exact reference, the summarisation methods visibly fragment or
//! fuse trajectories — the paper's qualitative point.

use crate::runner::{records_needed, tile};
use crate::suites::{SEED, SLIDES};
use crate::Scale;
use disc_baselines::{DbStream, DbStreamConfig, EdmStream, EdmStreamConfig, WindowClusterer};
use disc_core::{Disc, DiscConfig};
use disc_geom::{FxHashMap, Point, PointId};
use disc_window::{csv, datasets, Record, SlidingWindow};
use std::path::Path;

fn drive_and_dump<const D: usize, M: WindowClusterer<D>>(
    mut m: M,
    recs: &[Record<D>],
    window: usize,
    stride: usize,
    stem: &str,
) -> std::io::Result<std::path::PathBuf> {
    let mut w = SlidingWindow::new(recs.to_vec(), window, stride);
    m.apply(&w.fill());
    for _ in 0..SLIDES {
        if let Some(b) = w.advance() {
            m.apply(&b);
        }
    }
    let pos: FxHashMap<PointId, Point<D>> = w.current().collect();
    let rows: Vec<(Point<D>, i64)> = m
        .assignments()
        .into_iter()
        .map(|(id, l)| (pos[&id], l))
        .collect();
    std::fs::create_dir_all("out")?;
    let path = Path::new("out").join(format!("{stem}.csv"));
    csv::write_snapshot(&path, &rows)?;
    Ok(path)
}

/// Runs the Fig. 12 suite: writes six snapshots and reports their paths.
pub fn run(scale: Scale) -> Vec<std::path::PathBuf> {
    let mut written = Vec::new();

    let maze = datasets::MAZE_PROFILE;
    let base = scale.apply(maze.window);
    let (window, stride) = tile(base, (base / 20).max(1));
    let recs = datasets::maze(records_needed(window, stride, SLIDES), 60, SEED);
    for (stem, result) in [
        (
            "fig12_maze_disc",
            drive_and_dump(
                Disc::new(DiscConfig::new(maze.eps, maze.tau)),
                &recs,
                window,
                stride,
                "fig12_maze_disc",
            ),
        ),
        (
            "fig12_maze_edmstream",
            drive_and_dump(
                EdmStream::new(EdmStreamConfig {
                    radius: maze.eps * 1.1,
                    delta: maze.eps * 3.0,
                    ..EdmStreamConfig::default()
                }),
                &recs,
                window,
                stride,
                "fig12_maze_edmstream",
            ),
        ),
        (
            "fig12_maze_dbstream",
            drive_and_dump(
                DbStream::new(DbStreamConfig {
                    radius: maze.eps * 1.1,
                    ..DbStreamConfig::default()
                }),
                &recs,
                window,
                stride,
                "fig12_maze_dbstream",
            ),
        ),
    ] {
        match result {
            Ok(p) => {
                println!("wrote {}", p.display());
                written.push(p);
            }
            Err(e) => eprintln!("fig12 {stem}: {e}"),
        }
    }

    let dtg = datasets::DTG_PROFILE;
    let base = scale.apply(dtg.window);
    let (window, stride) = tile(base, (base / 20).max(1));
    let recs = datasets::dtg_like(records_needed(window, stride, SLIDES), SEED);
    for (stem, result) in [
        (
            "fig12_dtg_disc",
            drive_and_dump(
                Disc::new(DiscConfig::new(dtg.eps, dtg.tau)),
                &recs,
                window,
                stride,
                "fig12_dtg_disc",
            ),
        ),
        (
            "fig12_dtg_edmstream",
            drive_and_dump(
                EdmStream::new(EdmStreamConfig {
                    radius: dtg.eps * 1.1,
                    delta: dtg.eps * 3.0,
                    ..EdmStreamConfig::default()
                }),
                &recs,
                window,
                stride,
                "fig12_dtg_edmstream",
            ),
        ),
        (
            "fig12_dtg_dbstream",
            drive_and_dump(
                DbStream::new(DbStreamConfig {
                    radius: dtg.eps * 1.1,
                    ..DbStreamConfig::default()
                }),
                &recs,
                window,
                stride,
                "fig12_dtg_dbstream",
            ),
        ),
    ] {
        match result {
            Ok(p) => {
                println!("wrote {}", p.display());
                written.push(p);
            }
            Err(e) => eprintln!("fig12 {stem}: {e}"),
        }
    }
    written
}
