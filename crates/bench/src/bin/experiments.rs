//! The experiment runner: regenerates every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p disc-bench --bin experiments -- all
//! cargo run --release -p disc-bench --bin experiments -- fig4 fig7 --scale 0.5
//! ```
//!
//! Results are printed as aligned tables and written as CSV under `out/`.

use disc_bench::{compare, suites, Scale};

const USAGE: &str = "usage: experiments [table2|fig4|fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|graph|backend|memory|evolution|all]... [--scale X]
       experiments compare [--baseline F.json] [--fresh F.json]
                           [--tolerance FRACTION] [--scale X]

`compare` is the perf-regression gate: it re-measures the backend suite
(or reads --fresh) and diffs the result against the committed baseline
(BENCH_disc.json by default), failing with exit code 1 when p50/p99 per-
slide latency regressed beyond the tolerance (default 0.25 = 25%).";

fn main() {
    let mut targets: Vec<String> = Vec::new();
    let mut scale = Scale(1.0);
    let mut baseline: Option<String> = None;
    let mut fresh: Option<String> = None;
    let mut tolerance = 0.25f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("flag {flag} needs a value\n{USAGE}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--scale" => {
                let v = value("--scale").parse::<f64>().unwrap_or_else(|_| {
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                });
                assert!(v > 0.0, "--scale must be positive");
                scale = Scale(v);
            }
            "--baseline" => baseline = Some(value("--baseline")),
            "--fresh" => fresh = Some(value("--fresh")),
            "--tolerance" => {
                tolerance = value("--tolerance").parse::<f64>().unwrap_or_else(|_| {
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                });
                assert!(tolerance > 0.0, "--tolerance must be positive");
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => targets.push(other.to_string()),
        }
    }
    if targets.iter().any(|t| t == "compare") {
        std::process::exit(run_compare(baseline, fresh, tolerance, scale));
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }
    let all = targets.iter().any(|t| t == "all");
    let wants = |name: &str| all || targets.iter().any(|t| t == name);

    let t0 = std::time::Instant::now();
    println!(
        "DISC experiment harness (scale {:.2}; synthetic analogues per DESIGN.md §4)\n",
        scale.0
    );
    if wants("table2") {
        suites::table2::run(scale);
    }
    if wants("fig4") {
        suites::fig4::run(scale);
    }
    if wants("fig5") {
        suites::fig5::run(scale);
    }
    if wants("fig6") {
        suites::fig6::run(scale);
    }
    if wants("fig7") {
        suites::fig7::run(scale);
    }
    if wants("fig8") {
        suites::fig8::run(scale);
    }
    if wants("fig9") {
        suites::fig9::run(scale);
    }
    if wants("fig10") {
        suites::fig10::run(scale);
    }
    if wants("fig11") {
        suites::fig11::run(scale);
    }
    if wants("fig12") {
        suites::fig12::run(scale);
    }
    if wants("graph") {
        suites::graph_ablation::run(scale);
    }
    if wants("backend") {
        suites::backend_ablation::run(scale);
    }
    if wants("memory") {
        suites::memory_ablation::run(scale);
    }
    if wants("evolution") {
        suites::evolution_stats::run(scale);
    }
    println!("\ntotal harness time: {:?}", t0.elapsed());
}

/// The regression gate (`experiments compare`). Returns the process exit
/// code: 0 on pass, 1 on regression/lost coverage, 2 on usage errors.
fn run_compare(
    baseline: Option<String>,
    fresh: Option<String>,
    tolerance: f64,
    scale: Scale,
) -> i32 {
    let baseline_path = baseline.unwrap_or_else(|| {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_disc.json")
            .to_string_lossy()
            .into_owned()
    });
    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return 2;
        }
    };
    let baseline_rows = match compare::parse_rows(&baseline_text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("baseline {baseline_path}: {e}");
            return 2;
        }
    };
    let fresh_text = match fresh {
        Some(path) => match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read fresh summary {path}: {e}");
                return 2;
            }
        },
        None => {
            println!("re-measuring the backend suite at scale {:.2}...", scale.0);
            suites::backend_ablation::fresh_summary(scale)
        }
    };
    let fresh_rows = match compare::parse_rows(&fresh_text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fresh summary: {e}");
            return 2;
        }
    };
    let report = compare::compare(&baseline_rows, &fresh_rows, tolerance);
    print!("{}", report.render());
    i32::from(!report.passed())
}
