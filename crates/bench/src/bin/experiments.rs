//! The experiment runner: regenerates every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p disc-bench --bin experiments -- all
//! cargo run --release -p disc-bench --bin experiments -- fig4 fig7 --scale 0.5
//! ```
//!
//! Results are printed as aligned tables and written as CSV under `out/`.

use disc_bench::{suites, Scale};

const USAGE: &str = "usage: experiments [table2|fig4|fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|graph|backend|evolution|all]... [--scale X]";

fn main() {
    let mut targets: Vec<String> = Vec::new();
    let mut scale = Scale(1.0);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args
                    .next()
                    .and_then(|s| s.parse::<f64>().ok())
                    .unwrap_or_else(|| {
                        eprintln!("{USAGE}");
                        std::process::exit(2);
                    });
                assert!(v > 0.0, "--scale must be positive");
                scale = Scale(v);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }
    let all = targets.iter().any(|t| t == "all");
    let wants = |name: &str| all || targets.iter().any(|t| t == name);

    let t0 = std::time::Instant::now();
    println!(
        "DISC experiment harness (scale {:.2}; synthetic analogues per DESIGN.md §4)\n",
        scale.0
    );
    if wants("table2") {
        suites::table2::run(scale);
    }
    if wants("fig4") {
        suites::fig4::run(scale);
    }
    if wants("fig5") {
        suites::fig5::run(scale);
    }
    if wants("fig6") {
        suites::fig6::run(scale);
    }
    if wants("fig7") {
        suites::fig7::run(scale);
    }
    if wants("fig8") {
        suites::fig8::run(scale);
    }
    if wants("fig9") {
        suites::fig9::run(scale);
    }
    if wants("fig10") {
        suites::fig10::run(scale);
    }
    if wants("fig11") {
        suites::fig11::run(scale);
    }
    if wants("fig12") {
        suites::fig12::run(scale);
    }
    if wants("graph") {
        suites::graph_ablation::run(scale);
    }
    if wants("backend") {
        suites::backend_ablation::run(scale);
    }
    if wants("evolution") {
        suites::evolution_stats::run(scale);
    }
    println!("\ntotal harness time: {:?}", t0.elapsed());
}
