//! Benchmark harness regenerating every table and figure of the DISC paper.
//!
//! The `experiments` binary (this crate's `src/bin/experiments.rs`) drives
//! the [`suites`], one per paper artefact:
//!
//! | id | artefact | suite |
//! |----|----------|-------|
//! | `table2` | Table II — thresholds & windows | [`suites::table2`] |
//! | `fig4` | speedup over DBSCAN vs stride | [`suites::fig4`] |
//! | `fig5` | speedup over DBSCAN vs window | [`suites::fig5`] |
//! | `fig6` | threshold effects (ε, τ) | [`suites::fig6`] |
//! | `fig7` | range searches executed | [`suites::fig7`] |
//! | `fig8` | MS-BFS / epoch ablation | [`suites::fig8`] |
//! | `fig9` | Maze ARI & latency | [`suites::fig9`] |
//! | `fig10` | DTG ARI & latency | [`suites::fig10`] |
//! | `fig11` | latency vs ε (DISC vs ρ₂) | [`suites::fig11`] |
//! | `fig12` | cluster snapshots | [`suites::fig12`] |
//! | `graph` | materialised-graph strawman | [`suites::graph_ablation`] |
//! | `backend` | R-tree vs uniform-grid index | [`suites::backend_ablation`] |
//! | `memory` | DISC vs EXTRA-N peak footprint | [`suites::memory_ablation`] |
//!
//! Workloads are the synthetic substitutes documented in `DESIGN.md` §4,
//! at laptop scale; `--scale` multiplies every window size. Absolute times
//! are machine-dependent; the *shapes* (who wins, by what factor, where
//! crossovers fall) are what reproduce the paper.

pub mod compare;
pub mod report;
pub mod runner;
pub mod suites;

/// Scale factor applied to every window size (CLI `--scale`).
#[derive(Clone, Copy, Debug)]
pub struct Scale(pub f64);

impl Scale {
    /// Applies the factor to a base population size.
    pub fn apply(&self, base: usize) -> usize {
        ((base as f64 * self.0) as usize).max(64)
    }
}
