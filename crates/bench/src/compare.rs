//! The perf-regression gate: diff a fresh bench summary against the
//! committed baseline.
//!
//! `BENCH_disc.json` (repo root) is the committed headline summary — one
//! record per `(suite, backend, window, stride, threads)` with per-slide
//! tail latencies. `experiments compare` re-measures (or reads `--fresh`),
//! matches rows by key, and fails when `p50_slide_us` grew beyond the
//! tolerance (default 25%). Rows present in the baseline but missing from
//! the fresh run also fail — a gate that silently loses coverage is no
//! gate. Improvements beyond the tolerance are reported (the baseline is
//! stale) but do not fail.
//!
//! Only the **median** is gated. `p99_slide_us` over a handful of merged
//! repetitions is close to a max statistic: on a single-core shared host
//! it swings 2x run to run from scheduler noise alone, while the median
//! stays within a few percent. Tail movement beyond the tolerance is
//! still reported, as advisory `tail p99` lines, so genuine tail
//! regressions remain visible without making the gate flaky.

use disc_telemetry::Json;

/// One record of the headline summary (`BENCH_disc.json` schema).
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRow {
    /// Suite that produced the row (e.g. `backend_ablation`).
    pub suite: String,
    /// Spatial backend under test.
    pub backend: String,
    /// Window size.
    pub window: u64,
    /// Stride size.
    pub stride: u64,
    /// Worker threads the engine ran with (1 = sequential).
    pub threads: u64,
    /// Slides measured.
    pub slides: u64,
    /// Median per-slide latency (µs).
    pub p50_us: f64,
    /// 99th-percentile per-slide latency (µs).
    pub p99_us: f64,
    /// Exact worst per-slide latency (µs).
    pub max_us: f64,
    /// Mean ε-range searches per slide.
    pub searches_per_slide: f64,
    /// Mean CPU utilization over the measurement (cores busy; 1.0 means
    /// one core fully used). 0.0 when the platform could not report it.
    /// Informational — latency is what the gate judges.
    pub cpu_util: f64,
    /// Stride-eviction cost (ns per evicted point). Informational, and
    /// absent from summaries written before the curve backend (0.0 then).
    pub evict_ns_per_point: f64,
    /// Peak accounted engine footprint over the run (bytes). Informational;
    /// 0.0 in summaries written before byte accounting.
    pub peak_bytes: f64,
    /// `peak_bytes / window` — the paper-style memory curve's y-axis.
    /// 0.0 in summaries written before byte accounting.
    pub bytes_per_point: f64,
    /// Final-window ARI against a from-scratch DBSCAN oracle. Advisory
    /// only (the engine is exact, so anything below 1.0 is a finding for
    /// a human, never a gate); 0.0 in summaries written before the
    /// stream-health PR.
    pub quality_ari: f64,
    /// Final-window noise fraction. Advisory context for the quality
    /// column; 0.0 in older summaries.
    pub noise_frac: f64,
}

impl BenchRow {
    /// The identity a row is matched on across runs. `threads` is part of
    /// the key: a width-4 row regressing against a width-1 baseline would
    /// be noise, not signal.
    pub fn key(&self) -> String {
        format!(
            "{}/{} w={} s={} t={}",
            self.suite, self.backend, self.window, self.stride, self.threads
        )
    }

    /// The identity spelled out field by field — for messages where a
    /// human has to reconstruct the absent row, not just grep for it.
    pub fn tuple(&self) -> String {
        format!(
            "(suite={}, backend={}, window={}, stride={}, threads={})",
            self.suite, self.backend, self.window, self.stride, self.threads
        )
    }
}

/// Parses a `BENCH_disc.json` document into rows.
pub fn parse_rows(text: &str) -> Result<Vec<BenchRow>, String> {
    let doc = Json::parse(text)?;
    let items = doc
        .as_array()
        .ok_or_else(|| "bench summary is not a JSON array".to_string())?;
    let mut rows = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let str_field = |key: &str| {
            item.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("row {i}: missing string {key:?}"))
        };
        let num = |key: &str| {
            item.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("row {i}: missing number {key:?}"))
        };
        // `threads` became part of the row identity with the parallel
        // slide engine; a summary without it cannot be matched against
        // one that has it, so refuse it with a pointer at the fix rather
        // than guessing a width.
        let threads = item.get("threads").and_then(Json::as_f64).ok_or_else(|| {
            format!(
                "row {i}: missing number \"threads\" — this summary predates the \
                 parallel slide engine and its rows cannot be keyed; regenerate the \
                 baseline with `cargo run --release -p disc-bench --bin experiments \
                 -- backend`"
            )
        })?;
        rows.push(BenchRow {
            suite: str_field("suite")?,
            backend: str_field("backend")?,
            window: num("window")? as u64,
            stride: num("stride")? as u64,
            threads: threads as u64,
            slides: num("slides")? as u64,
            p50_us: num("p50_slide_us")?,
            p99_us: num("p99_slide_us")?,
            max_us: num("max_slide_us")?,
            searches_per_slide: num("searches_per_slide")?,
            // Older summaries lack the utilization and eviction columns;
            // both are informational, so default rather than reject.
            cpu_util: item.get("cpu_util").and_then(Json::as_f64).unwrap_or(0.0),
            evict_ns_per_point: item
                .get("evict_ns_per_point")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            peak_bytes: item.get("peak_bytes").and_then(Json::as_f64).unwrap_or(0.0),
            bytes_per_point: item
                .get("bytes_per_point")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            quality_ari: item
                .get("quality_ari")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            noise_frac: item.get("noise_frac").and_then(Json::as_f64).unwrap_or(0.0),
        });
    }
    Ok(rows)
}

/// One metric of one row moving past the tolerance, in either direction.
#[derive(Clone, Debug)]
pub struct Delta {
    /// Row identity (`suite/backend w=.. s=..`).
    pub key: String,
    /// Which latency metric moved (`p50` or `p99`).
    pub metric: &'static str,
    /// Baseline value (µs).
    pub baseline_us: f64,
    /// Fresh value (µs).
    pub fresh_us: f64,
}

impl Delta {
    /// `fresh / baseline` (∞ when the baseline is zero).
    pub fn ratio(&self) -> f64 {
        if self.baseline_us <= 0.0 {
            f64::INFINITY
        } else {
            self.fresh_us / self.baseline_us
        }
    }
}

/// Outcome of one baseline-vs-fresh comparison.
#[derive(Clone, Debug, Default)]
pub struct CompareReport {
    /// Metrics that got slower than the tolerance allows (gate failures).
    pub regressions: Vec<Delta>,
    /// Metrics that got faster than the tolerance — the baseline is stale.
    pub improvements: Vec<Delta>,
    /// Tail (p99) moves beyond the tolerance, either direction. Advisory:
    /// the tail of a small sample is too noisy to gate, but worth eyes.
    pub tail_drift: Vec<Delta>,
    /// Peak-memory moves beyond the tolerance, either direction (values in
    /// bytes, not µs). Advisory: byte accounting is an estimate and only
    /// rows measured since accounting landed carry it, but a footprint
    /// quietly doubling deserves eyes just like a tail spike.
    pub mem_drift: Vec<Delta>,
    /// Baseline rows with no fresh counterpart (gate failures), spelled
    /// out as full `(suite, backend, window, stride, threads)` tuples.
    pub missing: Vec<String>,
    /// Fresh keys with no baseline counterpart (informational), excluding
    /// rows covered by `new_backends`.
    pub added: Vec<String>,
    /// Backends present in the fresh run but absent from the baseline
    /// *entirely* — a new backend column, not a stray row. One entry per
    /// backend with its row count, so the regeneration hint prints once
    /// instead of once per row.
    pub new_backends: Vec<(String, usize)>,
    /// Rows matched and checked.
    pub checked: usize,
    /// Tolerance used (fraction, e.g. 0.25).
    pub tolerance: f64,
}

impl CompareReport {
    /// Whether the gate passes (no regressions, no lost coverage).
    pub fn passed(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }

    /// Human-readable report, one line per finding.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let pct = self.tolerance * 100.0;
        let _ = writeln!(
            out,
            "bench compare: {} row(s) checked, tolerance {pct:.0}%",
            self.checked
        );
        for d in &self.regressions {
            let _ = writeln!(
                out,
                "  REGRESSION {} {}: {:.1}us -> {:.1}us ({:.2}x)",
                d.key,
                d.metric,
                d.baseline_us,
                d.fresh_us,
                d.ratio()
            );
        }
        for tuple in &self.missing {
            let _ = writeln!(out, "  MISSING    {tuple}: baseline row not re-measured");
        }
        for d in &self.improvements {
            let _ = writeln!(
                out,
                "  improved   {} {}: {:.1}us -> {:.1}us ({:.2}x) — consider refreshing the baseline",
                d.key,
                d.metric,
                d.baseline_us,
                d.fresh_us,
                d.ratio()
            );
        }
        for d in &self.tail_drift {
            let _ = writeln!(
                out,
                "  tail p99   {}: {:.1}us -> {:.1}us ({:.2}x) — advisory, tails are not gated",
                d.key,
                d.baseline_us,
                d.fresh_us,
                d.ratio()
            );
        }
        for d in &self.mem_drift {
            let _ = writeln!(
                out,
                "  mem peak   {}: {} -> {} ({:.2}x) — advisory, memory is not gated",
                d.key,
                crate::report::fmt_bytes(d.baseline_us as usize),
                crate::report::fmt_bytes(d.fresh_us as usize),
                d.ratio()
            );
        }
        for key in &self.added {
            let _ = writeln!(out, "  new row    {key}: not in the baseline");
        }
        for (backend, rows) in &self.new_backends {
            let _ = writeln!(
                out,
                "  new backend {backend:?}: {rows} fresh row(s) with no baseline column — \
                 refresh the baseline with `cargo run --release -p disc-bench \
                 --bin experiments -- backend`"
            );
        }
        let _ = writeln!(
            out,
            "  verdict: {}",
            if self.passed() { "PASS" } else { "FAIL" }
        );
        out
    }
}

/// Diffs `fresh` against `baseline` with a fractional `tolerance`:
/// `p50_slide_us` is gated per matched row; `p99_slide_us` movement is
/// collected as advisory tail drift.
pub fn compare(baseline: &[BenchRow], fresh: &[BenchRow], tolerance: f64) -> CompareReport {
    let mut report = CompareReport {
        tolerance,
        ..CompareReport::default()
    };
    let find = |rows: &[BenchRow], key: &str| rows.iter().find(|r| r.key() == key).cloned();
    for b in baseline {
        let key = b.key();
        let Some(f) = find(fresh, &key) else {
            report.missing.push(b.tuple());
            continue;
        };
        report.checked += 1;
        let p50 = Delta {
            key: key.clone(),
            metric: "p50",
            baseline_us: b.p50_us,
            fresh_us: f.p50_us,
        };
        if f.p50_us > b.p50_us * (1.0 + tolerance) {
            report.regressions.push(p50);
        } else if f.p50_us < b.p50_us * (1.0 - tolerance) {
            report.improvements.push(p50);
        }
        if f.p99_us > b.p99_us * (1.0 + tolerance) || f.p99_us < b.p99_us * (1.0 - tolerance) {
            report.tail_drift.push(Delta {
                key: key.clone(),
                metric: "p99",
                baseline_us: b.p99_us,
                fresh_us: f.p99_us,
            });
        }
        // Memory is only comparable when both sides carry the accounting
        // column; a zero baseline just means it predates byte accounting.
        if b.peak_bytes > 0.0
            && f.peak_bytes > 0.0
            && (f.peak_bytes > b.peak_bytes * (1.0 + tolerance)
                || f.peak_bytes < b.peak_bytes * (1.0 - tolerance))
        {
            report.mem_drift.push(Delta {
                key,
                metric: "peak_bytes",
                baseline_us: b.peak_bytes,
                fresh_us: f.peak_bytes,
            });
        }
    }
    // A whole backend column absent from the baseline is one finding, not
    // one per row: collapse those into `new_backends` so the render prints
    // the regeneration hint once.
    let baseline_backends: std::collections::BTreeSet<&str> =
        baseline.iter().map(|r| r.backend.as_str()).collect();
    let mut new_backend_rows: std::collections::BTreeMap<String, usize> = Default::default();
    for f in fresh {
        if find(baseline, &f.key()).is_none() {
            if baseline_backends.contains(f.backend.as_str()) {
                report.added.push(f.key());
            } else {
                *new_backend_rows.entry(f.backend.clone()).or_default() += 1;
            }
        }
    }
    report.new_backends = new_backend_rows.into_iter().collect();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(backend: &str, stride: u64, p50: f64, p99: f64) -> BenchRow {
        BenchRow {
            suite: "backend_ablation".to_string(),
            backend: backend.to_string(),
            window: 8000,
            stride,
            threads: 1,
            slides: 5,
            p50_us: p50,
            p99_us: p99,
            max_us: p99,
            searches_per_slide: 100.0,
            cpu_util: 1.0,
            evict_ns_per_point: 50.0,
            peak_bytes: 1_000_000.0,
            bytes_per_point: 125.0,
            quality_ari: 1.0,
            noise_frac: 0.05,
        }
    }

    #[test]
    fn committed_baseline_parses() {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_disc.json");
        let text = std::fs::read_to_string(path).unwrap();
        let rows = parse_rows(&text).unwrap();
        assert!(!rows.is_empty());
        for r in &rows {
            assert_eq!(r.suite, "backend_ablation");
            assert!(r.p50_us > 0.0 && r.p50_us <= r.p99_us);
            assert!(r.p99_us <= r.max_us + 1e-9);
            // Byte accounting landed with the memory-observability PR; a
            // baseline regenerated since then always carries the columns.
            assert!(r.peak_bytes > 0.0, "{}: no peak_bytes", r.key());
            assert!(
                (r.bytes_per_point - r.peak_bytes / r.window as f64).abs() < 1.0,
                "{}: bytes_per_point inconsistent",
                r.key()
            );
        }
        // Keys are unique — the matcher relies on it.
        let mut keys: Vec<String> = rows.iter().map(BenchRow::key).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), rows.len());
        // The curve backend's reason to exist: on the committed baseline's
        // window=8000/stride=1600 rows, its stride-teardown eviction must
        // undercut both other backends. Re-measure with
        // `cargo run --release -p disc-bench --bin experiments -- backend`
        // before committing a baseline that breaks this.
        let evict_of = |backend: &str| {
            rows.iter()
                .find(|r| {
                    r.backend == backend && r.window == 8000 && r.stride == 1600 && r.threads == 1
                })
                .map(|r| r.evict_ns_per_point)
                .expect("acceptance row missing from baseline")
        };
        let (rtree, grid, curve) = (evict_of("rtree"), evict_of("grid"), evict_of("curve"));
        assert!(
            curve > 0.0 && curve < grid && curve < rtree,
            "curve teardown must evict cheapest at window=8000/stride=1600: \
             curve={curve}ns grid={grid}ns rtree={rtree}ns"
        );
    }

    #[test]
    fn identical_runs_pass() {
        let rows = vec![
            row("rtree", 400, 1000.0, 2000.0),
            row("grid", 400, 500.0, 900.0),
        ];
        let report = compare(&rows, &rows, 0.25);
        assert!(report.passed());
        assert_eq!(report.checked, 2);
        assert!(report.regressions.is_empty() && report.improvements.is_empty());
        assert!(report.render().contains("PASS"));
    }

    /// The acceptance gate: against a baseline doctored to half the real
    /// latency, the fresh run reads as a 2x regression and fails.
    #[test]
    fn doctored_2x_baseline_fails_the_gate() {
        let fresh = vec![row("rtree", 400, 1000.0, 2000.0)];
        let doctored = vec![row("rtree", 400, 500.0, 1000.0)];
        let report = compare(&doctored, &fresh, 0.25);
        assert!(!report.passed());
        assert_eq!(report.regressions.len(), 1, "p50 doubled");
        assert!((report.regressions[0].ratio() - 2.0).abs() < 1e-9);
        assert_eq!(report.tail_drift.len(), 1, "p99 doubling is advisory");
        let text = report.render();
        assert!(text.contains("REGRESSION"), "{text}");
        assert!(text.contains("FAIL"), "{text}");
    }

    /// A tail-only spike must not fail the gate — p99 over a few merged
    /// repetitions is a max statistic and swings 2x from host noise — but
    /// it must be surfaced as advisory drift.
    #[test]
    fn tail_only_spike_reports_but_does_not_fail() {
        let base = vec![row("rtree", 400, 1000.0, 2000.0)];
        let fresh = vec![row("rtree", 400, 1050.0, 6000.0)];
        let report = compare(&base, &fresh, 0.25);
        assert!(report.passed());
        assert!(report.regressions.is_empty());
        assert_eq!(report.tail_drift.len(), 1);
        assert!((report.tail_drift[0].ratio() - 3.0).abs() < 1e-9);
        let text = report.render();
        assert!(text.contains("tail p99"), "{text}");
        assert!(text.contains("advisory"), "{text}");
        assert!(text.contains("PASS"), "{text}");
    }

    /// A memory blow-up alone is advisory — it must surface in the report
    /// without failing the gate, and baselines that predate byte
    /// accounting (peak_bytes 0) must stay silent rather than divide by
    /// zero into an ∞-ratio finding.
    #[test]
    fn memory_drift_reports_but_does_not_fail() {
        let base = vec![row("rtree", 400, 1000.0, 2000.0)];
        let mut bloated = row("rtree", 400, 1000.0, 2000.0);
        bloated.peak_bytes = 3_000_000.0;
        let report = compare(&base, &[bloated.clone()], 0.25);
        assert!(report.passed());
        assert_eq!(report.mem_drift.len(), 1);
        assert!((report.mem_drift[0].ratio() - 3.0).abs() < 1e-9);
        let text = report.render();
        assert!(text.contains("mem peak"), "{text}");
        assert!(text.contains("976.6KiB -> 2.9MiB"), "{text}");
        assert!(text.contains("PASS"), "{text}");
        // Accounting-era fresh rows vs a pre-accounting baseline: silent.
        let mut old = row("rtree", 400, 1000.0, 2000.0);
        old.peak_bytes = 0.0;
        let report = compare(&[old], &[bloated], 0.25);
        assert!(report.mem_drift.is_empty());
    }

    #[test]
    fn small_jitter_stays_inside_the_tolerance() {
        let base = vec![row("rtree", 400, 1000.0, 2000.0)];
        let fresh = vec![row("rtree", 400, 1100.0, 2200.0)];
        assert!(compare(&base, &fresh, 0.25).passed());
        // ...but a tightened tolerance catches the same drift.
        assert!(!compare(&base, &fresh, 0.05).passed());
    }

    #[test]
    fn improvements_report_but_do_not_fail() {
        let base = vec![row("rtree", 400, 1000.0, 2000.0)];
        let fresh = vec![row("rtree", 400, 400.0, 800.0)];
        let report = compare(&base, &fresh, 0.25);
        assert!(report.passed());
        assert_eq!(report.improvements.len(), 1, "p50 improvement");
        assert_eq!(report.tail_drift.len(), 1, "p99 move is advisory");
        assert!(report.render().contains("refreshing the baseline"));
    }

    #[test]
    fn lost_coverage_fails_and_new_rows_inform() {
        let base = vec![
            row("rtree", 400, 1000.0, 2000.0),
            row("grid", 400, 1.0, 2.0),
        ];
        let fresh = vec![
            row("rtree", 400, 1000.0, 2000.0),
            row("rtree", 800, 1.0, 2.0),
        ];
        let report = compare(&base, &fresh, 0.25);
        assert!(!report.passed());
        assert_eq!(report.missing.len(), 1);
        assert_eq!(report.added.len(), 1);
        let text = report.render();
        assert!(text.contains("MISSING"));
        // The absent row is spelled out field by field, not just keyed.
        assert!(
            text.contains(
                "(suite=backend_ablation, backend=grid, window=8000, stride=400, threads=1)"
            ),
            "{text}"
        );
    }

    /// A backend column that is entirely new to the fresh run (the curve
    /// rollout shape) collapses into one hint line; a stray new row of a
    /// known backend still reports per-row.
    #[test]
    fn whole_new_backend_column_hints_once_not_per_row() {
        let base = vec![
            row("rtree", 400, 1000.0, 2000.0),
            row("grid", 400, 1.0, 2.0),
        ];
        let fresh = vec![
            row("rtree", 400, 1000.0, 2000.0),
            row("grid", 400, 1.0, 2.0),
            row("curve", 400, 1.0, 2.0),
            row("curve", 800, 1.0, 2.0),
            row("curve", 1600, 1.0, 2.0),
        ];
        let report = compare(&base, &fresh, 0.25);
        assert!(report.passed(), "new rows never fail the gate");
        assert!(
            report.added.is_empty(),
            "column rows collapse into the hint"
        );
        assert_eq!(report.new_backends, vec![("curve".to_string(), 3)]);
        let text = report.render();
        assert_eq!(
            text.matches("refresh the baseline").count(),
            1,
            "hint must print once, not per row: {text}"
        );
        assert!(
            text.contains("new backend \"curve\": 3 fresh row(s)"),
            "{text}"
        );
    }

    #[test]
    fn parser_rejects_malformed_summaries() {
        assert!(parse_rows("{}").is_err());
        assert!(parse_rows("[{\"suite\": \"x\"}]").is_err());
        assert!(parse_rows("[{\"suite\": 3}]").is_err());
        let ok = "[{\"suite\": \"s\", \"backend\": \"b\", \"window\": 10, \"stride\": 2, \
                  \"threads\": 4, \"slides\": 5, \"p50_slide_us\": 1.0, \"p99_slide_us\": 2.0, \
                  \"max_slide_us\": 2.5, \"searches_per_slide\": 7.0, \"cpu_util\": 2.5}]";
        let rows = parse_rows(ok).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].key(), "s/b w=10 s=2 t=4");
        assert_eq!(rows[0].max_us, 2.5);
        assert_eq!(rows[0].cpu_util, 2.5);
    }

    /// A baseline written before the parallel slide engine has no
    /// `threads` column; the gate must refuse it with a regeneration
    /// hint, not silently match rows across different widths.
    #[test]
    fn threadless_baseline_fails_loudly_with_a_hint() {
        let stale = "[{\"suite\": \"s\", \"backend\": \"b\", \"window\": 10, \"stride\": 2, \
                     \"slides\": 5, \"p50_slide_us\": 1.0, \"p99_slide_us\": 2.0, \
                     \"max_slide_us\": 2.5, \"searches_per_slide\": 7.0}]";
        let err = parse_rows(stale).unwrap_err();
        assert!(err.contains("threads"), "{err}");
        assert!(err.contains("regenerate"), "{err}");
        // `cpu_util`, by contrast, is informational and may be absent.
        let ok = "[{\"suite\": \"s\", \"backend\": \"b\", \"window\": 10, \"stride\": 2, \
                  \"threads\": 1, \"slides\": 5, \"p50_slide_us\": 1.0, \"p99_slide_us\": 2.0, \
                  \"max_slide_us\": 2.5, \"searches_per_slide\": 7.0}]";
        assert_eq!(parse_rows(ok).unwrap()[0].cpu_util, 0.0);
    }
}
