//! Shared measurement machinery.

use disc_baselines::WindowClusterer;
use disc_telemetry::{HistSnapshot, LogHistogram};
use disc_window::{Record, SlidingWindow};
use std::time::{Duration, Instant};

/// One method's per-slide measurement over a windowed stream.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Method name.
    pub name: String,
    /// Mean wall time per slide.
    pub avg_slide: Duration,
    /// Mean wall time per *point* of the slide (`avg_slide / stride`).
    pub per_point: Duration,
    /// Per-slide wall-time distribution (nanoseconds): p50/p90/p99/max.
    /// Means hide tail stalls — a slide that triggers a big merge costs
    /// orders of magnitude more than the median — so reports carry both.
    pub latency: HistSnapshot,
    /// Exact worst slide, accumulated directly from the timer rather than
    /// read back out of the histogram.
    pub max_slide: Duration,
    /// Mean ε-range searches per slide.
    pub searches_per_slide: f64,
    /// Resident state estimate after the last slide.
    pub memory: usize,
    /// Largest resident state estimate observed at any slide boundary
    /// (sampled after the fill and after every measured slide). The paper's
    /// memory claim is about growth *during* the run, so the peak — not the
    /// final value — is what the memory curves report.
    pub peak_memory: usize,
    /// Slides measured.
    pub slides: u32,
    /// Final assignments (for quality measurements).
    pub assignments: Vec<(disc_geom::PointId, i64)>,
}

impl Measurement {
    /// Median per-slide wall time.
    pub fn p50_slide(&self) -> Duration {
        Duration::from_nanos(self.latency.p50)
    }

    /// 99th-percentile per-slide wall time.
    pub fn p99_slide(&self) -> Duration {
        Duration::from_nanos(self.latency.p99)
    }
}

/// One measured pass: fill (unmeasured), then up to `max_slides` timed
/// slides recorded into `hist`.
struct Pass {
    total: Duration,
    max_slide: Duration,
    slides: u32,
    searches: u64,
    peak_memory: usize,
}

fn drive_pass<const D: usize, M: WindowClusterer<D>>(
    method: &mut M,
    w: &mut SlidingWindow<D>,
    max_slides: u32,
    hist: &mut LogHistogram,
) -> Pass {
    method.apply(&w.fill());
    let searches_before = method.range_searches();
    let mut total = Duration::ZERO;
    let mut max_slide = Duration::ZERO;
    let mut slides = 0u32;
    // Sampled outside the timed region: byte accounting is capacity
    // arithmetic, but it must not leak into the latency histogram.
    let mut peak_memory = method.memory_bytes();
    while slides < max_slides {
        let Some(batch) = w.advance() else { break };
        let t = Instant::now();
        method.apply(&batch);
        let dt = t.elapsed();
        total += dt;
        max_slide = max_slide.max(dt);
        hist.record(dt.as_nanos() as u64);
        peak_memory = peak_memory.max(method.memory_bytes());
        slides += 1;
    }
    Pass {
        total,
        max_slide,
        slides,
        searches: method.range_searches() - searches_before,
        peak_memory,
    }
}

fn finish<const D: usize, M: WindowClusterer<D>>(
    method: &M,
    pass: &Pass,
    hist: &LogHistogram,
    stride: usize,
) -> Measurement {
    let avg = if pass.slides > 0 {
        pass.total / pass.slides
    } else {
        Duration::ZERO
    };
    Measurement {
        name: method.name().to_string(),
        avg_slide: avg,
        per_point: avg / stride.max(1) as u32,
        latency: hist.snapshot(),
        max_slide: pass.max_slide,
        searches_per_slide: if pass.slides > 0 {
            pass.searches as f64 / pass.slides as f64
        } else {
            0.0
        },
        memory: method.memory_bytes(),
        peak_memory: pass.peak_memory.max(method.memory_bytes()),
        slides: pass.slides,
        assignments: method.assignments(),
    }
}

/// Drives `method` over `records` with the given window/stride, measuring
/// up to `max_slides` slides (the fill is setup, not measured).
pub fn measure<const D: usize, M: WindowClusterer<D>>(
    mut method: M,
    records: &[Record<D>],
    window: usize,
    stride: usize,
    max_slides: u32,
) -> Measurement {
    let mut w = SlidingWindow::new(records.to_vec(), window, stride);
    let mut hist = LogHistogram::new();
    let pass = drive_pass(&mut method, &mut w, max_slides, &mut hist);
    finish(&method, &pass, &hist, stride)
}

/// Like [`measure`], also returning the driven window so callers can read
/// ground truth for quality metrics.
pub fn measure_with_window<const D: usize, M: WindowClusterer<D>>(
    mut method: M,
    records: &[Record<D>],
    window: usize,
    stride: usize,
    max_slides: u32,
) -> (Measurement, SlidingWindow<D>) {
    let mut w = SlidingWindow::new(records.to_vec(), window, stride);
    let mut hist = LogHistogram::new();
    let pass = drive_pass(&mut method, &mut w, max_slides, &mut hist);
    let m = finish(&method, &pass, &hist, stride);
    (m, w)
}

/// Runs [`measure`] `reps` times with a fresh method from `factory` each
/// repetition and aggregates: the latency distribution is the merge of
/// every repetition's histogram (one scratch histogram, cleared between
/// reps — no per-rep allocation), `slides` counts all measured slides,
/// and `max_slide` is the exact worst slide across all repetitions.
/// Single-pass tail percentiles from five slides are noise; merged
/// distributions over `reps x slides` samples are what the report rows
/// deserve.
pub fn measure_repeated<const D: usize, M, F>(
    mut factory: F,
    records: &[Record<D>],
    window: usize,
    stride: usize,
    max_slides: u32,
    reps: u32,
) -> Measurement
where
    M: WindowClusterer<D>,
    F: FnMut() -> M,
{
    assert!(reps > 0, "at least one repetition");
    let mut agg = LogHistogram::new();
    let mut scratch = LogHistogram::new();
    let mut combined = Pass {
        total: Duration::ZERO,
        max_slide: Duration::ZERO,
        slides: 0,
        searches: 0,
        peak_memory: 0,
    };
    let mut last: Option<M> = None;
    for _ in 0..reps {
        let mut method = factory();
        let mut w = SlidingWindow::new(records.to_vec(), window, stride);
        scratch.clear();
        let pass = drive_pass(&mut method, &mut w, max_slides, &mut scratch);
        agg.merge(&scratch);
        combined.total += pass.total;
        combined.max_slide = combined.max_slide.max(pass.max_slide);
        combined.slides += pass.slides;
        combined.searches += pass.searches;
        combined.peak_memory = combined.peak_memory.max(pass.peak_memory);
        last = Some(method);
    }
    let method = last.expect("reps > 0");
    finish(&method, &combined, &agg, stride)
}

/// Rounds `window` so that `stride` tiles it (EXTRA-N requirement); keeps
/// the stride and adjusts the window to the nearest multiple.
pub fn tile(window: usize, stride: usize) -> (usize, usize) {
    let stride = stride.max(1).min(window);
    let mult = (window as f64 / stride as f64).round().max(1.0) as usize;
    (stride * mult, stride)
}

/// Slide budget for a stride: tiny strides need many slides for a stable
/// mean (each slide is microseconds), large strides need few.
pub fn slides_for(stride: usize) -> u32 {
    ((2_000 / stride.max(1)) as u32).clamp(5, 250)
}

/// How many records a run needs: fill plus `slides` strides.
pub fn records_needed(window: usize, stride: usize, slides: u32) -> usize {
    window + stride * slides as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_core::{Disc, DiscConfig};
    use disc_window::datasets;

    #[test]
    fn tile_produces_divisible_pairs() {
        for (w, s) in [(1000, 37), (1000, 250), (16_000, 16), (100, 100)] {
            let (tw, ts) = tile(w, s);
            assert_eq!(tw % ts, 0);
            assert!(ts <= tw);
            // Window changed by less than one stride's rounding.
            assert!((tw as f64 - w as f64).abs() <= s as f64 / 2.0 + 1.0);
        }
    }

    #[test]
    fn measure_reports_sane_numbers() {
        let recs = datasets::gaussian_blobs::<2>(2_000, 3, 0.5, 3);
        let m = measure(Disc::new(DiscConfig::new(1.0, 5)), &recs, 500, 100, 5);
        assert_eq!(m.slides, 5);
        assert_eq!(m.assignments.len(), 500);
        assert!(m.searches_per_slide > 0.0);
        assert!(m.avg_slide > Duration::ZERO);
        assert!(m.per_point <= m.avg_slide);
        assert_eq!(m.latency.count, 5, "one histogram sample per slide");
        assert!(m.p50_slide() > Duration::ZERO);
        assert!(m.p50_slide() <= m.p99_slide());
        assert!(m.latency.p99 <= m.latency.max);
        // The direct accumulator agrees with the histogram's exact max.
        assert_eq!(m.max_slide.as_nanos() as u64, m.latency.max);
        // Peak memory is sampled at every slide boundary, so it can never
        // read below the final resident estimate.
        assert!(m.peak_memory >= m.memory);
        assert!(m.memory > 0, "DISC accounts its bytes");
    }

    #[test]
    fn repeated_measurement_merges_every_repetition() {
        let recs = datasets::gaussian_blobs::<2>(2_000, 3, 0.5, 3);
        let reps = 3u32;
        let m = measure_repeated(
            || Disc::new(DiscConfig::new(1.0, 5)),
            &recs,
            500,
            100,
            5,
            reps,
        );
        assert_eq!(m.slides, 5 * reps, "slides accumulate across reps");
        assert_eq!(
            m.latency.count,
            (5 * reps) as u64,
            "one merged histogram sample per measured slide"
        );
        assert_eq!(m.assignments.len(), 500, "final window from the last rep");
        assert!(m.max_slide.as_nanos() as u64 >= m.latency.p99);
        assert_eq!(m.max_slide.as_nanos() as u64, m.latency.max);
        // Same workload, same per-slide search count in every repetition.
        let single = measure(Disc::new(DiscConfig::new(1.0, 5)), &recs, 500, 100, 5);
        assert!((m.searches_per_slide - single.searches_per_slide).abs() < 1e-9);
    }

    #[test]
    fn short_stream_caps_slides() {
        let recs = datasets::gaussian_blobs::<2>(700, 3, 0.5, 3);
        let m = measure(Disc::new(DiscConfig::new(1.0, 5)), &recs, 500, 100, 100);
        assert_eq!(m.slides, 2);
    }
}
