//! A minimal fork-join worker pool for the parallel slide engine.
//!
//! The build environment is fully offline, so rayon is not available; this
//! crate covers the one pattern the engine needs — run `n_tasks` independent
//! closures across up to `width` OS threads and hand the results back **in
//! task order** — with nothing but `std`.
//!
//! Design notes:
//!
//! * **Dynamic claiming, not static chunking.** Workers claim task indices
//!   from a shared atomic counter, so an expensive task (one dense ε-ball
//!   among many sparse ones) never pins a whole pre-assigned chunk behind
//!   it. This is the load-balancing half of work stealing; with a single
//!   shared queue there is nothing to steal *from*, which keeps the pool
//!   tiny and obviously correct.
//! * **Scoped threads, not persistent workers.** [`Pool::run`] spawns
//!   `width - 1` scoped threads and participates with the calling thread.
//!   `std::thread::scope` lets tasks borrow from the caller's stack (the
//!   read-only index snapshot, the point store) with no lifetime erasure
//!   and no unsafe, and propagates worker panics to the caller on join.
//! * **Deterministic results.** Whatever interleaving the scheduler picks,
//!   the returned `Vec` is indexed by task id, so callers can merge
//!   results in a canonical order and stay bit-identical across widths.
//!
//! The pool is deliberately *not* in the hot path when `width == 1`: the
//! caller runs every task inline and no thread machinery is touched, which
//! is what keeps the sequential engine byte-for-byte on its old code path.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// A fork-join pool of fixed width.
#[derive(Debug)]
pub struct Pool {
    width: usize,
}

impl Pool {
    /// A pool running at most `width` tasks concurrently. `width` is
    /// clamped to at least 1; width 1 means "run inline on the caller".
    pub fn new(width: usize) -> Self {
        Pool {
            width: width.max(1),
        }
    }

    /// The concurrency width this pool was built with.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Runs `f(0..n_tasks)` across the pool and returns the results in
    /// task order. Tasks are claimed dynamically, one index at a time, so
    /// skewed task costs balance across workers.
    ///
    /// Panics in any task propagate to the caller (after every worker has
    /// been joined), never silently poison a result slot.
    pub fn run<T, F>(&self, n_tasks: usize, f: F) -> Vec<T>
    where
        T: Send + Sync,
        F: Fn(usize) -> T + Sync,
    {
        if self.width == 1 || n_tasks <= 1 {
            return (0..n_tasks).map(f).collect();
        }
        let slots: Vec<OnceLock<T>> = (0..n_tasks).map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        let claim_loop = || {
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_tasks {
                    break;
                }
                // Each index is claimed exactly once, so the slot is empty.
                let filled = slots[i].set(f(i)).is_ok();
                debug_assert!(filled, "task {i} claimed twice");
            }
        };
        std::thread::scope(|scope| {
            for _ in 1..self.width.min(n_tasks) {
                scope.spawn(claim_loop);
            }
            claim_loop();
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every task index was claimed"))
            .collect()
    }
}

/// The host's available parallelism (1 when it cannot be determined).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_task_order() {
        for width in [1, 2, 4, 8] {
            let pool = Pool::new(width);
            let out = pool.run(64, |i| i * i);
            assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_and_one_task_edge_cases() {
        let pool = Pool::new(4);
        assert!(pool.run(0, |i| i).is_empty());
        assert_eq!(pool.run(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn width_is_clamped_to_one() {
        let pool = Pool::new(0);
        assert_eq!(pool.width(), 1);
        assert_eq!(pool.run(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn tasks_can_borrow_caller_state() {
        let data: Vec<u64> = (0..1000).collect();
        let pool = Pool::new(4);
        let sums = pool.run(10, |i| data[i * 100..(i + 1) * 100].iter().sum::<u64>());
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn skewed_task_costs_still_complete() {
        let pool = Pool::new(3);
        let out = pool.run(16, |i| {
            // Task 0 is much slower than the rest; dynamic claiming lets
            // the other workers drain the remaining indices meanwhile.
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panic_propagates() {
        let pool = Pool::new(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(8, |i| {
                if i == 5 {
                    panic!("boom");
                }
                i
            })
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn available_parallelism_is_positive() {
        assert!(available_parallelism() >= 1);
    }
}
