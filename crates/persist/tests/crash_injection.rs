//! Crash injection: kill the durability layer at adversarial points and
//! prove that recovery either restores the exact surviving prefix of the
//! stream or fails loudly with the right typed error — never garbage
//! state, never a panic.
//!
//! Injection points:
//! - **mid-checkpoint**: a writer that errors or silently truncates after
//!   K bytes, plus on-disk images truncated at every prefix length and
//!   single-bit-flipped at random offsets;
//! - **torn WAL tail**: the log cut at an arbitrary byte offset, as a
//!   `SIGKILL` mid-append would leave it;
//! - **mid-log damage**: bit flips inside committed WAL records;
//! - **interrupted checkpoint save**: a leftover `.tmp` from a crash
//!   mid-save must be invisible to recovery.

use disc_core::{Disc, DiscConfig};
use disc_geom::PointId;
use disc_index::{GridIndex, RTree, SpatialBackend};
use disc_persist::{
    checkpoint_path, decode_checkpoint, encode_checkpoint, read_wal, recover_engine,
    save_checkpoint, write_checkpoint_to, Checkpoint, FsyncPolicy, PersistError, WalWriter,
};
use disc_window::{datasets, SlidingWindow};
use proptest::prelude::*;
use std::io::Write;
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("disc_persist_crash").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn canonical(assignments: &[(PointId, i64)]) -> Vec<(PointId, i64)> {
    let mut rename: std::collections::BTreeMap<i64, i64> = Default::default();
    assignments
        .iter()
        .map(|&(id, l)| {
            if l < 0 {
                (id, -1)
            } else {
                let next = rename.len() as i64;
                (id, *rename.entry(l).or_insert(next))
            }
        })
        .collect()
}

/// A writer that fails after `limit` bytes — either with an I/O error
/// (`fail_loud`) or by silently swallowing the rest, emulating a torn
/// write that `close()` never reported.
struct FailingWriter {
    written: Vec<u8>,
    limit: usize,
    fail_loud: bool,
}

impl Write for FailingWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let room = self.limit.saturating_sub(self.written.len());
        if room == 0 {
            return if self.fail_loud {
                Err(std::io::Error::other("injected: device error"))
            } else {
                Ok(buf.len()) // swallowed: bytes never reach the disk
            };
        }
        let n = buf.len().min(room);
        self.written.extend_from_slice(&buf[..n]);
        Ok(n)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A small durable run shared by the injection tests: fill + `slides`
/// slides, checkpoint at `ckpt_at`, WAL of everything. Returns the
/// directory, the WAL path, and the reference canonical partition after
/// each slide seq (index k-1 = after slide k).
fn durable_run<const D: usize, B: SpatialBackend<D>>(
    name: &str,
    seed: u64,
    slides: u64,
    ckpt_at: u64,
) -> (PathBuf, PathBuf, Vec<Vec<(PointId, i64)>>) {
    let dir = tmpdir(name);
    let wal_path = dir.join("slides.wal");
    let n = 120 + 20 * slides as usize;
    let recs = datasets::gaussian_blobs::<D>(n, 3, 0.8, seed);
    let mut w = SlidingWindow::new(recs, 120, 20);
    let mut disc: Disc<D, B> = Disc::with_index(DiscConfig::new(1.0, 4));
    let mut wal = WalWriter::<D>::create(&wal_path, FsyncPolicy::EveryN(2)).unwrap();
    let mut per_slide = Vec::new();

    let fill = w.fill();
    wal.append(1, &fill).unwrap();
    disc.apply(&fill);
    per_slide.push(canonical(&disc.assignments()));
    if ckpt_at == 1 {
        save_checkpoint(
            &checkpoint_path(&dir, 1),
            &Checkpoint {
                state: disc.export_state(),
                driver: None,
            },
        )
        .unwrap();
    }
    for _ in 1..slides {
        let batch = w.advance().expect("stream long enough");
        wal.append(disc.slide_seq() + 1, &batch).unwrap();
        disc.apply(&batch);
        per_slide.push(canonical(&disc.assignments()));
        if disc.slide_seq() == ckpt_at {
            save_checkpoint(
                &checkpoint_path(&dir, ckpt_at),
                &Checkpoint {
                    state: disc.export_state(),
                    driver: None,
                },
            )
            .unwrap();
        }
    }
    wal.sync().unwrap();
    (dir, wal_path, per_slide)
}

#[test]
fn failing_writer_never_yields_a_loadable_partial_checkpoint() {
    let mut disc = Disc::<2>::new(DiscConfig::new(1.0, 4));
    let recs = datasets::gaussian_blobs::<2>(200, 3, 0.8, 5);
    let mut w = SlidingWindow::new(recs, 120, 20);
    disc.apply(&w.fill());
    let ckpt = Checkpoint {
        state: disc.export_state(),
        driver: None,
    };
    let full = encode_checkpoint(&ckpt);

    for limit in (0..full.len()).step_by(7).chain([full.len() - 1]) {
        // Loud failure: the save reports the error.
        let mut loud = FailingWriter {
            written: Vec::new(),
            limit,
            fail_loud: true,
        };
        match write_checkpoint_to(&mut loud, &ckpt) {
            Err(PersistError::Io(_)) => {}
            other => panic!("limit {limit}: expected Io error, got {other:?}"),
        }
        // Silent truncation: whatever reached the disk must not decode.
        let mut quiet = FailingWriter {
            written: Vec::new(),
            limit,
            fail_loud: false,
        };
        let _ = write_checkpoint_to(&mut quiet, &ckpt);
        assert!(
            decode_checkpoint::<2>(&quiet.written).is_err(),
            "limit {limit}: truncated image decoded"
        );
    }
}

#[test]
fn leftover_tmp_from_a_crashed_save_is_invisible_to_recovery() {
    let (dir, wal_path, per_slide) = durable_run::<2, RTree<2>>("tmp-leftover", 5, 8, 5);
    // A crash mid-save leaves `ckpt-....tmp`, never the final name.
    std::fs::write(dir.join("ckpt-000000000007.tmp"), b"partial garbage").unwrap();
    let (rec, _, report) = recover_engine::<2, RTree<2>>(&dir, Some(&wal_path)).unwrap();
    assert_eq!(report.checkpoint_seq, 5);
    assert_eq!(report.replayed, 3);
    assert_eq!(canonical(&rec.assignments()), per_slide[7]);
}

#[test]
fn corrupted_named_checkpoint_fails_loudly_not_silently() {
    let (dir, wal_path, _) = durable_run::<2, RTree<2>>("named-corrupt", 9, 6, 4);
    let path = checkpoint_path(&dir, 4);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&path, &bytes).unwrap();
    match recover_engine::<2, RTree<2>>(&dir, Some(&wal_path)) {
        Err(
            PersistError::ChecksumMismatch { .. }
            | PersistError::Corrupt { .. }
            | PersistError::Truncated { .. },
        ) => {}
        Err(other) => panic!("wrong error: {other:?}"),
        Ok(_) => panic!("corrupted checkpoint recovered silently"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// SIGKILL mid-append: the WAL cut at an arbitrary byte offset. The
    /// complete-record prefix must replay to the exact canonical state the
    /// stream had after that many slides; the cut itself must never panic
    /// or mis-parse.
    #[test]
    fn wal_cut_anywhere_recovers_the_exact_prefix(
        seed in 0u64..500,
        ckpt_at in 1u64..4,
        cut_frac in 0.0f64..1.0,
        grid in prop::bool::ANY,
    ) {
        let name = format!("wal-cut-{seed}-{ckpt_at}-{grid}");
        let (dir, wal_path, per_slide) = if grid {
            durable_run::<2, GridIndex<2>>(&name, seed, 8, ckpt_at)
        } else {
            durable_run::<2, RTree<2>>(&name, seed, 8, ckpt_at)
        };
        let full = std::fs::read(&wal_path).unwrap();
        let header = 16;
        let cut = header + ((full.len() - header) as f64 * cut_frac) as usize;
        std::fs::write(&wal_path, &full[..cut]).unwrap();

        let scan = read_wal::<2>(&wal_path).unwrap();
        let survived = scan.records.len() as u64;
        // Only cuts that keep the checkpoint's tail contiguous are
        // recoverable; a cut before the checkpoint seq means the WAL lost
        // records the checkpoint already covers, which is still fine.
        let (rec, _, report) = if grid {
            let (r, d, rep) = recover_engine::<2, GridIndex<2>>(&dir, Some(&wal_path)).unwrap();
            (canonical(&r.assignments()), d, rep)
        } else {
            let (r, d, rep) = recover_engine::<2, RTree<2>>(&dir, Some(&wal_path)).unwrap();
            (canonical(&r.assignments()), d, rep)
        };
        let end = survived.max(ckpt_at);
        prop_assert_eq!(report.checkpoint_seq, ckpt_at);
        prop_assert_eq!(report.replayed, end - ckpt_at);
        prop_assert_eq!(&rec, &per_slide[(end - 1) as usize],
            "cut at byte {} (survived {} records)", cut, survived);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A checkpoint image truncated at any prefix length, or with any
    /// single bit flipped, must be rejected with a typed error — decoding
    /// must never panic and never silently return different state.
    #[test]
    fn checkpoint_corruption_is_always_detected(
        seed in 0u64..500,
        cut_frac in 0.0f64..1.0,
        flip_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let recs = datasets::gaussian_blobs::<2>(240, 3, 0.8, seed);
        let mut w = SlidingWindow::new(recs, 120, 20);
        let mut disc = Disc::<2>::new(DiscConfig::new(1.0, 4));
        disc.apply(&w.fill());
        disc.apply(&w.advance().unwrap());
        let ckpt = Checkpoint { state: disc.export_state(), driver: None };
        let bytes = encode_checkpoint(&ckpt);

        let cut = (bytes.len() as f64 * cut_frac) as usize;
        prop_assert!(decode_checkpoint::<2>(&bytes[..cut.min(bytes.len() - 1)]).is_err());

        let mut flipped = bytes.clone();
        let at = ((bytes.len() - 1) as f64 * flip_frac) as usize;
        flipped[at] ^= 1 << bit;
        match decode_checkpoint::<2>(&flipped) {
            Err(_) => {}
            Ok(decoded) => prop_assert_eq!(decoded, ckpt, "flip at {}:{} silently changed state", at, bit),
        }
    }

    /// Bit flips inside the WAL: recovery must either succeed on an exact
    /// prefix (flip landed in the already-truncated tail region) or fail
    /// with a typed WAL error — never panic, never replay wrong slides.
    #[test]
    fn wal_bit_flips_never_corrupt_recovery(
        seed in 0u64..500,
        flip_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let name = format!("wal-flip-{seed}");
        let (dir, wal_path, per_slide) = durable_run::<2, RTree<2>>(&name, seed, 6, 2);
        let mut bytes = std::fs::read(&wal_path).unwrap();
        let at = 16 + (((bytes.len() - 17) as f64) * flip_frac) as usize;
        bytes[at] ^= 1 << bit;
        std::fs::write(&wal_path, &bytes).unwrap();

        match recover_engine::<2, RTree<2>>(&dir, Some(&wal_path)) {
            Ok((rec, _, report)) => {
                // A flip in a length field can manufacture a torn tail; the
                // replayed prefix must still be exact.
                let end = report.checkpoint_seq + report.replayed;
                prop_assert_eq!(
                    canonical(&rec.assignments()),
                    per_slide[(end - 1) as usize].clone(),
                    "flip at {}:{}", at, bit
                );
            }
            Err(
                PersistError::WalCorrupt { .. }
                | PersistError::WalGap { .. }
                | PersistError::State(_),
            ) => {}
            Err(other) => panic!("untyped failure: {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
