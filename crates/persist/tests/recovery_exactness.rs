//! Recovery exactness: for every exactness-harness dataset, both index
//! backends, and *every* checkpoint slide `k`, an engine recovered from
//! the checkpoint at `k` plus the WAL tail must finish the stream with
//! the same clustering as the uninterrupted run.
//!
//! Two equalities are asserted, at the determinism boundary the engine
//! actually guarantees:
//!
//! - **At the restore point** the image is raw-identical: cluster ids,
//!   DSU, census — byte-for-byte what the crashed engine had.
//! - **After replaying further slides**, raw cluster-id *allocation* may
//!   legitimately diverge (hash-set iteration order depends on capacity
//!   history), so the induced partition is compared after canonical
//!   renumbering — the same criterion the core exactness suite uses for
//!   cross-backend agreement.

use disc_core::{Disc, DiscConfig};
use disc_geom::PointId;
use disc_index::{CurveIndex, GridIndex, RTree, SpatialBackend};
use disc_persist::{
    checkpoint_path, read_wal, recover_engine, save_checkpoint, Checkpoint, FsyncPolicy, WalWriter,
};
use disc_window::{datasets, Record, SlidingWindow};
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("disc_persist_exactness")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Canonical partition: renumber cluster ids by first appearance in
/// ascending point-id order, noise to -1.
fn canonical(assignments: &[(PointId, i64)]) -> Vec<(PointId, i64)> {
    let mut rename: std::collections::BTreeMap<i64, i64> = Default::default();
    assignments
        .iter()
        .map(|&(id, l)| {
            if l < 0 {
                (id, -1)
            } else {
                let next = rename.len() as i64;
                (id, *rename.entry(l).or_insert(next))
            }
        })
        .collect()
}

/// Runs `records` through a durable DISC (checkpoint at every slide, WAL
/// of every slide), then for each checkpoint `k` recovers and replays to
/// the end, comparing against the uninterrupted run.
fn assert_recovery_exact<const D: usize, B: SpatialBackend<D>>(
    name: &str,
    records: Vec<Record<D>>,
    window: usize,
    stride: usize,
    eps: f64,
    tau: usize,
) {
    let dir = tmpdir(name);
    let wal_path = dir.join("slides.wal");
    let cfg = DiscConfig::new(eps, tau);

    // Uninterrupted reference run, remembering raw assignments after each
    // slide (for restore-point identity) and the final clustering.
    let mut w = SlidingWindow::new(records, window, stride);
    let mut reference: Disc<D, B> = Disc::with_index(cfg);
    let mut wal = WalWriter::<D>::create(&wal_path, FsyncPolicy::Never).unwrap();
    let mut per_slide_raw = Vec::new();

    let fill = w.fill();
    wal.append(reference.slide_seq() + 1, &fill).unwrap();
    reference.apply(&fill);
    per_slide_raw.push(reference.assignments());
    save_checkpoint(
        &checkpoint_path(&dir, reference.slide_seq()),
        &Checkpoint {
            state: reference.export_state(),
            driver: None,
        },
    )
    .unwrap();
    while let Some(batch) = w.advance() {
        wal.append(reference.slide_seq() + 1, &batch).unwrap();
        reference.apply(&batch);
        per_slide_raw.push(reference.assignments());
        save_checkpoint(
            &checkpoint_path(&dir, reference.slide_seq()),
            &Checkpoint {
                state: reference.export_state(),
                driver: None,
            },
        )
        .unwrap();
    }
    wal.sync().unwrap();
    drop(wal);

    let total_slides = reference.slide_seq();
    assert!(
        total_slides >= 5,
        "{name}: stream too short to be meaningful"
    );
    let final_canonical = canonical(&reference.assignments());
    let final_census = reference.census();

    let scan = read_wal::<D>(&wal_path).unwrap();
    assert_eq!(scan.records.len() as u64, total_slides);
    assert!(scan.torn_tail_at.is_none());

    // Recover from EVERY checkpoint k and replay the tail to the end.
    for k in 1..=total_slides {
        let ckpt = disc_persist::load_checkpoint::<D>(&checkpoint_path(&dir, k)).unwrap();

        // Restore-point identity: raw-identical assignments and census.
        let restored: Disc<D, B> = Disc::recover(ckpt.state.clone(), Vec::new()).unwrap().0;
        assert_eq!(restored.slide_seq(), k, "{name}: k={k}");
        assert_eq!(
            restored.assignments(),
            per_slide_raw[(k - 1) as usize],
            "{name}: restore point k={k} is not raw-identical"
        );

        // Replay to the end: canonical partition + census must match.
        let tail: Vec<_> = scan
            .records
            .iter()
            .filter(|(seq, _)| *seq > k)
            .map(|(_, b)| b.clone())
            .collect();
        let (mut recovered, replayed) = Disc::<D, B>::recover(ckpt.state, tail).unwrap();
        assert_eq!(replayed, total_slides - k, "{name}: k={k}");
        assert_eq!(recovered.slide_seq(), total_slides, "{name}: k={k}");
        assert_eq!(
            canonical(&recovered.assignments()),
            final_canonical,
            "{name}: k={k} final partition diverged"
        );
        assert_eq!(recovered.census(), final_census, "{name}: k={k}");
        recovered.check_invariants();
    }

    // The full directory-level path must pick the newest checkpoint and
    // replay nothing.
    let (rec, _, report) = recover_engine::<D, B>(&dir, Some(&wal_path)).unwrap();
    assert_eq!(report.checkpoint_seq, total_slides);
    assert_eq!(report.replayed, 0);
    assert_eq!(rec.assignments(), reference.assignments());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn blobs_recovery_is_exact_on_rtree() {
    let recs = datasets::gaussian_blobs::<2>(450, 4, 0.6, 7);
    assert_recovery_exact::<2, RTree<2>>("blobs-rtree", recs, 150, 30, 1.0, 5);
}

#[test]
fn blobs_recovery_is_exact_on_grid() {
    let recs = datasets::gaussian_blobs::<2>(450, 4, 0.6, 7);
    assert_recovery_exact::<2, GridIndex<2>>("blobs-grid", recs, 150, 30, 1.0, 5);
}

#[test]
fn blobs_recovery_is_exact_on_curve() {
    let recs = datasets::gaussian_blobs::<2>(450, 4, 0.6, 7);
    assert_recovery_exact::<2, CurveIndex<2>>("blobs-curve", recs, 150, 30, 1.0, 5);
}

#[test]
fn maze_recovery_is_exact_on_rtree() {
    let recs = datasets::maze(500, 12, 3);
    assert_recovery_exact::<2, RTree<2>>("maze-rtree", recs, 180, 40, 0.6, 5);
}

#[test]
fn maze_recovery_is_exact_on_grid() {
    let recs = datasets::maze(500, 12, 3);
    assert_recovery_exact::<2, GridIndex<2>>("maze-grid", recs, 180, 40, 0.6, 5);
}

#[test]
fn covid_heavy_noise_recovery_is_exact() {
    let recs = datasets::covid_like(500, 11);
    assert_recovery_exact::<2, RTree<2>>("covid-rtree", recs, 180, 30, 1.2, 5);
}

#[test]
fn iris_4d_recovery_is_exact_on_all_backends() {
    let recs = datasets::iris_like(400, 13);
    assert_recovery_exact::<4, RTree<4>>("iris-rtree", recs.clone(), 150, 30, 2.0, 5);
    assert_recovery_exact::<4, GridIndex<4>>("iris-grid", recs.clone(), 150, 30, 2.0, 5);
    assert_recovery_exact::<4, CurveIndex<4>>("iris-curve", recs, 150, 30, 2.0, 5);
}

#[test]
fn geolife_3d_recovery_is_exact() {
    let recs = datasets::geolife_like(400, 17);
    assert_recovery_exact::<3, RTree<3>>("geolife-rtree", recs, 150, 30, 1.0, 5);
}

#[test]
fn full_turnover_recovery_is_exact() {
    // stride == window: checkpoints land between total population swaps.
    let recs = datasets::gaussian_blobs::<2>(800, 3, 0.5, 41);
    assert_recovery_exact::<2, RTree<2>>("turnover-rtree", recs, 100, 100, 1.0, 5);
}

/// A checkpoint written under one backend restores into an engine over any
/// other: the index is rebuilt from points, so the image is
/// backend-portable, and the declared backend travels in the config for
/// drivers that want to honour it. Every *ordered* pair of
/// {rtree, grid, curve} is exercised — checkpoint under the source, move,
/// resume under the destination — plus a replayed tail (`resume_at`-style)
/// so portability covers both the restore point and continued evolution.
#[test]
fn checkpoints_are_backend_portable_across_all_ordered_pairs() {
    use disc_core::IndexBackend;

    /// Runs the stream under `SRC`, checkpoints mid-stream, finishes the
    /// run; then restores the checkpoint into `DST` and replays the same
    /// tail, asserting identity at the restore point and at the end.
    fn portability_pair<S: SpatialBackend<2>, T: SpatialBackend<2>>(src: IndexBackend) {
        let recs = datasets::gaussian_blobs::<2>(450, 4, 0.6, 7);
        let mut w = SlidingWindow::new(recs, 150, 30);
        let cfg = DiscConfig::new(1.0, 5).with_backend(src);
        let mut source: Disc<2, S> = Disc::with_index(cfg);
        source.apply(&w.fill());
        for _ in 0..3 {
            source.apply(&w.advance().unwrap());
        }
        let state = source.export_state();
        assert_eq!(disc_core::backend_of(&state), src);

        // Restore point: raw-identical observables under the other backend.
        let restored: Disc<2, T> = Disc::recover(state.clone(), Vec::new()).unwrap().0;
        assert_eq!(restored.assignments(), source.assignments());
        assert_eq!(restored.census(), source.census());

        // Continue both engines over the same tail (the `resume_at` path
        // re-pins the stream and replays batches exactly like this).
        let mut tail = Vec::new();
        while let Some(batch) = w.advance() {
            tail.push(batch);
        }
        assert!(tail.len() >= 3, "stream too short for a meaningful tail");
        let (mut moved, replayed) = Disc::<2, T>::recover(state, tail.clone()).unwrap();
        assert_eq!(replayed, tail.len() as u64);
        for batch in &tail {
            source.apply(batch);
        }
        assert_eq!(
            canonical(&moved.assignments()),
            canonical(&source.assignments()),
            "{}->{} final partition diverged",
            S::NAME,
            T::NAME
        );
        assert_eq!(moved.census(), source.census());
        moved.check_invariants();
    }

    portability_pair::<RTree<2>, GridIndex<2>>(IndexBackend::RTree);
    portability_pair::<RTree<2>, CurveIndex<2>>(IndexBackend::RTree);
    portability_pair::<GridIndex<2>, RTree<2>>(IndexBackend::Grid);
    portability_pair::<GridIndex<2>, CurveIndex<2>>(IndexBackend::Grid);
    portability_pair::<CurveIndex<2>, RTree<2>>(IndexBackend::Curve);
    portability_pair::<CurveIndex<2>, GridIndex<2>>(IndexBackend::Curve);
}
