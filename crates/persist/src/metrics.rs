//! Telemetry publication for the durability layer.
//!
//! Metric names follow the repo convention (Prometheus snake case,
//! histograms in nanoseconds, `*_seconds` converted on render):
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `disc_checkpoints_total` | counter | checkpoints written |
//! | `disc_checkpoint_bytes_total` | counter | bytes written across all checkpoints |
//! | `disc_checkpoint_bytes` | gauge | size of the latest checkpoint file |
//! | `disc_checkpoint_write_bytes` | histogram | size of each checkpoint write |
//! | `disc_checkpoint_seconds` | histogram | wall time of each save |
//! | `disc_wal_records_total` | counter | slide records appended |
//! | `disc_wal_bytes_total` | counter | bytes appended to the WAL |
//! | `disc_wal_bytes` | gauge | current WAL on-disk size |
//! | `disc_recoveries_total` | counter | successful recoveries |
//! | `disc_recovery_replayed_slides` | histogram | WAL records replayed per recovery |
//!
//! The two gauges are the durability layer's rows in the memory/footprint
//! accounting: they track *current on-disk state* (latest checkpoint, live
//! WAL), where the `*_total` counters track cumulative write traffic.

use crate::recover::RecoveryReport;
use disc_telemetry::Recorder;
use std::time::Duration;

/// Publishes one completed checkpoint save. `bytes` is the size of the
/// newly written checkpoint file; since saves replace the previous file, it
/// doubles as the current on-disk checkpoint footprint.
pub fn publish_checkpoint(rec: &dyn Recorder, bytes: u64, elapsed: Duration) {
    if !rec.enabled() {
        return;
    }
    rec.counter_add("disc_checkpoints_total", 1);
    rec.counter_add("disc_checkpoint_bytes_total", bytes);
    rec.record_nanos("disc_checkpoint_write_bytes", bytes);
    rec.record_duration("disc_checkpoint_seconds", elapsed);
    rec.gauge_set("disc_checkpoint_bytes", bytes as f64);
}

/// Publishes one WAL append. `bytes` is the record size just appended;
/// `wal_len` the WAL's resulting on-disk size (header + all records).
pub fn publish_wal_append(rec: &dyn Recorder, bytes: u64, wal_len: u64) {
    if !rec.enabled() {
        return;
    }
    rec.counter_add("disc_wal_records_total", 1);
    rec.counter_add("disc_wal_bytes_total", bytes);
    rec.gauge_set("disc_wal_bytes", wal_len as f64);
}

/// Publishes one successful recovery.
pub fn publish_recovery(rec: &dyn Recorder, report: &RecoveryReport) {
    if !rec.enabled() {
        return;
    }
    rec.counter_add("disc_recoveries_total", 1);
    rec.record_nanos("disc_recovery_replayed_slides", report.replayed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_telemetry::Registry;

    #[test]
    fn counters_land_in_the_registry() {
        let reg = Registry::new();
        publish_checkpoint(&reg, 1024, Duration::from_millis(2));
        publish_checkpoint(&reg, 512, Duration::from_millis(1));
        publish_wal_append(&reg, 96, 16 + 96);
        publish_recovery(
            &reg,
            &RecoveryReport {
                checkpoint_seq: 5,
                replayed: 3,
                wal_records: 8,
                torn_tail: false,
            },
        );
        assert_eq!(reg.counter_value("disc_checkpoints_total"), 2);
        assert_eq!(reg.counter_value("disc_checkpoint_bytes_total"), 1536);
        assert_eq!(reg.counter_value("disc_wal_records_total"), 1);
        assert_eq!(reg.counter_value("disc_wal_bytes_total"), 96);
        assert_eq!(reg.counter_value("disc_recoveries_total"), 1);
        let snap = reg
            .histogram_snapshot("disc_recovery_replayed_slides")
            .unwrap();
        assert_eq!(snap.count, 1);
    }

    #[test]
    fn size_gauges_track_current_state_not_traffic() {
        let reg = Registry::new();
        publish_checkpoint(&reg, 1024, Duration::from_millis(2));
        publish_checkpoint(&reg, 512, Duration::from_millis(1));
        // The gauge holds the *latest* checkpoint size, not the sum.
        assert_eq!(reg.gauge_value("disc_checkpoint_bytes"), Some(512.0));
        publish_wal_append(&reg, 96, 112);
        publish_wal_append(&reg, 40, 152);
        // The gauge holds the WAL's current on-disk length.
        assert_eq!(reg.gauge_value("disc_wal_bytes"), Some(152.0));
        // Both gauges render with gauge TYPE headers and survive the strict
        // parser.
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE disc_wal_bytes gauge"));
        assert!(text.contains("# TYPE disc_checkpoint_bytes gauge"));
        disc_telemetry::parse_prometheus_strict(&text).unwrap();
        // The per-write histogram keeps its distinct name.
        let snap = reg
            .histogram_snapshot("disc_checkpoint_write_bytes")
            .unwrap();
        assert_eq!(snap.count, 2);
    }

    #[test]
    fn disabled_recorders_cost_nothing() {
        let noop = disc_telemetry::NoopRecorder;
        publish_checkpoint(&noop, 1, Duration::ZERO);
        publish_wal_append(&noop, 1, 17);
    }
}
