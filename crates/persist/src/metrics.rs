//! Telemetry publication for the durability layer.
//!
//! Metric names follow the repo convention (Prometheus snake case,
//! histograms in nanoseconds, `*_seconds` converted on render):
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `disc_checkpoints_total` | counter | checkpoints written |
//! | `disc_checkpoint_bytes_total` | counter | bytes written across all checkpoints |
//! | `disc_checkpoint_bytes` | histogram | size of each checkpoint |
//! | `disc_checkpoint_seconds` | histogram | wall time of each save |
//! | `disc_wal_records_total` | counter | slide records appended |
//! | `disc_wal_bytes_total` | counter | bytes appended to the WAL |
//! | `disc_recoveries_total` | counter | successful recoveries |
//! | `disc_recovery_replayed_slides` | histogram | WAL records replayed per recovery |

use crate::recover::RecoveryReport;
use disc_telemetry::Recorder;
use std::time::Duration;

/// Publishes one completed checkpoint save.
pub fn publish_checkpoint(rec: &dyn Recorder, bytes: u64, elapsed: Duration) {
    if !rec.enabled() {
        return;
    }
    rec.counter_add("disc_checkpoints_total", 1);
    rec.counter_add("disc_checkpoint_bytes_total", bytes);
    rec.record_nanos("disc_checkpoint_bytes", bytes);
    rec.record_duration("disc_checkpoint_seconds", elapsed);
}

/// Publishes one WAL append.
pub fn publish_wal_append(rec: &dyn Recorder, bytes: u64) {
    if !rec.enabled() {
        return;
    }
    rec.counter_add("disc_wal_records_total", 1);
    rec.counter_add("disc_wal_bytes_total", bytes);
}

/// Publishes one successful recovery.
pub fn publish_recovery(rec: &dyn Recorder, report: &RecoveryReport) {
    if !rec.enabled() {
        return;
    }
    rec.counter_add("disc_recoveries_total", 1);
    rec.record_nanos("disc_recovery_replayed_slides", report.replayed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_telemetry::Registry;

    #[test]
    fn counters_land_in_the_registry() {
        let reg = Registry::new();
        publish_checkpoint(&reg, 1024, Duration::from_millis(2));
        publish_checkpoint(&reg, 512, Duration::from_millis(1));
        publish_wal_append(&reg, 96);
        publish_recovery(
            &reg,
            &RecoveryReport {
                checkpoint_seq: 5,
                replayed: 3,
                wal_records: 8,
                torn_tail: false,
            },
        );
        assert_eq!(reg.counter_value("disc_checkpoints_total"), 2);
        assert_eq!(reg.counter_value("disc_checkpoint_bytes_total"), 1536);
        assert_eq!(reg.counter_value("disc_wal_records_total"), 1);
        assert_eq!(reg.counter_value("disc_wal_bytes_total"), 96);
        assert_eq!(reg.counter_value("disc_recoveries_total"), 1);
        let snap = reg
            .histogram_snapshot("disc_recovery_replayed_slides")
            .unwrap();
        assert_eq!(snap.count, 1);
    }

    #[test]
    fn disabled_recorders_cost_nothing() {
        let noop = disc_telemetry::NoopRecorder;
        publish_checkpoint(&noop, 1, Duration::ZERO);
        publish_wal_append(&noop, 1);
    }
}
