//! CRC-32 (IEEE 802.3), the per-section / per-record integrity check.
//!
//! Table-driven, computed once at first use. The polynomial and bit order
//! match zlib's `crc32`, so checkpoints can be verified with standard
//! tooling (`python3 -c 'import zlib, sys; ...'`).

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    })
}

/// CRC-32 of `bytes` (IEEE polynomial, reflected, init/xorout `!0`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = table();
    let mut c = !0u32;
    for &b in bytes {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_standard_check_value() {
        // The universal CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the window holds the most recent points".to_vec();
        let good = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), good, "missed flip at {byte}:{bit}");
            }
        }
    }
}
