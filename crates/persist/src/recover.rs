//! Checkpoint directory layout and crash recovery.
//!
//! A checkpoint directory holds files named `ckpt-{seq:012}.disc`, one per
//! checkpointed slide sequence. Recovery picks the newest by sequence,
//! restores the engine from it, then replays the WAL records *after* that
//! sequence — in order, requiring contiguity: a gap means the WAL and
//! checkpoint directory do not belong together and recovery fails with
//! [`PersistError::WalGap`] rather than silently producing a window that
//! never existed.

use crate::checkpoint::{load_checkpoint, Checkpoint, DriverState};
use crate::error::PersistError;
use crate::wal::read_wal;
use disc_core::{Disc, StateError};
use disc_index::SpatialBackend;
use std::path::{Path, PathBuf};

/// The canonical checkpoint file name for slide sequence `seq`.
pub fn checkpoint_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("ckpt-{seq:012}.disc"))
}

/// Scans `dir` for checkpoint files and returns the highest slide
/// sequence found, or `None` if the directory holds no checkpoints.
pub fn latest_checkpoint_seq(dir: &Path) -> Result<Option<u64>, PersistError> {
    let mut best = None;
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix("ckpt-") else {
            continue;
        };
        let Some(digits) = rest.strip_suffix(".disc") else {
            continue;
        };
        let Ok(seq) = digits.parse::<u64>() else {
            continue;
        };
        if best.is_none_or(|b| seq > b) {
            best = Some(seq);
        }
    }
    Ok(best)
}

/// What a successful recovery did, for logs and telemetry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Slide sequence of the checkpoint that was restored.
    pub checkpoint_seq: u64,
    /// WAL records replayed on top of the checkpoint.
    pub replayed: u64,
    /// Total complete records found in the WAL.
    pub wal_records: u64,
    /// Whether the WAL ended in a torn (incomplete) record, i.e. the
    /// previous process died mid-append.
    pub torn_tail: bool,
}

/// Restores an engine from the newest checkpoint in `dir`, then replays
/// the WAL tail at `wal` (if given).
///
/// WAL records at or before the checkpoint's sequence are skipped; the
/// remainder must continue the checkpoint contiguously. Returns the
/// recovered engine, the driver position saved with the checkpoint, and a
/// [`RecoveryReport`].
pub fn recover_engine<const D: usize, B: SpatialBackend<D>>(
    dir: &Path,
    wal: Option<&Path>,
) -> Result<(Disc<D, B>, Option<DriverState>, RecoveryReport), PersistError> {
    let seq = latest_checkpoint_seq(dir)?.ok_or(PersistError::NoCheckpoint)?;
    let ckpt: Checkpoint<D> = load_checkpoint(&checkpoint_path(dir, seq))?;
    let driver = ckpt.driver;

    let mut tail = Vec::new();
    let mut wal_records = 0;
    let mut torn_tail = false;
    if let Some(wal_path) = wal {
        let scan = read_wal::<D>(wal_path)?;
        wal_records = scan.records.len() as u64;
        torn_tail = scan.torn_tail_at.is_some();
        let mut expected = seq + 1;
        for (rec_seq, batch) in scan.records {
            if rec_seq <= seq {
                continue;
            }
            if rec_seq != expected {
                return Err(PersistError::WalGap {
                    expected,
                    found: rec_seq,
                });
            }
            expected += 1;
            tail.push(batch);
        }
    }

    let (disc, replayed) =
        Disc::<D, B>::recover(ckpt.state, tail).map_err(|e: StateError| PersistError::State(e))?;
    Ok((
        disc,
        driver,
        RecoveryReport {
            checkpoint_seq: seq,
            replayed,
            wal_records,
            torn_tail,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::save_checkpoint;
    use crate::wal::{FsyncPolicy, WalWriter};
    use disc_core::DiscConfig;
    use disc_geom::{Point, PointId};
    use disc_index::RTree;
    use disc_window::SlideBatch;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("disc_persist_recover_test")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn pt(i: u64) -> (PointId, Point<2>) {
        (
            PointId(i),
            Point::new([(i % 7) as f64 * 0.5, (i / 7) as f64 * 0.5]),
        )
    }

    fn fill(disc: &mut Disc<2>, ids: std::ops::Range<u64>) {
        let batch = SlideBatch {
            incoming: ids.map(pt).collect(),
            outgoing: vec![],
        };
        disc.apply(&batch);
    }

    fn slide(lo_out: u64, n: u64) -> SlideBatch<2> {
        SlideBatch {
            incoming: (lo_out + 30..lo_out + 30 + n).map(pt).collect(),
            outgoing: (lo_out..lo_out + n).map(pt).collect(),
        }
    }

    #[test]
    fn checkpoint_names_sort_by_sequence() {
        let dir = tmpdir("names");
        assert_eq!(latest_checkpoint_seq(&dir).unwrap(), None);
        for seq in [3u64, 12, 7] {
            std::fs::write(checkpoint_path(&dir, seq), b"x").unwrap();
        }
        std::fs::write(dir.join("notes.txt"), b"ignored").unwrap();
        std::fs::write(dir.join("ckpt-garbage.disc"), b"ignored").unwrap();
        assert_eq!(latest_checkpoint_seq(&dir).unwrap(), Some(12));
    }

    #[test]
    fn recover_restores_checkpoint_and_replays_wal_tail() {
        let dir = tmpdir("replay");
        let wal_path = dir.join("slides.wal");
        let cfg = DiscConfig::new(0.9, 3);

        // Uninterrupted reference run: fill + 6 slides.
        let mut reference = Disc::<2>::new(cfg);
        fill(&mut reference, 0..30);
        for k in 0..6u64 {
            reference.apply(&slide(k * 5, 5));
        }

        // Durable run: checkpoint after slide 3, WAL holds all 6.
        let mut durable = Disc::<2>::new(cfg);
        fill(&mut durable, 0..30);
        let mut wal = WalWriter::<2>::create(&wal_path, FsyncPolicy::Always).unwrap();
        for k in 0..6u64 {
            let b = slide(k * 5, 5);
            wal.append(durable.slide_seq() + 1, &b).unwrap();
            durable.apply(&b);
            if k == 2 {
                let ckpt = Checkpoint {
                    state: durable.export_state(),
                    driver: Some(DriverState {
                        window: 30,
                        stride: 5,
                        start: 15,
                    }),
                };
                save_checkpoint(&checkpoint_path(&dir, durable.slide_seq()), &ckpt).unwrap();
            }
        }
        drop(wal);

        let (rec, driver, report) = recover_engine::<2, RTree<2>>(&dir, Some(&wal_path)).unwrap();
        assert_eq!(report.replayed, 3);
        assert_eq!(report.wal_records, 6);
        assert!(!report.torn_tail);
        assert_eq!(driver.unwrap().stride, 5);
        assert_eq!(rec.slide_seq(), reference.slide_seq());
        assert_eq!(rec.assignments(), reference.assignments());
        assert_eq!(rec.num_clusters(), reference.num_clusters());
    }

    #[test]
    fn gaps_and_missing_checkpoints_are_loud() {
        let dir = tmpdir("gaps");
        assert!(matches!(
            recover_engine::<2, RTree<2>>(&dir, None),
            Err(PersistError::NoCheckpoint)
        ));

        let cfg = DiscConfig::new(0.9, 3);
        let mut disc = Disc::<2>::new(cfg);
        fill(&mut disc, 0..30);
        let ckpt = Checkpoint {
            state: disc.export_state(),
            driver: None,
        };
        save_checkpoint(&checkpoint_path(&dir, disc.slide_seq()), &ckpt).unwrap();

        // WAL that skips a sequence: ckpt is at seq 1, log holds 3.
        let wal_path = dir.join("gap.wal");
        let mut wal = WalWriter::<2>::create(&wal_path, FsyncPolicy::Never).unwrap();
        wal.append(3, &slide(0, 5)).unwrap();
        wal.sync().unwrap();
        drop(wal);
        match recover_engine::<2, RTree<2>>(&dir, Some(&wal_path)) {
            Err(PersistError::WalGap { expected, found: 3 }) => {
                assert_eq!(expected, disc.slide_seq() + 1)
            }
            Err(other) => panic!("expected WalGap, got {other:?}"),
            Ok(_) => panic!("expected WalGap, recovery succeeded"),
        }
    }
}
