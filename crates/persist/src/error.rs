//! The typed error surface of the durability layer.
//!
//! Every way a checkpoint or WAL can be unusable maps to a distinct
//! [`PersistError`] variant, so callers (and the crash-injection tests) can
//! distinguish "the file was torn mid-write" from "a bit flipped at rest"
//! from "the image decoded but fails engine validation". Nothing in this
//! crate ever panics on hostile bytes, and nothing ever returns a
//! partially-restored state.

use disc_core::StateError;
use std::io;

/// Why a checkpoint or WAL operation failed.
#[derive(Debug)]
pub enum PersistError {
    /// The underlying filesystem operation failed.
    Io(io::Error),
    /// The file does not start with the expected magic bytes — it is not a
    /// DISC checkpoint / WAL at all (or its first sector was destroyed).
    BadMagic {
        /// Which artifact was being read (`"checkpoint"`, `"wal"`).
        kind: &'static str,
    },
    /// The format version is newer than this build understands.
    UnsupportedVersion {
        /// Which artifact was being read.
        kind: &'static str,
        /// The version found in the header.
        found: u32,
    },
    /// The file was written for a different point dimension.
    DimensionMismatch {
        /// Dimension this reader was instantiated for.
        expected: usize,
        /// Dimension recorded in the header.
        found: usize,
    },
    /// The file ends before the named section is complete.
    Truncated {
        /// Section (or header field) that was cut short.
        section: String,
    },
    /// A section's payload does not match its stored CRC — bytes were
    /// flipped at rest or the write was torn mid-section.
    ChecksumMismatch {
        /// Section whose checksum failed.
        section: String,
    },
    /// The bytes decoded but violate the format's structural rules.
    Corrupt {
        /// Section where the violation was found.
        section: String,
        /// What rule was violated.
        detail: String,
    },
    /// The checkpoint decoded cleanly but the engine refused the image
    /// (see [`StateError`]).
    State(StateError),
    /// A complete WAL record failed its CRC — unlike a torn tail, this is
    /// mid-log damage and recovery must not proceed past it silently.
    WalCorrupt {
        /// Byte offset of the broken record.
        offset: u64,
        /// What was wrong.
        detail: String,
    },
    /// WAL replay found a sequence gap: the log does not continue the
    /// checkpoint it was paired with.
    WalGap {
        /// The slide sequence the engine needed next.
        expected: u64,
        /// The sequence the next WAL record carried.
        found: u64,
    },
    /// No checkpoint exists in the directory being recovered from.
    NoCheckpoint,
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::BadMagic { kind } => write!(f, "not a DISC {kind}: bad magic"),
            PersistError::UnsupportedVersion { kind, found } => {
                write!(f, "unsupported {kind} format version {found}")
            }
            PersistError::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "dimension mismatch: file is {found}-d, reader is {expected}-d"
                )
            }
            PersistError::Truncated { section } => {
                write!(f, "truncated file: section {section:?} is incomplete")
            }
            PersistError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section {section:?}")
            }
            PersistError::Corrupt { section, detail } => {
                write!(f, "corrupt section {section:?}: {detail}")
            }
            PersistError::State(e) => write!(f, "checkpoint rejected by the engine: {e}"),
            PersistError::WalCorrupt { offset, detail } => {
                write!(f, "corrupt WAL record at byte {offset}: {detail}")
            }
            PersistError::WalGap { expected, found } => {
                write!(
                    f,
                    "WAL does not continue the checkpoint: needed slide {expected}, found {found}"
                )
            }
            PersistError::NoCheckpoint => write!(f, "no checkpoint found"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::State(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<StateError> for PersistError {
    fn from(e: StateError) -> Self {
        PersistError::State(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let cases: Vec<(PersistError, &str)> = vec![
            (PersistError::BadMagic { kind: "checkpoint" }, "bad magic"),
            (
                PersistError::UnsupportedVersion {
                    kind: "wal",
                    found: 9,
                },
                "version 9",
            ),
            (
                PersistError::DimensionMismatch {
                    expected: 2,
                    found: 3,
                },
                "3-d",
            ),
            (
                PersistError::Truncated {
                    section: "points".into(),
                },
                "points",
            ),
            (
                PersistError::ChecksumMismatch {
                    section: "dsu".into(),
                },
                "dsu",
            ),
            (
                PersistError::WalCorrupt {
                    offset: 17,
                    detail: "crc".into(),
                },
                "byte 17",
            ),
            (
                PersistError::WalGap {
                    expected: 4,
                    found: 7,
                },
                "needed slide 4",
            ),
            (PersistError::NoCheckpoint, "no checkpoint"),
        ];
        for (err, needle) in cases {
            let text = err.to_string();
            assert!(text.contains(needle), "{text:?} missing {needle:?}");
        }
    }
}
