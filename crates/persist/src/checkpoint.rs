//! The versioned, checksummed checkpoint codec.
//!
//! # File format (version 1)
//!
//! ```text
//! header   := magic "DISCKPT\0" (8 bytes) | version u32 | dim u32 | sections u32
//! section  := name_len u8 | name | payload_len u64 | payload | crc32(payload) u32
//! ```
//!
//! All integers little-endian. Sections (in order): `config`, `engine`,
//! `points`, `dsu`, and optionally `driver`. Every section carries its own
//! CRC-32, so a truncated file fails with [`PersistError::Truncated`] and a
//! bit-flipped one with [`PersistError::ChecksumMismatch`] naming the
//! damaged section — decoding never yields garbage state.
//!
//! The spatial index is not serialized: the engine rebuilds it from the
//! `points` section via `bulk_insert` on restore, which is what keeps one
//! checkpoint restorable into either backend instantiation.
//!
//! [`save_checkpoint`] writes atomically — temp file, fsync, rename — so a
//! crash *during* a checkpoint can never leave a half-written file under
//! the final name: recovery either sees the previous complete checkpoint
//! or the new complete one.

use crate::codec::{Dec, Enc};
use crate::crc::crc32;
use crate::error::PersistError;
use disc_core::{DiscConfig, EngineState, IndexBackend, PointState};
use disc_geom::{Point, PointId};
use std::io::Write;
use std::path::Path;

/// Checkpoint file magic.
pub const MAGIC: &[u8; 8] = b"DISCKPT\0";
/// Current checkpoint format version.
pub const VERSION: u32 = 1;

/// The sliding-window driver's position, carried alongside the engine
/// state so `disc resume` can fast-forward the stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DriverState {
    /// Window size in points.
    pub window: u64,
    /// Stride size in points.
    pub stride: u64,
    /// Index of the first record of the current window.
    pub start: u64,
}

/// Everything a checkpoint stores: the engine image plus (for CLI runs)
/// the driver position.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint<const D: usize> {
    /// The engine image (see [`EngineState`]).
    pub state: EngineState<D>,
    /// Stream-driver position; `None` for library users that drive their
    /// own batches.
    pub driver: Option<DriverState>,
}

fn encode_config(cfg: &DiscConfig) -> Vec<u8> {
    let mut e = Enc::new();
    e.f64(cfg.eps);
    e.u64(cfg.tau as u64);
    let mut flags = 0u8;
    if cfg.enable_msbfs {
        flags |= 1;
    }
    if cfg.enable_epoch_probe {
        flags |= 2;
    }
    if cfg.enable_bulk_slide {
        flags |= 4;
    }
    e.u8(flags);
    e.u8(match cfg.backend {
        IndexBackend::RTree => 0,
        IndexBackend::Grid => 1,
        IndexBackend::Curve => 2,
    });
    e.into_bytes()
}

fn decode_config(bytes: &[u8]) -> Result<DiscConfig, PersistError> {
    let mut d = Dec::new(bytes, "config");
    let eps = d.f64()?;
    let tau = d.u64()?;
    let flags = d.u8()?;
    if flags & !0b111 != 0 {
        return Err(PersistError::Corrupt {
            section: "config".into(),
            detail: format!("unknown flag bits {flags:#x}"),
        });
    }
    let backend = match d.u8()? {
        0 => IndexBackend::RTree,
        1 => IndexBackend::Grid,
        2 => IndexBackend::Curve,
        other => {
            return Err(PersistError::Corrupt {
                section: "config".into(),
                detail: format!("unknown backend tag {other}"),
            })
        }
    };
    d.finish()?;
    if !(eps > 0.0 && eps.is_finite()) || tau < 1 || tau > usize::MAX as u64 {
        return Err(PersistError::Corrupt {
            section: "config".into(),
            detail: format!("eps {eps} / tau {tau} out of range"),
        });
    }
    Ok(DiscConfig {
        eps,
        tau: tau as usize,
        enable_msbfs: flags & 1 != 0,
        enable_epoch_probe: flags & 2 != 0,
        enable_bulk_slide: flags & 4 != 0,
        backend,
        // Deliberately NOT persisted: worker count is a host-execution knob
        // with no effect on clustering output, and the restoring host may
        // have different parallelism than the checkpointing one. Both encode
        // and decode sides see the same process-stable ambient default, so
        // config round-trips stay exact.
        threads: DiscConfig::default_threads(),
    })
}

fn encode_points<const D: usize>(points: &[PointState<D>]) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(points.len() as u64);
    for p in points {
        e.u64(p.id.raw());
        for i in 0..D {
            e.f64(p.point[i]);
        }
        e.u32(p.n_eps);
        e.bool(p.prev_core);
        e.u32(p.cid);
        match p.adopter {
            Some(a) => {
                e.u8(1);
                e.u64(a.raw());
            }
            None => e.u8(0),
        }
    }
    e.into_bytes()
}

fn decode_points<const D: usize>(bytes: &[u8]) -> Result<Vec<PointState<D>>, PersistError> {
    let mut d = Dec::new(bytes, "points");
    // id + coords + n_eps + prev_core + cid + adopter flag.
    let min_each = 8 + 8 * D + 4 + 1 + 4 + 1;
    let raw_count = d.u64()?;
    let count = d.checked_count(raw_count, min_each)?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let id = PointId(d.u64()?);
        let mut coords = [0.0f64; D];
        for c in coords.iter_mut() {
            *c = d.f64()?;
        }
        let n_eps = d.u32()?;
        let prev_core = d.bool()?;
        let cid = d.u32()?;
        let adopter = match d.u8()? {
            0 => None,
            1 => Some(PointId(d.u64()?)),
            other => {
                return Err(PersistError::Corrupt {
                    section: "points".into(),
                    detail: format!("adopter flag {other}"),
                })
            }
        };
        out.push(PointState {
            id,
            point: Point::new(coords),
            n_eps,
            prev_core,
            cid,
            adopter,
        });
    }
    d.finish()?;
    Ok(out)
}

fn encode_dsu(parent: &[u32], size: &[u32]) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(parent.len() as u64);
    for &p in parent {
        e.u32(p);
    }
    for &s in size {
        e.u32(s);
    }
    e.into_bytes()
}

fn decode_dsu(bytes: &[u8]) -> Result<(Vec<u32>, Vec<u32>), PersistError> {
    let mut d = Dec::new(bytes, "dsu");
    let raw_count = d.u64()?;
    let count = d.checked_count(raw_count, 8)?;
    let mut parent = Vec::with_capacity(count);
    for _ in 0..count {
        parent.push(d.u32()?);
    }
    let mut size = Vec::with_capacity(count);
    for _ in 0..count {
        size.push(d.u32()?);
    }
    d.finish()?;
    Ok((parent, size))
}

fn encode_driver(drv: &DriverState) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(drv.window);
    e.u64(drv.stride);
    e.u64(drv.start);
    e.into_bytes()
}

fn decode_driver(bytes: &[u8]) -> Result<DriverState, PersistError> {
    let mut d = Dec::new(bytes, "driver");
    let drv = DriverState {
        window: d.u64()?,
        stride: d.u64()?,
        start: d.u64()?,
    };
    d.finish()?;
    if drv.window == 0 || drv.stride == 0 || drv.stride > drv.window {
        return Err(PersistError::Corrupt {
            section: "driver".into(),
            detail: format!(
                "window {} / stride {} violate the sliding-window model",
                drv.window, drv.stride
            ),
        });
    }
    Ok(drv)
}

fn push_section(out: &mut Vec<u8>, name: &str, payload: &[u8]) {
    debug_assert!(name.len() <= u8::MAX as usize);
    out.push(name.len() as u8);
    out.extend_from_slice(name.as_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
}

/// Encodes a checkpoint into its on-disk byte image.
pub fn encode_checkpoint<const D: usize>(ckpt: &Checkpoint<D>) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(D as u32).to_le_bytes());
    let sections = if ckpt.driver.is_some() { 5u32 } else { 4 };
    out.extend_from_slice(&sections.to_le_bytes());
    push_section(&mut out, "config", &encode_config(&ckpt.state.config));
    let mut engine = Enc::new();
    engine.u64(ckpt.state.slide_seq);
    push_section(&mut out, "engine", &engine.into_bytes());
    push_section(&mut out, "points", &encode_points(&ckpt.state.points));
    push_section(
        &mut out,
        "dsu",
        &encode_dsu(&ckpt.state.dsu_parent, &ckpt.state.dsu_size),
    );
    if let Some(drv) = &ckpt.driver {
        push_section(&mut out, "driver", &encode_driver(drv));
    }
    out
}

/// Decodes a checkpoint byte image, verifying magic, version, dimension,
/// and every section CRC.
pub fn decode_checkpoint<const D: usize>(bytes: &[u8]) -> Result<Checkpoint<D>, PersistError> {
    let mut d = Dec::new(bytes, "header");
    if d.remaining() < MAGIC.len() {
        return Err(PersistError::Truncated {
            section: "header".into(),
        });
    }
    let mut magic = [0u8; 8];
    for b in magic.iter_mut() {
        *b = d.u8()?;
    }
    if &magic != MAGIC {
        return Err(PersistError::BadMagic { kind: "checkpoint" });
    }
    let version = d.u32()?;
    if version != VERSION {
        return Err(PersistError::UnsupportedVersion {
            kind: "checkpoint",
            found: version,
        });
    }
    let dim = d.u32()? as usize;
    if dim != D {
        return Err(PersistError::DimensionMismatch {
            expected: D,
            found: dim,
        });
    }
    let sections = d.u32()?;
    if sections > 16 {
        return Err(PersistError::Corrupt {
            section: "header".into(),
            detail: format!("{sections} sections"),
        });
    }

    let mut config = None;
    let mut slide_seq = None;
    let mut points = None;
    let mut dsu = None;
    let mut driver = None;
    for _ in 0..sections {
        let name_len = d.u8()? as usize;
        let mut name = String::with_capacity(name_len);
        for _ in 0..name_len {
            name.push(d.u8()? as char);
        }
        let raw_len = d.u64()?;
        let len = d.checked_count(raw_len, 1)?;
        let mut payload = Vec::with_capacity(len);
        for _ in 0..len {
            payload.push(d.u8()?);
        }
        let stored_crc = d.u32()?;
        if crc32(&payload) != stored_crc {
            return Err(PersistError::ChecksumMismatch { section: name });
        }
        match name.as_str() {
            "config" => config = Some(decode_config(&payload)?),
            "engine" => {
                let mut ed = Dec::new(&payload, "engine");
                slide_seq = Some(ed.u64()?);
                ed.finish()?;
            }
            "points" => points = Some(decode_points::<D>(&payload)?),
            "dsu" => dsu = Some(decode_dsu(&payload)?),
            "driver" => driver = Some(decode_driver(&payload)?),
            other => {
                return Err(PersistError::Corrupt {
                    section: other.to_string(),
                    detail: "unknown section".into(),
                })
            }
        }
    }
    d.finish()?;

    let missing = |what: &str| PersistError::Corrupt {
        section: what.to_string(),
        detail: "section missing".into(),
    };
    let (dsu_parent, dsu_size) = dsu.ok_or_else(|| missing("dsu"))?;
    Ok(Checkpoint {
        state: EngineState {
            config: config.ok_or_else(|| missing("config"))?,
            slide_seq: slide_seq.ok_or_else(|| missing("engine"))?,
            points: points.ok_or_else(|| missing("points"))?,
            dsu_parent,
            dsu_size,
        },
        driver,
    })
}

/// Streams the encoded checkpoint into `w`; returns the byte count.
///
/// Exposed separately from [`save_checkpoint`] so tests can inject write
/// failures (the `FailingWriter` harness) without touching the atomic
/// rename path.
pub fn write_checkpoint_to<W: Write, const D: usize>(
    w: &mut W,
    ckpt: &Checkpoint<D>,
) -> Result<u64, PersistError> {
    let bytes = encode_checkpoint(ckpt);
    w.write_all(&bytes)?;
    Ok(bytes.len() as u64)
}

/// Atomically writes a checkpoint to `path`: encode, write to
/// `path.tmp`, fsync, rename over `path`. Returns the byte count. A crash
/// at any step leaves either the old file or the new one — never a
/// partial image under the final name.
pub fn save_checkpoint<const D: usize>(
    path: &Path,
    ckpt: &Checkpoint<D>,
) -> Result<u64, PersistError> {
    let tmp = path.with_extension("tmp");
    let bytes = encode_checkpoint(ckpt);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    // Best-effort directory sync so the rename itself is durable.
    if let Some(dir) = path.parent() {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(bytes.len() as u64)
}

/// Loads and fully verifies a checkpoint from `path`.
pub fn load_checkpoint<const D: usize>(path: &Path) -> Result<Checkpoint<D>, PersistError> {
    let bytes = std::fs::read(path)?;
    decode_checkpoint(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint<2> {
        Checkpoint {
            state: EngineState {
                config: DiscConfig::new(0.75, 4).with_backend(IndexBackend::Grid),
                slide_seq: 17,
                points: vec![
                    PointState {
                        id: PointId(3),
                        point: Point::new([1.5, -2.0]),
                        n_eps: 5,
                        prev_core: true,
                        cid: 0,
                        adopter: None,
                    },
                    PointState {
                        id: PointId(4),
                        point: Point::new([1.6, -2.0]),
                        n_eps: 2,
                        prev_core: false,
                        cid: u32::MAX,
                        adopter: Some(PointId(3)),
                    },
                ],
                dsu_parent: vec![0, 0],
                dsu_size: vec![2, 1],
            },
            driver: Some(DriverState {
                window: 100,
                stride: 10,
                start: 70,
            }),
        }
    }

    #[test]
    fn encode_decode_roundtrips() {
        let ckpt = sample();
        let bytes = encode_checkpoint(&ckpt);
        let back = decode_checkpoint::<2>(&bytes).unwrap();
        assert_eq!(back, ckpt);

        // Without the driver section too.
        let mut ckpt = ckpt;
        ckpt.driver = None;
        let back = decode_checkpoint::<2>(&encode_checkpoint(&ckpt)).unwrap();
        assert_eq!(back, ckpt);
    }

    #[test]
    fn save_load_roundtrips_on_disk() {
        let dir = std::env::temp_dir().join("disc_persist_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.disc");
        let ckpt = sample();
        let bytes = save_checkpoint(&path, &ckpt).unwrap();
        assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());
        assert_eq!(load_checkpoint::<2>(&path).unwrap(), ckpt);
        assert!(
            !path.with_extension("tmp").exists(),
            "temp file must not survive"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn every_truncation_point_is_rejected() {
        let bytes = encode_checkpoint(&sample());
        for cut in 0..bytes.len() {
            let err = decode_checkpoint::<2>(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    PersistError::Truncated { .. }
                        | PersistError::BadMagic { .. }
                        | PersistError::ChecksumMismatch { .. }
                        | PersistError::Corrupt { .. }
                ),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn every_bit_flip_is_rejected_or_harmless() {
        // Flipping any single bit must either be detected (the usual case)
        // or produce an image identical in meaning — it must never decode
        // into *different* state. Flips in section payloads are caught by
        // CRC; flips in headers by magic/version/dim/structure checks.
        let ckpt = sample();
        let bytes = encode_checkpoint(&ckpt);
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[byte] ^= 1 << bit;
                match decode_checkpoint::<2>(&flipped) {
                    Err(_) => {}
                    Ok(decoded) => {
                        assert_eq!(decoded, ckpt, "flip at {byte}:{bit} silently changed state")
                    }
                }
            }
        }
    }

    #[test]
    fn dimension_and_version_guards_fire() {
        let bytes = encode_checkpoint(&sample());
        assert!(matches!(
            decode_checkpoint::<3>(&bytes),
            Err(PersistError::DimensionMismatch {
                expected: 3,
                found: 2
            })
        ));
        let mut v9 = bytes.clone();
        v9[8] = 9;
        assert!(matches!(
            decode_checkpoint::<2>(&v9),
            Err(PersistError::UnsupportedVersion {
                kind: "checkpoint",
                found: 9
            })
        ));
        let mut bad = bytes;
        bad[0] = b'X';
        assert!(matches!(
            decode_checkpoint::<2>(&bad),
            Err(PersistError::BadMagic { kind: "checkpoint" })
        ));
    }

    #[test]
    fn failing_writer_surfaces_io_errors() {
        struct FailAfter {
            left: usize,
        }
        impl Write for FailAfter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.left == 0 {
                    return Err(std::io::Error::other("disk full"));
                }
                let n = buf.len().min(self.left);
                self.left -= n;
                Ok(n)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let ckpt = sample();
        let mut w = FailAfter { left: 10 };
        assert!(matches!(
            write_checkpoint_to(&mut w, &ckpt),
            Err(PersistError::Io(_))
        ));
        let mut ok = Vec::new();
        assert!(write_checkpoint_to(&mut ok, &ckpt).is_ok());
    }
}
