//! The slide write-ahead log.
//!
//! # File format (version 1)
//!
//! ```text
//! header := magic "DISCWAL\0" (8 bytes) | version u32 | dim u32
//! record := len u32 | payload | crc32(payload) u32
//! payload := seq u64 | n_in u32 | n_out u32
//!          | n_in × (id u64, D × f64)      incoming
//!          | n_out × (id u64, D × f64)     outgoing
//! ```
//!
//! A slide batch is appended (and optionally fsynced, per
//! [`FsyncPolicy`]) **before** it is applied to the engine, so every
//! committed slide is either in the log or was never applied. On read,
//! an incomplete final record — the process died mid-append — is a *torn
//! tail*: it is reported, tolerated, and truncated away on the next
//! [`WalWriter::open_append`]. A *complete* record whose CRC fails is
//! mid-log damage and surfaces as [`PersistError::WalCorrupt`]; recovery
//! must not skip over it silently.

use crate::codec::{Dec, Enc};
use crate::crc::crc32;
use crate::error::PersistError;
use disc_geom::{Point, PointId};
use disc_window::SlideBatch;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::Path;

/// WAL file magic.
pub const MAGIC: &[u8; 8] = b"DISCWAL\0";
/// Current WAL format version.
pub const VERSION: u32 = 1;

/// When the WAL writer calls `fsync` after an append.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync after every record: no committed slide can be lost, at the
    /// cost of one disk flush per slide.
    Always,
    /// Fsync after every `k`-th record: bounds loss to at most `k` slides.
    EveryN(u64),
    /// Never fsync explicitly; the OS flushes on its own schedule.
    /// Fastest, loses up to the page-cache window on power failure.
    Never,
}

impl FsyncPolicy {
    /// Parses the CLI spelling: `always`, `never`, or `every=N`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "never" => Some(FsyncPolicy::Never),
            _ => {
                let n: u64 = s.strip_prefix("every=")?.parse().ok()?;
                if n == 0 {
                    None
                } else {
                    Some(FsyncPolicy::EveryN(n))
                }
            }
        }
    }
}

fn encode_record<const D: usize>(seq: u64, batch: &SlideBatch<D>) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(seq);
    e.u32(batch.incoming.len() as u32);
    e.u32(batch.outgoing.len() as u32);
    for (id, p) in batch.incoming.iter().chain(&batch.outgoing) {
        e.u64(id.raw());
        for i in 0..D {
            e.f64(p[i]);
        }
    }
    e.into_bytes()
}

fn decode_record<const D: usize>(
    payload: &[u8],
    offset: u64,
) -> Result<(u64, SlideBatch<D>), PersistError> {
    let corrupt = |detail: String| PersistError::WalCorrupt { offset, detail };
    let mut d = Dec::new(payload, "wal record");
    let seq = d.u64().map_err(|_| corrupt("payload too short".into()))?;
    let n_in = d.u32().map_err(|_| corrupt("payload too short".into()))? as usize;
    let n_out = d.u32().map_err(|_| corrupt("payload too short".into()))? as usize;
    let entry_bytes = 8 + 8 * D;
    if payload.len() != 16 + (n_in + n_out) * entry_bytes {
        return Err(corrupt(format!(
            "payload of {} bytes does not fit {n_in}+{n_out} entries",
            payload.len()
        )));
    }
    let mut read_entries = |n: usize| -> Result<Vec<(PointId, Point<D>)>, PersistError> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let id = PointId(d.u64().map_err(|_| corrupt("entry cut short".into()))?);
            let mut coords = [0.0f64; D];
            for c in coords.iter_mut() {
                *c = d.f64().map_err(|_| corrupt("entry cut short".into()))?;
            }
            out.push((id, Point::new(coords)));
        }
        Ok(out)
    };
    let incoming = read_entries(n_in)?;
    let outgoing = read_entries(n_out)?;
    Ok((seq, SlideBatch { incoming, outgoing }))
}

/// Appends slide records to a WAL file.
pub struct WalWriter<const D: usize> {
    file: BufWriter<File>,
    policy: FsyncPolicy,
    appended_since_sync: u64,
    /// Total records appended through this writer.
    appended: u64,
    /// Current on-disk size: header plus every record written or inherited
    /// (maintained incrementally; feeds the `disc_wal_bytes` gauge).
    len_bytes: u64,
}

impl<const D: usize> WalWriter<D> {
    /// Creates a fresh WAL at `path` (truncating any existing file) and
    /// writes the header.
    pub fn create(path: &Path, policy: FsyncPolicy) -> Result<Self, PersistError> {
        let mut file = File::create(path)?;
        file.write_all(MAGIC)?;
        file.write_all(&VERSION.to_le_bytes())?;
        file.write_all(&(D as u32).to_le_bytes())?;
        file.sync_all()?;
        Ok(WalWriter {
            file: BufWriter::new(file),
            policy,
            appended_since_sync: 0,
            appended: 0,
            len_bytes: (MAGIC.len() + 8) as u64,
        })
    }

    /// Opens an existing WAL for appending, validating its header and
    /// truncating a torn tail left by a crash mid-append. Returns the
    /// writer plus the records that survive (for replay).
    pub fn open_append(
        path: &Path,
        policy: FsyncPolicy,
    ) -> Result<(Self, WalScan<D>), PersistError> {
        let scan = read_wal::<D>(path)?;
        let file = OpenOptions::new().write(true).open(path)?;
        if let Some(offset) = scan.torn_tail_at {
            file.set_len(offset)?;
            file.sync_all()?;
        }
        let mut file = file;
        use std::io::Seek;
        let len_bytes = file.seek(std::io::SeekFrom::End(0))?;
        Ok((
            WalWriter {
                file: BufWriter::new(file),
                policy,
                appended_since_sync: 0,
                appended: 0,
                len_bytes,
            },
            scan,
        ))
    }

    /// Appends one committed slide. Call **before** applying the batch to
    /// the engine. Returns the record's size in bytes.
    pub fn append(&mut self, seq: u64, batch: &SlideBatch<D>) -> Result<u64, PersistError> {
        let payload = encode_record(seq, batch);
        self.file.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.file.write_all(&payload)?;
        self.file.write_all(&crc32(&payload).to_le_bytes())?;
        self.file.flush()?;
        self.appended += 1;
        self.appended_since_sync += 1;
        let due = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(k) => self.appended_since_sync >= k,
            FsyncPolicy::Never => false,
        };
        if due {
            self.sync()?;
        }
        self.len_bytes += payload.len() as u64 + 8;
        Ok(payload.len() as u64 + 8)
    }

    /// Forces an fsync regardless of policy.
    pub fn sync(&mut self) -> Result<(), PersistError> {
        self.file.flush()?;
        self.file.get_ref().sync_all()?;
        self.appended_since_sync = 0;
        Ok(())
    }

    /// Records appended through this writer (excludes pre-existing ones).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Current WAL on-disk size in bytes (header + every record, including
    /// ones inherited through [`open_append`](WalWriter::open_append)).
    pub fn len_bytes(&self) -> u64 {
        self.len_bytes
    }
}

impl<const D: usize> disc_telemetry::MemoryFootprint for WalWriter<D> {
    /// The writer's resident state is one `BufWriter` buffer; the on-disk
    /// length rides along as a child so a full-system footprint tree shows
    /// durable bytes next to heap bytes.
    fn footprint(&self) -> disc_telemetry::FootprintNode {
        use disc_telemetry::FootprintNode;
        FootprintNode::branch(
            "wal",
            vec![
                FootprintNode::leaf("buffer", self.file.capacity()),
                FootprintNode::leaf("disk", self.len_bytes as usize),
            ],
        )
    }
}

/// The result of scanning a WAL file.
#[derive(Debug)]
pub struct WalScan<const D: usize> {
    /// Complete, checksum-verified records in file order.
    pub records: Vec<(u64, SlideBatch<D>)>,
    /// Byte offset of an incomplete final record, if the file ends
    /// mid-append. `None` means the file ends cleanly on a record
    /// boundary.
    pub torn_tail_at: Option<u64>,
}

/// Reads and verifies an entire WAL file.
///
/// A torn tail (EOF before the last record is complete) is tolerated and
/// reported via [`WalScan::torn_tail_at`]; any *complete* record with a
/// bad CRC, or a header problem, is an error.
pub fn read_wal<const D: usize>(path: &Path) -> Result<WalScan<D>, PersistError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let header_len = MAGIC.len() + 8;
    if bytes.len() < header_len {
        return Err(PersistError::Truncated {
            section: "wal header".into(),
        });
    }
    if &bytes[..8] != MAGIC {
        return Err(PersistError::BadMagic { kind: "wal" });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(PersistError::UnsupportedVersion {
            kind: "wal",
            found: version,
        });
    }
    let dim = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    if dim != D {
        return Err(PersistError::DimensionMismatch {
            expected: D,
            found: dim,
        });
    }

    let mut records = Vec::new();
    let mut pos = header_len;
    loop {
        if pos == bytes.len() {
            return Ok(WalScan {
                records,
                torn_tail_at: None,
            });
        }
        if bytes.len() - pos < 4 {
            return Ok(WalScan {
                records,
                torn_tail_at: Some(pos as u64),
            });
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        if bytes.len() - pos - 4 < len + 4 {
            return Ok(WalScan {
                records,
                torn_tail_at: Some(pos as u64),
            });
        }
        let payload = &bytes[pos + 4..pos + 4 + len];
        let stored = u32::from_le_bytes(bytes[pos + 4 + len..pos + 8 + len].try_into().unwrap());
        if crc32(payload) != stored {
            return Err(PersistError::WalCorrupt {
                offset: pos as u64,
                detail: "checksum mismatch on a complete record".into(),
            });
        }
        records.push(decode_record::<D>(payload, pos as u64)?);
        pos += 8 + len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("disc_persist_wal_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn batch(seq: u64) -> SlideBatch<2> {
        SlideBatch {
            incoming: vec![
                (PointId(seq * 10), Point::new([seq as f64, 0.5])),
                (PointId(seq * 10 + 1), Point::new([seq as f64, 1.5])),
            ],
            outgoing: vec![(PointId(seq * 10 - 5), Point::new([-1.0, -2.0]))],
        }
    }

    fn batches_eq(a: &SlideBatch<2>, b: &SlideBatch<2>) -> bool {
        a.incoming == b.incoming && a.outgoing == b.outgoing
    }

    #[test]
    fn append_and_read_roundtrips() {
        let path = tmp("roundtrip.wal");
        let mut w = WalWriter::<2>::create(&path, FsyncPolicy::Always).unwrap();
        for seq in 1..=5 {
            w.append(seq, &batch(seq)).unwrap();
        }
        assert_eq!(w.appended(), 5);
        drop(w);
        let scan = read_wal::<2>(&path).unwrap();
        assert_eq!(scan.torn_tail_at, None);
        assert_eq!(scan.records.len(), 5);
        for (i, (seq, b)) in scan.records.iter().enumerate() {
            assert_eq!(*seq, i as u64 + 1);
            assert!(batches_eq(b, &batch(*seq)));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_tolerated_at_every_cut() {
        let path = tmp("torn.wal");
        let mut w = WalWriter::<2>::create(&path, FsyncPolicy::Never).unwrap();
        for seq in 1..=3 {
            w.append(seq, &batch(seq)).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let full = std::fs::read(&path).unwrap();
        let header_len = MAGIC.len() + 8;
        // Find where record 3 starts: re-scan record lengths.
        let mut starts = vec![header_len];
        let mut pos = header_len;
        while pos < full.len() {
            let len = u32::from_le_bytes(full[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 8 + len;
            starts.push(pos);
        }
        let last_start = starts[starts.len() - 2];
        for cut in last_start + 1..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let scan = read_wal::<2>(&path).unwrap();
            assert_eq!(scan.records.len(), 2, "cut at {cut}");
            assert_eq!(scan.torn_tail_at, Some(last_start as u64), "cut at {cut}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mid_log_corruption_is_loud() {
        let path = tmp("corrupt.wal");
        let mut w = WalWriter::<2>::create(&path, FsyncPolicy::Never).unwrap();
        for seq in 1..=3 {
            w.append(seq, &batch(seq)).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a bit inside the *first* record's payload: a complete record
        // with a bad CRC, not a torn tail.
        let target = MAGIC.len() + 8 + 4 + 3;
        bytes[target] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        match read_wal::<2>(&path) {
            Err(PersistError::WalCorrupt { offset, .. }) => {
                assert_eq!(offset, (MAGIC.len() + 8) as u64)
            }
            other => panic!("expected WalCorrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_append_truncates_the_torn_tail_and_continues() {
        let path = tmp("reopen.wal");
        let mut w = WalWriter::<2>::create(&path, FsyncPolicy::Never).unwrap();
        for seq in 1..=3 {
            w.append(seq, &batch(seq)).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let full = std::fs::read(&path).unwrap();
        // Tear the last record: drop its final 5 bytes.
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();

        let (mut w, scan) = WalWriter::<2>::open_append(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert!(scan.torn_tail_at.is_some());
        w.append(3, &batch(3)).unwrap();
        w.append(4, &batch(4)).unwrap();
        drop(w);

        let scan = read_wal::<2>(&path).unwrap();
        assert_eq!(scan.torn_tail_at, None);
        let seqs: Vec<u64> = scan.records.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn header_guards_fire() {
        let path = tmp("badheader.wal");
        std::fs::write(&path, b"NOTAWAL!").unwrap();
        assert!(matches!(
            read_wal::<2>(&path),
            Err(PersistError::Truncated { .. })
        ));
        std::fs::write(&path, b"NOTAWAL!\x01\0\0\0\x02\0\0\0").unwrap();
        assert!(matches!(
            read_wal::<2>(&path),
            Err(PersistError::BadMagic { kind: "wal" })
        ));
        let mut good = MAGIC.to_vec();
        good.extend_from_slice(&9u32.to_le_bytes());
        good.extend_from_slice(&2u32.to_le_bytes());
        std::fs::write(&path, &good).unwrap();
        assert!(matches!(
            read_wal::<2>(&path),
            Err(PersistError::UnsupportedVersion {
                kind: "wal",
                found: 9
            })
        ));
        let mut wrongdim = MAGIC.to_vec();
        wrongdim.extend_from_slice(&VERSION.to_le_bytes());
        wrongdim.extend_from_slice(&3u32.to_le_bytes());
        std::fs::write(&path, &wrongdim).unwrap();
        assert!(matches!(
            read_wal::<2>(&path),
            Err(PersistError::DimensionMismatch {
                expected: 2,
                found: 3
            })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn len_bytes_tracks_the_real_file_size() {
        use disc_telemetry::MemoryFootprint;
        let path = tmp("lenbytes.wal");
        let mut w = WalWriter::<2>::create(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(w.len_bytes(), (MAGIC.len() + 8) as u64);
        for seq in 1..=4 {
            w.append(seq, &batch(seq)).unwrap();
            let on_disk = std::fs::metadata(&path).unwrap().len();
            assert_eq!(w.len_bytes(), on_disk, "after append {seq}");
        }
        // The footprint tree exposes the on-disk length as wal/disk.
        let disk = w
            .footprint()
            .flatten()
            .into_iter()
            .find(|(p, _)| p == "wal/disk")
            .unwrap()
            .1;
        assert_eq!(disk, w.len_bytes());
        drop(w);
        // Reopening inherits the existing length.
        let (mut w, _) = WalWriter::<2>::open_append(&path, FsyncPolicy::Always).unwrap();
        let before = w.len_bytes();
        assert_eq!(before, std::fs::metadata(&path).unwrap().len());
        w.append(5, &batch(5)).unwrap();
        assert_eq!(w.len_bytes(), std::fs::metadata(&path).unwrap().len());
        assert!(w.len_bytes() > before);
        drop(w);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fsync_policies_parse() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Some(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("every=8"), Some(FsyncPolicy::EveryN(8)));
        assert_eq!(FsyncPolicy::parse("every=0"), None);
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
    }
}
