//! Little-endian primitive codec shared by the checkpoint and WAL formats.
//!
//! [`Enc`] builds a payload in memory; [`Dec`] consumes one with
//! bounds-checked reads that turn premature EOF into
//! [`PersistError::Truncated`] naming the section being decoded — the
//! reader never indexes past the buffer and never panics on hostile bytes.

use crate::error::PersistError;

/// An in-memory payload builder.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty payload.
    pub fn new() -> Self {
        Enc::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern, little-endian.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }
}

/// A bounds-checked payload reader.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'a str,
}

impl<'a> Dec<'a> {
    /// Wraps `buf`, attributing decode failures to `section`.
    pub fn new(buf: &'a [u8], section: &'a str) -> Self {
        Dec {
            buf,
            pos: 0,
            section,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Truncated {
                section: self.section.to_string(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a bool byte, rejecting values other than 0/1.
    pub fn bool(&mut self) -> Result<bool, PersistError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(PersistError::Corrupt {
                section: self.section.to_string(),
                detail: format!("bool byte {other}"),
            }),
        }
    }

    /// Asserts the payload was fully consumed (trailing garbage is as
    /// suspicious as missing bytes).
    pub fn finish(self) -> Result<(), PersistError> {
        if self.remaining() != 0 {
            return Err(PersistError::Corrupt {
                section: self.section.to_string(),
                detail: format!("{} trailing bytes", self.remaining()),
            });
        }
        Ok(())
    }

    /// A length prefix about to drive an allocation: rejects counts that
    /// could not possibly fit in the remaining payload, so a corrupt count
    /// cannot trigger a multi-gigabyte `Vec` reservation.
    pub fn checked_count(&self, count: u64, min_bytes_each: usize) -> Result<usize, PersistError> {
        let need = (count as u128) * (min_bytes_each as u128);
        if need > self.remaining() as u128 {
            return Err(PersistError::Corrupt {
                section: self.section.to_string(),
                detail: format!(
                    "count {count} needs {need} bytes but only {} remain",
                    self.remaining()
                ),
            });
        }
        Ok(count as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut e = Enc::new();
        e.u8(7);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 3);
        e.f64(-1.5);
        e.bool(true);
        e.bool(false);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes, "test");
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.f64().unwrap(), -1.5);
        assert!(d.bool().unwrap());
        assert!(!d.bool().unwrap());
        d.finish().unwrap();
    }

    #[test]
    fn truncation_names_the_section() {
        let mut d = Dec::new(&[1, 2], "points");
        match d.u32() {
            Err(PersistError::Truncated { section }) => assert_eq!(section, "points"),
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn bad_bool_and_trailing_bytes_are_corrupt() {
        let mut d = Dec::new(&[9], "flags");
        assert!(matches!(d.bool(), Err(PersistError::Corrupt { .. })));
        let d = Dec::new(&[0, 0], "flags");
        assert!(matches!(d.finish(), Err(PersistError::Corrupt { .. })));
    }

    #[test]
    fn absurd_counts_are_rejected_before_allocating() {
        let bytes = [0u8; 16];
        let d = Dec::new(&bytes, "points");
        assert!(d.checked_count(2, 8).is_ok());
        assert!(matches!(
            d.checked_count(u64::MAX, 8),
            Err(PersistError::Corrupt { .. })
        ));
    }
}
