//! Durability for DISC: checkpoints, a slide write-ahead log, and crash
//! recovery.
//!
//! The engine in `disc-core` is purely in-memory; this crate makes a
//! long-running stream survivable:
//!
//! - [`checkpoint`] — a versioned, per-section-checksummed binary image
//!   of the full engine state ([`save_checkpoint`] / [`load_checkpoint`]),
//!   written atomically (temp file + fsync + rename).
//! - [`wal`] — an append-only log of committed slide batches
//!   ([`WalWriter`] / [`read_wal`]), appended *before* each batch is
//!   applied, with a configurable [`FsyncPolicy`].
//! - [`recover`] — [`recover_engine`] loads the newest checkpoint in a
//!   directory and replays the WAL tail after it, yielding an engine
//!   identical to the one that crashed.
//!
//! Corruption is never silent: a truncated or bit-flipped checkpoint, a
//! mid-log damaged WAL record, or a WAL that does not continue its
//! checkpoint each fail with a distinct [`PersistError`] variant. The one
//! tolerated anomaly is a *torn WAL tail* — an incomplete final record
//! left by a crash mid-append — which by write-ahead ordering was never
//! applied to the engine and is safely discarded.
//!
//! ```no_run
//! use disc_core::{Disc, DiscConfig};
//! use disc_persist::{
//!     checkpoint_path, recover_engine, save_checkpoint, Checkpoint, FsyncPolicy, WalWriter,
//! };
//! use std::path::Path;
//!
//! let dir = Path::new("state");
//! let wal_path = dir.join("slides.wal");
//! let mut disc = Disc::<2>::new(DiscConfig::new(0.5, 4));
//! let mut wal = WalWriter::<2>::create(&wal_path, FsyncPolicy::Always)?;
//! # let batches: Vec<disc_window::SlideBatch<2>> = vec![];
//! for batch in batches {
//!     wal.append(disc.slide_seq() + 1, &batch)?; // log first...
//!     disc.apply(&batch); // ...then apply
//!     let ckpt = Checkpoint { state: disc.export_state(), driver: None };
//!     save_checkpoint(&checkpoint_path(dir, disc.slide_seq()), &ckpt)?;
//! }
//! // After a crash:
//! let (restored, _driver, report) =
//!     recover_engine::<2, disc_index::RTree<2>>(dir, Some(&wal_path))?;
//! # Ok::<(), disc_persist::PersistError>(())
//! ```

mod codec;
mod crc;

pub mod checkpoint;
pub mod error;
pub mod metrics;
pub mod recover;
pub mod wal;

pub use checkpoint::{
    decode_checkpoint, encode_checkpoint, load_checkpoint, save_checkpoint, write_checkpoint_to,
    Checkpoint, DriverState,
};
pub use error::PersistError;
pub use recover::{checkpoint_path, latest_checkpoint_seq, recover_engine, RecoveryReport};
pub use wal::{read_wal, FsyncPolicy, WalScan, WalWriter};
