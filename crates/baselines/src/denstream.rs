//! DenStream (Cao, Ester, Qian, Zhou — SDM '06): density-based clustering
//! over an evolving stream with noise.
//!
//! The seminal damped-window summarisation method the paper cites in its
//! related work (§VII-B, ref. 6) as the root of the micro-cluster family that
//! DBSTREAM and EDMStream refine. Included beyond the paper's evaluated set
//! to round out the summarisation baseline family.
//!
//! Points are absorbed into **potential** micro-clusters (p-MCs) when they
//! fit within the radius bound, otherwise into **outlier** micro-clusters
//! (o-MCs) that are promoted to potential once their decayed weight
//! reaches `beta * mu`. Periodic maintenance demotes decayed p-MCs and
//! evicts stale o-MCs. The offline phase runs DBSCAN over the p-MC centres
//! (weighted), connecting p-MCs within `2 * radius`.

use crate::traits::WindowClusterer;
use disc_geom::{FxHashMap, Point, PointId};
use disc_window::SlideBatch;

/// Tunables of [`DenStream`].
#[derive(Clone, Copy, Debug)]
pub struct DenStreamConfig {
    /// Maximum micro-cluster radius.
    pub radius: f64,
    /// Exponential decay rate λ (per point).
    pub lambda: f64,
    /// Core-weight threshold µ: a p-MC is a core MC when weight ≥ µ.
    pub mu: f64,
    /// Outlier factor β ∈ (0, 1]: o-MCs promote at weight β·µ.
    pub beta: f64,
}

impl Default for DenStreamConfig {
    fn default() -> Self {
        DenStreamConfig {
            radius: 1.0,
            lambda: 1e-4,
            mu: 3.0,
            beta: 0.5,
        }
    }
}

/// A micro-cluster: decayed weight plus weighted linear/squared sums.
struct Micro<const D: usize> {
    weight: f64,
    /// Weighted linear sum of absorbed points.
    ls: [f64; D],
    last: u64,
    potential: bool,
}

impl<const D: usize> Micro<D> {
    fn center(&self) -> Point<D> {
        let mut c = [0.0; D];
        for (o, l) in c.iter_mut().zip(self.ls.iter()) {
            *o = l / self.weight;
        }
        Point::new(c)
    }
}

/// The DenStream clusterer (insertion-only, damped window).
pub struct DenStream<const D: usize> {
    cfg: DenStreamConfig,
    mcs: Vec<Micro<D>>,
    time: u64,
    window: FxHashMap<PointId, Point<D>>,
    /// Macro-cluster id per MC after the latest offline phase (−1: none).
    macro_of: Vec<i64>,
}

impl<const D: usize> DenStream<D> {
    /// Creates a DenStream instance.
    pub fn new(cfg: DenStreamConfig) -> Self {
        assert!(cfg.radius > 0.0 && cfg.mu > 0.0 && (0.0..=1.0).contains(&cfg.beta));
        DenStream {
            cfg,
            mcs: Vec::new(),
            time: 0,
            window: FxHashMap::default(),
            macro_of: Vec::new(),
        }
    }

    /// Number of live micro-clusters (potential + outlier).
    pub fn micro_count(&self) -> usize {
        self.mcs.len()
    }

    /// Number of potential micro-clusters.
    pub fn potential_count(&self) -> usize {
        self.mcs.iter().filter(|m| m.potential).count()
    }

    fn decayed(&self, m: &Micro<D>) -> f64 {
        m.weight * (-self.cfg.lambda * (self.time - m.last) as f64).exp2()
    }

    fn insert(&mut self, p: &Point<D>) {
        self.time += 1;
        let r2 = self.cfg.radius * self.cfg.radius;

        // Try the nearest potential MC first, then the nearest outlier MC
        // (the DenStream merge order).
        let mut best: [Option<(usize, f64)>; 2] = [None, None];
        for (i, m) in self.mcs.iter().enumerate() {
            let d2 = m.center().dist2(p);
            let slot = usize::from(!m.potential);
            if d2 <= r2 && best[slot].map(|(_, b)| d2 < b).unwrap_or(true) {
                best[slot] = Some((i, d2));
            }
        }
        let target = best[0].or(best[1]).map(|(i, _)| i);
        match target {
            Some(i) => {
                let t = self.time;
                let w = self.decayed(&self.mcs[i]);
                let m = &mut self.mcs[i];
                let decay = w / m.weight;
                for (l, c) in m.ls.iter_mut().zip(p.as_slice()) {
                    *l = *l * decay + c;
                }
                m.weight = w + 1.0;
                m.last = t;
                // Outlier promotion.
                if !m.potential && m.weight >= self.cfg.beta * self.cfg.mu {
                    m.potential = true;
                }
            }
            None => {
                let mut ls = [0.0; D];
                ls.copy_from_slice(p.as_slice());
                self.mcs.push(Micro {
                    weight: 1.0,
                    ls,
                    last: self.time,
                    potential: false,
                });
            }
        }
    }

    /// Maintenance + offline DBSCAN over potential MC centres.
    fn offline(&mut self) {
        // Demote/evict decayed MCs.
        let beta_mu = self.cfg.beta * self.cfg.mu;
        let t = self.time;
        let lambda = self.cfg.lambda;
        for m in &mut self.mcs {
            let w = m.weight * (-lambda * (t - m.last) as f64).exp2();
            m.weight = w;
            m.last = t;
            if m.potential && w < beta_mu {
                m.potential = false;
            }
        }
        self.mcs.retain(|m| m.weight >= 0.1);

        // Offline: connect core p-MCs (weight ≥ µ) within 2·radius;
        // non-core p-MCs join the nearest core component in range.
        let n = self.mcs.len();
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        let reach = 2.0 * self.cfg.radius;
        let reach2 = reach * reach;
        let is_core_mc = |m: &Micro<D>| m.potential && m.weight >= self.cfg.mu;
        for i in 0..n {
            if !is_core_mc(&self.mcs[i]) {
                continue;
            }
            for j in (i + 1)..n {
                if !is_core_mc(&self.mcs[j]) {
                    continue;
                }
                if self.mcs[i].center().dist2(&self.mcs[j].center()) <= reach2 {
                    let (ri, rj) = (find(&mut parent, i as u32), find(&mut parent, j as u32));
                    parent[ri as usize] = rj;
                }
            }
        }
        self.macro_of = (0..n)
            .map(|i| {
                if is_core_mc(&self.mcs[i]) {
                    find(&mut parent, i as u32) as i64
                } else if self.mcs[i].potential {
                    // Attach to the nearest core MC within reach.
                    let c = self.mcs[i].center();
                    let mut best: Option<(u32, f64)> = None;
                    for j in 0..n {
                        if !is_core_mc(&self.mcs[j]) {
                            continue;
                        }
                        let d2 = c.dist2(&self.mcs[j].center());
                        if d2 <= reach2 && best.map(|(_, b)| d2 < b).unwrap_or(true) {
                            best = Some((j as u32, d2));
                        }
                    }
                    best.map(|(j, _)| find(&mut parent, j) as i64).unwrap_or(-1)
                } else {
                    -1
                }
            })
            .collect();
    }

    fn nearest_mc(&self, p: &Point<D>) -> Option<usize> {
        let r2 = self.cfg.radius * self.cfg.radius;
        let mut best: Option<(usize, f64)> = None;
        for (i, m) in self.mcs.iter().enumerate() {
            if !m.potential {
                continue;
            }
            let d2 = m.center().dist2(p);
            if d2 <= r2 && best.map(|(_, b)| d2 < b).unwrap_or(true) {
                best = Some((i, d2));
            }
        }
        best.map(|(i, _)| i)
    }
}

impl<const D: usize> WindowClusterer<D> for DenStream<D> {
    fn name(&self) -> &'static str {
        "DenStream"
    }

    fn apply(&mut self, batch: &SlideBatch<D>) {
        for (id, _) in &batch.outgoing {
            self.window.remove(id);
        }
        for (id, p) in &batch.incoming {
            self.window.insert(*id, *p);
            self.insert(p);
        }
        self.offline();
    }

    fn assignments(&self) -> Vec<(PointId, i64)> {
        let mut out: Vec<(PointId, i64)> = self
            .window
            .iter()
            .map(|(id, p)| {
                let label = match self.nearest_mc(p) {
                    Some(i) => self.macro_of[i],
                    None => -1,
                };
                (*id, label)
            })
            .collect();
        out.sort_unstable_by_key(|(id, _)| *id);
        out
    }

    fn memory_bytes(&self) -> usize {
        self.mcs.len() * std::mem::size_of::<Micro<D>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_window::{datasets, SlidingWindow};

    #[test]
    fn blobs_summarise_into_few_macro_clusters() {
        let recs = datasets::gaussian_blobs::<2>(2_000, 3, 0.5, 13);
        let mut w = SlidingWindow::new(recs, 800, 200);
        let mut den = DenStream::new(DenStreamConfig::default());
        den.apply(&w.fill());
        while let Some(b) = w.advance() {
            den.apply(&b);
        }
        let clusters: std::collections::HashSet<i64> = den
            .assignments()
            .into_iter()
            .map(|(_, l)| l)
            .filter(|&l| l >= 0)
            .collect();
        assert!(
            !clusters.is_empty() && clusters.len() <= 9,
            "got {} macro clusters",
            clusters.len()
        );
        assert!(den.micro_count() < 400, "summary must compress");
    }

    #[test]
    fn isolated_points_stay_outliers() {
        let mut den: DenStream<2> = DenStream::new(DenStreamConfig::default());
        let batch = SlideBatch {
            incoming: (0..5u64)
                .map(|i| (PointId(i), Point::new([i as f64 * 100.0, 0.0])))
                .collect(),
            outgoing: vec![],
        };
        den.apply(&batch);
        // Single-point o-MCs never reach β·µ → everything noise.
        assert!(den.assignments().iter().all(|(_, l)| *l < 0));
        assert_eq!(den.potential_count(), 0);
    }

    #[test]
    fn repeated_hits_promote_an_outlier_micro_cluster() {
        let mut den: DenStream<2> = DenStream::new(DenStreamConfig::default());
        let batch = SlideBatch {
            incoming: (0..10u64)
                .map(|i| (PointId(i), Point::new([0.1 * (i % 3) as f64, 0.0])))
                .collect(),
            outgoing: vec![],
        };
        den.apply(&batch);
        assert!(den.potential_count() >= 1, "dense spot must promote");
        let a = den.assignments();
        assert!(a.iter().filter(|(_, l)| *l >= 0).count() >= 8);
    }

    #[test]
    fn decay_eventually_demotes() {
        let mut den: DenStream<2> = DenStream::new(DenStreamConfig {
            lambda: 0.05,
            ..DenStreamConfig::default()
        });
        let burst = SlideBatch {
            incoming: (0..10u64)
                .map(|i| (PointId(i), Point::new([0.0, 0.0])))
                .collect(),
            outgoing: vec![],
        };
        den.apply(&burst);
        assert!(den.potential_count() >= 1);
        // Flood elsewhere: the origin MC decays below β·µ and demotes,
        // then gets evicted.
        let far = SlideBatch {
            incoming: (10..600u64)
                .map(|i| (PointId(i), Point::new([50.0, 50.0])))
                .collect(),
            outgoing: (0..10u64)
                .map(|i| (PointId(i), Point::new([0.0, 0.0])))
                .collect(),
        };
        den.apply(&far);
        let origin_potential = self_origin_potential(&den);
        assert!(!origin_potential, "decayed origin MC must demote");
    }

    fn self_origin_potential(den: &DenStream<2>) -> bool {
        den.mcs
            .iter()
            .any(|m| m.potential && m.center().dist(&Point::new([0.0, 0.0])) < 1.0)
    }
}
