//! EXTRA-N (Yang, Rundensteiner, Ward — EDBT '09), the sub-window /
//! predicted-view method.
//!
//! EXTRA-N attacks the *slow deletion* problem: instead of running range
//! searches when points expire, every point predicts, **at arrival time**,
//! its state for every future window snapshot ("view") it will live
//! through — one view per stride slot, `L = window/stride` of them. A
//! single arrival range search then updates `O(deg · L)` predicted
//! neighbour counts *and cluster memberships*; expiry is free, and reading
//! the current clustering is just reading the current view.
//!
//! That trade is exactly what the paper measures: one range search per
//! arrival (cheap), but per-arrival bookkeeping and memory that grow with
//! `L = window/stride`. The per-slide maintenance cost is
//! `stride · deg · L = window · deg` — **independent of the stride** — so
//! the speedup over DBSCAN saturates, and at large windows the per-point
//! view state (`O(L)` counts + memberships each) exhausts memory, the
//! behaviour Fig. 5 reports.
//!
//! Implementation notes (see `DESIGN.md` §3): per-view cluster membership
//! is kept as a slot per (point, view) into one growing union-find;
//! a point is "promoted" in a view the moment its predicted count crosses
//! τ, at which point it merges with the already-promoted cores on its
//! cached adjacency list. This yields exactly DBSCAN's core partition for
//! every view by the time that view becomes current (verified by the
//! agreement tests below).

use crate::traits::WindowClusterer;
use disc_core::dsu::Dsu;
use disc_geom::{FxHashMap, Point, PointId};
use disc_index::{RTree, SpatialBackend};
use disc_window::SlideBatch;

const UNSET: u32 = u32::MAX;

struct Entry {
    /// Cached adjacency: every ε-neighbour ever co-windowed (the promotion
    /// and border-resolution mechanism). Filtered for liveness lazily.
    neigh: Vec<PointId>,
    /// Predicted self-inclusive neighbour counts, one per remaining view:
    /// `pred[k]` is `n_ε` at slide `first + k`.
    pred: Vec<u32>,
    /// Predicted cluster membership per view: a slot in the global DSU,
    /// `UNSET` while the point is not (yet) a predicted core of the view.
    mem: Vec<u32>,
    /// First slide whose window contains this point.
    first: u64,
}

/// EXTRA-N: predicted-view counts and memberships, zero deletion searches.
/// The arrival range search runs on spatial backend `B` (R-tree default).
pub struct ExtraN<const D: usize, B: SpatialBackend<D> = RTree<D>> {
    eps: f64,
    tau: usize,
    stride: usize,
    /// Window snapshots a point lives through (`window / stride`).
    lifespan: u64,
    slide: u64,
    started: bool,
    points: FxHashMap<PointId, Entry>,
    tree: B,
    /// One union-find shared by all views; each view's clusters are
    /// disjoint sets of slots allocated for that view.
    clusters: Dsu,
    /// Labels materialised at the end of every `apply` — producing the
    /// clustering is part of the per-slide work the paper measures.
    labels: Vec<(PointId, i64)>,
    /// Reused buffer for the arrival range search.
    hits_buf: Vec<PointId>,
    recorder: disc_telemetry::SharedRecorder,
    slide_seq: u64,
}

impl<const D: usize> ExtraN<D> {
    /// Creates an EXTRA-N instance on the default R-tree backend. `window`
    /// must be a multiple of `stride` (the sub-window construction requires
    /// strides to tile the window — the paper's experiments satisfy this
    /// throughout). See [`ExtraN::with_backend`] for other backends.
    pub fn new(eps: f64, tau: usize, window: usize, stride: usize) -> Self {
        ExtraN::with_backend(eps, tau, window, stride)
    }
}

impl<const D: usize, B: SpatialBackend<D>> ExtraN<D, B> {
    /// [`ExtraN::new`] on an explicit spatial backend.
    pub fn with_backend(eps: f64, tau: usize, window: usize, stride: usize) -> Self {
        assert!(eps > 0.0 && tau >= 1);
        assert!(window > 0 && stride > 0 && stride <= window);
        assert_eq!(
            window % stride,
            0,
            "EXTRA-N requires the stride to tile the window"
        );
        ExtraN {
            eps,
            tau,
            stride,
            lifespan: (window / stride) as u64,
            slide: 0,
            started: false,
            points: FxHashMap::default(),
            tree: B::with_eps_hint(eps),
            clusters: Dsu::new(),
            labels: Vec::new(),
            hits_buf: Vec::new(),
            recorder: disc_telemetry::noop(),
            slide_seq: 0,
        }
    }

    /// Last slide (inclusive) whose window contains arrival `id`.
    fn alive_until(&self, id: PointId) -> u64 {
        id.raw() / self.stride as u64
    }

    /// Merges the just-promoted core `id` (view slot `k`) with the
    /// already-promoted cores on its adjacency list, for one view.
    ///
    /// Cores that are still below τ in this view will run their own
    /// promotion later and pick this point up then — together the two
    /// directions cover every core-core edge of the view exactly once.
    fn promote(&mut self, id: PointId, view: u64) {
        let entry = self.points.get(&id).expect("promoting unknown point");
        let k = (view - entry.first) as usize;
        debug_assert_eq!(entry.mem[k], UNSET, "double promotion");
        let neighbours: Vec<PointId> = entry.neigh.clone();
        let mut slot = self.clusters.alloc();
        let tau = self.tau as u32;
        for q in neighbours {
            let Some(qe) = self.points.get(&q) else {
                continue;
            };
            if qe.first > view || self.alive_until(q) < view {
                continue; // not alive in this view
            }
            let qk = (view - qe.first) as usize;
            if qe.pred[qk] >= tau && qe.mem[qk] != UNSET {
                slot = self.clusters.union(slot, qe.mem[qk]);
            }
        }
        self.points.get_mut(&id).expect("record vanished").mem[k] = slot;
    }

    fn insert_point(&mut self, id: PointId, point: Point<D>) {
        let t = self.slide;
        let until = self.alive_until(id);
        debug_assert!(until >= t, "point arrived already expired");
        let len = (until - t + 1) as usize;
        debug_assert!(len as u64 <= self.lifespan);
        let mut entry = Entry {
            neigh: Vec::new(),
            pred: vec![1; len], // the point itself
            mem: vec![UNSET; len],
            first: t,
        };

        self.tree.insert(id, point);
        // Arrival range search: the only search this method ever runs.
        let mut hits = std::mem::take(&mut self.hits_buf);
        self.tree.ball_ids_into(&point, self.eps, &mut hits);
        hits.retain(|&q| q != id);

        let tau = self.tau as u32;
        // (view, point) promotions triggered by this arrival's count bumps.
        let mut promotions: Vec<(PointId, u64)> = Vec::new();
        for &q in &hits {
            let q_until = self.alive_until(q);
            let overlap_end = q_until.min(until);
            // Contribution of q to the newcomer's views.
            for s in t..=overlap_end {
                entry.pred[(s - t) as usize] += 1;
            }
            entry.neigh.push(q);
            let q_entry = self.points.get_mut(&q).expect("indexed point not tracked");
            // Contribution of the newcomer to q's remaining views. q always
            // expires first (FIFO), so the newcomer covers them all.
            debug_assert!(overlap_end == q_until);
            for s in t..=overlap_end {
                let k = (s - q_entry.first) as usize;
                q_entry.pred[k] += 1;
                if q_entry.pred[k] == tau {
                    promotions.push((q, s));
                }
            }
            q_entry.neigh.push(id);
        }
        // The newcomer's own views that start at or above τ.
        for s in t..=until {
            if entry.pred[(s - t) as usize] >= tau {
                promotions.push((id, s));
            }
        }
        self.points.insert(id, entry);
        self.hits_buf = hits;
        for (q, s) in promotions {
            self.promote(q, s);
        }
    }

    #[cfg(test)]
    fn n_eps(&self, entry: &Entry) -> u32 {
        entry.pred[(self.slide - entry.first) as usize]
    }

    /// Reads the current view: core labels from the membership slots,
    /// borders resolved through the adjacency lists, sorted by arrival id.
    fn extract_current_view(&self) -> Vec<(PointId, i64)> {
        let tau = self.tau as u32;
        let t = self.slide;
        let mut out: Vec<(PointId, i64)> = Vec::with_capacity(self.points.len());
        for (&id, entry) in &self.points {
            let k = (t - entry.first) as usize;
            let label = if entry.pred[k] >= tau {
                debug_assert_ne!(entry.mem[k], UNSET, "core never promoted");
                self.clusters.find_immutable(entry.mem[k]) as i64
            } else {
                // Border: adopt any live core neighbour's cluster.
                let mut found = -1i64;
                for q in &entry.neigh {
                    if let Some(qe) = self.points.get(q) {
                        if qe.first > t {
                            continue;
                        }
                        let qk = (t - qe.first) as usize;
                        if qe.pred[qk] >= tau {
                            found = self.clusters.find_immutable(qe.mem[qk]) as i64;
                            break;
                        }
                    }
                }
                found
            };
            out.push((id, label));
        }
        out.sort_unstable_by_key(|(id, _)| *id);
        out
    }
}

impl<const D: usize, B: SpatialBackend<D>> disc_telemetry::MemoryFootprint for ExtraN<D, B> {
    /// EXTRA-N's bytes, decomposed to show where the `O(L)` blow-up lives:
    /// the stored neighborhoods (cached adjacency, kept for the whole
    /// lifespan) and the predicted views (`pred` + `mem`, one slot per
    /// remaining window snapshot) — the components Fig. 5 is about — plus
    /// the entry table, index and shared DSU.
    fn footprint(&self) -> disc_telemetry::FootprintNode {
        use disc_telemetry::{map_bytes, FootprintNode};
        let table = map_bytes(
            self.points.capacity(),
            std::mem::size_of::<(PointId, Entry)>(),
        );
        let mut neighborhoods = 0usize;
        let mut views = 0usize;
        for e in self.points.values() {
            neighborhoods += e.neigh.capacity() * std::mem::size_of::<PointId>();
            views += (e.pred.capacity() + e.mem.capacity()) * std::mem::size_of::<u32>();
        }
        FootprintNode::branch(
            "extran",
            vec![
                FootprintNode::leaf("entries", table),
                FootprintNode::leaf("neighborhoods", neighborhoods),
                FootprintNode::leaf("views", views),
                self.tree.footprint(),
                self.clusters.footprint(),
                FootprintNode::leaf(
                    "labels",
                    self.labels.capacity() * std::mem::size_of::<(PointId, i64)>(),
                ),
            ],
        )
    }
}

impl<const D: usize, B: SpatialBackend<D>> WindowClusterer<D> for ExtraN<D, B> {
    fn name(&self) -> &'static str {
        "EXTRA-N"
    }

    fn apply(&mut self, batch: &SlideBatch<D>) {
        let start = std::time::Instant::now();
        let index_before = *self.tree.stats();
        if self.started {
            self.slide += 1;
        } else {
            self.started = true;
        }
        // Expiry is free: no searches, no count updates — the predicted
        // views already account for every departure.
        for (id, p) in &batch.outgoing {
            if self.points.remove(id).is_some() {
                self.tree.remove(*id, *p);
            }
        }
        for (id, p) in &batch.incoming {
            self.insert_point(*id, *p);
        }
        self.labels = self.extract_current_view();
        self.slide_seq += 1;
        let rec = self.recorder.as_ref();
        if rec.enabled() {
            use disc_telemetry::MemoryFootprint;
            let fp = self.footprint();
            let mem_bytes = fp.total();
            for (component, bytes) in fp.flatten() {
                rec.gauge_set_labeled("disc_mem_bytes", "component", &component, bytes as f64);
            }
            if let Some(rss) = disc_telemetry::rss_bytes() {
                rec.gauge_set("disc_rss_bytes", rss as f64);
            }
            let elapsed = start.elapsed();
            rec.counter_add("disc_slides_total", 1);
            rec.counter_add("disc_points_inserted_total", batch.incoming.len() as u64);
            rec.counter_add("disc_points_removed_total", batch.outgoing.len() as u64);
            rec.record_duration("disc_slide_seconds", elapsed);
            rec.gauge_set("disc_window_points", self.points.len() as f64);
            let index = self.tree.stats().since(&index_before);
            index.publish_to(rec);
            rec.emit(&disc_telemetry::SlideEvent {
                seq: self.slide_seq,
                engine: "extran",
                backend: B::NAME,
                window_len: self.points.len(),
                inserted: batch.incoming.len(),
                removed: batch.outgoing.len(),
                total_ns: elapsed.as_nanos() as u64,
                range_searches: index.range_searches,
                epoch_probes: index.epoch_probes,
                nodes_visited: index.nodes_visited,
                distance_checks: index.distance_checks,
                subtrees_pruned: index.subtrees_pruned,
                mem_bytes,
                ..disc_telemetry::SlideEvent::default()
            });
        }
    }

    fn assignments(&self) -> Vec<(PointId, i64)> {
        self.labels.clone()
    }

    fn range_searches(&self) -> u64 {
        self.tree.stats().range_searches
    }

    fn memory_bytes(&self) -> usize {
        use disc_telemetry::MemoryFootprint;
        self.mem_bytes() as usize
    }

    fn set_recorder(&mut self, recorder: disc_telemetry::SharedRecorder) {
        self.recorder = recorder;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan::Dbscan;
    use disc_window::{datasets, SlidingWindow};

    fn agreement_run(window: usize, stride: usize, eps: f64, tau: usize, seed: u64) {
        let recs = datasets::gaussian_blobs::<2>(window * 3, 3, 0.6, seed);
        let mut w = SlidingWindow::new(recs, window, stride);
        let mut ex = ExtraN::new(eps, tau, window, stride);
        let mut db = Dbscan::new(eps, tau);
        let fill = w.fill();
        ex.apply(&fill);
        db.apply(&fill);
        loop {
            let a = ex.assignments();
            let b = db.assignments();
            assert_eq!(a.len(), b.len());
            // Same core structure: noise agreement may differ only on
            // border-ambiguous points, so compare cluster counts and
            // noise-vs-clustered flags.
            for ((ida, la), (idb, lb)) in a.iter().zip(b.iter()) {
                assert_eq!(ida, idb);
                assert_eq!(*la < 0, *lb < 0, "{ida}: extran={la} dbscan={lb}");
            }
            let ca: std::collections::HashSet<i64> =
                a.iter().map(|(_, l)| *l).filter(|&l| l >= 0).collect();
            let cb: std::collections::HashSet<i64> =
                b.iter().map(|(_, l)| *l).filter(|&l| l >= 0).collect();
            assert_eq!(ca.len(), cb.len());
            match w.advance() {
                Some(batch) => {
                    ex.apply(&batch);
                    db.apply(&batch);
                }
                None => break,
            }
        }
    }

    #[test]
    fn matches_dbscan_structure_small_stride() {
        agreement_run(200, 20, 1.0, 5, 3);
    }

    #[test]
    fn matches_dbscan_structure_full_turnover() {
        agreement_run(200, 200, 1.0, 5, 7);
    }

    #[test]
    fn matches_dbscan_on_noisy_maze() {
        let window = 300;
        let stride = 30;
        let recs = datasets::maze(1200, 10, 23);
        let mut w = SlidingWindow::new(recs, window, stride);
        let mut ex = ExtraN::new(0.6, 5, window, stride);
        let mut db = Dbscan::new(0.6, 5);
        let fill = w.fill();
        ex.apply(&fill);
        db.apply(&fill);
        while let Some(batch) = w.advance() {
            ex.apply(&batch);
            db.apply(&batch);
            let ca: std::collections::HashSet<i64> = ex
                .assignments()
                .iter()
                .map(|(_, l)| *l)
                .filter(|&l| l >= 0)
                .collect();
            let cb: std::collections::HashSet<i64> = db
                .assignments()
                .iter()
                .map(|(_, l)| *l)
                .filter(|&l| l >= 0)
                .collect();
            assert_eq!(ca.len(), cb.len(), "cluster count diverged");
        }
    }

    #[test]
    fn predicted_views_match_live_counts() {
        // Drive a stream and verify n_eps from the views equals a brute
        // count at every slide.
        let recs = datasets::maze(600, 8, 5);
        let mut w = SlidingWindow::new(recs, 150, 30);
        let mut ex = ExtraN::new(0.6, 4, 150, 30);
        ex.apply(&w.fill());
        loop {
            let live: Vec<(PointId, Point<2>)> = w.current().collect();
            for (id, p) in &live {
                let brute = live.iter().filter(|(_, q)| p.within(q, 0.6)).count() as u32;
                let entry = &ex.points[id];
                assert_eq!(ex.n_eps(entry), brute, "views stale for {id}");
            }
            match w.advance() {
                Some(b) => ex.apply(&b),
                None => break,
            }
        }
    }

    #[test]
    fn one_search_per_arrival_only() {
        let recs = datasets::gaussian_blobs::<2>(900, 3, 0.5, 11);
        let total = recs.len() as u64;
        let mut w = SlidingWindow::new(recs, 300, 100);
        let mut ex = ExtraN::new(1.0, 4, 300, 100);
        ex.apply(&w.fill());
        while let Some(b) = w.advance() {
            ex.apply(&b);
        }
        assert_eq!(ex.range_searches(), total, "exactly one search per point");
    }

    #[test]
    fn memory_grows_with_inverse_stride() {
        let recs = datasets::gaussian_blobs::<2>(1200, 3, 0.5, 13);
        let mut mem = Vec::new();
        for stride in [300usize, 60, 20] {
            let mut w = SlidingWindow::new(recs.clone(), 300, stride);
            let mut ex = ExtraN::new(1.0, 4, 300, stride);
            ex.apply(&w.fill());
            for _ in 0..2 {
                if let Some(b) = w.advance() {
                    ex.apply(&b);
                }
            }
            mem.push(ex.memory_bytes());
        }
        assert!(
            mem[2] > mem[0],
            "smaller stride must cost more memory: {mem:?}"
        );
    }

    #[test]
    #[should_panic(expected = "tile the window")]
    fn indivisible_stride_is_rejected() {
        let _ = ExtraN::<2>::new(1.0, 4, 100, 33);
    }
}
