//! From-scratch DBSCAN (Ester et al., KDD '96), recomputed every slide.
//!
//! This is the paper's baseline denominator: it pays one ε-range search per
//! window point on *every* slide, independent of the stride, which is why
//! its per-slide cost is flat in Figs. 4–5 while the incremental methods
//! move.

use crate::traits::WindowClusterer;
use disc_geom::{FxHashMap, Point, PointId};
use disc_index::{RTree, SpatialBackend};
use disc_window::SlideBatch;

/// A static DBSCAN re-run per slide, rebuilding a spatial index (`B`, the
/// R-tree by default) from scratch on every batch via
/// [`SpatialBackend::from_batch`].
pub struct Dbscan<const D: usize, B: SpatialBackend<D> = RTree<D>> {
    eps: f64,
    tau: usize,
    window: FxHashMap<PointId, Point<D>>,
    /// Result of the latest run.
    labels: FxHashMap<PointId, i64>,
    range_searches: u64,
    recorder: disc_telemetry::SharedRecorder,
    slide_seq: u64,
    _backend: std::marker::PhantomData<B>,
}

impl<const D: usize> Dbscan<D> {
    /// Creates a DBSCAN runner with the given thresholds (τ counts the
    /// point itself, matching the rest of the workspace). Uses the default
    /// R-tree backend; see [`Dbscan::with_backend`] for others.
    pub fn new(eps: f64, tau: usize) -> Self {
        Dbscan::with_backend(eps, tau)
    }

    /// Runs DBSCAN over `points`, returning `(id, cluster)` with `-1` noise.
    /// Exposed so other components (quality truth for Fig. 10, tests) can
    /// cluster arbitrary point sets. Uses the default R-tree backend;
    /// `Dbscan::<D, B>::run_with` picks another.
    pub fn run(
        points: &[(PointId, Point<D>)],
        eps: f64,
        tau: usize,
    ) -> (FxHashMap<PointId, i64>, u64) {
        Self::run_with(points, eps, tau)
    }
}

impl<const D: usize, B: SpatialBackend<D>> Dbscan<D, B> {
    /// Creates a DBSCAN runner rebuilding backend `B` every slide.
    pub fn with_backend(eps: f64, tau: usize) -> Self {
        assert!(eps > 0.0 && tau >= 1);
        Dbscan {
            eps,
            tau,
            window: FxHashMap::default(),
            labels: FxHashMap::default(),
            range_searches: 0,
            recorder: disc_telemetry::noop(),
            slide_seq: 0,
            _backend: std::marker::PhantomData,
        }
    }

    /// [`Dbscan::run`] on an arbitrary backend.
    pub fn run_with(
        points: &[(PointId, Point<D>)],
        eps: f64,
        tau: usize,
    ) -> (FxHashMap<PointId, i64>, u64) {
        let mut tree = B::from_batch(eps, points.to_vec());
        let mut labels: FxHashMap<PointId, i64> = FxHashMap::default();
        let mut visited: FxHashMap<PointId, bool> = FxHashMap::default(); // true = expanded
        let mut next_cluster = 0i64;
        let mut hits: Vec<PointId> = Vec::new();

        // Deterministic order: by arrival id.
        let mut order: Vec<(PointId, Point<D>)> = points.to_vec();
        order.sort_unstable_by_key(|(id, _)| *id);

        for (id, pos) in &order {
            if visited.contains_key(id) {
                continue;
            }
            visited.insert(*id, true);
            tree.ball_ids_into(pos, eps, &mut hits);
            if hits.len() < tau {
                // Tentatively noise; may be claimed as border later.
                labels.entry(*id).or_insert(-1);
                continue;
            }
            // Seed a new cluster and grow it.
            let cid = next_cluster;
            next_cluster += 1;
            labels.insert(*id, cid);
            let mut queue: Vec<PointId> = hits.clone();
            while let Some(q) = queue.pop() {
                let first_claim = match labels.get(&q) {
                    None | Some(-1) => {
                        labels.insert(q, cid);
                        true
                    }
                    Some(_) => false,
                };
                let _ = first_claim;
                if visited.insert(q, true).is_some() {
                    continue; // already expanded
                }
                let qpos = tree_point(&order, q);
                tree.ball_ids_into(&qpos, eps, &mut hits);
                if hits.len() >= tau {
                    for &x in &hits {
                        let unexpanded = !visited.contains_key(&x);
                        let unclaimed = matches!(labels.get(&x), None | Some(-1));
                        if unclaimed {
                            labels.insert(x, cid);
                        }
                        if unexpanded {
                            queue.push(x);
                        }
                    }
                }
            }
        }
        let searches = tree.stats().range_searches;
        (labels, searches)
    }
}

fn tree_point<const D: usize>(order: &[(PointId, Point<D>)], id: PointId) -> Point<D> {
    // `order` is sorted by id; arrival ids are dense within a window but we
    // binary-search to stay robust to gaps.
    let idx = order
        .binary_search_by_key(&id, |(i, _)| *i)
        .expect("unknown id");
    order[idx].1
}

impl<const D: usize, B: SpatialBackend<D>> WindowClusterer<D> for Dbscan<D, B> {
    fn name(&self) -> &'static str {
        match B::NAME {
            "rtree" => "DBSCAN",
            "grid" => "DBSCAN(grid)",
            other => other,
        }
    }

    fn apply(&mut self, batch: &SlideBatch<D>) {
        let start = std::time::Instant::now();
        for (id, _) in &batch.outgoing {
            self.window.remove(id);
        }
        for (id, p) in &batch.incoming {
            self.window.insert(*id, *p);
        }
        let pts: Vec<(PointId, Point<D>)> = self.window.iter().map(|(id, p)| (*id, *p)).collect();
        let (labels, searches) = Self::run_with(&pts, self.eps, self.tau);
        self.labels = labels;
        self.range_searches += searches;
        self.slide_seq += 1;
        let rec = self.recorder.as_ref();
        if rec.enabled() {
            let elapsed = start.elapsed();
            rec.counter_add("disc_slides_total", 1);
            rec.counter_add("disc_points_inserted_total", batch.incoming.len() as u64);
            rec.counter_add("disc_points_removed_total", batch.outgoing.len() as u64);
            // The per-slide tree is dropped inside `run_with`; only its
            // headline search count survives to the exporter.
            rec.counter_add("disc_index_range_searches_total", searches);
            rec.record_duration("disc_slide_seconds", elapsed);
            rec.gauge_set("disc_window_points", self.window.len() as f64);
            rec.emit(&disc_telemetry::SlideEvent {
                seq: self.slide_seq,
                engine: "dbscan",
                backend: B::NAME,
                window_len: self.window.len(),
                inserted: batch.incoming.len(),
                removed: batch.outgoing.len(),
                total_ns: elapsed.as_nanos() as u64,
                range_searches: searches,
                ..disc_telemetry::SlideEvent::default()
            });
        }
    }

    fn assignments(&self) -> Vec<(PointId, i64)> {
        let mut out: Vec<(PointId, i64)> = self.labels.iter().map(|(id, l)| (*id, *l)).collect();
        out.sort_unstable_by_key(|(id, _)| *id);
        out
    }

    fn range_searches(&self) -> u64 {
        self.range_searches
    }

    fn memory_bytes(&self) -> usize {
        self.window.len() * (std::mem::size_of::<Point<D>>() + 48)
    }

    fn set_recorder(&mut self, recorder: disc_telemetry::SharedRecorder) {
        self.recorder = recorder;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_window::{datasets, SlidingWindow};

    #[test]
    fn two_separated_blobs_make_two_clusters() {
        let recs = datasets::gaussian_blobs::<2>(300, 2, 0.4, 5);
        let pts: Vec<(PointId, Point<2>)> = recs
            .iter()
            .enumerate()
            .map(|(i, r)| (PointId(i as u64), r.point))
            .collect();
        let (labels, searches) = Dbscan::run(&pts, 1.0, 4);
        let mut clusters: Vec<i64> = labels.values().copied().filter(|&l| l >= 0).collect();
        clusters.sort_unstable();
        clusters.dedup();
        assert_eq!(clusters.len(), 2);
        assert!(searches >= 300, "one search per point at minimum");
    }

    #[test]
    fn grid_backend_run_matches_rtree_run_exactly() {
        // The expansion order of `run` is fixed by arrival id, so the
        // resulting labels are identical whichever backend answers the
        // range queries.
        let recs = datasets::gaussian_blobs::<2>(300, 3, 0.5, 11);
        let pts: Vec<(PointId, Point<2>)> = recs
            .iter()
            .enumerate()
            .map(|(i, r)| (PointId(i as u64), r.point))
            .collect();
        let (rtree, _) = Dbscan::run(&pts, 1.0, 4);
        let (grid, _) = Dbscan::<2, disc_index::GridIndex<2>>::run_with(&pts, 1.0, 4);
        assert_eq!(rtree, grid);
    }

    #[test]
    fn sparse_points_are_noise() {
        let pts: Vec<(PointId, Point<2>)> = (0..10)
            .map(|i| (PointId(i), Point::new([i as f64 * 100.0, 0.0])))
            .collect();
        let (labels, _) = Dbscan::run(&pts, 1.0, 2);
        assert!(labels.values().all(|&l| l == -1));
    }

    #[test]
    fn borders_join_an_adjacent_cluster() {
        // 5 tight points + 1 at distance eps from the edge point.
        let mut pts: Vec<(PointId, Point<2>)> = (0..5)
            .map(|i| (PointId(i), Point::new([i as f64 * 0.1, 0.0])))
            .collect();
        pts.push((PointId(5), Point::new([1.3, 0.0]))); // near p4 (0.4)
        let (labels, _) = Dbscan::run(&pts, 1.0, 4);
        let border = labels[&PointId(5)];
        assert!(border >= 0, "p5 must be a border of the cluster");
        assert_eq!(border, labels[&PointId(0)]);
    }

    #[test]
    fn window_driver_reclusters_each_slide() {
        let recs = datasets::gaussian_blobs::<2>(600, 3, 0.5, 9);
        let mut w = SlidingWindow::new(recs, 200, 100);
        let mut db = Dbscan::new(1.0, 4);
        db.apply(&w.fill());
        let first = db.range_searches();
        assert!(first > 0);
        while let Some(b) = w.advance() {
            db.apply(&b);
        }
        assert!(db.range_searches() > first);
        assert_eq!(db.assignments().len(), 200);
    }
}
