//! The uniform driver interface for all clustering methods.

use disc_core::Disc;
use disc_geom::PointId;
use disc_index::SpatialBackend;
use disc_window::SlideBatch;

/// A clustering method that consumes sliding-window batches.
///
/// The benchmark harness drives every method — exact and approximate —
/// through this interface, measuring per-slide wall time, range searches,
/// and the quality of [`assignments`](WindowClusterer::assignments).
pub trait WindowClusterer<const D: usize> {
    /// Human-readable method name, as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Ingests one slide (`Δin` + `Δout`). Insertion-only summarisation
    /// methods ignore `Δout` (their state decays instead), matching how
    /// the paper measures them.
    fn apply(&mut self, batch: &SlideBatch<D>);

    /// Cluster assignment of every current-window point, sorted by arrival
    /// id; `-1` is noise. For decaying methods the "window" is whatever
    /// point set the driver last told them about via `assign_window`.
    fn assignments(&self) -> Vec<(PointId, i64)>;

    /// Total ε-range searches executed so far (0 for methods that do not
    /// use a spatial index).
    fn range_searches(&self) -> u64 {
        0
    }

    /// Approximate resident state size in bytes (used to demonstrate
    /// EXTRA-N's memory blow-up, Fig. 5).
    fn memory_bytes(&self) -> usize {
        0
    }

    /// Routes the method's telemetry to `recorder`. Methods without
    /// instrumentation ignore the call (the default) — drivers can hand
    /// every boxed clusterer the same recorder unconditionally.
    fn set_recorder(&mut self, recorder: disc_telemetry::SharedRecorder) {
        let _ = recorder;
    }

    /// Arms span tracing. Methods without span instrumentation ignore the
    /// call (the default), so drivers can request tracing unconditionally
    /// and just find [`drain_spans`](WindowClusterer::drain_spans) empty.
    fn enable_tracing(&mut self) {}

    /// Takes all spans recorded since the last drain (empty for methods
    /// without span instrumentation). Ids stay unique across drains, so
    /// per-slide drains concatenate into one export batch.
    fn drain_spans(&mut self) -> Vec<disc_telemetry::SpanRecord> {
        Vec::new()
    }
}

impl<const D: usize, B: SpatialBackend<D>> WindowClusterer<D> for Disc<D, B> {
    fn name(&self) -> &'static str {
        // The default backend keeps the paper's plain method name; other
        // backends are tagged so ablation tables stay unambiguous.
        match B::NAME {
            "rtree" => "DISC",
            "grid" => "DISC(grid)",
            other => other,
        }
    }

    fn apply(&mut self, batch: &SlideBatch<D>) {
        Disc::apply(self, batch);
    }

    fn assignments(&self) -> Vec<(PointId, i64)> {
        Disc::assignments(self)
    }

    fn range_searches(&self) -> u64 {
        self.index_stats().range_searches
    }

    fn memory_bytes(&self) -> usize {
        // The real accounted footprint (points + index + DSU + sets), not
        // the old per-point guess — comparable against EXTRA-N's equally
        // accounted total.
        use disc_telemetry::MemoryFootprint;
        self.mem_bytes() as usize
    }

    fn set_recorder(&mut self, recorder: disc_telemetry::SharedRecorder) {
        Disc::set_recorder(self, recorder);
    }

    fn enable_tracing(&mut self) {
        Disc::set_tracer(self, disc_telemetry::Tracer::new());
    }

    fn drain_spans(&mut self) -> Vec<disc_telemetry::SpanRecord> {
        Disc::drain_spans(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_core::DiscConfig;
    use disc_window::{datasets, SlidingWindow};

    #[test]
    fn disc_implements_the_driver_interface() {
        let recs = datasets::gaussian_blobs::<2>(400, 2, 0.5, 1);
        let mut w = SlidingWindow::new(recs, 200, 50);
        let mut m: Box<dyn WindowClusterer<2>> = Box::new(Disc::new(DiscConfig::new(1.0, 4)));
        m.apply(&w.fill());
        while let Some(b) = w.advance() {
            m.apply(&b);
        }
        assert_eq!(m.name(), "DISC");
        assert_eq!(m.assignments().len(), 200);
        assert!(m.range_searches() > 0);
        assert!(m.memory_bytes() > 0);
    }

    #[test]
    fn recorder_threads_through_boxed_clusterers() {
        use crate::dbscan::Dbscan;
        use crate::extran::ExtraN;
        use disc_telemetry::Registry;
        use std::sync::Arc;

        let recs = datasets::gaussian_blobs::<2>(300, 2, 0.5, 3);
        let methods: Vec<Box<dyn WindowClusterer<2>>> = vec![
            Box::new(Disc::new(DiscConfig::new(1.0, 4))),
            Box::new(Dbscan::new(1.0, 4)),
            Box::new(ExtraN::new(1.0, 4, 150, 50)),
        ];
        for mut m in methods {
            let reg = Arc::new(Registry::new());
            m.set_recorder(reg.clone());
            let mut w = SlidingWindow::new(recs.clone(), 150, 50);
            m.apply(&w.fill());
            while let Some(b) = w.advance() {
                m.apply(&b);
            }
            assert_eq!(reg.counter_value("disc_slides_total"), 4, "{}", m.name());
            assert_eq!(
                reg.histogram_snapshot("disc_slide_seconds").unwrap().count,
                4,
                "{}",
                m.name()
            );
            assert!(
                reg.counter_value("disc_index_range_searches_total") > 0,
                "{}",
                m.name()
            );
            assert_eq!(reg.events_emitted(), 4, "{}", m.name());
        }
        // Methods without instrumentation accept (and ignore) a recorder.
        let mut inc: Box<dyn WindowClusterer<2>> =
            Box::new(crate::incdbscan::IncDbscan::new(1.0, 4));
        inc.set_recorder(Arc::new(Registry::new()));
    }

    #[test]
    fn tracing_threads_through_boxed_clusterers() {
        let recs = datasets::gaussian_blobs::<2>(300, 2, 0.5, 3);
        let mut m: Box<dyn WindowClusterer<2>> = Box::new(Disc::new(DiscConfig::new(1.0, 4)));
        m.enable_tracing();
        let mut w = SlidingWindow::new(recs, 150, 50);
        m.apply(&w.fill());
        let first = m.drain_spans();
        assert!(first.iter().any(|s| s.name == "slide"));
        while let Some(b) = w.advance() {
            m.apply(&b);
        }
        let rest = m.drain_spans();
        assert_eq!(rest.iter().filter(|s| s.name == "slide").count(), 3);
        // Ids from successive drains never collide: concatenation exports.
        let mut ids: Vec<u32> = first.iter().chain(rest.iter()).map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), first.len() + rest.len());

        // Uninstrumented methods stay silent instead of failing.
        let mut inc: Box<dyn WindowClusterer<2>> =
            Box::new(crate::incdbscan::IncDbscan::new(1.0, 4));
        inc.enable_tracing();
        assert!(inc.drain_spans().is_empty());
    }
}
