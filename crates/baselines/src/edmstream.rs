//! EDMStream (Gong, Zhang, Yu — VLDB '17): clustering by the evolution of
//! the density mountain.
//!
//! A density-peaks streaming method: points are summarised into
//! *cluster-cells* (a cell absorbs points within radius `r` of its seed).
//! Each cell tracks a decayed density; a *dependency tree* links every cell
//! to its nearest cell of strictly higher density, at *dependency distance*
//! δ. Cells whose δ exceeds a threshold are density peaks and root their
//! own cluster; every other cell belongs to its parent's cluster. Cluster
//! evolution (split/merge) falls out of dependency changes.
//!
//! Insertion-only with exponential decay, like DBSTREAM. The paper's
//! observation that EDMStream "connected micro-clusters well for a small
//! number of large cells but not for many small cells" is reproduced here:
//! with fine radii the dependency tree fragments and ARI drops as the
//! window grows.

use crate::traits::WindowClusterer;
use disc_geom::{FxHashMap, Point, PointId};
use disc_window::SlideBatch;

/// Tunables of [`EdmStream`].
#[derive(Clone, Copy, Debug)]
pub struct EdmStreamConfig {
    /// Cluster-cell radius.
    pub radius: f64,
    /// Exponential decay rate λ (per point).
    pub lambda: f64,
    /// Dependency-distance threshold δ above which a cell is a peak.
    pub delta: f64,
    /// Minimum decayed density for a cell to participate in clustering.
    pub density_min: f64,
}

impl Default for EdmStreamConfig {
    fn default() -> Self {
        EdmStreamConfig {
            radius: 1.0,
            lambda: 1e-4,
            delta: 3.0,
            density_min: 1.0,
        }
    }
}

struct CellState<const D: usize> {
    seed: Point<D>,
    density: f64,
    last: u64,
}

/// The EDMStream clusterer.
pub struct EdmStream<const D: usize> {
    cfg: EdmStreamConfig,
    cells: Vec<CellState<D>>,
    time: u64,
    /// Root (cluster id) per cell after the latest dependency update.
    root_of: Vec<i64>,
    /// Evaluation window (not used for clustering decisions).
    window: FxHashMap<PointId, Point<D>>,
}

impl<const D: usize> EdmStream<D> {
    /// Creates an EDMStream instance.
    pub fn new(cfg: EdmStreamConfig) -> Self {
        assert!(cfg.radius > 0.0 && cfg.delta > 0.0);
        EdmStream {
            cfg,
            cells: Vec::new(),
            time: 0,
            root_of: Vec::new(),
            window: FxHashMap::default(),
        }
    }

    /// Number of cluster-cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    fn decayed(&self, c: &CellState<D>) -> f64 {
        c.density * (-self.cfg.lambda * (self.time - c.last) as f64).exp2()
    }

    fn insert(&mut self, p: &Point<D>) {
        self.time += 1;
        let r2 = self.cfg.radius * self.cfg.radius;
        let mut best: Option<(usize, f64)> = None;
        for (i, c) in self.cells.iter().enumerate() {
            let d2 = c.seed.dist2(p);
            if d2 <= r2 && best.map(|(_, b)| d2 < b).unwrap_or(true) {
                best = Some((i, d2));
            }
        }
        match best {
            Some((i, _)) => {
                let t = self.time;
                let decayed = self.decayed(&self.cells[i]);
                let c = &mut self.cells[i];
                c.density = decayed + 1.0;
                c.last = t;
            }
            None => {
                self.cells.push(CellState {
                    seed: *p,
                    density: 1.0,
                    last: self.time,
                });
                self.root_of.push(-1);
            }
        }
    }

    /// Rebuilds the dependency tree (density mountain) and cluster roots.
    fn update_dependencies(&mut self) {
        let n = self.cells.len();
        let densities: Vec<f64> = self.cells.iter().map(|c| self.decayed(c)).collect();
        let mut parent: Vec<Option<usize>> = vec![None; n];
        for i in 0..n {
            if densities[i] < self.cfg.density_min {
                continue;
            }
            let mut best: Option<(usize, f64)> = None;
            for j in 0..n {
                if i == j || densities[j] < self.cfg.density_min {
                    continue;
                }
                // Strictly-higher density (ties broken by index) keeps the
                // dependency relation acyclic.
                let higher = densities[j] > densities[i] || (densities[j] == densities[i] && j < i);
                if !higher {
                    continue;
                }
                let d = self.cells[i].seed.dist(&self.cells[j].seed);
                if best.map(|(_, b)| d < b).unwrap_or(true) {
                    best = Some((j, d));
                }
            }
            // A cell depends on its nearest higher-density cell unless the
            // dependency distance exceeds δ — then it is a peak.
            if let Some((j, d)) = best {
                if d <= self.cfg.delta {
                    parent[i] = Some(j);
                }
            }
        }
        // Resolve roots.
        self.root_of = (0..n)
            .map(|i| {
                if densities[i] < self.cfg.density_min {
                    return -1;
                }
                let mut cur = i;
                // Path lengths are bounded by the strictly-increasing
                // density along parent links.
                while let Some(p) = parent[cur] {
                    cur = p;
                }
                cur as i64
            })
            .collect();
    }

    fn cell_of(&self, p: &Point<D>) -> Option<usize> {
        let r2 = self.cfg.radius * self.cfg.radius;
        let mut best: Option<(usize, f64)> = None;
        for (i, c) in self.cells.iter().enumerate() {
            let d2 = c.seed.dist2(p);
            if d2 <= r2 && best.map(|(_, b)| d2 < b).unwrap_or(true) {
                best = Some((i, d2));
            }
        }
        best.map(|(i, _)| i)
    }
}

impl<const D: usize> WindowClusterer<D> for EdmStream<D> {
    fn name(&self) -> &'static str {
        "EDMStream"
    }

    fn apply(&mut self, batch: &SlideBatch<D>) {
        for (id, _) in &batch.outgoing {
            self.window.remove(id);
        }
        for (id, p) in &batch.incoming {
            self.window.insert(*id, *p);
            self.insert(p);
        }
        self.update_dependencies();
    }

    fn assignments(&self) -> Vec<(PointId, i64)> {
        let mut out: Vec<(PointId, i64)> = self
            .window
            .iter()
            .map(|(id, p)| {
                let label = match self.cell_of(p) {
                    Some(i) => self.root_of[i],
                    None => -1,
                };
                (*id, label)
            })
            .collect();
        out.sort_unstable_by_key(|(id, _)| *id);
        out
    }

    fn memory_bytes(&self) -> usize {
        self.cells.len() * std::mem::size_of::<CellState<D>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_window::{datasets, SlidingWindow};

    #[test]
    fn blobs_collapse_to_their_peaks() {
        let recs = datasets::gaussian_blobs::<2>(1500, 3, 0.5, 7);
        let mut w = SlidingWindow::new(recs, 600, 200);
        let mut edm = EdmStream::new(EdmStreamConfig::default());
        edm.apply(&w.fill());
        while let Some(b) = w.advance() {
            edm.apply(&b);
        }
        let a = edm.assignments();
        let clusters: std::collections::HashSet<i64> =
            a.iter().map(|(_, l)| *l).filter(|&l| l >= 0).collect();
        assert!(
            !clusters.is_empty() && clusters.len() <= 8,
            "blob stream must collapse to a few peaks, got {}",
            clusters.len()
        );
    }

    #[test]
    fn dependency_tree_is_acyclic_by_construction() {
        // Equal densities everywhere: tie-breaking by index must keep root
        // resolution terminating.
        let mut edm: EdmStream<2> = EdmStream::new(EdmStreamConfig {
            radius: 0.4,
            delta: 10.0,
            ..EdmStreamConfig::default()
        });
        let batch = SlideBatch {
            incoming: (0..12u64)
                .map(|i| (PointId(i), Point::new([i as f64, 0.0])))
                .collect(),
            outgoing: vec![],
        };
        edm.apply(&batch);
        // All cells resolved (terminates) and share the chain's root.
        let roots: std::collections::HashSet<i64> =
            edm.root_of.iter().copied().filter(|&r| r >= 0).collect();
        assert!(!roots.is_empty());
    }

    #[test]
    fn far_apart_peaks_stay_separate() {
        let mut edm: EdmStream<2> = EdmStream::new(EdmStreamConfig {
            delta: 2.0,
            ..EdmStreamConfig::default()
        });
        let mut incoming = Vec::new();
        for i in 0..50u64 {
            incoming.push((PointId(i), Point::new([(i % 5) as f64 * 0.3, 0.0])));
            incoming.push((
                PointId(100 + i),
                Point::new([30.0 + (i % 5) as f64 * 0.3, 0.0]),
            ));
        }
        edm.apply(&SlideBatch {
            incoming,
            outgoing: vec![],
        });
        let a = edm.assignments();
        let l_left = a.iter().find(|(id, _)| id.raw() == 0).unwrap().1;
        let l_right = a.iter().find(|(id, _)| id.raw() == 100).unwrap().1;
        assert!(l_left >= 0 && l_right >= 0);
        assert_ne!(l_left, l_right, "two far groups must be two clusters");
    }
}
