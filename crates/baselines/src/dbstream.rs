//! DBSTREAM (Hahsler & Bolaños, TKDE '16): micro-clusters with shared
//! density reclustering.
//!
//! An insertion-only, exponentially decaying summarisation method. Each
//! arriving point either creates a new micro-cluster (MC) or is absorbed by
//! every MC within radius `r` (weights bump, the closest centre drifts
//! toward the point); when a point falls inside the intersection of two
//! MCs, their *shared density* counter grows. Reclustering connects MC
//! pairs whose shared density is high relative to their weights and labels
//! macro-clusters as the connected components.
//!
//! The method never deletes: expired window points keep influencing the
//! summary until decay erases them — exactly why the paper measures only
//! its insertion latency and why its ARI degrades as windows grow.

use crate::traits::WindowClusterer;
use disc_geom::{FxHashMap, Point, PointId};
use disc_window::SlideBatch;

/// Tunables of [`DbStream`].
#[derive(Clone, Copy, Debug)]
pub struct DbStreamConfig {
    /// Micro-cluster radius.
    pub radius: f64,
    /// Exponential decay rate λ (per point).
    pub lambda: f64,
    /// Minimum weight below which an MC is pruned.
    pub w_min: f64,
    /// Shared-density connectivity threshold α.
    pub alpha: f64,
    /// Centre drift step towards absorbed points.
    pub drift: f64,
}

impl Default for DbStreamConfig {
    fn default() -> Self {
        DbStreamConfig {
            radius: 1.0,
            lambda: 1e-4,
            w_min: 1.5,
            alpha: 0.3,
            drift: 0.05,
        }
    }
}

struct Micro<const D: usize> {
    center: Point<D>,
    weight: f64,
    last: u64,
    alive: bool,
}

/// The DBSTREAM clusterer.
pub struct DbStream<const D: usize> {
    cfg: DbStreamConfig,
    mcs: Vec<Micro<D>>,
    /// Shared density between MC pairs, keyed `(min, max)`.
    shared: FxHashMap<(u32, u32), (f64, u64)>,
    /// Logical time = number of points ingested.
    time: u64,
    /// Current window contents, kept only so quality can be evaluated
    /// against the same population as the exact methods.
    window: FxHashMap<PointId, Point<D>>,
    /// Macro-cluster id per MC after the latest reclustering.
    macro_of: Vec<i64>,
}

impl<const D: usize> DbStream<D> {
    /// Creates a DBSTREAM instance.
    pub fn new(cfg: DbStreamConfig) -> Self {
        assert!(cfg.radius > 0.0 && cfg.lambda >= 0.0);
        DbStream {
            cfg,
            mcs: Vec::new(),
            shared: FxHashMap::default(),
            time: 0,
            window: FxHashMap::default(),
            macro_of: Vec::new(),
        }
    }

    /// Number of live micro-clusters.
    pub fn micro_count(&self) -> usize {
        self.mcs.iter().filter(|m| m.alive).count()
    }

    fn decay_factor(&self, dt: u64) -> f64 {
        (-self.cfg.lambda * dt as f64).exp2()
    }

    fn insert(&mut self, p: &Point<D>) {
        self.time += 1;
        let t = self.time;
        let r2 = self.cfg.radius * self.cfg.radius;
        // MCs within radius.
        let mut hits: Vec<usize> = Vec::new();
        let mut closest: Option<(usize, f64)> = None;
        for (i, mc) in self.mcs.iter().enumerate() {
            if !mc.alive {
                continue;
            }
            let d2 = mc.center.dist2(p);
            if d2 <= r2 {
                hits.push(i);
                if closest.map(|(_, best)| d2 < best).unwrap_or(true) {
                    closest = Some((i, d2));
                }
            }
        }
        if hits.is_empty() {
            self.mcs.push(Micro {
                center: *p,
                weight: 1.0,
                last: t,
                alive: true,
            });
            self.macro_of.push(-1);
            return;
        }
        for &i in &hits {
            let dt = t - self.mcs[i].last;
            let decay = self.decay_factor(dt);
            let mc = &mut self.mcs[i];
            mc.weight = mc.weight * decay + 1.0;
            mc.last = t;
        }
        // Only the closest centre drifts (keeps MCs from collapsing).
        if let Some((i, _)) = closest {
            let mc = &mut self.mcs[i];
            let mut c = mc.center;
            for d in 0..D {
                c[d] += self.cfg.drift * (p[d] - c[d]);
            }
            mc.center = c;
        }
        // Shared density for every pair that absorbed this point.
        for a in 0..hits.len() {
            for b in (a + 1)..hits.len() {
                let key = (hits[a].min(hits[b]) as u32, hits[a].max(hits[b]) as u32);
                let lambda = self.cfg.lambda;
                let entry = self.shared.entry(key).or_insert((0.0, t));
                let decay = (-lambda * (t - entry.1) as f64).exp2();
                entry.0 = entry.0 * decay + 1.0;
                entry.1 = t;
            }
        }
    }

    fn cleanup_and_recluster(&mut self) {
        let t = self.time;
        // Prune weak MCs.
        let lambda = self.cfg.lambda;
        let w_min = self.cfg.w_min;
        for mc in &mut self.mcs {
            if mc.alive {
                let w = mc.weight * (-lambda * (t - mc.last) as f64).exp2();
                if w < w_min {
                    mc.alive = false;
                }
            }
        }
        // Connected components over strong shared-density edges.
        let n = self.mcs.len();
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        for (&(a, b), &(s, last)) in &self.shared {
            let (a, b) = (a as usize, b as usize);
            if !self.mcs[a].alive || !self.mcs[b].alive {
                continue;
            }
            let s_now = s * self.decay_factor(t - last);
            let wa = self.mcs[a].weight * self.decay_factor(t - self.mcs[a].last);
            let wb = self.mcs[b].weight * self.decay_factor(t - self.mcs[b].last);
            // Connectivity: shared density relative to the mean weight.
            if s_now / ((wa + wb) / 2.0) >= self.cfg.alpha {
                let ra = find(&mut parent, a as u32);
                let rb = find(&mut parent, b as u32);
                parent[ra as usize] = rb;
            }
        }
        self.macro_of = (0..n)
            .map(|i| {
                if self.mcs[i].alive {
                    find(&mut parent, i as u32) as i64
                } else {
                    -1
                }
            })
            .collect();
    }

    fn nearest_mc(&self, p: &Point<D>) -> Option<usize> {
        let r2 = self.cfg.radius * self.cfg.radius;
        let mut best: Option<(usize, f64)> = None;
        for (i, mc) in self.mcs.iter().enumerate() {
            if !mc.alive {
                continue;
            }
            let d2 = mc.center.dist2(p);
            if d2 <= r2 && best.map(|(_, b)| d2 < b).unwrap_or(true) {
                best = Some((i, d2));
            }
        }
        best.map(|(i, _)| i)
    }
}

impl<const D: usize> WindowClusterer<D> for DbStream<D> {
    fn name(&self) -> &'static str {
        "DBSTREAM"
    }

    fn apply(&mut self, batch: &SlideBatch<D>) {
        // Insertion-only: outgoing points merely fall out of the evaluation
        // window; their influence decays.
        for (id, _) in &batch.outgoing {
            self.window.remove(id);
        }
        for (id, p) in &batch.incoming {
            self.window.insert(*id, *p);
            self.insert(p);
        }
        self.cleanup_and_recluster();
    }

    fn assignments(&self) -> Vec<(PointId, i64)> {
        let mut out: Vec<(PointId, i64)> = self
            .window
            .iter()
            .map(|(id, p)| {
                let label = match self.nearest_mc(p) {
                    Some(i) => self.macro_of[i],
                    None => -1,
                };
                (*id, label)
            })
            .collect();
        out.sort_unstable_by_key(|(id, _)| *id);
        out
    }

    fn memory_bytes(&self) -> usize {
        self.mcs.len() * std::mem::size_of::<Micro<D>>() + self.shared.len() * 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_window::{datasets, SlidingWindow};

    fn drive(cfg: DbStreamConfig, window: usize, stride: usize, seed: u64) -> DbStream<2> {
        let recs = datasets::gaussian_blobs::<2>(window * 3, 3, 0.5, seed);
        let mut w = SlidingWindow::new(recs, window, stride);
        let mut db = DbStream::new(cfg);
        db.apply(&w.fill());
        while let Some(b) = w.advance() {
            db.apply(&b);
        }
        db
    }

    #[test]
    fn summarises_blobs_into_few_macros() {
        let db = drive(DbStreamConfig::default(), 600, 200, 3);
        let a = db.assignments();
        let clusters: std::collections::HashSet<i64> =
            a.iter().map(|(_, l)| *l).filter(|&l| l >= 0).collect();
        assert!(
            !clusters.is_empty() && clusters.len() <= 10,
            "blobs must form a handful of macro-clusters, got {}",
            clusters.len()
        );
        assert!(
            db.micro_count() < 600,
            "summary must be much smaller than data"
        );
    }

    #[test]
    fn separated_blobs_never_share_a_macro() {
        let db = drive(DbStreamConfig::default(), 600, 200, 5);
        let a = db.assignments();
        // Points of blob 0 are near (0,0); blob 1 near (12,0) etc. Macro of
        // far-apart points must differ (or at least one be noise).
        let pts: FxHashMap<PointId, Point<2>> = db.window.clone();
        for (id1, l1) in &a {
            for (id2, l2) in &a {
                if *l1 >= 0 && l1 == l2 {
                    let d = pts[id1].dist(&pts[id2]);
                    assert!(d < 10.0, "macro spans separated blobs: {d}");
                }
            }
        }
    }

    #[test]
    fn weak_micro_clusters_are_pruned() {
        let mut db: DbStream<2> = DbStream::new(DbStreamConfig {
            lambda: 0.05, // aggressive decay
            ..DbStreamConfig::default()
        });
        // A burst at the origin, then lots of far-away points: the origin
        // MC must eventually decay away.
        let batch = SlideBatch {
            incoming: (0..5u64)
                .map(|i| (PointId(i), Point::new([0.0, 0.0])))
                .collect(),
            outgoing: vec![],
        };
        db.apply(&batch);
        assert!(db.micro_count() >= 1);
        let far = SlideBatch {
            incoming: (5..400u64)
                .map(|i| (PointId(i), Point::new([50.0 + (i % 7) as f64 * 0.1, 50.0])))
                .collect(),
            outgoing: (0..5u64)
                .map(|i| (PointId(i), Point::new([0.0, 0.0])))
                .collect(),
        };
        db.apply(&far);
        let origin_alive = db
            .mcs
            .iter()
            .any(|m| m.alive && m.center.dist(&Point::new([0.0, 0.0])) < 1.0);
        assert!(!origin_alive, "decayed origin MC must be pruned");
    }
}
