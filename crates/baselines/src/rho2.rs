//! ρ-double-approximate DBSCAN (Gan & Tao, SIGMOD '15/'17), dynamic version.
//!
//! Grid-based approximate DBSCAN: space is tiled into cells of side
//! `ε/√D`, so all points in one cell are mutually ε-close. Core status is
//! computed **exactly** by scanning the bounded set of neighbouring cells;
//! cluster connectivity between core cells is **ρ-approximate**: cell pairs
//! with a core pair within ε must connect, pairs beyond ε(1+ρ) must not,
//! and anything in between may go either way. The dynamic ("double
//! approximate") variant maintains the grid incrementally under the slide's
//! inserts/deletes and rebuilds the core-cell graph each slide.
//!
//! Why it struggles at high resolution (small ε), reproducing Fig. 11: the
//! number of non-empty cells grows as ε shrinks, and the per-slide cell
//! graph rebuild scans every core cell's neighbourhood — the same behaviour
//! Schubert et al. report for the static version.

use crate::traits::WindowClusterer;
use disc_geom::{FxHashMap, Point, PointId};
use disc_window::SlideBatch;

type CellKey<const D: usize> = [i64; D];

struct Cell<const D: usize> {
    points: Vec<(PointId, Point<D>)>,
    cores: usize,
}

impl<const D: usize> Default for Cell<D> {
    fn default() -> Self {
        Cell {
            points: Vec::new(),
            cores: 0,
        }
    }
}

/// Dynamic ρ-approximate DBSCAN over a sliding window.
pub struct RhoDbscan<const D: usize> {
    eps: f64,
    tau: usize,
    rho: f64,
    side: f64,
    /// Cell-key offsets covering every cell whose minimum distance to the
    /// origin cell can be ≤ ε(1+ρ).
    offsets: Vec<CellKey<D>>,
    cells: FxHashMap<CellKey<D>, Cell<D>>,
    /// id → (point, n_eps). Core iff `n_eps >= tau`.
    points: FxHashMap<PointId, (Point<D>, u32)>,
    /// Core-cell component of the latest slide.
    components: FxHashMap<CellKey<D>, u32>,
    /// Distance computations performed (the method's cost proxy).
    distance_checks: u64,
    /// Labels materialised at the end of every `apply`.
    labels: Vec<(PointId, i64)>,
}

impl<const D: usize> RhoDbscan<D> {
    /// Creates an instance. `rho` is the approximation slack; `rho → 0`
    /// approaches exact DBSCAN connectivity.
    #[allow(clippy::needless_range_loop)] // odometer-style key enumeration
    pub fn new(eps: f64, tau: usize, rho: f64) -> Self {
        assert!(eps > 0.0 && tau >= 1 && rho >= 0.0);
        let side = eps / (D as f64).sqrt();
        let reach = eps * (1.0 + rho);
        let radius_cells = (reach / side).ceil() as i64;
        let mut offsets = Vec::new();
        let mut key = [-radius_cells; D];
        'outer: loop {
            // Keep offsets whose cell box can be within `reach`.
            let min2: f64 = key
                .iter()
                .map(|&k| {
                    let d = if k > 0 {
                        (k - 1) as f64 * side
                    } else if k < 0 {
                        (-k - 1) as f64 * side
                    } else {
                        0.0
                    };
                    d * d
                })
                .sum();
            if min2 <= reach * reach {
                offsets.push(key);
            }
            for i in 0..D {
                key[i] += 1;
                if key[i] <= radius_cells {
                    continue 'outer;
                }
                key[i] = -radius_cells;
            }
            break;
        }
        RhoDbscan {
            eps,
            tau,
            rho,
            side,
            offsets,
            cells: FxHashMap::default(),
            points: FxHashMap::default(),
            components: FxHashMap::default(),
            distance_checks: 0,
            labels: Vec::new(),
        }
    }

    /// Approximation slack in force.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Distance computations so far (cost diagnostics).
    pub fn distance_checks(&self) -> u64 {
        self.distance_checks
    }

    fn key_of(&self, p: &Point<D>) -> CellKey<D> {
        let mut key = [0i64; D];
        for i in 0..D {
            key[i] = (p[i] / self.side).floor() as i64;
        }
        key
    }

    fn neighbours_of(&self, key: &CellKey<D>) -> impl Iterator<Item = CellKey<D>> + '_ {
        let base = *key;
        self.offsets.iter().map(move |off| {
            let mut k = base;
            for (kc, oc) in k.iter_mut().zip(off.iter()) {
                *kc += *oc;
            }
            k
        })
    }

    /// Adjusts `n_eps` of every point within ε of `p` by `delta`
    /// (and returns how many such points there are, for `p`'s own count).
    fn adjust_neighbourhood(&mut self, id: PointId, p: &Point<D>, delta: i32) -> u32 {
        let eps2 = self.eps * self.eps;
        let key = self.key_of(p);
        let mut count = 0u32;
        let neighbours: Vec<CellKey<D>> = self.neighbours_of(&key).collect();
        let mut checks = 0u64;
        for nk in neighbours {
            let Some(cell) = self.cells.get(&nk) else {
                continue;
            };
            // Collect ids first; mutation happens through self.points.
            checks += cell.points.len() as u64;
            let hits: Vec<PointId> = cell
                .points
                .iter()
                .filter(|(qid, q)| *qid != id && p.dist2(q) <= eps2)
                .map(|(qid, _)| *qid)
                .collect();
            for qid in hits {
                count += 1;
                let entry = self.points.get_mut(&qid).expect("cell/point desync");
                entry.1 = entry.1.checked_add_signed(delta).expect("count underflow");
            }
        }
        self.distance_checks += checks;
        count
    }

    fn rebuild_components(&mut self) {
        // Refresh per-cell core counts.
        let tau = self.tau as u32;
        let keys: Vec<CellKey<D>> = self.cells.keys().copied().collect();
        for k in &keys {
            let cell = self.cells.get(k).unwrap();
            let cores = cell
                .points
                .iter()
                .filter(|(id, _)| self.points[id].1 >= tau)
                .count();
            self.cells.get_mut(k).unwrap().cores = cores;
        }

        // Union-find over core cells.
        let core_cells: Vec<CellKey<D>> = keys
            .into_iter()
            .filter(|k| self.cells[k].cores > 0)
            .collect();
        let index: FxHashMap<CellKey<D>, u32> = core_cells
            .iter()
            .enumerate()
            .map(|(i, k)| (*k, i as u32))
            .collect();
        let mut parent: Vec<u32> = (0..core_cells.len() as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }

        let reach = self.eps * (1.0 + self.rho);
        let reach2 = reach * reach;
        let tau = self.tau as u32;
        for (i, k) in core_cells.iter().enumerate() {
            for nk in self.neighbours_of(k).collect::<Vec<_>>() {
                let Some(&j) = index.get(&nk) else { continue };
                if j as usize <= i {
                    continue; // undirected: handle each pair once
                }
                if find(&mut parent, i as u32) == find(&mut parent, j) {
                    continue;
                }
                // ρ-approximate connectivity test: accept the first core
                // pair within ε(1+ρ).
                let ca = &self.cells[k];
                let cb = &self.cells[&nk];
                let mut connected = false;
                'pairs: for (ida, a) in &ca.points {
                    if self.points[ida].1 < tau {
                        continue;
                    }
                    for (idb, b) in &cb.points {
                        if self.points[idb].1 < tau {
                            continue;
                        }
                        self.distance_checks += 1;
                        if a.dist2(b) <= reach2 {
                            connected = true;
                            break 'pairs;
                        }
                    }
                }
                if connected {
                    let ri = find(&mut parent, i as u32);
                    let rj = find(&mut parent, j);
                    parent[ri as usize] = rj;
                }
            }
        }

        self.components.clear();
        for (i, k) in core_cells.iter().enumerate() {
            let root = find(&mut parent, i as u32);
            self.components.insert(*k, root);
        }
    }
}

impl<const D: usize> WindowClusterer<D> for RhoDbscan<D> {
    fn name(&self) -> &'static str {
        "rho2-DBSCAN"
    }

    fn apply(&mut self, batch: &SlideBatch<D>) {
        for (id, p) in &batch.outgoing {
            let key = self.key_of(p);
            self.adjust_neighbourhood(*id, p, -1);
            let cell = self.cells.get_mut(&key).expect("unknown cell on delete");
            let pos = cell
                .points
                .iter()
                .position(|(qid, _)| qid == id)
                .expect("point missing from its cell");
            cell.points.swap_remove(pos);
            if cell.points.is_empty() {
                self.cells.remove(&key);
            }
            self.points.remove(id);
        }
        for (id, p) in &batch.incoming {
            let key = self.key_of(p);
            let gained = self.adjust_neighbourhood(*id, p, 1);
            self.cells.entry(key).or_default().points.push((*id, *p));
            self.points.insert(*id, (*p, gained + 1)); // self-inclusive
        }
        self.rebuild_components();
        self.labels = self.extract_labels();
    }

    fn assignments(&self) -> Vec<(PointId, i64)> {
        self.labels.clone()
    }

    fn memory_bytes(&self) -> usize {
        self.points.len() * (std::mem::size_of::<Point<D>>() * 2 + 48) + self.cells.len() * 64
    }
}

impl<const D: usize> RhoDbscan<D> {
    /// Resolves every window point's label: core via its cell's component,
    /// border via any in-range core, noise otherwise.
    fn extract_labels(&self) -> Vec<(PointId, i64)> {
        let tau = self.tau as u32;
        let eps2 = self.eps * self.eps;
        let mut out: Vec<(PointId, i64)> = Vec::with_capacity(self.points.len());
        for (&id, &(p, n)) in &self.points {
            let key = self.key_of(&p);
            let label = if n >= tau {
                self.components[&key] as i64
            } else {
                // Border: any core within ε adopts it.
                let mut found = -1i64;
                'cells: for nk in self.neighbours_of(&key) {
                    let Some(cell) = self.cells.get(&nk) else {
                        continue;
                    };
                    if cell.cores == 0 {
                        continue;
                    }
                    for (qid, q) in &cell.points {
                        if self.points[qid].1 >= tau && p.dist2(q) <= eps2 {
                            found = self.components[&nk] as i64;
                            break 'cells;
                        }
                    }
                }
                found
            };
            out.push((id, label));
        }
        out.sort_unstable_by_key(|(id, _)| *id);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan::Dbscan;
    use disc_window::{datasets, SlidingWindow};

    #[test]
    fn counts_are_exact() {
        let recs = datasets::covid_like(500, 3);
        let mut w = SlidingWindow::new(recs, 200, 50);
        let mut rho = RhoDbscan::new(1.2, 5, 0.1);
        rho.apply(&w.fill());
        loop {
            let live: Vec<(PointId, Point<2>)> = w.current().collect();
            for (id, p) in &live {
                let brute = live.iter().filter(|(_, q)| p.within(q, 1.2)).count() as u32;
                assert_eq!(rho.points[id].1, brute, "count wrong for {id}");
            }
            match w.advance() {
                Some(b) => rho.apply(&b),
                None => break,
            }
        }
    }

    #[test]
    fn tiny_rho_matches_dbscan_on_separated_blobs() {
        // With well-separated blobs the ρ slack cannot bridge clusters, so
        // the result must match DBSCAN exactly (up to renaming).
        let recs = datasets::gaussian_blobs::<2>(800, 4, 0.5, 19);
        let mut w = SlidingWindow::new(recs, 300, 100);
        let mut rho = RhoDbscan::new(1.0, 5, 0.001);
        let mut db = Dbscan::new(1.0, 5);
        let fill = w.fill();
        rho.apply(&fill);
        db.apply(&fill);
        loop {
            let a = rho.assignments();
            let b = db.assignments();
            for ((ida, la), (idb, lb)) in a.iter().zip(b.iter()) {
                assert_eq!(ida, idb);
                assert_eq!(*la < 0, *lb < 0, "{ida}: rho={la} dbscan={lb}");
            }
            let ca: std::collections::HashSet<i64> =
                a.iter().map(|(_, l)| *l).filter(|&l| l >= 0).collect();
            let cb: std::collections::HashSet<i64> =
                b.iter().map(|(_, l)| *l).filter(|&l| l >= 0).collect();
            assert_eq!(ca.len(), cb.len());
            match w.advance() {
                Some(batch) => {
                    rho.apply(&batch);
                    db.apply(&batch);
                }
                None => break,
            }
        }
    }

    #[test]
    fn shrinking_eps_multiplies_cells() {
        // A dense blob: coarse cells hold many points each, fine cells
        // approach one point per cell.
        let recs = datasets::gaussian_blobs::<2>(1000, 1, 2.0, 9);
        let count_cells = |eps: f64| {
            let mut w = SlidingWindow::new(recs.clone(), 1000, 1000);
            let mut rho = RhoDbscan::new(eps, 5, 0.1);
            rho.apply(&w.fill());
            rho.cells.len()
        };
        let coarse = count_cells(4.0);
        let fine = count_cells(0.2);
        assert!(
            fine > coarse * 4,
            "fine grid must be much larger: {fine} vs {coarse}"
        );
    }

    #[test]
    fn four_dimensional_grid_works() {
        let recs = datasets::iris_like(600, 23);
        let mut w = SlidingWindow::new(recs, 300, 100);
        let mut rho = RhoDbscan::new(4.0, 3, 0.1);
        rho.apply(&w.fill());
        while let Some(b) = w.advance() {
            rho.apply(&b);
        }
        let a = rho.assignments();
        assert_eq!(a.len(), 300);
        assert!(a.iter().any(|(_, l)| *l >= 0), "faults must cluster");
    }
}
