//! Incremental DBSCAN (Ester et al., VLDB '98).
//!
//! IncDBSCAN updates the clustering **one point at a time**: each insertion
//! or deletion triggers its own affected-region analysis. The paper's own
//! IncDBSCAN implementation "ran with our MS-BFS algorithm in its own
//! favor", i.e. deletions use the same early-terminating connectivity check
//! DISC uses, just without any batching.
//!
//! We realise exactly that setup by driving the DISC engine with singleton
//! batches: deleting and inserting one point per mini-slide reproduces
//! IncDBSCAN's per-update case analysis (an insertion's `UpdSeed` is the
//! neo-core class of that one point; a deletion's affected cores are the
//! ex-core class of that one point), while forfeiting every cross-update
//! saving DISC gets from consolidating a whole stride — which is precisely
//! the comparison the paper draws in Figs. 4–7.

use crate::traits::WindowClusterer;
use disc_core::{Disc, DiscConfig};
use disc_geom::PointId;
use disc_window::SlideBatch;

/// Incremental DBSCAN: exact, point-at-a-time updates.
pub struct IncDbscan<const D: usize> {
    inner: Disc<D>,
}

impl<const D: usize> IncDbscan<D> {
    /// Creates an IncDBSCAN instance (MS-BFS and epoch probing enabled, as
    /// in the paper's evaluation).
    pub fn new(eps: f64, tau: usize) -> Self {
        IncDbscan {
            inner: Disc::new(DiscConfig::new(eps, tau)),
        }
    }

    /// Number of points currently held.
    pub fn window_len(&self) -> usize {
        self.inner.window_len()
    }
}

impl<const D: usize> WindowClusterer<D> for IncDbscan<D> {
    fn name(&self) -> &'static str {
        "IncDBSCAN"
    }

    fn apply(&mut self, batch: &SlideBatch<D>) {
        // One mini-slide per deletion, then one per insertion — the
        // defining property of IncDBSCAN.
        for out in &batch.outgoing {
            let mini = SlideBatch {
                incoming: Vec::new(),
                outgoing: vec![*out],
            };
            self.inner.apply(&mini);
        }
        for inc in &batch.incoming {
            let mini = SlideBatch {
                incoming: vec![*inc],
                outgoing: Vec::new(),
            };
            self.inner.apply(&mini);
        }
    }

    fn assignments(&self) -> Vec<(PointId, i64)> {
        self.inner.assignments()
    }

    fn range_searches(&self) -> u64 {
        self.inner.index_stats().range_searches
    }

    fn memory_bytes(&self) -> usize {
        self.inner.window_len() * (std::mem::size_of::<disc_geom::Point<D>>() + 64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan::Dbscan;
    use disc_geom::Point;
    use disc_window::{datasets, SlidingWindow};

    /// IncDBSCAN and a from-scratch DBSCAN must agree on the core/noise
    /// census and the number of clusters after every slide.
    #[test]
    fn matches_dbscan_cluster_structure() {
        let recs = datasets::gaussian_blobs::<2>(900, 3, 0.6, 33);
        let mut w = SlidingWindow::new(recs, 250, 50);
        let mut inc = IncDbscan::new(1.0, 5);
        let mut db = Dbscan::new(1.0, 5);
        let fill = w.fill();
        inc.apply(&fill);
        db.apply(&fill);
        loop {
            let a = inc.assignments();
            let b = db.assignments();
            assert_eq!(a.len(), b.len());
            // Noise sets identical; cluster partitions equal up to renaming.
            let mut map: std::collections::HashMap<i64, i64> = Default::default();
            let mut rev: std::collections::HashMap<i64, i64> = Default::default();
            for ((ida, la), (idb, lb)) in a.iter().zip(b.iter()) {
                assert_eq!(ida, idb);
                match (*la < 0, *lb < 0) {
                    (true, true) => {}
                    (false, false) => {
                        // Border points may legally differ between any two
                        // DBSCAN implementations; restrict the bijection
                        // check to points both sides call clustered.
                        let e = map.entry(*la).or_insert(*lb);
                        let r = rev.entry(*lb).or_insert(*la);
                        // Conflicts are possible only through borders; the
                        // cluster COUNT check below catches core-level
                        // divergence.
                        let _ = (e, r);
                    }
                    _ => {
                        // A point clustered on one side and noise on the
                        // other would be a real bug for non-border points,
                        // but borders near two clusters can flip only
                        // between clusters, never to noise. Check strictly.
                        panic!("{ida}: inc={la} dbscan={lb}");
                    }
                }
            }
            let ca: std::collections::HashSet<i64> =
                a.iter().map(|(_, l)| *l).filter(|&l| l >= 0).collect();
            let cb: std::collections::HashSet<i64> =
                b.iter().map(|(_, l)| *l).filter(|&l| l >= 0).collect();
            assert_eq!(ca.len(), cb.len(), "cluster count diverged");
            match w.advance() {
                Some(batch) => {
                    inc.apply(&batch);
                    db.apply(&batch);
                }
                None => break,
            }
        }
    }

    #[test]
    fn uses_more_searches_than_batched_disc() {
        let recs = datasets::dtg_like(3000, 3);
        let mut w1 = SlidingWindow::new(recs.clone(), 800, 200);
        let mut w2 = SlidingWindow::new(recs, 800, 200);
        let mut inc = IncDbscan::new(0.6, 6);
        let mut disc = Disc::new(DiscConfig::new(0.6, 6));
        inc.apply(&w1.fill());
        disc.apply(&w2.fill());
        while let Some(b) = w1.advance() {
            inc.apply(&b);
            disc.apply(&w2.advance().unwrap());
        }
        assert!(
            inc.range_searches() > disc.index_stats().range_searches,
            "IncDBSCAN {} vs DISC {}",
            inc.range_searches(),
            disc.index_stats().range_searches
        );
    }

    #[test]
    fn single_point_turnover() {
        let mut inc = IncDbscan::new(1.0, 2);
        let fill = SlideBatch {
            incoming: vec![
                (PointId(0), Point::new([0.0, 0.0])),
                (PointId(1), Point::new([0.5, 0.0])),
            ],
            outgoing: vec![],
        };
        inc.apply(&fill);
        assert_eq!(inc.window_len(), 2);
        let slide = SlideBatch {
            incoming: vec![(PointId(2), Point::new([1.0, 0.0]))],
            outgoing: vec![(PointId(0), Point::new([0.0, 0.0]))],
        };
        inc.apply(&slide);
        assert_eq!(inc.window_len(), 2);
        let a = inc.assignments();
        assert!(a.iter().all(|(_, l)| *l >= 0), "pair is a cluster: {a:?}");
    }
}
