//! Baseline clustering methods the paper compares DISC against (§VI).
//!
//! **Exact** methods — all produce DBSCAN-equivalent clusterings:
//!
//! * [`Dbscan`] — from-scratch DBSCAN per slide (the evaluation's baseline
//!   denominator);
//! * [`IncDbscan`] — Incremental DBSCAN (Ester et al., VLDB '98), updating
//!   clusters one point at a time; like the paper's own implementation it
//!   runs "with MS-BFS in its own favor";
//! * [`ExtraN`] — EXTRA-N (Yang et al., EDBT '09), the sub-window /
//!   predicted-view method that eliminates deletion range searches at the
//!   cost of `O(window/stride)` state per point.
//!
//! **Approximate / summarisation** methods:
//!
//! * [`RhoDbscan`] — ρ-double-approximate DBSCAN (Gan & Tao), grid-based,
//!   exact core counting with ρ-approximate connectivity;
//! * [`DbStream`] — shared-density micro-cluster streaming clusterer
//!   (Hahsler & Bolaños, TKDE '16), insertion-only with exponential decay;
//! * [`DenStream`] — the seminal damped-window method (Cao et al., SDM '06),
//!   included beyond the paper's evaluated set;
//! * [`EdmStream`] — density-peak dependency-tree streaming clusterer
//!   (Gong et al., VLDB '17), insertion-only with exponential decay.
//!
//! Every method implements [`WindowClusterer`], the uniform driver interface
//! used by the benchmark harness.

pub mod dbscan;
pub mod dbstream;
pub mod denstream;
pub mod edmstream;
pub mod extran;
pub mod incdbscan;
pub mod rho2;
pub mod traits;

pub use dbscan::Dbscan;
pub use dbstream::{DbStream, DbStreamConfig};
pub use denstream::{DenStream, DenStreamConfig};
pub use edmstream::{EdmStream, EdmStreamConfig};
pub use extran::ExtraN;
pub use incdbscan::IncDbscan;
pub use rho2::RhoDbscan;
pub use traits::WindowClusterer;
