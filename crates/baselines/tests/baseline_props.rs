//! Property tests for the baseline implementations.

use disc_baselines::{Dbscan, ExtraN, IncDbscan, RhoDbscan, WindowClusterer};
use disc_geom::{FxHashMap, PointId};
use disc_window::{datasets, SlidingWindow};
use proptest::prelude::*;

/// Connected-in-exact ⇒ connected-in-ρ₂: the approximation may only merge
/// clusters that exact DBSCAN separates (slack edges in `(ε, ε(1+ρ)]`),
/// never split what exact DBSCAN joins. Core/noise status is exact.
#[test]
fn rho2_is_a_coarsening_of_exact_dbscan() {
    for seed in [3u64, 17, 99] {
        let recs = datasets::covid_like(900, seed);
        let (eps, tau) = (1.2, 4);
        let window = 400;
        let stride = 100;

        let mut exact = Dbscan::new(eps, tau);
        let mut rho = RhoDbscan::new(eps, tau, 0.5); // generous slack
        let mut w = SlidingWindow::new(recs, window, stride);
        let fill = w.fill();
        WindowClusterer::apply(&mut exact, &fill);
        WindowClusterer::apply(&mut rho, &fill);
        loop {
            let a: FxHashMap<PointId, i64> =
                WindowClusterer::assignments(&exact).into_iter().collect();
            let b: FxHashMap<PointId, i64> =
                WindowClusterer::assignments(&rho).into_iter().collect();
            // Noise agreement is exact (core counting is exact in rho2 and
            // borders adopt within plain ε on both sides).
            for (id, &la) in &a {
                let lb = b[id];
                assert_eq!(la < 0, lb < 0, "{id}: exact={la} rho2={lb}");
            }
            // Coarsening: two points sharing an exact cluster share a rho2
            // cluster.
            let mut exact_to_rho: FxHashMap<i64, i64> = FxHashMap::default();
            for (id, &la) in &a {
                if la < 0 {
                    continue;
                }
                let lb = b[id];
                if let Some(&prev) = exact_to_rho.get(&la) {
                    assert_eq!(prev, lb, "exact cluster {la} maps to rho2 {prev} and {lb}");
                } else {
                    exact_to_rho.insert(la, lb);
                }
            }
            match w.advance() {
                Some(batch) => {
                    WindowClusterer::apply(&mut exact, &batch);
                    WindowClusterer::apply(&mut rho, &batch);
                }
                None => break,
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// IncDBSCAN and EXTRA-N agree with DBSCAN on noise flags and cluster
    /// counts for random windows/strides over blob+noise streams.
    #[test]
    fn exact_baselines_agree(
        seed in 0u64..1000,
        window in 80usize..200,
        stride_frac in 1usize..5,
    ) {
        let stride = (window * stride_frac / 5).max(1);
        // EXTRA-N needs the stride to tile the window.
        let window = stride * (window / stride).max(1);
        let mut recs = datasets::gaussian_blobs::<2>(window * 3, 3, 0.8, seed);
        let noise = datasets::uniform::<2>(window / 2, 30.0, seed ^ 0xabc);
        for (i, n) in noise.into_iter().enumerate() {
            recs.insert((i * 7) % recs.len(), n);
        }
        let (eps, tau) = (1.0, 4);

        let mut db = Dbscan::new(eps, tau);
        let mut inc = IncDbscan::new(eps, tau);
        let mut exn = ExtraN::new(eps, tau, window, stride);
        let mut w = SlidingWindow::new(recs, window, stride);
        let fill = w.fill();
        WindowClusterer::apply(&mut db, &fill);
        WindowClusterer::apply(&mut inc, &fill);
        WindowClusterer::apply(&mut exn, &fill);
        loop {
            let a = WindowClusterer::assignments(&db);
            for other in [
                WindowClusterer::assignments(&inc),
                WindowClusterer::assignments(&exn),
            ] {
                prop_assert_eq!(a.len(), other.len());
                for ((ida, la), (idb, lb)) in a.iter().zip(other.iter()) {
                    prop_assert_eq!(ida, idb);
                    prop_assert_eq!(*la < 0, *lb < 0, "{:?}: {} vs {}", ida, la, lb);
                }
                let ca: std::collections::HashSet<i64> =
                    a.iter().map(|(_, l)| *l).filter(|&l| l >= 0).collect();
                let cb: std::collections::HashSet<i64> =
                    other.iter().map(|(_, l)| *l).filter(|&l| l >= 0).collect();
                prop_assert_eq!(ca.len(), cb.len());
            }
            match w.advance() {
                Some(batch) => {
                    WindowClusterer::apply(&mut db, &batch);
                    WindowClusterer::apply(&mut inc, &batch);
                    WindowClusterer::apply(&mut exn, &batch);
                }
                None => break,
            }
        }
    }
}
