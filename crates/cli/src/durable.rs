//! Durable CLI paths: `disc cluster --checkpoint-dir/--wal`,
//! `disc resume`, and `disc diffsnap`.
//!
//! Unlike the plain clustering path (which erases the engine behind
//! `Box<dyn WindowClusterer>`), durability needs the concrete `Disc<D, B>`
//! to export and restore state, so these commands run their own
//! slide loop: WAL-append *before* apply, checkpoint every
//! `--checkpoint-every` slides plus once at the end, and checkpoint /
//! recovery telemetry into the shared registry.

use crate::cmd::DimCommand;
use crate::Opts;
use disc_core::{backend_of, Disc, DiscConfig, IndexBackend};
use disc_index::{CurveIndex, GridIndex, RTree, SpatialBackend};
use disc_persist::{
    checkpoint_path, latest_checkpoint_seq, load_checkpoint, metrics, recover_engine,
    save_checkpoint, Checkpoint, DriverState, FsyncPolicy, WalWriter,
};
use disc_telemetry::{JsonlSink, Registry};
use disc_window::{csv, SlidingWindow};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The durable registry, pre-`Arc` so the caller can still attach the
/// health driver's provenance tee before sharing it with the engine.
fn registry_from(opts: &Opts) -> Result<Registry, String> {
    Ok(match &opts.metrics_out {
        Some(path) => {
            let sink = JsonlSink::create(path)
                .map_err(|e| format!("--metrics-out {}: {e}", path.display()))?;
            Registry::with_sink(Box::new(sink))
        }
        None => Registry::new(),
    })
}

/// Publishes the raw window buffer's gauge row — the one stateful piece
/// the durable loop owns directly rather than through the engine.
fn publish_window_gauge<const D: usize>(registry: &Registry, w: &SlidingWindow<D>) {
    use disc_telemetry::{MemoryFootprint, Recorder};
    for (component, bytes) in w.footprint().flatten() {
        registry.gauge_set_labeled("disc_mem_bytes", "component", &component, bytes as f64);
    }
}

fn fsync_policy(opts: &Opts) -> Result<FsyncPolicy, String> {
    FsyncPolicy::parse(&opts.fsync).ok_or_else(|| {
        format!(
            "--fsync {:?}: expected always, never, or every=N",
            opts.fsync
        )
    })
}

/// Writes one checkpoint (engine image + driver position) and publishes
/// its size and duration.
fn write_checkpoint<const D: usize, B: SpatialBackend<D>>(
    disc: &Disc<D, B>,
    w: &SlidingWindow<D>,
    dir: &Path,
    registry: &Registry,
) -> Result<(), String> {
    let started = std::time::Instant::now();
    let ckpt = Checkpoint {
        state: disc.export_state(),
        driver: Some(DriverState {
            window: w.window_size() as u64,
            stride: w.stride() as u64,
            start: w.start().expect("checkpoint before fill") as u64,
        }),
    };
    let path = checkpoint_path(dir, disc.slide_seq());
    let bytes = save_checkpoint(&path, &ckpt).map_err(|e| format!("{}: {e}", path.display()))?;
    metrics::publish_checkpoint(registry, bytes, started.elapsed());
    Ok(())
}

/// Appends the batch to the WAL (if any), then applies it — the ordering
/// that makes a committed slide recoverable even if the process dies in
/// `apply`.
fn append_then_apply<const D: usize, B: SpatialBackend<D>>(
    disc: &mut Disc<D, B>,
    wal: &mut Option<WalWriter<D>>,
    batch: &disc_window::SlideBatch<D>,
    registry: &Registry,
) -> Result<(), String> {
    if let Some(wal) = wal {
        let bytes = wal
            .append(disc.slide_seq() + 1, batch)
            .map_err(|e| format!("WAL append failed: {e}"))?;
        metrics::publish_wal_append(registry, bytes, wal.len_bytes());
    }
    disc.try_apply(batch)
        .map_err(|e| format!("slide {} rejected: {e}", disc.slide_seq() + 1))?;
    Ok(())
}

/// The shared durable slide loop: drain the window driver, checkpointing
/// every `every` slides and once more at the end, then report and
/// optionally write the final snapshot.
fn drain_stream<const D: usize, B: SpatialBackend<D>>(
    mut disc: Disc<D, B>,
    mut w: SlidingWindow<D>,
    mut wal: Option<WalWriter<D>>,
    dir: &Path,
    registry: &Arc<Registry>,
    mut health: Option<crate::health::Health<D>>,
    opts: &Opts,
) -> Result<(), String> {
    let every = opts.checkpoint_every.max(1);
    let workers = crate::cmd::effective_workers(opts);
    let started = std::time::Instant::now();
    while let Some(batch) = w.advance() {
        append_then_apply(&mut disc, &mut wal, &batch, registry)?;
        publish_window_gauge(registry, &w);
        if disc.slide_seq().is_multiple_of(every) {
            write_checkpoint(&disc, &w, dir, registry)?;
        }
        if let Some(h) = &mut health {
            h.observe(disc.slide_seq(), &disc.assignments(), &w, &batch, registry)?;
        }
        if opts.stats_every > 0 && disc.slide_seq().is_multiple_of(opts.stats_every) {
            crate::cmd::stats_summary(
                registry,
                disc.slide_seq(),
                workers,
                health.as_ref().map(|h| h.summary()),
            );
        }
        if !opts.quiet {
            eprintln!(
                "slide {}: {} clusters",
                disc.slide_seq(),
                disc.num_clusters()
            );
        }
    }
    write_checkpoint(&disc, &w, dir, registry)?;
    if let Some(wal) = &mut wal {
        wal.sync().map_err(|e| format!("WAL sync failed: {e}"))?;
    }
    registry.flush();

    let (cores, borders, noise) = disc.census();
    println!(
        "disc: {} slides, {} window points, {} clusters, {} noise, {:?} total",
        disc.slide_seq(),
        cores + borders + noise,
        disc.num_clusters(),
        noise,
        started.elapsed()
    );
    println!(
        "checkpoints in {} (latest: slide {}), {} checkpoint bytes total",
        dir.display(),
        disc.slide_seq(),
        registry.counter_value("disc_checkpoint_bytes_total"),
    );
    if let Some(out) = &opts.out {
        csv::write_snapshot(out, &disc.snapshot())
            .map_err(|e| format!("{}: {e}", out.display()))?;
        println!("wrote {}", out.display());
    }
    if let Some(path) = &opts.metrics_out {
        println!("wrote per-slide metrics to {}", path.display());
    }
    // Last, so a fatal alert still leaves the snapshot and checkpoints
    // complete on disk.
    if let Some(h) = &mut health {
        h.finish(registry)?;
    }
    Ok(())
}

/// `disc cluster --checkpoint-dir DIR [--checkpoint-every N] [--wal F]`.
pub fn run_durable<const D: usize, B: SpatialBackend<D>>(opts: &Opts) -> Result<(), String> {
    if opts.method != "disc" {
        return Err(format!(
            "--checkpoint-dir/--wal require --method disc (got {:?})",
            opts.method
        ));
    }
    let dir = opts.checkpoint_dir.as_ref().ok_or(
        "--wal also needs --checkpoint-dir (recovery replays the WAL on top of a checkpoint)",
    )?;
    std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let policy = fsync_policy(opts)?;
    let records = crate::cmd::load::<D>(opts)?;
    let eps = opts.eps.ok_or("--eps is required")?;
    let tau = opts.tau.ok_or("--tau is required")?;
    let window = opts.window.ok_or("--window is required")?;
    let stride = opts.stride.ok_or("--stride is required")?;
    if window > records.len() {
        return Err(format!(
            "window {window} exceeds the stream ({} points)",
            records.len()
        ));
    }
    let backend = IndexBackend::parse(&opts.index)
        .ok_or_else(|| format!("unknown --index {:?} (rtree, grid, or curve)", opts.index))?;

    let mut health = crate::health::Health::<D>::from_opts(opts, eps, tau)?;
    let mut registry = registry_from(opts)?;
    if let Some(h) = &health {
        registry = registry.with_provenance(h.provenance_tee(None));
    }
    let registry = Arc::new(registry);
    let mut disc: Disc<D, B> = Disc::with_index(
        DiscConfig::new(eps, tau)
            .with_backend(backend)
            .with_threads(crate::cmd::effective_workers(opts)),
    );
    disc.set_recorder(registry.clone());
    let mut wal = match &opts.wal {
        Some(path) => Some(
            WalWriter::<D>::create(path, policy).map_err(|e| format!("{}: {e}", path.display()))?,
        ),
        None => None,
    };

    let mut w = SlidingWindow::new(records, window, stride);
    let fill = w.fill();
    append_then_apply(&mut disc, &mut wal, &fill, &registry)?;
    publish_window_gauge(&registry, &w);
    if opts.checkpoint_every.max(1) == 1 {
        write_checkpoint(&disc, &w, dir, &registry)?;
    }
    if let Some(h) = &mut health {
        h.observe(disc.slide_seq(), &disc.assignments(), &w, &fill, &registry)?;
    }
    drain_stream(disc, w, wal, dir, &registry, health, opts)
}

/// `disc resume --checkpoint-dir DIR [--wal F] --input F`.
pub struct ResumeCmd;

impl DimCommand for ResumeCmd {
    fn run<const D: usize>(&self, opts: &Opts) -> Result<(), String> {
        let dir = opts
            .checkpoint_dir
            .as_ref()
            .ok_or("--checkpoint-dir is required")?;
        let seq = latest_checkpoint_seq(dir)
            .map_err(|e| format!("{}: {e}", dir.display()))?
            .ok_or_else(|| format!("no checkpoint found in {}", dir.display()))?;
        // Peek the checkpoint's declared backend to pick the engine
        // instantiation; the image itself is backend-portable.
        let ckpt = load_checkpoint::<D>(&checkpoint_path(dir, seq))
            .map_err(|e| format!("checkpoint {seq}: {e}"))?;
        match backend_of(&ckpt.state) {
            IndexBackend::RTree => resume_with::<D, RTree<D>>(opts),
            IndexBackend::Grid => resume_with::<D, GridIndex<D>>(opts),
            IndexBackend::Curve => resume_with::<D, CurveIndex<D>>(opts),
        }
    }
}

fn resume_with<const D: usize, B: SpatialBackend<D>>(opts: &Opts) -> Result<(), String> {
    let dir = opts.checkpoint_dir.as_ref().expect("checked by caller");
    let started = std::time::Instant::now();
    let (mut disc, driver, report) = recover_engine::<D, B>(dir, opts.wal.as_deref())
        .map_err(|e| format!("recovery failed: {e}"))?;
    // The audit oracle inherits the recovered engine's own thresholds.
    let health = crate::health::Health::<D>::from_opts(opts, disc.config().eps, disc.config().tau)?;
    let mut registry = registry_from(opts)?;
    if let Some(h) = &health {
        registry = registry.with_provenance(h.provenance_tee(None));
    }
    let registry = Arc::new(registry);
    // Worker width is deliberately not part of the checkpoint image, so a
    // run checkpointed on one machine can resume at another's width.
    disc.set_threads(crate::cmd::effective_workers(opts));
    disc.set_recorder(registry.clone());
    metrics::publish_recovery(&*registry, &report);
    println!(
        "recovered slide {}: checkpoint {} + {} WAL slide(s){} in {:?}",
        disc.slide_seq(),
        report.checkpoint_seq,
        report.replayed,
        if report.torn_tail {
            " (discarded a torn WAL tail)"
        } else {
            ""
        },
        started.elapsed()
    );
    let driver = driver.ok_or(
        "checkpoint carries no driver position (written by a library user?); \
         cannot resume the stream",
    )?;

    let records = crate::cmd::load::<D>(opts)?;
    let start = driver.start + report.replayed * driver.stride;
    let (window, stride) = (driver.window as usize, driver.stride as usize);
    if start as usize + window > records.len() {
        return Err(format!(
            "recovered window starts at record {start} but the stream has only {} points \
             — is --input the same stream the checkpoint was taken from?",
            records.len()
        ));
    }
    let w = SlidingWindow::resume_at(records, window, stride, start as usize);

    let wal = match &opts.wal {
        Some(path) => {
            let policy = fsync_policy(opts)?;
            let (writer, _) = WalWriter::<D>::open_append(path, policy)
                .map_err(|e| format!("{}: {e}", path.display()))?;
            Some(writer)
        }
        None => None,
    };
    drain_stream(disc, w, wal, dir, &registry, health, opts)
}

/// `disc diffsnap --a F --b F [--dim D]` — canonical snapshot comparison.
///
/// Raw cluster ids are allocation artifacts (they vary with hash-set
/// iteration history), so a `diff` of two snapshot files is meaningless
/// across a crash/recovery boundary. This compares what is actually
/// guaranteed: same points in the same order, the same noise set, and the
/// same induced partition after renumbering clusters by first appearance.
pub struct DiffsnapCmd;

impl DimCommand for DiffsnapCmd {
    fn run<const D: usize>(&self, opts: &Opts) -> Result<(), String> {
        let a = opts.snap_a.as_ref().ok_or("--a is required")?;
        let b = opts.snap_b.as_ref().ok_or("--b is required")?;
        let read =
            |p: &PathBuf| csv::read_snapshot::<D>(p).map_err(|e| format!("{}: {e}", p.display()));
        let (mut ra, mut rb) = (read(a)?, read(b)?);
        // Snapshot row order is an engine-internal artifact (it follows the
        // point store's insertion history, which a crash/recovery changes),
        // so compare coordinate-sorted rows. The readers reject non-finite
        // coordinates, so `partial_cmp` is total here.
        let by_coords = |x: &(disc_geom::Point<D>, i64), y: &(disc_geom::Point<D>, i64)| {
            x.0.coords().partial_cmp(&y.0.coords()).unwrap()
        };
        ra.sort_by(by_coords);
        rb.sort_by(by_coords);
        if ra.len() != rb.len() {
            return Err(format!(
                "snapshots differ: {} has {} points, {} has {}",
                a.display(),
                ra.len(),
                b.display(),
                rb.len()
            ));
        }
        let canon = |rows: &[(disc_geom::Point<D>, i64)]| -> Vec<(disc_geom::Point<D>, i64)> {
            let mut rename: std::collections::BTreeMap<i64, i64> = Default::default();
            rows.iter()
                .map(|&(p, l)| {
                    if l < 0 {
                        (p, -1)
                    } else {
                        let next = rename.len() as i64;
                        (p, *rename.entry(l).or_insert(next))
                    }
                })
                .collect()
        };
        let (ca, cb) = (canon(&ra), canon(&rb));
        for (i, (x, y)) in ca.iter().zip(cb.iter()).enumerate() {
            if x != y {
                return Err(format!(
                    "snapshots diverge at point {} (coordinate order): \
                     {:?} cluster {} vs {:?} cluster {}",
                    i + 1,
                    x.0.coords(),
                    x.1,
                    y.0.coords(),
                    y.1
                ));
            }
        }
        let clusters = ca
            .iter()
            .map(|&(_, l)| l)
            .filter(|&l| l >= 0)
            .max()
            .map_or(0, |m| m + 1);
        println!(
            "snapshots agree: {} points, {} clusters, {} noise",
            ca.len(),
            clusters,
            ca.iter().filter(|&&(_, l)| l < 0).count()
        );
        Ok(())
    }
}
