//! `disc` — sliding-window density clustering from the command line.
//!
//! ```text
//! disc cluster --input points.csv --dim 2 --eps 0.5 --tau 6 \
//!              --window 10000 --stride 500 [--method disc] [--out snap.csv]
//! disc estimate --input points.csv --dim 2
//! disc generate --dataset maze --n 50000 --out maze.csv
//! ```
//!
//! Input CSV: one point per row, `dim` coordinate columns, optionally a
//! trailing integer ground-truth label. Output snapshots carry a header
//! `x0,..,cluster` with `-1` for noise.

use std::path::PathBuf;
use std::process::ExitCode;

mod cmd;
mod durable;
mod health;
mod top;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage:
  disc cluster  --input F --dim D --eps X --tau N --window W --stride S
                [--method disc|incdbscan|extran|dbscan|rho2] [--rho X]
                [--index rtree|grid|curve] [--threads N] [--out F] [--quiet]
                [--metrics-out F.jsonl] [--prom-addr HOST:PORT]
                [--stats-every N]
                [--trace-out F.json] [--folded-out F.txt]
                [--provenance-out F.jsonl]
                [--audit-every K] [--alerts RULES.toml|.json]
                [--alerts-out F.jsonl] [--alerts-fatal]
                [--health-out F.jsonl]
                [--checkpoint-dir DIR] [--checkpoint-every N]
                [--wal F] [--fsync always|never|every=N]
                (`disc run` is an alias for `disc cluster`)
  disc resume   --checkpoint-dir DIR --input F [--dim D] [--wal F]
                [--threads N] [--out F] [--quiet] [health flags as above]
  disc diffsnap --a F --b F [--dim D]
  disc explain  --trace F.jsonl [--slide N]
  disc top      --metrics F.jsonl | --prom-addr HOST:PORT
                [--health F.jsonl] [--refresh MS] [--once]
  disc estimate --input F --dim D [--sample N]
  disc generate --dataset maze|dtg|geolife|covid|iris|netflow|blobs|split_merge
                --n N --out F [--seed N]
  disc --help";

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err(format!("missing command\n{USAGE}"));
    };
    let opts = Opts::parse(&args[1..])?;
    match command.as_str() {
        "cluster" | "run" => dispatch_dim(&opts, cmd::ClusterCmd),
        "resume" => dispatch_dim(&opts, durable::ResumeCmd),
        "diffsnap" => dispatch_dim(&opts, durable::DiffsnapCmd),
        "explain" => cmd::explain(&opts),
        "top" => top::top(&opts),
        "estimate" => dispatch_dim(&opts, cmd::EstimateCmd),
        "generate" => cmd::generate(&opts),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

/// Parsed command-line options (flat; commands validate what they need).
pub struct Opts {
    pub input: Option<PathBuf>,
    pub out: Option<PathBuf>,
    pub dim: usize,
    pub eps: Option<f64>,
    pub tau: Option<usize>,
    pub window: Option<usize>,
    pub stride: Option<usize>,
    pub method: String,
    pub index: String,
    /// Worker threads for the DISC slide engine (`--threads`, 0 = auto).
    /// `None` leaves the engine on its default (the `DISC_THREADS` env
    /// var, else sequential). Output is bit-identical at every width.
    pub threads: Option<usize>,
    pub rho: f64,
    pub dataset: Option<String>,
    pub n: usize,
    pub seed: u64,
    pub sample: usize,
    pub quiet: bool,
    /// Per-slide telemetry events, one JSON line each (`--metrics-out`).
    pub metrics_out: Option<PathBuf>,
    /// Prometheus scrape listener address (`--prom-addr`).
    pub prom_addr: Option<String>,
    /// Print a rolled-up summary every N slides (`--stats-every`, 0 = off).
    pub stats_every: u64,
    /// Chrome `chrome://tracing` span export (`--trace-out`).
    pub trace_out: Option<PathBuf>,
    /// Folded-stack span export for flamegraph tooling (`--folded-out`).
    pub folded_out: Option<PathBuf>,
    /// Causal provenance JSONL export (`--provenance-out`).
    pub provenance_out: Option<PathBuf>,
    /// Provenance JSONL to read back (`disc explain --trace`).
    pub trace: Option<PathBuf>,
    /// Restrict `explain` to one slide (`--slide`).
    pub slide: Option<u64>,
    /// Directory for durable checkpoints (`--checkpoint-dir`).
    pub checkpoint_dir: Option<PathBuf>,
    /// Checkpoint cadence in slides (`--checkpoint-every`, default 1).
    pub checkpoint_every: u64,
    /// Slide write-ahead log file (`--wal`).
    pub wal: Option<PathBuf>,
    /// WAL fsync policy: `always`, `never`, or `every=N` (`--fsync`).
    pub fsync: String,
    /// First snapshot for `disc diffsnap` (`--a`).
    pub snap_a: Option<PathBuf>,
    /// Second snapshot for `disc diffsnap` (`--b`).
    pub snap_b: Option<PathBuf>,
    /// Slide-event JSONL for `disc top` to tail (`--metrics`).
    pub metrics: Option<PathBuf>,
    /// `disc top` refresh cadence in milliseconds (`--refresh`).
    pub refresh: u64,
    /// Render one `disc top` frame and exit (`--once`).
    pub once: bool,
    /// Quality-audit cadence in slides (`--audit-every`, 0 = off).
    pub audit_every: u64,
    /// Declarative alert rules file, TOML or JSON (`--alerts`).
    pub alerts: Option<PathBuf>,
    /// Alert-event JSONL sink (`--alerts-out`; needs `--alerts`).
    pub alerts_out: Option<PathBuf>,
    /// Exit non-zero if any alert fired (`--alerts-fatal`; for CI).
    pub alerts_fatal: bool,
    /// Per-slide health-event JSONL sink (`--health-out`).
    pub health_out: Option<PathBuf>,
    /// Health-event JSONL for `disc top` to tail (`--health`).
    pub health: Option<PathBuf>,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut o = Opts {
            input: None,
            out: None,
            dim: 2,
            eps: None,
            tau: None,
            window: None,
            stride: None,
            method: "disc".to_string(),
            index: "rtree".to_string(),
            threads: None,
            rho: 0.001,
            dataset: None,
            n: 10_000,
            seed: 42,
            sample: 2_000,
            quiet: false,
            metrics_out: None,
            prom_addr: None,
            stats_every: 0,
            trace_out: None,
            folded_out: None,
            provenance_out: None,
            trace: None,
            slide: None,
            checkpoint_dir: None,
            checkpoint_every: 1,
            wal: None,
            fsync: "always".to_string(),
            snap_a: None,
            snap_b: None,
            metrics: None,
            refresh: 1000,
            once: false,
            audit_every: 0,
            alerts: None,
            alerts_out: None,
            alerts_fatal: false,
            health_out: None,
            health: None,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = || {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("flag {flag} needs a value"))
            };
            match flag.as_str() {
                "--input" => o.input = Some(PathBuf::from(value()?)),
                "--out" => o.out = Some(PathBuf::from(value()?)),
                "--dim" => o.dim = parse_num(flag, &value()?)?,
                "--eps" => o.eps = Some(parse_num(flag, &value()?)?),
                "--tau" => o.tau = Some(parse_num(flag, &value()?)?),
                "--window" => o.window = Some(parse_num(flag, &value()?)?),
                "--stride" => o.stride = Some(parse_num(flag, &value()?)?),
                "--method" => o.method = value()?,
                "--index" => o.index = value()?,
                "--threads" => o.threads = Some(parse_num(flag, &value()?)?),
                "--rho" => o.rho = parse_num(flag, &value()?)?,
                "--dataset" => o.dataset = Some(value()?),
                "--n" => o.n = parse_num(flag, &value()?)?,
                "--seed" => o.seed = parse_num(flag, &value()?)?,
                "--sample" => o.sample = parse_num(flag, &value()?)?,
                "--metrics-out" => o.metrics_out = Some(PathBuf::from(value()?)),
                "--prom-addr" => o.prom_addr = Some(value()?),
                "--stats-every" => o.stats_every = parse_num(flag, &value()?)?,
                "--trace-out" => o.trace_out = Some(PathBuf::from(value()?)),
                "--folded-out" => o.folded_out = Some(PathBuf::from(value()?)),
                "--provenance-out" => o.provenance_out = Some(PathBuf::from(value()?)),
                "--trace" => o.trace = Some(PathBuf::from(value()?)),
                "--slide" => o.slide = Some(parse_num(flag, &value()?)?),
                "--checkpoint-dir" => o.checkpoint_dir = Some(PathBuf::from(value()?)),
                "--checkpoint-every" => o.checkpoint_every = parse_num(flag, &value()?)?,
                "--wal" => o.wal = Some(PathBuf::from(value()?)),
                "--fsync" => o.fsync = value()?,
                "--a" => o.snap_a = Some(PathBuf::from(value()?)),
                "--b" => o.snap_b = Some(PathBuf::from(value()?)),
                "--metrics" => o.metrics = Some(PathBuf::from(value()?)),
                "--refresh" => o.refresh = parse_num(flag, &value()?)?,
                "--once" => o.once = true,
                "--audit-every" => o.audit_every = parse_num(flag, &value()?)?,
                "--alerts" => o.alerts = Some(PathBuf::from(value()?)),
                "--alerts-out" => o.alerts_out = Some(PathBuf::from(value()?)),
                "--alerts-fatal" => o.alerts_fatal = true,
                "--health-out" => o.health_out = Some(PathBuf::from(value()?)),
                "--health" => o.health = Some(PathBuf::from(value()?)),
                "--quiet" => o.quiet = true,
                other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
            }
        }
        Ok(o)
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, s: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("flag {flag}: cannot parse {s:?}"))
}

/// Runs a dimension-generic command for the `--dim` in force (2, 3 or 4).
fn dispatch_dim<C: cmd::DimCommand>(opts: &Opts, cmd: C) -> Result<(), String> {
    match opts.dim {
        2 => cmd.run::<2>(opts),
        3 => cmd.run::<3>(opts),
        4 => cmd.run::<4>(opts),
        d => Err(format!("unsupported --dim {d} (2, 3 or 4)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Opts, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        Opts::parse(&owned)
    }

    #[test]
    fn defaults_are_sane() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.dim, 2);
        assert_eq!(o.method, "disc");
        assert_eq!(o.index, "rtree");
        assert_eq!(o.rho, 0.001);
        assert!(!o.quiet);
        assert!(o.input.is_none());
    }

    #[test]
    fn full_cluster_flag_set_parses() {
        let o = parse(&[
            "--input", "in.csv", "--dim", "3", "--eps", "0.5", "--tau", "7", "--window", "1000",
            "--stride", "50", "--method", "rho2", "--rho", "0.1", "--index", "grid", "--out",
            "out.csv", "--quiet",
        ])
        .unwrap();
        assert_eq!(o.input.as_ref().unwrap().to_str(), Some("in.csv"));
        assert_eq!(o.dim, 3);
        assert_eq!(o.eps, Some(0.5));
        assert_eq!(o.tau, Some(7));
        assert_eq!(o.window, Some(1000));
        assert_eq!(o.stride, Some(50));
        assert_eq!(o.method, "rho2");
        assert_eq!(o.rho, 0.1);
        assert_eq!(o.index, "grid");
        assert!(o.quiet);
    }

    #[test]
    fn invalid_index_error_lists_all_backends() {
        // The durable branch resolves the backend before touching the
        // input, so the error is reachable without a stream on disk.
        use cmd::DimCommand;
        let o = parse(&["--index", "kdtree", "--checkpoint-dir", "/tmp/unused"]).unwrap();
        let err = cmd::ClusterCmd.run::<2>(&o).unwrap_err();
        assert!(
            err.contains("rtree, grid, or curve"),
            "error must name every backend: {err}"
        );
    }

    #[test]
    fn telemetry_flags_parse() {
        let o = parse(&[
            "--metrics-out",
            "m.jsonl",
            "--prom-addr",
            "127.0.0.1:9977",
            "--stats-every",
            "10",
        ])
        .unwrap();
        assert_eq!(o.metrics_out.as_ref().unwrap().to_str(), Some("m.jsonl"));
        assert_eq!(o.prom_addr.as_deref(), Some("127.0.0.1:9977"));
        assert_eq!(o.stats_every, 10);
        let o = parse(&[]).unwrap();
        assert!(o.metrics_out.is_none());
        assert!(o.prom_addr.is_none());
        assert_eq!(o.stats_every, 0);
    }

    #[test]
    fn threads_flag_parses() {
        assert_eq!(parse(&[]).unwrap().threads, None);
        assert_eq!(parse(&["--threads", "4"]).unwrap().threads, Some(4));
        // 0 is the documented "auto" sentinel, not an error.
        assert_eq!(parse(&["--threads", "0"]).unwrap().threads, Some(0));
        assert!(parse(&["--threads", "-1"]).is_err());
        assert!(parse(&["--threads", "many"]).is_err());
    }

    /// The tentpole's user-facing guarantee: the same stream clustered at
    /// width 1 and width 4 produces the identical partition. `diffsnap`
    /// is the certifier, as in the crash-recovery walkthrough.
    #[test]
    fn threads_do_not_change_the_partition() {
        let dir = std::env::temp_dir().join("disc_cli_threads_test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("stream.csv");
        let seq = dir.join("seq.csv");
        let wide = dir.join("wide.csv");
        run_strs(&[
            "generate",
            "--dataset",
            "blobs",
            "--n",
            "600",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        for (threads, out) in [("1", &seq), ("4", &wide)] {
            run_strs(&[
                "cluster",
                "--input",
                data.to_str().unwrap(),
                "--eps",
                "1.0",
                "--tau",
                "4",
                "--window",
                "300",
                "--stride",
                "100",
                "--quiet",
                "--threads",
                threads,
                "--out",
                out.to_str().unwrap(),
            ])
            .unwrap();
        }
        run_strs(&[
            "diffsnap",
            "--a",
            seq.to_str().unwrap(),
            "--b",
            wide.to_str().unwrap(),
        ])
        .unwrap();
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse(&["--eps"]).is_err());
        assert!(parse(&["--eps", "not_a_number"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
    }

    #[test]
    fn unknown_command_is_rejected() {
        let args: Vec<String> = vec!["frobnicate".into()];
        assert!(run(&args).is_err());
        let none: Vec<String> = vec![];
        assert!(run(&none).is_err());
    }

    #[test]
    fn cluster_requires_all_core_flags() {
        // --input exists but eps/tau/window/stride missing → error.
        let dir = std::env::temp_dir().join("disc_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("pts.csv");
        std::fs::write(&input, "0.0,0.0,\n1.0,0.0,\n").unwrap();
        let args: Vec<String> = vec![
            "cluster".into(),
            "--input".into(),
            input.to_str().unwrap().into(),
        ];
        let err = run(&args).unwrap_err();
        assert!(err.contains("--eps"), "got: {err}");
    }

    #[test]
    fn generate_and_recluster_roundtrip() {
        let dir = std::env::temp_dir().join("disc_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("gen.csv");
        let snap = dir.join("snap.csv");
        let args: Vec<String> = [
            "generate",
            "--dataset",
            "blobs",
            "--n",
            "600",
            "--out",
            data.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).unwrap();
        let args: Vec<String> = [
            "cluster",
            "--input",
            data.to_str().unwrap(),
            "--dim",
            "2",
            "--eps",
            "1.0",
            "--tau",
            "4",
            "--window",
            "300",
            "--stride",
            "100",
            "--quiet",
            "--out",
            snap.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).unwrap();
        let text = std::fs::read_to_string(&snap).unwrap();
        assert!(text.starts_with("x0,x1,cluster"));
        assert_eq!(text.lines().count(), 301, "header + window points");
    }

    #[test]
    fn cluster_accepts_grid_index_backend() {
        let dir = std::env::temp_dir().join("disc_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("grid.csv");
        let args: Vec<String> = [
            "generate",
            "--dataset",
            "blobs",
            "--n",
            "600",
            "--out",
            data.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).unwrap();
        let mut args: Vec<String> = [
            "cluster",
            "--input",
            data.to_str().unwrap(),
            "--dim",
            "2",
            "--eps",
            "1.0",
            "--tau",
            "4",
            "--window",
            "300",
            "--stride",
            "100",
            "--quiet",
            "--index",
            "grid",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).unwrap();
        // And an unknown backend is rejected up front.
        let n = args.len();
        args[n - 1] = "quadtree".into();
        let err = run(&args).unwrap_err();
        assert!(err.contains("--index"), "got: {err}");
    }

    #[test]
    fn metrics_out_writes_schema_valid_jsonl() {
        let dir = std::env::temp_dir().join("disc_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("tele.csv");
        let metrics = dir.join("tele.jsonl");
        let args: Vec<String> = [
            "generate",
            "--dataset",
            "blobs",
            "--n",
            "600",
            "--out",
            data.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).unwrap();
        let args: Vec<String> = [
            "cluster",
            "--input",
            data.to_str().unwrap(),
            "--dim",
            "2",
            "--eps",
            "1.0",
            "--tau",
            "4",
            "--window",
            "300",
            "--stride",
            "100",
            "--quiet",
            "--stats-every",
            "2",
            "--metrics-out",
            metrics.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).unwrap();
        let text = std::fs::read_to_string(&metrics).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // Fill + 3 advances = 4 slides, one event per slide.
        assert_eq!(lines.len(), 4, "one JSONL event per slide");
        for (i, line) in lines.iter().enumerate() {
            disc_telemetry::SlideEvent::validate_jsonl(line).unwrap();
            let ev = disc_telemetry::SlideEvent::from_jsonl(line).unwrap();
            assert_eq!(ev.seq, i as u64 + 1);
            assert_eq!(ev.engine, "disc");
            assert_eq!(ev.backend, "rtree");
            assert!(ev.total_ns > 0);
            assert!(ev.range_searches > 0);
            assert!(ev.mem_bytes > 0, "engine must account its memory");
        }
        // The produced stream is immediately `disc top`-able.
        let args: Vec<String> = ["top", "--metrics", metrics.to_str().unwrap(), "--once"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        run(&args).unwrap();
    }

    #[test]
    fn top_flags_parse_and_require_a_source() {
        let o = parse(&["--metrics", "m.jsonl", "--refresh", "250", "--once"]).unwrap();
        assert_eq!(o.metrics.as_ref().unwrap().to_str(), Some("m.jsonl"));
        assert_eq!(o.refresh, 250);
        assert!(o.once);
        let o = parse(&[]).unwrap();
        assert!(o.metrics.is_none());
        assert_eq!(o.refresh, 1000);
        assert!(!o.once);
        let err = run(&["top".to_string()]).unwrap_err();
        assert!(
            err.contains("--metrics") && err.contains("--prom-addr"),
            "{err}"
        );
    }

    #[test]
    fn observability_flags_parse() {
        let o = parse(&[
            "--trace-out",
            "t.json",
            "--folded-out",
            "f.txt",
            "--provenance-out",
            "p.jsonl",
            "--trace",
            "p.jsonl",
            "--slide",
            "17",
        ])
        .unwrap();
        assert_eq!(o.trace_out.as_ref().unwrap().to_str(), Some("t.json"));
        assert_eq!(o.folded_out.as_ref().unwrap().to_str(), Some("f.txt"));
        assert_eq!(o.provenance_out.as_ref().unwrap().to_str(), Some("p.jsonl"));
        assert_eq!(o.trace.as_ref().unwrap().to_str(), Some("p.jsonl"));
        assert_eq!(o.slide, Some(17));
        let o = parse(&[]).unwrap();
        assert!(o.trace_out.is_none() && o.provenance_out.is_none());
        assert!(o.slide.is_none());
    }

    /// End-to-end: `disc run --trace-out --folded-out --provenance-out`
    /// produces a Chrome-loadable trace, a folded-stack profile, and a
    /// schema-valid provenance stream that `disc explain` can narrate.
    #[test]
    fn run_traces_and_explain_narrates() {
        let dir = std::env::temp_dir().join("disc_cli_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("obs.csv");
        let trace = dir.join("obs_trace.json");
        let folded = dir.join("obs_folded.txt");
        let prov = dir.join("obs_prov.jsonl");
        let gen: Vec<String> = [
            "generate",
            "--dataset",
            "blobs",
            "--n",
            "600",
            "--out",
            data.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&gen).unwrap();
        // `run` is the documented alias for `cluster`.
        let args: Vec<String> = [
            "run",
            "--input",
            data.to_str().unwrap(),
            "--dim",
            "2",
            "--eps",
            "1.0",
            "--tau",
            "4",
            "--window",
            "300",
            "--stride",
            "100",
            "--quiet",
            "--trace-out",
            trace.to_str().unwrap(),
            "--folded-out",
            folded.to_str().unwrap(),
            "--provenance-out",
            prov.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).unwrap();

        // The chrome trace validates and holds all four slides' hierarchies.
        let text = std::fs::read_to_string(&trace).unwrap();
        let n = disc_telemetry::validate_chrome_trace(&text).unwrap();
        assert!(n > 0, "trace holds events");
        assert_eq!(text.matches("\"name\": \"slide\"").count(), 4);
        let folded_text = std::fs::read_to_string(&folded).unwrap();
        assert!(folded_text.contains("slide;collect"), "{folded_text}");
        assert!(folded_text.contains("slide;cluster"), "{folded_text}");

        // Every provenance line passes the schema validator.
        let prov_text = std::fs::read_to_string(&prov).unwrap();
        assert!(!prov_text.is_empty(), "blobs stream emits provenance");
        for line in prov_text.lines() {
            disc_telemetry::ProvenanceEvent::validate_jsonl(line).unwrap();
        }

        // `explain` summarises the run and narrates a single slide,
        // naming the specific points behind it.
        let args: Vec<String> = ["explain", "--trace", prov.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        run(&args).unwrap();
        let first =
            disc_telemetry::ProvenanceEvent::from_jsonl(prov_text.lines().next().unwrap()).unwrap();
        let args: Vec<String> = [
            "explain",
            "--trace",
            prov.to_str().unwrap(),
            "--slide",
            &first.slide.to_string(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).unwrap();

        // Asking for a slide past the stream's end is an error, not silence.
        let args: Vec<String> = [
            "explain",
            "--trace",
            prov.to_str().unwrap(),
            "--slide",
            "9999",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let err = run(&args).unwrap_err();
        assert!(err.contains("9999"), "got: {err}");
        // And a malformed stream is rejected with a line number.
        let bad = dir.join("bad.jsonl");
        std::fs::write(&bad, "{\"slide\": 1}\n").unwrap();
        let args: Vec<String> = ["explain", "--trace", bad.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run(&args).is_err());
    }

    #[test]
    fn health_flags_parse() {
        let o = parse(&[
            "--audit-every",
            "8",
            "--alerts",
            "rules.toml",
            "--alerts-out",
            "a.jsonl",
            "--alerts-fatal",
            "--health-out",
            "h.jsonl",
            "--health",
            "h.jsonl",
        ])
        .unwrap();
        assert_eq!(o.audit_every, 8);
        assert_eq!(o.alerts.as_ref().unwrap().to_str(), Some("rules.toml"));
        assert_eq!(o.alerts_out.as_ref().unwrap().to_str(), Some("a.jsonl"));
        assert!(o.alerts_fatal);
        assert_eq!(o.health_out.as_ref().unwrap().to_str(), Some("h.jsonl"));
        assert_eq!(o.health.as_ref().unwrap().to_str(), Some("h.jsonl"));
        let o = parse(&[]).unwrap();
        assert_eq!(o.audit_every, 0);
        assert!(o.alerts.is_none() && o.alerts_out.is_none() && o.health_out.is_none());
        assert!(!o.alerts_fatal);
    }

    /// The tentpole, end to end: a `disc run` over the adversarial
    /// split-merge stream with the auditor, alert engine and health sink
    /// on. The alert JSONL must hold at least one firing→resolved cycle,
    /// every health line must validate, `--alerts-fatal` must flip the
    /// exit into an error, and the streams must feed `disc top`'s health
    /// pane in tail mode.
    #[test]
    fn health_pipeline_end_to_end() {
        let dir = std::env::temp_dir().join("disc_cli_health_e2e_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("sm.csv");
        let rules = dir.join("rules.toml");
        let metrics = dir.join("m.jsonl");
        let alerts = dir.join("alerts.jsonl");
        let health = dir.join("health.jsonl");
        run_strs(&[
            "generate",
            "--dataset",
            "split_merge",
            "--n",
            "4000",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        // The two blobs drift apart and back together once over the
        // stream, so a cluster-count rule must fire and then resolve.
        std::fs::write(
            &rules,
            "[[rule]]\nname = \"split\"\nmetric = \"disc_cluster_count\"\n\
             op = \"gt\"\nthreshold = 1.5\nfor_slides = 2\nclear_slides = 2\n",
        )
        .unwrap();
        let base = [
            "run",
            "--input",
            data.to_str().unwrap(),
            "--eps",
            "0.6",
            "--tau",
            "5",
            "--window",
            "1000",
            "--stride",
            "200",
            "--quiet",
            "--audit-every",
            "8",
            "--alerts",
            rules.to_str().unwrap(),
            "--alerts-out",
            alerts.to_str().unwrap(),
            "--health-out",
            health.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
        ];
        run_strs(&base).unwrap();

        // ≥1 firing→resolved cycle, schema-valid throughout.
        let alert_text = std::fs::read_to_string(&alerts).unwrap();
        let mut states = Vec::new();
        for line in alert_text.lines() {
            disc_telemetry::AlertEvent::validate_jsonl(line).unwrap();
            let ev = disc_telemetry::AlertEvent::from_jsonl(line).unwrap();
            assert_eq!(ev.rule, "split");
            states.push(ev.state);
        }
        let fired = states.iter().position(|s| *s == "firing").unwrap();
        assert!(
            states[fired..].contains(&"resolved"),
            "need a firing→resolved cycle, got {states:?}"
        );

        // One schema-valid health line per slide, with audited slides
        // carrying quality scores.
        let health_text = std::fs::read_to_string(&health).unwrap();
        // 4000 records, window 1000, stride 200 → fill + 15 advances.
        assert_eq!(health_text.lines().count(), 16);
        let mut audited = 0;
        for line in health_text.lines() {
            disc_telemetry::HealthEvent::validate_jsonl(line).unwrap();
            let ev = disc_telemetry::HealthEvent::from_jsonl(line).unwrap();
            if ev.audited == 1 {
                audited += 1;
                assert!(ev.ari_ppm > 0, "audited slide carries quality: {line}");
            }
        }
        assert_eq!(audited, 2, "slides 8 and 16 are audited");

        // Both streams feed the live view's health pane.
        run_strs(&[
            "top",
            "--metrics",
            metrics.to_str().unwrap(),
            "--health",
            health.to_str().unwrap(),
            "--once",
        ])
        .unwrap();

        // CI mode: the same run with --alerts-fatal exits non-zero,
        // naming the count of fired alerts.
        let mut fatal: Vec<&str> = base.to_vec();
        fatal.push("--alerts-fatal");
        let err = run_strs(&fatal).unwrap_err();
        assert!(err.contains("--alerts-fatal"), "got: {err}");
    }

    #[test]
    fn bad_prom_addr_is_reported() {
        let dir = std::env::temp_dir().join("disc_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("prom.csv");
        std::fs::write(&data, "0.0,0.0,\n1.0,0.0,\n0.5,0.5,\n").unwrap();
        let args: Vec<String> = [
            "cluster",
            "--input",
            data.to_str().unwrap(),
            "--eps",
            "1.0",
            "--tau",
            "2",
            "--window",
            "2",
            "--stride",
            "1",
            "--quiet",
            "--prom-addr",
            "not-an-address",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let err = run(&args).unwrap_err();
        assert!(err.contains("--prom-addr"), "got: {err}");
    }

    #[test]
    fn durability_flags_parse() {
        let o = parse(&[
            "--checkpoint-dir",
            "ckpts",
            "--checkpoint-every",
            "5",
            "--wal",
            "slides.wal",
            "--fsync",
            "every=8",
            "--a",
            "a.csv",
            "--b",
            "b.csv",
        ])
        .unwrap();
        assert_eq!(o.checkpoint_dir.as_ref().unwrap().to_str(), Some("ckpts"));
        assert_eq!(o.checkpoint_every, 5);
        assert_eq!(o.wal.as_ref().unwrap().to_str(), Some("slides.wal"));
        assert_eq!(o.fsync, "every=8");
        assert_eq!(o.snap_a.as_ref().unwrap().to_str(), Some("a.csv"));
        assert_eq!(o.snap_b.as_ref().unwrap().to_str(), Some("b.csv"));
        let o = parse(&[]).unwrap();
        assert!(o.checkpoint_dir.is_none() && o.wal.is_none());
        assert_eq!(o.checkpoint_every, 1);
        assert_eq!(o.fsync, "always");
    }

    fn run_strs(args: &[&str]) -> Result<(), String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&owned)
    }

    /// End-to-end crash walkthrough, in-process: a durable run on a prefix
    /// of the stream stands in for a run killed mid-stream (its final
    /// checkpoint + WAL survive on disk exactly as a kill would leave
    /// them); `disc resume` picks up against the full stream, and
    /// `disc diffsnap` certifies the result against an uninterrupted run.
    /// The CI `recovery` job repeats this with a real `kill -9`.
    #[test]
    fn durable_run_resume_and_diffsnap_roundtrip() {
        let dir = std::env::temp_dir().join("disc_cli_durable_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("stream.csv");
        let prefix = dir.join("prefix.csv");
        let ckpts = dir.join("ckpts");
        let wal = dir.join("slides.wal");
        let snap_full = dir.join("full.csv");
        let snap_resumed = dir.join("resumed.csv");

        run_strs(&[
            "generate",
            "--dataset",
            "blobs",
            "--n",
            "600",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        // The reference: one uninterrupted durable run over the whole
        // stream (durable, so the label-allocation history matches the
        // crashed-and-resumed engine's).
        let ref_ckpts = dir.join("ref_ckpts");
        run_strs(&[
            "cluster",
            "--input",
            data.to_str().unwrap(),
            "--eps",
            "1.0",
            "--tau",
            "4",
            "--window",
            "300",
            "--stride",
            "100",
            "--quiet",
            "--checkpoint-dir",
            ref_ckpts.to_str().unwrap(),
            "--out",
            snap_full.to_str().unwrap(),
        ])
        .unwrap();

        // The "crashed" run only ever saw the first 400 records.
        let text = std::fs::read_to_string(&data).unwrap();
        let head: String = text.lines().take(400).fold(String::new(), |mut s, l| {
            s.push_str(l);
            s.push('\n');
            s
        });
        std::fs::write(&prefix, head).unwrap();
        run_strs(&[
            "run",
            "--input",
            prefix.to_str().unwrap(),
            "--eps",
            "1.0",
            "--tau",
            "4",
            "--window",
            "300",
            "--stride",
            "100",
            "--quiet",
            "--checkpoint-dir",
            ckpts.to_str().unwrap(),
            "--checkpoint-every",
            "2",
            "--wal",
            wal.to_str().unwrap(),
            "--fsync",
            "every=2",
        ])
        .unwrap();
        assert!(wal.exists());
        assert!(
            std::fs::read_dir(&ckpts).unwrap().count() >= 1,
            "durable run left checkpoints behind"
        );

        // Resume against the full stream and finish the remaining slides.
        run_strs(&[
            "resume",
            "--checkpoint-dir",
            ckpts.to_str().unwrap(),
            "--wal",
            wal.to_str().unwrap(),
            "--input",
            data.to_str().unwrap(),
            "--quiet",
            "--out",
            snap_resumed.to_str().unwrap(),
        ])
        .unwrap();

        // The resumed run must induce the identical partition.
        run_strs(&[
            "diffsnap",
            "--a",
            snap_full.to_str().unwrap(),
            "--b",
            snap_resumed.to_str().unwrap(),
        ])
        .unwrap();
    }

    #[test]
    fn corrupted_checkpoint_fails_resume_loudly() {
        let dir = std::env::temp_dir().join("disc_cli_corrupt_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("stream.csv");
        let ckpts = dir.join("ckpts");
        run_strs(&[
            "generate",
            "--dataset",
            "blobs",
            "--n",
            "500",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        run_strs(&[
            "cluster",
            "--input",
            data.to_str().unwrap(),
            "--eps",
            "1.0",
            "--tau",
            "4",
            "--window",
            "300",
            "--stride",
            "100",
            "--quiet",
            "--checkpoint-dir",
            ckpts.to_str().unwrap(),
        ])
        .unwrap();
        // Flip one byte in the middle of the newest checkpoint.
        let newest = std::fs::read_dir(&ckpts)
            .unwrap()
            .map(|e| e.unwrap().path())
            .max()
            .unwrap();
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&newest, bytes).unwrap();
        let err = run_strs(&[
            "resume",
            "--checkpoint-dir",
            ckpts.to_str().unwrap(),
            "--input",
            data.to_str().unwrap(),
            "--quiet",
        ])
        .unwrap_err();
        assert!(
            err.contains("checksum") || err.contains("corrupt") || err.contains("truncated"),
            "expected a typed corruption error, got: {err}"
        );
    }

    #[test]
    fn diffsnap_reports_divergence_and_tolerates_relabeling() {
        let dir = std::env::temp_dir().join("disc_cli_diffsnap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.csv");
        let b = dir.join("b.csv");
        let c = dir.join("c.csv");
        // b is a with clusters renamed (7↔3): canonically identical.
        std::fs::write(&a, "x0,x1,cluster\n0,0,3\n1,0,3\n5,5,7\n9,9,-1\n").unwrap();
        std::fs::write(&b, "x0,x1,cluster\n0,0,7\n1,0,7\n5,5,3\n9,9,-1\n").unwrap();
        // c moves a point between clusters: a real divergence.
        std::fs::write(&c, "x0,x1,cluster\n0,0,3\n1,0,7\n5,5,7\n9,9,-1\n").unwrap();
        run_strs(&[
            "diffsnap",
            "--a",
            a.to_str().unwrap(),
            "--b",
            b.to_str().unwrap(),
        ])
        .unwrap();
        let err = run_strs(&[
            "diffsnap",
            "--a",
            a.to_str().unwrap(),
            "--b",
            c.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(err.contains("diverge"), "got: {err}");
        // Length mismatch is reported as such.
        std::fs::write(&c, "x0,x1,cluster\n0,0,3\n").unwrap();
        let err = run_strs(&[
            "diffsnap",
            "--a",
            a.to_str().unwrap(),
            "--b",
            c.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(err.contains("points"), "got: {err}");
    }

    #[test]
    fn durable_flags_reject_non_disc_methods() {
        let dir = std::env::temp_dir().join("disc_cli_durable_method_test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("pts.csv");
        std::fs::write(&data, "0.0,0.0,\n1.0,0.0,\n0.5,0.5,\n").unwrap();
        let err = run_strs(&[
            "cluster",
            "--input",
            data.to_str().unwrap(),
            "--eps",
            "1.0",
            "--tau",
            "2",
            "--window",
            "2",
            "--stride",
            "1",
            "--method",
            "incdbscan",
            "--checkpoint-dir",
            dir.join("ckpts").to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(err.contains("--method disc"), "got: {err}");
        // A WAL without a checkpoint dir cannot be recovered from; reject it.
        let err = run_strs(&[
            "cluster",
            "--input",
            data.to_str().unwrap(),
            "--eps",
            "1.0",
            "--tau",
            "2",
            "--window",
            "2",
            "--stride",
            "1",
            "--wal",
            dir.join("slides.wal").to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(err.contains("--checkpoint-dir"), "got: {err}");
    }

    #[test]
    fn estimate_runs_on_generated_data() {
        let dir = std::env::temp_dir().join("disc_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("est.csv");
        let args: Vec<String> = [
            "generate",
            "--dataset",
            "maze",
            "--n",
            "800",
            "--out",
            data.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).unwrap();
        let args: Vec<String> = ["estimate", "--input", data.to_str().unwrap(), "--dim", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        run(&args).unwrap();
    }
}
