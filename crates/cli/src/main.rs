//! `disc` — sliding-window density clustering from the command line.
//!
//! ```text
//! disc cluster --input points.csv --dim 2 --eps 0.5 --tau 6 \
//!              --window 10000 --stride 500 [--method disc] [--out snap.csv]
//! disc estimate --input points.csv --dim 2
//! disc generate --dataset maze --n 50000 --out maze.csv
//! ```
//!
//! Input CSV: one point per row, `dim` coordinate columns, optionally a
//! trailing integer ground-truth label. Output snapshots carry a header
//! `x0,..,cluster` with `-1` for noise.

use std::path::PathBuf;
use std::process::ExitCode;

mod cmd;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage:
  disc cluster  --input F --dim D --eps X --tau N --window W --stride S
                [--method disc|incdbscan|extran|dbscan|rho2] [--rho X]
                [--index rtree|grid] [--out F] [--quiet]
  disc estimate --input F --dim D [--sample N]
  disc generate --dataset maze|dtg|geolife|covid|iris|netflow|blobs --n N --out F
                [--seed N]
  disc --help";

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err(format!("missing command\n{USAGE}"));
    };
    let opts = Opts::parse(&args[1..])?;
    match command.as_str() {
        "cluster" => dispatch_dim(&opts, cmd::ClusterCmd),
        "estimate" => dispatch_dim(&opts, cmd::EstimateCmd),
        "generate" => cmd::generate(&opts),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

/// Parsed command-line options (flat; commands validate what they need).
pub struct Opts {
    pub input: Option<PathBuf>,
    pub out: Option<PathBuf>,
    pub dim: usize,
    pub eps: Option<f64>,
    pub tau: Option<usize>,
    pub window: Option<usize>,
    pub stride: Option<usize>,
    pub method: String,
    pub index: String,
    pub rho: f64,
    pub dataset: Option<String>,
    pub n: usize,
    pub seed: u64,
    pub sample: usize,
    pub quiet: bool,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut o = Opts {
            input: None,
            out: None,
            dim: 2,
            eps: None,
            tau: None,
            window: None,
            stride: None,
            method: "disc".to_string(),
            index: "rtree".to_string(),
            rho: 0.001,
            dataset: None,
            n: 10_000,
            seed: 42,
            sample: 2_000,
            quiet: false,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = || {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("flag {flag} needs a value"))
            };
            match flag.as_str() {
                "--input" => o.input = Some(PathBuf::from(value()?)),
                "--out" => o.out = Some(PathBuf::from(value()?)),
                "--dim" => o.dim = parse_num(flag, &value()?)?,
                "--eps" => o.eps = Some(parse_num(flag, &value()?)?),
                "--tau" => o.tau = Some(parse_num(flag, &value()?)?),
                "--window" => o.window = Some(parse_num(flag, &value()?)?),
                "--stride" => o.stride = Some(parse_num(flag, &value()?)?),
                "--method" => o.method = value()?,
                "--index" => o.index = value()?,
                "--rho" => o.rho = parse_num(flag, &value()?)?,
                "--dataset" => o.dataset = Some(value()?),
                "--n" => o.n = parse_num(flag, &value()?)?,
                "--seed" => o.seed = parse_num(flag, &value()?)?,
                "--sample" => o.sample = parse_num(flag, &value()?)?,
                "--quiet" => o.quiet = true,
                other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
            }
        }
        Ok(o)
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, s: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("flag {flag}: cannot parse {s:?}"))
}

/// Runs a dimension-generic command for the `--dim` in force (2, 3 or 4).
fn dispatch_dim<C: cmd::DimCommand>(opts: &Opts, cmd: C) -> Result<(), String> {
    match opts.dim {
        2 => cmd.run::<2>(opts),
        3 => cmd.run::<3>(opts),
        4 => cmd.run::<4>(opts),
        d => Err(format!("unsupported --dim {d} (2, 3 or 4)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Opts, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        Opts::parse(&owned)
    }

    #[test]
    fn defaults_are_sane() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.dim, 2);
        assert_eq!(o.method, "disc");
        assert_eq!(o.index, "rtree");
        assert_eq!(o.rho, 0.001);
        assert!(!o.quiet);
        assert!(o.input.is_none());
    }

    #[test]
    fn full_cluster_flag_set_parses() {
        let o = parse(&[
            "--input", "in.csv", "--dim", "3", "--eps", "0.5", "--tau", "7", "--window", "1000",
            "--stride", "50", "--method", "rho2", "--rho", "0.1", "--index", "grid", "--out",
            "out.csv", "--quiet",
        ])
        .unwrap();
        assert_eq!(o.input.as_ref().unwrap().to_str(), Some("in.csv"));
        assert_eq!(o.dim, 3);
        assert_eq!(o.eps, Some(0.5));
        assert_eq!(o.tau, Some(7));
        assert_eq!(o.window, Some(1000));
        assert_eq!(o.stride, Some(50));
        assert_eq!(o.method, "rho2");
        assert_eq!(o.rho, 0.1);
        assert_eq!(o.index, "grid");
        assert!(o.quiet);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse(&["--eps"]).is_err());
        assert!(parse(&["--eps", "not_a_number"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
    }

    #[test]
    fn unknown_command_is_rejected() {
        let args: Vec<String> = vec!["frobnicate".into()];
        assert!(run(&args).is_err());
        let none: Vec<String> = vec![];
        assert!(run(&none).is_err());
    }

    #[test]
    fn cluster_requires_all_core_flags() {
        // --input exists but eps/tau/window/stride missing → error.
        let dir = std::env::temp_dir().join("disc_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("pts.csv");
        std::fs::write(&input, "0.0,0.0,\n1.0,0.0,\n").unwrap();
        let args: Vec<String> = vec![
            "cluster".into(),
            "--input".into(),
            input.to_str().unwrap().into(),
        ];
        let err = run(&args).unwrap_err();
        assert!(err.contains("--eps"), "got: {err}");
    }

    #[test]
    fn generate_and_recluster_roundtrip() {
        let dir = std::env::temp_dir().join("disc_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("gen.csv");
        let snap = dir.join("snap.csv");
        let args: Vec<String> = [
            "generate",
            "--dataset",
            "blobs",
            "--n",
            "600",
            "--out",
            data.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).unwrap();
        let args: Vec<String> = [
            "cluster",
            "--input",
            data.to_str().unwrap(),
            "--dim",
            "2",
            "--eps",
            "1.0",
            "--tau",
            "4",
            "--window",
            "300",
            "--stride",
            "100",
            "--quiet",
            "--out",
            snap.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).unwrap();
        let text = std::fs::read_to_string(&snap).unwrap();
        assert!(text.starts_with("x0,x1,cluster"));
        assert_eq!(text.lines().count(), 301, "header + window points");
    }

    #[test]
    fn cluster_accepts_grid_index_backend() {
        let dir = std::env::temp_dir().join("disc_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("grid.csv");
        let args: Vec<String> = [
            "generate",
            "--dataset",
            "blobs",
            "--n",
            "600",
            "--out",
            data.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).unwrap();
        let mut args: Vec<String> = [
            "cluster",
            "--input",
            data.to_str().unwrap(),
            "--dim",
            "2",
            "--eps",
            "1.0",
            "--tau",
            "4",
            "--window",
            "300",
            "--stride",
            "100",
            "--quiet",
            "--index",
            "grid",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).unwrap();
        // And an unknown backend is rejected up front.
        let n = args.len();
        args[n - 1] = "quadtree".into();
        let err = run(&args).unwrap_err();
        assert!(err.contains("--index"), "got: {err}");
    }

    #[test]
    fn estimate_runs_on_generated_data() {
        let dir = std::env::temp_dir().join("disc_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("est.csv");
        let args: Vec<String> = [
            "generate",
            "--dataset",
            "maze",
            "--n",
            "800",
            "--out",
            data.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).unwrap();
        let args: Vec<String> = ["estimate", "--input", data.to_str().unwrap(), "--dim", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        run(&args).unwrap();
    }
}
