//! CLI command implementations.

use crate::Opts;
use disc_baselines::{Dbscan, ExtraN, IncDbscan, RhoDbscan, WindowClusterer};
use disc_core::{kdistance, Disc, DiscConfig, IndexBackend};
use disc_index::{CurveIndex, GridIndex};
use disc_telemetry::{
    chrome_trace_json, folded_stacks, JsonlProvenanceSink, JsonlSink, MemoryFootprint, PromServer,
    ProvenanceEvent, ProvenanceKind, ProvenanceSink, Recorder, Registry, SpanRecord,
};
use disc_window::{csv, datasets, Record, SlidingWindow};
use std::path::Path;
use std::sync::Arc;

/// A command that is generic over the point dimension.
pub trait DimCommand {
    /// Runs the command for one concrete dimension.
    fn run<const D: usize>(&self, opts: &Opts) -> Result<(), String>;
}

/// Resolves `--threads` to the worker count the engine will actually run
/// (0 = auto = the host's available parallelism), warning once — unless
/// `--quiet` — when the request oversubscribes the machine. Oversubscribing
/// is allowed (it is how the exactness tests exercise real interleavings on
/// small hosts), it just should not happen silently.
pub(crate) fn effective_workers(opts: &Opts) -> usize {
    let requested = opts.threads.unwrap_or_else(DiscConfig::default_threads);
    let avail = disc_par::available_parallelism();
    let effective = if requested == 0 { avail } else { requested };
    if effective > avail && !opts.quiet {
        eprintln!(
            "note: --threads {effective} oversubscribes the host \
             ({avail} available); output is identical, throughput may suffer"
        );
    }
    effective
}

pub(crate) fn load<const D: usize>(opts: &Opts) -> Result<Vec<Record<D>>, String> {
    let input = opts
        .input
        .as_ref()
        .ok_or("--input is required".to_string())?;
    let records = csv::read_records::<D>(input).map_err(|e| format!("{}: {e}", input.display()))?;
    if records.is_empty() {
        return Err("input stream is empty".to_string());
    }
    Ok(records)
}

/// `disc cluster` — stream a CSV through a sliding window.
pub struct ClusterCmd;

impl DimCommand for ClusterCmd {
    fn run<const D: usize>(&self, opts: &Opts) -> Result<(), String> {
        // Durability flags switch to the concrete-engine loop in `durable`:
        // checkpoints and WAL replay need `Disc`'s state export, which the
        // `dyn WindowClusterer` facade deliberately hides.
        if opts.checkpoint_dir.is_some() || opts.wal.is_some() {
            let backend = IndexBackend::parse(&opts.index).ok_or_else(|| {
                format!("unknown --index {:?} (rtree, grid, or curve)", opts.index)
            })?;
            return match backend {
                IndexBackend::RTree => crate::durable::run_durable::<D, disc_index::RTree<D>>(opts),
                IndexBackend::Grid => crate::durable::run_durable::<D, GridIndex<D>>(opts),
                IndexBackend::Curve => crate::durable::run_durable::<D, CurveIndex<D>>(opts),
            };
        }
        let records = load::<D>(opts)?;
        let eps = opts.eps.ok_or("--eps is required")?;
        let tau = opts.tau.ok_or("--tau is required")?;
        let window = opts.window.ok_or("--window is required")?;
        let stride = opts.stride.ok_or("--stride is required")?;
        if window > records.len() {
            return Err(format!(
                "window {window} exceeds the stream ({} points)",
                records.len()
            ));
        }

        let backend = IndexBackend::parse(&opts.index)
            .ok_or_else(|| format!("unknown --index {:?} (rtree, grid, or curve)", opts.index))?;
        let workers = effective_workers(opts);
        let mut method: Box<dyn WindowClusterer<D>> = match (opts.method.as_str(), backend) {
            ("disc", IndexBackend::RTree) => Box::new(Disc::new(
                DiscConfig::new(eps, tau)
                    .with_backend(backend)
                    .with_threads(workers),
            )),
            ("disc", IndexBackend::Grid) => Box::new(Disc::<D, GridIndex<D>>::with_index(
                DiscConfig::new(eps, tau)
                    .with_backend(backend)
                    .with_threads(workers),
            )),
            ("disc", IndexBackend::Curve) => Box::new(Disc::<D, CurveIndex<D>>::with_index(
                DiscConfig::new(eps, tau)
                    .with_backend(backend)
                    .with_threads(workers),
            )),
            ("incdbscan", _) => Box::new(IncDbscan::new(eps, tau)),
            ("extran", IndexBackend::RTree) => Box::new(ExtraN::new(eps, tau, window, stride)),
            ("extran", IndexBackend::Grid) => Box::new(ExtraN::<D, GridIndex<D>>::with_backend(
                eps, tau, window, stride,
            )),
            ("extran", IndexBackend::Curve) => Box::new(ExtraN::<D, CurveIndex<D>>::with_backend(
                eps, tau, window, stride,
            )),
            ("dbscan", IndexBackend::RTree) => Box::new(Dbscan::new(eps, tau)),
            ("dbscan", IndexBackend::Grid) => {
                Box::new(Dbscan::<D, GridIndex<D>>::with_backend(eps, tau))
            }
            ("dbscan", IndexBackend::Curve) => {
                Box::new(Dbscan::<D, CurveIndex<D>>::with_backend(eps, tau))
            }
            ("rho2", _) => Box::new(RhoDbscan::new(eps, tau, opts.rho)),
            (other, _) => return Err(format!("unknown --method {other:?}")),
        };

        // Telemetry: one shared registry feeds the JSONL sink, the scrape
        // endpoint, the provenance stream and the periodic summary alike.
        let mut health = crate::health::Health::<D>::from_opts(opts, eps, tau)?;
        let mut registry = match &opts.metrics_out {
            Some(path) => {
                let sink = JsonlSink::create(path)
                    .map_err(|e| format!("--metrics-out {}: {e}", path.display()))?;
                Registry::with_sink(Box::new(sink))
            }
            None => Registry::new(),
        };
        let prov_sink: Option<Box<dyn ProvenanceSink>> = match &opts.provenance_out {
            Some(path) => {
                let sink = JsonlProvenanceSink::create(path)
                    .map_err(|e| format!("--provenance-out {}: {e}", path.display()))?;
                Some(Box::new(sink))
            }
            None => None,
        };
        // The health driver tees the provenance stream through its
        // lifecycle fold before (optionally) reaching the JSONL export.
        match (&health, prov_sink) {
            (Some(h), inner) => registry = registry.with_provenance(h.provenance_tee(inner)),
            (None, Some(sink)) => registry = registry.with_provenance(sink),
            (None, None) => {}
        }
        let registry: Arc<Registry> = Arc::new(registry);
        let prom = match &opts.prom_addr {
            Some(addr) => {
                let server = PromServer::spawn(addr, registry.clone())
                    .map_err(|e| format!("--prom-addr {addr}: {e}"))?;
                if !opts.quiet {
                    eprintln!(
                        "serving Prometheus metrics on http://{}/metrics",
                        server.local_addr()
                    );
                }
                Some(server)
            }
            None => None,
        };
        method.set_recorder(registry.clone());
        let tracing = opts.trace_out.is_some() || opts.folded_out.is_some();
        if tracing {
            method.enable_tracing();
        }
        let mut spans: Vec<SpanRecord> = Vec::new();
        // Drained per slide (ids stay unique across drains) so the span
        // buffer never grows beyond one slide between collections.
        let drain = |method: &mut Box<dyn WindowClusterer<D>>, spans: &mut Vec<SpanRecord>| {
            if tracing {
                spans.extend(method.drain_spans());
            }
        };

        let mut w = SlidingWindow::new(records, window, stride);
        // The raw window buffer is CLI state, not engine state: its gauge
        // row is published here, next to the engine's own components.
        let publish_window = |w: &SlidingWindow<D>| {
            for (component, bytes) in w.footprint().flatten() {
                registry.gauge_set_labeled("disc_mem_bytes", "component", &component, bytes as f64);
            }
        };
        let start = std::time::Instant::now();
        let fill = w.fill();
        method.apply(&fill);
        publish_window(&w);
        drain(&mut method, &mut spans);
        if let Some(h) = &mut health {
            h.observe(1, &method.assignments(), &w, &fill, &registry)?;
        }
        let mut slides = 0u64;
        if opts.stats_every == 1 {
            stats_summary(&registry, 1, workers, health.as_ref().map(|h| h.summary()));
        }
        while let Some(batch) = w.advance() {
            method.apply(&batch);
            publish_window(&w);
            drain(&mut method, &mut spans);
            slides += 1;
            if let Some(h) = &mut health {
                h.observe(slides + 1, &method.assignments(), &w, &batch, &registry)?;
            }
            // The fill counts as slide 1, so the human cadence is 1-based.
            if opts.stats_every > 0 && (slides + 1).is_multiple_of(opts.stats_every) {
                stats_summary(
                    &registry,
                    slides + 1,
                    workers,
                    health.as_ref().map(|h| h.summary()),
                );
            }
            if !opts.quiet {
                let clusters: std::collections::HashSet<i64> = method
                    .assignments()
                    .into_iter()
                    .map(|(_, l)| l)
                    .filter(|&l| l >= 0)
                    .collect();
                eprintln!("slide {slides}: {} clusters", clusters.len());
            }
        }
        let elapsed = start.elapsed();
        registry.flush();
        if let Some(server) = &prom {
            server.shutdown();
        }

        let assignments = method.assignments();
        let clusters: std::collections::HashSet<i64> = assignments
            .iter()
            .map(|(_, l)| *l)
            .filter(|&l| l >= 0)
            .collect();
        let noise = assignments.iter().filter(|(_, l)| *l < 0).count();
        println!(
            "{}: {} slides, {} window points, {} clusters, {} noise, {:?} total, {} range searches",
            method.name(),
            slides,
            assignments.len(),
            clusters.len(),
            noise,
            elapsed,
            method.range_searches()
        );

        if let Some(out) = &opts.out {
            let pos: disc_geom::FxHashMap<disc_geom::PointId, disc_geom::Point<D>> =
                w.current().collect();
            let rows: Vec<(disc_geom::Point<D>, i64)> =
                assignments.iter().map(|(id, l)| (pos[id], *l)).collect();
            csv::write_snapshot(out, &rows).map_err(|e| format!("{}: {e}", out.display()))?;
            println!("wrote {}", out.display());
        }
        if let Some(path) = &opts.metrics_out {
            println!("wrote per-slide metrics to {}", path.display());
        }
        if let Some(path) = &opts.trace_out {
            std::fs::write(path, chrome_trace_json(&spans))
                .map_err(|e| format!("--trace-out {}: {e}", path.display()))?;
            println!(
                "wrote {} spans to {} (load in chrome://tracing)",
                spans.len(),
                path.display()
            );
        }
        if let Some(path) = &opts.folded_out {
            std::fs::write(path, folded_stacks(&spans))
                .map_err(|e| format!("--folded-out {}: {e}", path.display()))?;
            println!("wrote folded stacks to {}", path.display());
        }
        if let Some(path) = &opts.provenance_out {
            println!(
                "wrote {} provenance events to {}",
                registry.provenance_emitted(),
                path.display()
            );
        }
        // Last, so a fatal alert still leaves every output (snapshot,
        // traces, JSONL streams) complete on disk for CI to inspect.
        if let Some(h) = &mut health {
            h.finish(&registry)?;
        }
        Ok(())
    }
}

/// `disc explain` — reconstruct the causal narrative of a run (or one
/// slide of it) from a `--provenance-out` JSONL stream.
pub fn explain(opts: &Opts) -> Result<(), String> {
    let path = opts
        .trace
        .as_ref()
        .ok_or("--trace is required".to_string())?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut events: Vec<ProvenanceEvent> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let ev = ProvenanceEvent::from_jsonl(line)
            .map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))?;
        events.push(ev);
    }
    if events.is_empty() {
        return Err(format!("{}: no provenance events", path.display()));
    }
    match opts.slide {
        Some(slide) => {
            let picked: Vec<&ProvenanceEvent> =
                events.iter().filter(|e| e.slide == slide).collect();
            if picked.is_empty() {
                let last = events.iter().map(|e| e.slide).max().unwrap_or(0);
                return Err(format!(
                    "slide {slide} not in {} (events cover slides 1..={last})",
                    path.display()
                ));
            }
            println!("slide {slide}: {} structural events", picked.len());
            for ev in picked {
                println!("  {}", narrate(&ev.kind));
            }
        }
        None => {
            let last = events.iter().map(|e| e.slide).max().unwrap();
            for slide in 1..=last {
                let n = events.iter().filter(|e| e.slide == slide).count();
                if n == 0 {
                    continue;
                }
                let c = |pred: &dyn Fn(&ProvenanceKind) -> bool| {
                    events
                        .iter()
                        .filter(|e| e.slide == slide && pred(&e.kind))
                        .count()
                };
                println!(
                    "slide {slide}: {n} events ({} ex-cores, {} neo-cores, \
                     {} splits, {} merges, {} emerged, {} died, {} adoptions)",
                    c(&|k| matches!(k, ProvenanceKind::ExCoreDetected { .. })),
                    c(&|k| matches!(k, ProvenanceKind::NeoCoreDetected { .. })),
                    c(&|k| matches!(k, ProvenanceKind::ClusterSplit { .. })),
                    c(&|k| matches!(k, ProvenanceKind::ClusterMerge { .. })),
                    c(&|k| matches!(k, ProvenanceKind::ClusterEmerged { .. })),
                    c(&|k| matches!(k, ProvenanceKind::ClusterDied { .. })),
                    c(&|k| matches!(k, ProvenanceKind::Adoption { .. })),
                );
            }
            println!("(re-run with --slide N for the per-event narrative)");
        }
    }
    Ok(())
}

/// One narrative line per event, in the paper's vocabulary.
fn narrate(kind: &ProvenanceKind) -> String {
    match *kind {
        ProvenanceKind::ExCoreDetected { id } => {
            format!("point {id} lost core status (ex-core, Def. 1)")
        }
        ProvenanceKind::NeoCoreDetected { id } => {
            format!("point {id} gained core status (neo-core, Def. 2)")
        }
        ProvenanceKind::RetroClassFormed { rep, size } => format!(
            "retro-reachable class of {size} ex-core(s) formed around point {rep} \
             (one connectivity check covers them all, Thm. 1)"
        ),
        ProvenanceKind::MsBfsStarted { rep, starters } => {
            format!("MS-BFS launched over class of point {rep} with {starters} starter(s)")
        }
        ProvenanceKind::MsBfsTerminated {
            rep,
            reason,
            rounds,
        } => format!(
            "MS-BFS over class of point {rep} stopped after {rounds} round(s): {}",
            match reason {
                disc_telemetry::MsBfsReason::AllMet => "all starters met — still one cluster",
                disc_telemetry::MsBfsReason::Exhausted =>
                    "a traversal exhausted its component — the cluster is disconnected",
            }
        ),
        ProvenanceKind::ClusterSplit { old, parts, rep } => format!(
            "cluster {old} split into {parts} parts; the component of point {rep} \
             kept the label"
        ),
        ProvenanceKind::ClusterMerge {
            winner,
            merged,
            rep,
        } => format!(
            "{merged} clusters merged into cluster {winner}, bonded by the \
             neo-core class of point {rep}"
        ),
        ProvenanceKind::ClusterEmerged { cluster, rep, size } => {
            format!("cluster {cluster} emerged from {size} neo-core(s) around point {rep}")
        }
        ProvenanceKind::ClusterDied { rep, size } => format!(
            "the region of point {rep} dissipated ({size} ex-core(s), no bonding \
             core survived)"
        ),
        ProvenanceKind::Adoption { border, core } => {
            format!("border point {border} was adopted by core {core}")
        }
    }
}

/// One `--stats-every` summary line, computed from the cumulative registry.
///
/// The two ratios are the paper's headline efficiency arguments: Theorem 1
/// says CLUSTER runs one connectivity check per retro-reachable *class*
/// rather than per ex-core (`ex_classes / ex_cores`, lower is better), and
/// epoch-based probing (Alg. 4) skips index subtrees whole (`pruned /
/// (visited + pruned)`, higher is better).
pub(crate) fn stats_summary(
    registry: &Registry,
    slide: u64,
    workers: usize,
    health: Option<String>,
) {
    let lat = registry
        .histogram_snapshot("disc_slide_seconds")
        .unwrap_or_default();
    let ex_cores = registry.counter_value("disc_ex_cores_total");
    let ex_classes = registry.counter_value("disc_ex_classes_total");
    let pruned = registry.counter_value("disc_index_subtrees_pruned_total");
    let visited = registry.counter_value("disc_index_nodes_visited_total");
    // Root component gauges (paths without a '/') partition the accounted
    // state, so their sum is the total without double-counting subtrees.
    let accounted: u64 = registry
        .labeled_gauge_samples("disc_mem_bytes")
        .iter()
        .filter(|((_, component), _)| !component.contains('/'))
        .map(|(_, bytes)| *bytes as u64)
        .sum();
    let mem = if accounted == 0 {
        "n/a".to_string()
    } else {
        disc_telemetry::fmt_bytes(accounted)
    };
    let rss = match registry.gauge_value("disc_rss_bytes") {
        Some(b) => disc_telemetry::fmt_bytes(b as u64),
        None => "n/a".to_string(),
    };
    let health = match health {
        Some(fragment) => format!(" | {fragment}"),
        None => String::new(),
    };
    eprintln!(
        "stats @ slide {slide}: workers {workers} | \
         latency p50 {:?} p99 {:?} max {:?} | \
         range searches {} (epoch probes {}) | \
         theorem-1 savings {ex_classes}/{ex_cores} = {} | epoch-prune ratio {} | \
         mem {mem} (rss {rss}){health}",
        std::time::Duration::from_nanos(lat.p50),
        std::time::Duration::from_nanos(lat.p99),
        std::time::Duration::from_nanos(lat.max),
        registry.counter_value("disc_index_range_searches_total"),
        registry.counter_value("disc_index_epoch_probes_total"),
        ratio(ex_classes, ex_cores),
        ratio(pruned, visited + pruned),
    );
}

/// `num / den` to three decimals, or `n/a` before any work has happened.
fn ratio(num: u64, den: u64) -> String {
    if den == 0 {
        "n/a".to_string()
    } else {
        format!("{:.3}", num as f64 / den as f64)
    }
}

/// `disc estimate` — suggest (ε, τ) via the K-distance method.
pub struct EstimateCmd;

impl DimCommand for EstimateCmd {
    fn run<const D: usize>(&self, opts: &Opts) -> Result<(), String> {
        let records = load::<D>(opts)?;
        let est = kdistance::estimate(&records, opts.sample);
        println!(
            "suggested parameters (K-distance, k = {}): --eps {:.6} --tau {}",
            est.k, est.eps, est.tau
        );
        Ok(())
    }
}

/// `disc generate` — write a synthetic stream to CSV.
pub fn generate(opts: &Opts) -> Result<(), String> {
    let dataset = opts
        .dataset
        .as_ref()
        .ok_or("--dataset is required".to_string())?;
    let out = opts.out.as_ref().ok_or("--out is required".to_string())?;
    let n = opts.n;
    let seed = opts.seed;
    match dataset.as_str() {
        "maze" => write(out, &datasets::maze(n, 60, seed)),
        "dtg" => write(out, &datasets::dtg_like(n, seed)),
        "geolife" => write(out, &datasets::geolife_like(n, seed)),
        "covid" => write(out, &datasets::covid_like(n, seed)),
        "iris" => write(out, &datasets::iris_like(n, seed)),
        "netflow" => write(out, &datasets::netflow_like(n, seed)),
        "blobs" => write(out, &datasets::gaussian_blobs::<2>(n, 4, 0.5, seed)),
        "split_merge" => write(out, &datasets::split_merge(n, seed)),
        other => Err(format!("unknown --dataset {other:?}")),
    }
}

fn write<const D: usize>(out: &Path, records: &[Record<D>]) -> Result<(), String> {
    csv::write_records(out, records).map_err(|e| format!("{}: {e}", out.display()))?;
    println!("wrote {} records to {}", records.len(), out.display());
    Ok(())
}
