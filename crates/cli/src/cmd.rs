//! CLI command implementations.

use crate::Opts;
use disc_baselines::{Dbscan, ExtraN, IncDbscan, RhoDbscan, WindowClusterer};
use disc_core::{kdistance, Disc, DiscConfig, IndexBackend};
use disc_index::GridIndex;
use disc_telemetry::{JsonlSink, PromServer, Registry};
use disc_window::{csv, datasets, Record, SlidingWindow};
use std::path::Path;
use std::sync::Arc;

/// A command that is generic over the point dimension.
pub trait DimCommand {
    /// Runs the command for one concrete dimension.
    fn run<const D: usize>(&self, opts: &Opts) -> Result<(), String>;
}

fn load<const D: usize>(opts: &Opts) -> Result<Vec<Record<D>>, String> {
    let input = opts
        .input
        .as_ref()
        .ok_or("--input is required".to_string())?;
    let records = csv::read_records::<D>(input).map_err(|e| format!("{}: {e}", input.display()))?;
    if records.is_empty() {
        return Err("input stream is empty".to_string());
    }
    Ok(records)
}

/// `disc cluster` — stream a CSV through a sliding window.
pub struct ClusterCmd;

impl DimCommand for ClusterCmd {
    fn run<const D: usize>(&self, opts: &Opts) -> Result<(), String> {
        let records = load::<D>(opts)?;
        let eps = opts.eps.ok_or("--eps is required")?;
        let tau = opts.tau.ok_or("--tau is required")?;
        let window = opts.window.ok_or("--window is required")?;
        let stride = opts.stride.ok_or("--stride is required")?;
        if window > records.len() {
            return Err(format!(
                "window {window} exceeds the stream ({} points)",
                records.len()
            ));
        }

        let backend = IndexBackend::parse(&opts.index)
            .ok_or_else(|| format!("unknown --index {:?} (rtree or grid)", opts.index))?;
        let mut method: Box<dyn WindowClusterer<D>> = match (opts.method.as_str(), backend) {
            ("disc", IndexBackend::RTree) => {
                Box::new(Disc::new(DiscConfig::new(eps, tau).with_backend(backend)))
            }
            ("disc", IndexBackend::Grid) => Box::new(Disc::<D, GridIndex<D>>::with_index(
                DiscConfig::new(eps, tau).with_backend(backend),
            )),
            ("incdbscan", _) => Box::new(IncDbscan::new(eps, tau)),
            ("extran", IndexBackend::RTree) => Box::new(ExtraN::new(eps, tau, window, stride)),
            ("extran", IndexBackend::Grid) => Box::new(ExtraN::<D, GridIndex<D>>::with_backend(
                eps, tau, window, stride,
            )),
            ("dbscan", IndexBackend::RTree) => Box::new(Dbscan::new(eps, tau)),
            ("dbscan", IndexBackend::Grid) => {
                Box::new(Dbscan::<D, GridIndex<D>>::with_backend(eps, tau))
            }
            ("rho2", _) => Box::new(RhoDbscan::new(eps, tau, opts.rho)),
            (other, _) => return Err(format!("unknown --method {other:?}")),
        };

        // Telemetry: one shared registry feeds the JSONL sink, the scrape
        // endpoint and the periodic summary alike.
        let registry: Arc<Registry> = match &opts.metrics_out {
            Some(path) => {
                let sink = JsonlSink::create(path)
                    .map_err(|e| format!("--metrics-out {}: {e}", path.display()))?;
                Arc::new(Registry::with_sink(Box::new(sink)))
            }
            None => Arc::new(Registry::new()),
        };
        let prom = match &opts.prom_addr {
            Some(addr) => {
                let server = PromServer::spawn(addr, registry.clone())
                    .map_err(|e| format!("--prom-addr {addr}: {e}"))?;
                if !opts.quiet {
                    eprintln!(
                        "serving Prometheus metrics on http://{}/metrics",
                        server.local_addr()
                    );
                }
                Some(server)
            }
            None => None,
        };
        method.set_recorder(registry.clone());

        let mut w = SlidingWindow::new(records, window, stride);
        let start = std::time::Instant::now();
        method.apply(&w.fill());
        let mut slides = 0u64;
        if opts.stats_every == 1 {
            stats_summary(&registry, 1);
        }
        while let Some(batch) = w.advance() {
            method.apply(&batch);
            slides += 1;
            // The fill counts as slide 1, so the human cadence is 1-based.
            if opts.stats_every > 0 && (slides + 1).is_multiple_of(opts.stats_every) {
                stats_summary(&registry, slides + 1);
            }
            if !opts.quiet {
                let clusters: std::collections::HashSet<i64> = method
                    .assignments()
                    .into_iter()
                    .map(|(_, l)| l)
                    .filter(|&l| l >= 0)
                    .collect();
                eprintln!("slide {slides}: {} clusters", clusters.len());
            }
        }
        let elapsed = start.elapsed();
        registry.flush();
        if let Some(server) = &prom {
            server.shutdown();
        }

        let assignments = method.assignments();
        let clusters: std::collections::HashSet<i64> = assignments
            .iter()
            .map(|(_, l)| *l)
            .filter(|&l| l >= 0)
            .collect();
        let noise = assignments.iter().filter(|(_, l)| *l < 0).count();
        println!(
            "{}: {} slides, {} window points, {} clusters, {} noise, {:?} total, {} range searches",
            method.name(),
            slides,
            assignments.len(),
            clusters.len(),
            noise,
            elapsed,
            method.range_searches()
        );

        if let Some(out) = &opts.out {
            let pos: disc_geom::FxHashMap<disc_geom::PointId, disc_geom::Point<D>> =
                w.current().collect();
            let rows: Vec<(disc_geom::Point<D>, i64)> =
                assignments.iter().map(|(id, l)| (pos[id], *l)).collect();
            csv::write_snapshot(out, &rows).map_err(|e| format!("{}: {e}", out.display()))?;
            println!("wrote {}", out.display());
        }
        if let Some(path) = &opts.metrics_out {
            println!("wrote per-slide metrics to {}", path.display());
        }
        Ok(())
    }
}

/// One `--stats-every` summary line, computed from the cumulative registry.
///
/// The two ratios are the paper's headline efficiency arguments: Theorem 1
/// says CLUSTER runs one connectivity check per retro-reachable *class*
/// rather than per ex-core (`ex_classes / ex_cores`, lower is better), and
/// epoch-based probing (Alg. 4) skips index subtrees whole (`pruned /
/// (visited + pruned)`, higher is better).
fn stats_summary(registry: &Registry, slide: u64) {
    let lat = registry
        .histogram_snapshot("disc_slide_seconds")
        .unwrap_or_default();
    let ex_cores = registry.counter_value("disc_ex_cores_total");
    let ex_classes = registry.counter_value("disc_ex_classes_total");
    let pruned = registry.counter_value("disc_index_subtrees_pruned_total");
    let visited = registry.counter_value("disc_index_nodes_visited_total");
    eprintln!(
        "stats @ slide {slide}: latency p50 {:?} p99 {:?} max {:?} | \
         range searches {} (epoch probes {}) | \
         theorem-1 savings {ex_classes}/{ex_cores} = {} | epoch-prune ratio {}",
        std::time::Duration::from_nanos(lat.p50),
        std::time::Duration::from_nanos(lat.p99),
        std::time::Duration::from_nanos(lat.max),
        registry.counter_value("disc_index_range_searches_total"),
        registry.counter_value("disc_index_epoch_probes_total"),
        ratio(ex_classes, ex_cores),
        ratio(pruned, visited + pruned),
    );
}

/// `num / den` to three decimals, or `n/a` before any work has happened.
fn ratio(num: u64, den: u64) -> String {
    if den == 0 {
        "n/a".to_string()
    } else {
        format!("{:.3}", num as f64 / den as f64)
    }
}

/// `disc estimate` — suggest (ε, τ) via the K-distance method.
pub struct EstimateCmd;

impl DimCommand for EstimateCmd {
    fn run<const D: usize>(&self, opts: &Opts) -> Result<(), String> {
        let records = load::<D>(opts)?;
        let est = kdistance::estimate(&records, opts.sample);
        println!(
            "suggested parameters (K-distance, k = {}): --eps {:.6} --tau {}",
            est.k, est.eps, est.tau
        );
        Ok(())
    }
}

/// `disc generate` — write a synthetic stream to CSV.
pub fn generate(opts: &Opts) -> Result<(), String> {
    let dataset = opts
        .dataset
        .as_ref()
        .ok_or("--dataset is required".to_string())?;
    let out = opts.out.as_ref().ok_or("--out is required".to_string())?;
    let n = opts.n;
    let seed = opts.seed;
    match dataset.as_str() {
        "maze" => write(out, &datasets::maze(n, 60, seed)),
        "dtg" => write(out, &datasets::dtg_like(n, seed)),
        "geolife" => write(out, &datasets::geolife_like(n, seed)),
        "covid" => write(out, &datasets::covid_like(n, seed)),
        "iris" => write(out, &datasets::iris_like(n, seed)),
        "netflow" => write(out, &datasets::netflow_like(n, seed)),
        "blobs" => write(out, &datasets::gaussian_blobs::<2>(n, 4, 0.5, seed)),
        other => Err(format!("unknown --dataset {other:?}")),
    }
}

fn write<const D: usize>(out: &Path, records: &[Record<D>]) -> Result<(), String> {
    csv::write_records(out, records).map_err(|e| format!("{}: {e}", out.display()))?;
    println!("wrote {} records to {}", records.len(), out.display());
    Ok(())
}
