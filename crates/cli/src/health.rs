//! The stream-health driver behind `disc run --audit-every/--alerts/
//! --health-out`.
//!
//! One [`Health`] value rides the slide loop (plain and durable alike) and
//! composes the pieces the workspace already has:
//!
//! * per-slide signals from `disc-metrics::stream` (label churn, noise
//!   fraction, cluster census), published as gauges;
//! * the periodic quality audit — a from-scratch DBSCAN oracle pass over a
//!   deterministic sample of the window, scored with `ari`/`nmi`/`purity`
//!   against the engine's own labels (`disc_quality_*` gauges);
//! * drift detection via `disc-telemetry`'s EWMA + Page–Hinkley monitor
//!   over mean ε-neighbor count, noise fraction and arrival geometry
//!   (`disc_drift_score`, `disc_drift_changes_total`);
//! * cluster lifecycle analytics fed by the provenance stream (through a
//!   tee sink) and the per-slide census (`disc_cluster_lifetime_slides`,
//!   `disc_cluster_size_at_death` histograms);
//! * the declarative alert engine (`--alerts rules.toml`), with a JSONL
//!   alert sink (`--alerts-out`), `disc_alert_active{rule=...}` gauges and
//!   the `--alerts-fatal` CI exit mode;
//! * one `HealthEvent` JSONL line per slide (`--health-out`) for
//!   `disc top --health`.

use crate::Opts;
use disc_baselines::Dbscan;
use disc_geom::{FxHashMap, Point, PointId};
use disc_telemetry::{
    health::ppm, AlertEngine, AlertEvent, DriftMonitor, HealthEvent, LifecycleAnalytics,
    ProvenanceEvent, ProvenanceSink, Recorder, Registry,
};
use disc_window::{SlideBatch, SlidingWindow};
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Window points sampled per quality audit (the oracle pass is O(n²) in
/// the sample via the rebuilt index; 4096 keeps it sub-second).
const AUDIT_SAMPLE: usize = 4096;
/// Window points sampled per neighbor-count probe.
const NEIGHBOR_WINDOW_SAMPLE: usize = 256;
/// Incoming points probed for the mean ε-neighbor signal.
const NEIGHBOR_PROBES: usize = 32;
/// Calibration slides before the drift detectors may fire.
const DRIFT_WARMUP: u64 = 16;

/// Every `k`-th element of `items`, `k` chosen so at most `cap` survive.
/// Deterministic (no RNG): the sample is a fixed stride over the input
/// order, so re-running the auditor on the same slide reproduces it.
fn stride_sample<T: Copy>(items: &[T], cap: usize) -> Vec<T> {
    if items.len() <= cap {
        return items.to_vec();
    }
    let step = items.len().div_ceil(cap);
    items.iter().copied().step_by(step).collect()
}

struct JsonlWriter {
    out: std::io::BufWriter<std::fs::File>,
    path: std::path::PathBuf,
}

impl JsonlWriter {
    fn create(path: &Path) -> Result<Self, String> {
        let file = std::fs::File::create(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Ok(JsonlWriter {
            out: std::io::BufWriter::new(file),
            path: path.to_path_buf(),
        })
    }

    fn line(&mut self, line: &str) -> Result<(), String> {
        writeln!(self.out, "{line}").map_err(|e| format!("{}: {e}", self.path.display()))
    }

    fn flush(&mut self) -> Result<(), String> {
        self.out
            .flush()
            .map_err(|e| format!("{}: {e}", self.path.display()))
    }
}

/// A provenance sink that feeds the lifecycle fold, forwarding to an
/// optional inner sink (`--provenance-out`), so health analytics and the
/// JSONL export share one event stream.
struct LifecycleTee {
    lifecycle: Arc<Mutex<LifecycleAnalytics>>,
    inner: Option<Box<dyn ProvenanceSink>>,
}

impl ProvenanceSink for LifecycleTee {
    fn emit(&self, event: &ProvenanceEvent) {
        self.lifecycle
            .lock()
            .expect("lifecycle poisoned")
            .observe_provenance(event);
        if let Some(inner) = &self.inner {
            inner.emit(event);
        }
    }

    fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.flush();
        }
    }
}

/// The per-run stream-health state machine. Constructed by
/// [`Health::from_opts`] when any health flag is present; observed once
/// per slide; finished after the stream drains.
pub struct Health<const D: usize> {
    eps: f64,
    tau: usize,
    audit_every: u64,
    alerts_fatal: bool,
    quiet: bool,
    engine: Option<AlertEngine>,
    alerts_out: Option<JsonlWriter>,
    health_out: Option<JsonlWriter>,
    monitor: DriftMonitor,
    lifecycle: Arc<Mutex<LifecycleAnalytics>>,
    prev: Vec<(PointId, i64)>,
    prev_centroid: Option<[f64; D]>,
    prev_ex_cores: u64,
    /// Latest audit result, sticky between audits for the summary line.
    quality: Option<(f64, f64, f64)>,
    /// Latest cheap signals, for the `--stats-every` fragment.
    last: (f64, f64, f64), // churn, noise, drift score
}

impl<const D: usize> Health<D> {
    /// Builds the driver when any health flag is on; `None` otherwise.
    /// `eps`/`tau` parameterise the audit oracle (the engine's own
    /// thresholds — on a durable resume they come from the checkpoint).
    pub fn from_opts(opts: &Opts, eps: f64, tau: usize) -> Result<Option<Self>, String> {
        let wants_alerts = opts.alerts.is_some();
        if !wants_alerts && (opts.alerts_out.is_some() || opts.alerts_fatal) {
            return Err("--alerts-out/--alerts-fatal need --alerts RULES".to_string());
        }
        let active = opts.audit_every > 0 || wants_alerts || opts.health_out.is_some();
        if !active {
            return Ok(None);
        }
        let engine = match &opts.alerts {
            Some(path) => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("--alerts {}: {e}", path.display()))?;
                let rules = disc_telemetry::parse_rules(&text)
                    .map_err(|e| format!("--alerts {}: {e}", path.display()))?;
                Some(AlertEngine::new(rules))
            }
            None => None,
        };
        let alerts_out = opts
            .alerts_out
            .as_ref()
            .map(|p| JsonlWriter::create(p))
            .transpose()?;
        let health_out = opts
            .health_out
            .as_ref()
            .map(|p| JsonlWriter::create(p))
            .transpose()?;
        Ok(Some(Health {
            eps,
            tau,
            audit_every: opts.audit_every,
            alerts_fatal: opts.alerts_fatal,
            quiet: opts.quiet,
            engine,
            alerts_out,
            health_out,
            monitor: DriftMonitor::standard(DRIFT_WARMUP),
            lifecycle: Arc::new(Mutex::new(LifecycleAnalytics::new())),
            prev: Vec::new(),
            prev_centroid: None,
            prev_ex_cores: 0,
            quality: None,
            last: (0.0, 0.0, 0.0),
        }))
    }

    /// A provenance sink feeding this driver's lifecycle fold, forwarding
    /// to `inner` (the `--provenance-out` JSONL sink) when given. Attach
    /// via `Registry::with_provenance`.
    pub fn provenance_tee(
        &self,
        inner: Option<Box<dyn ProvenanceSink>>,
    ) -> Box<dyn ProvenanceSink> {
        Box::new(LifecycleTee {
            lifecycle: self.lifecycle.clone(),
            inner,
        })
    }

    /// Folds one committed slide in: cheap signals, lifecycle census,
    /// drift, the periodic audit, alert evaluation, and the `--health-out`
    /// line. `slide` is 1-based with the initial fill as slide 1.
    pub fn observe(
        &mut self,
        slide: u64,
        assignments: &[(PointId, i64)],
        w: &SlidingWindow<D>,
        batch: &SlideBatch<D>,
        registry: &Registry,
    ) -> Result<(), String> {
        // --- Cheap per-slide signals ----------------------------------
        let churn = disc_metrics::label_churn(&self.prev, assignments);
        let noise = disc_metrics::noise_fraction(assignments);
        let census = disc_metrics::cluster_sizes(assignments);
        registry.gauge_set("disc_label_churn", churn);
        registry.gauge_set("disc_noise_fraction", noise);
        registry.gauge_set("disc_cluster_count", census.len() as f64);
        // Ex-core ratio: this slide's demotions over the current core
        // population (engines publish both; baselines publish neither, in
        // which case the gauge reads 0 over the non-noise count).
        let ex_cores = registry.counter_value("disc_ex_cores_total");
        let ex_delta = ex_cores.saturating_sub(self.prev_ex_cores);
        self.prev_ex_cores = ex_cores;
        let cores = registry
            .gauge_value("disc_core_points")
            .unwrap_or_else(|| assignments.iter().filter(|&&(_, l)| l >= 0).count() as f64);
        let excore_ratio = ex_delta as f64 / cores.max(1.0);
        registry.gauge_set("disc_excore_ratio", excore_ratio);

        // --- Lifecycle census -----------------------------------------
        let deaths = self
            .lifecycle
            .lock()
            .expect("lifecycle poisoned")
            .observe_clusters(slide, &census);
        for death in deaths {
            registry.record_nanos("disc_cluster_lifetime_slides", death.lifetime);
            registry.record_nanos("disc_cluster_size_at_death", death.size);
        }

        // --- Drift signals --------------------------------------------
        let neighbor_mean = self.neighbor_mean(w, batch);
        let arrival_shift = self.arrival_shift(batch);
        let verdict = self.monitor.observe(&[
            ("neighbor_mean", neighbor_mean),
            ("noise_fraction", noise),
            ("arrival_shift", arrival_shift),
        ]);
        registry.gauge_set("disc_drift_score", verdict.score);
        if let Some(signal) = verdict.changed {
            registry.counter_add("disc_drift_changes_total", 1);
            if !self.quiet {
                eprintln!(
                    "drift @ slide {slide}: change-point in {signal} (score {:.2}σ)",
                    verdict.score
                );
            }
        }

        // --- Periodic quality audit -----------------------------------
        let audited = self.audit_every > 0 && slide.is_multiple_of(self.audit_every);
        if audited {
            self.audit(assignments, w, registry);
        }

        // --- Alert evaluation -----------------------------------------
        let mut active = 0u64;
        if let Some(engine) = &mut self.engine {
            let lookup = |name: &str| {
                registry.gauge_value(name).or_else(|| {
                    registry
                        .counter_names()
                        .contains(&name)
                        .then(|| registry.counter_value(name) as f64)
                })
            };
            let events = engine.evaluate(slide, &lookup);
            engine.publish(registry);
            active = engine.active().len() as u64;
            for ev in &events {
                debug_assert!(AlertEvent::validate_jsonl(&ev.to_jsonl()).is_ok());
                if let Some(out) = &mut self.alerts_out {
                    out.line(&ev.to_jsonl())?;
                }
                if !self.quiet {
                    eprintln!(
                        "alert @ slide {slide}: {} {} ({} {} {} {}, value {:.4})",
                        ev.rule, ev.state, ev.metric, ev.op, ev.threshold, ev.severity, ev.value
                    );
                }
            }
        }

        // --- Health event ---------------------------------------------
        self.last = (churn, noise, verdict.score);
        if let Some(out) = &mut self.health_out {
            let (ari, nmi, purity) = self.quality.unwrap_or((0.0, 0.0, 0.0));
            let ev = HealthEvent {
                slide,
                clusters: census.len() as u64,
                churn_ppm: ppm(churn),
                noise_ppm: ppm(noise),
                excore_ratio_ppm: ppm(excore_ratio),
                drift_ppm: (verdict.score * 1e6).min(1e9) as u64,
                drift_changed: verdict.changed.is_some() as u64,
                audited: audited as u64,
                ari_ppm: ppm(ari),
                nmi_ppm: ppm(nmi),
                purity_ppm: ppm(purity),
                alerts_active: active,
            };
            out.line(&ev.to_jsonl())?;
        }
        self.prev = assignments.to_vec();
        Ok(())
    }

    /// Mean ε-neighbor count around this slide's arrivals, estimated from
    /// a deterministic sample: up to [`NEIGHBOR_PROBES`] incoming points
    /// probed against up to [`NEIGHBOR_WINDOW_SAMPLE`] window points, the
    /// counts scaled back up by the window sampling ratio.
    fn neighbor_mean(&self, w: &SlidingWindow<D>, batch: &SlideBatch<D>) -> f64 {
        let probes = stride_sample(&batch.incoming, NEIGHBOR_PROBES);
        if probes.is_empty() {
            return 0.0;
        }
        let window: Vec<(PointId, Point<D>)> = w.current().collect();
        let sample = stride_sample(&window, NEIGHBOR_WINDOW_SAMPLE);
        if sample.is_empty() {
            return 0.0;
        }
        let scale = window.len() as f64 / sample.len() as f64;
        let eps = self.eps;
        let total: usize = probes
            .iter()
            .map(|(pid, p)| {
                sample
                    .iter()
                    .filter(|(qid, q)| qid != pid && p.dist(q) <= eps)
                    .count()
            })
            .sum();
        scale * total as f64 / probes.len() as f64
    }

    /// Displacement of the arrival centroid from the previous slide's — a
    /// scale-free "where is the data coming from" signal.
    fn arrival_shift(&mut self, batch: &SlideBatch<D>) -> f64 {
        if batch.incoming.is_empty() {
            return 0.0;
        }
        let mut centroid = [0.0f64; D];
        for (_, p) in &batch.incoming {
            for (c, x) in centroid.iter_mut().zip(p.coords().iter()) {
                *c += x;
            }
        }
        for c in &mut centroid {
            *c /= batch.incoming.len() as f64;
        }
        let shift = match self.prev_centroid {
            Some(prev) => centroid
                .iter()
                .zip(prev.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt(),
            None => 0.0,
        };
        self.prev_centroid = Some(centroid);
        shift
    }

    /// The from-scratch oracle pass: DBSCAN over a deterministic window
    /// sample, scored against the engine's labels on the same sample.
    fn audit(&mut self, assignments: &[(PointId, i64)], w: &SlidingWindow<D>, registry: &Registry) {
        let mut window: Vec<(PointId, Point<D>)> = w.current().collect();
        window.sort_unstable_by_key(|(id, _)| *id);
        let sample = stride_sample(&window, AUDIT_SAMPLE);
        if sample.is_empty() {
            return;
        }
        let (oracle, _) = Dbscan::<D>::run(&sample, self.eps, self.tau);
        let engine_of: FxHashMap<PointId, i64> = assignments.iter().copied().collect();
        let (mut truth, mut pred) = (Vec::new(), Vec::new());
        for (id, _) in &sample {
            truth.push(oracle.get(id).copied().unwrap_or(-1));
            pred.push(engine_of.get(id).copied().unwrap_or(-1));
        }
        let (ari, nmi, purity) = (
            disc_metrics::ari(&truth, &pred),
            disc_metrics::nmi(&truth, &pred),
            disc_metrics::purity(&truth, &pred),
        );
        registry.gauge_set("disc_quality_ari", ari);
        registry.gauge_set("disc_quality_nmi", nmi);
        registry.gauge_set("disc_quality_purity", purity);
        registry.gauge_set("disc_quality_sample_points", sample.len() as f64);
        registry.counter_add("disc_quality_audits_total", 1);
        self.quality = Some((ari, nmi, purity));
    }

    /// The `--stats-every` fragment: latest quality (when audited), churn,
    /// noise and drift, plus the firing-alert count.
    pub fn summary(&self) -> String {
        let (churn, noise, drift) = self.last;
        let quality = match self.quality {
            Some((ari, nmi, _)) => format!("quality ari={ari:.3} nmi={nmi:.3} "),
            None => String::new(),
        };
        let alerts = self.engine.as_ref().map(|e| e.active().len()).unwrap_or(0);
        format!(
            "{quality}churn={churn:.3} noise={noise:.3} drift={drift:.2}\u{3c3} alerts={alerts}"
        )
    }

    /// Flushes the sinks, prints the lifecycle recap, and enforces
    /// `--alerts-fatal`. Call once after the stream drains.
    pub fn finish(&mut self, registry: &Registry) -> Result<(), String> {
        if let Some(out) = &mut self.alerts_out {
            out.flush()?;
        }
        if let Some(out) = &mut self.health_out {
            out.flush()?;
        }
        let stats = self.lifecycle.lock().expect("lifecycle poisoned").stats();
        if !self.quiet {
            eprintln!(
                "lifecycle: {} clusters born, {} died (median lifetime {} slides), \
                 {} alive | splits/slide {:.3} merges/slide {:.3}",
                stats.born,
                stats.died,
                stats.lifetime.p50,
                stats.alive,
                stats.split_rate,
                stats.merge_rate
            );
        }
        if let Some(engine) = &self.engine {
            let active = engine.active();
            if !self.quiet {
                eprintln!(
                    "alerts: {} firing transition(s), {} still active{}{}",
                    engine.fired_total(),
                    active.len(),
                    if active.is_empty() { "" } else { ": " },
                    active.join(", ")
                );
            }
            let _ = registry; // gauges already published per slide
            if self.alerts_fatal && engine.fired_total() > 0 {
                return Err(format!(
                    "--alerts-fatal: {} alert(s) fired during the run",
                    engine.fired_total()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_sample_is_deterministic_and_capped() {
        let items: Vec<u64> = (0..1000).collect();
        let s = stride_sample(&items, 256);
        assert!(s.len() <= 256 && s.len() >= 200, "got {}", s.len());
        assert_eq!(s, stride_sample(&items, 256));
        assert_eq!(s[0], 0);
        // Small inputs pass through whole.
        assert_eq!(stride_sample(&items[..10], 256).len(), 10);
        let empty: Vec<u64> = Vec::new();
        assert!(stride_sample(&empty, 16).is_empty());
    }

    #[test]
    fn inactive_when_no_health_flags() {
        let opts = crate::Opts::parse(&[]).unwrap();
        assert!(Health::<2>::from_opts(&opts, 1.0, 4).unwrap().is_none());
    }

    #[test]
    fn alerts_fatal_without_rules_is_an_error() {
        let args: Vec<String> = vec!["--alerts-fatal".into()];
        let opts = crate::Opts::parse(&args).unwrap();
        let err = Health::<2>::from_opts(&opts, 1.0, 4).err().unwrap();
        assert!(err.contains("--alerts"), "{err}");
    }

    /// The acceptance bar for the auditor: the `disc_quality_ari` gauge it
    /// publishes equals the offline `disc_metrics::ari` oracle bit-for-bit
    /// on the audited slide, and the health gauges survive a Prometheus
    /// render → parse round trip (including the labeled alert gauge).
    #[test]
    fn audit_matches_offline_oracle_and_prom_round_trips() {
        use disc_telemetry::{parse_prometheus, Registry};
        use disc_window::{datasets, SlidingWindow};
        let dir = std::env::temp_dir().join("disc_health_audit_test");
        std::fs::create_dir_all(&dir).unwrap();
        let rules = dir.join("always.toml");
        std::fs::write(
            &rules,
            "[[rule]]\nname = \"always\"\nmetric = \"disc_noise_fraction\"\n\
             op = \"ge\"\nthreshold = 0.0\n",
        )
        .unwrap();
        let args: Vec<String> = ["--audit-every", "1", "--alerts", rules.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let opts = crate::Opts::parse(&args).unwrap();
        let (eps, tau) = (0.8, 4);
        let mut h = Health::<2>::from_opts(&opts, eps, tau).unwrap().unwrap();
        let registry = Registry::new();
        let records = datasets::gaussian_blobs::<2>(600, 4, 0.5, 7);
        let mut w = SlidingWindow::new(records, 300, 100);
        let fill = w.fill();
        // Deliberately imperfect "engine" labels: one giant cluster.
        let assignments: Vec<(PointId, i64)> = w.current().map(|(id, _)| (id, 0)).collect();
        h.observe(1, &assignments, &w, &fill, &registry).unwrap();

        // Offline oracle, replicating the audit's deterministic alignment.
        let mut window: Vec<(PointId, Point<2>)> = w.current().collect();
        window.sort_unstable_by_key(|(id, _)| *id);
        let (oracle, _) = Dbscan::<2>::run(&window, eps, tau);
        let engine_of: FxHashMap<PointId, i64> = assignments.iter().copied().collect();
        let (mut truth, mut pred) = (Vec::new(), Vec::new());
        for (id, _) in &window {
            truth.push(oracle[id]);
            pred.push(engine_of[id]);
        }
        let offline = disc_metrics::ari(&truth, &pred);
        let gauge = registry.gauge_value("disc_quality_ari").unwrap();
        assert_eq!(gauge, offline, "gauge must equal the oracle exactly");
        assert!(
            gauge < 1.0,
            "one-cluster labels cannot match a 4-blob oracle"
        );

        let text = registry.render_prometheus();
        let samples = parse_prometheus(&text).unwrap();
        for name in ["disc_quality_ari", "disc_quality_nmi", "disc_drift_score"] {
            let s = samples.iter().find(|s| s.name == name).unwrap();
            assert_eq!(s.value, registry.gauge_value(name).unwrap(), "{name}");
        }
        let alert = samples
            .iter()
            .find(|s| s.name == "disc_alert_active" && s.label("rule") == Some("always"))
            .unwrap();
        assert_eq!(alert.value, 1.0, "ge-0 rule fires on slide 1");
    }

    #[test]
    fn bad_rules_file_is_reported_with_path() {
        let dir = std::env::temp_dir().join("disc_health_rules_test");
        std::fs::create_dir_all(&dir).unwrap();
        let rules = dir.join("bad.toml");
        std::fs::write(&rules, "[[rule]]\nname = \"x\"\n").unwrap();
        let args: Vec<String> = vec!["--alerts".into(), rules.to_str().unwrap().into()];
        let opts = crate::Opts::parse(&args).unwrap();
        let err = Health::<2>::from_opts(&opts, 1.0, 4).err().unwrap();
        assert!(err.contains("bad.toml") && err.contains("metric"), "{err}");
    }
}
