//! `disc top` — a live terminal view of a running stream.
//!
//! Two sources, zero dependencies:
//!
//! * `--metrics F.jsonl` tails the per-slide [`SlideEvent`] stream a
//!   `disc cluster --metrics-out` run is appending to, and renders
//!   per-phase latency tails (p50/p99/max over a rolling window of
//!   slides) plus the engine's accounted memory curve.
//! * `--prom-addr HOST:PORT` scrapes a running `PromServer` over plain
//!   HTTP and renders the `disc_mem_bytes{component=...}` gauge tree
//!   next to the cumulative latency histogram.
//!
//! Rendering is plain ANSI (clear-screen + home between frames); pass
//! `--once` to print a single frame and exit (what the tests and CI do),
//! `--refresh MS` to change the cadence (default one second).

use crate::Opts;
use disc_telemetry::mem::fmt_bytes;
use disc_telemetry::{parse_prometheus, HealthEvent, Sample, SlideEvent};
use std::io::{Read, Seek, SeekFrom, Write};

/// How many recent slides feed the rolling latency/memory view.
const ROLLING: usize = 512;

/// `disc top` entry point.
pub fn top(opts: &Opts) -> Result<(), String> {
    let refresh = std::time::Duration::from_millis(opts.refresh.max(50));
    match (&opts.metrics, &opts.prom_addr) {
        (Some(path), _) => tail_jsonl(path, opts.health.as_deref(), refresh, opts.once),
        (None, Some(addr)) => watch_prom(addr, refresh, opts.once),
        (None, None) => Err("disc top needs --metrics F.jsonl or --prom-addr HOST:PORT".into()),
    }
}

/// Tail mode: follow a growing `--metrics-out` JSONL file, plus the
/// `--health-out` stream when `--health` names one.
fn tail_jsonl(
    path: &std::path::Path,
    health_path: Option<&std::path::Path>,
    refresh: std::time::Duration,
    once: bool,
) -> Result<(), String> {
    let mut file = std::fs::File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut offset = 0u64;
    let mut partial = String::new();
    let mut events: Vec<SlideEvent> = Vec::new();
    // The health stream may appear after the run's first slide; reopen
    // each frame (cheap at refresh cadence) and tolerate its absence.
    let mut health_offset = 0u64;
    let mut health_partial = String::new();
    let mut health: Vec<HealthEvent> = Vec::new();
    loop {
        offset = drain_new_lines(&mut file, offset, &mut partial, &mut events, path, &|l| {
            SlideEvent::from_jsonl(l)
        })?;
        events.drain(..events.len().saturating_sub(ROLLING));
        if let Some(hp) = health_path {
            if let Ok(mut hf) = std::fs::File::open(hp) {
                health_offset = drain_new_lines(
                    &mut hf,
                    health_offset,
                    &mut health_partial,
                    &mut health,
                    hp,
                    &|l| HealthEvent::from_jsonl(l),
                )?;
                health.drain(..health.len().saturating_sub(ROLLING));
            }
        }
        emit_frame(
            &render_events(&events, &health, &path.display().to_string()),
            once,
        );
        if once {
            return Ok(());
        }
        std::thread::sleep(refresh);
    }
}

/// Reads everything appended since `offset`, parsing complete lines into
/// `events` and carrying an unterminated tail over in `partial`.
fn drain_new_lines<T>(
    file: &mut std::fs::File,
    offset: u64,
    partial: &mut String,
    events: &mut Vec<T>,
    path: &std::path::Path,
    parse: &dyn Fn(&str) -> Result<T, String>,
) -> Result<u64, String> {
    file.seek(SeekFrom::Start(offset))
        .map_err(|e| format!("{}: {e}", path.display()))?;
    let mut chunk = String::new();
    file.read_to_string(&mut chunk)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    let next = offset + chunk.len() as u64;
    partial.push_str(&chunk);
    // Only consume terminated lines; the writer may be mid-append.
    while let Some(nl) = partial.find('\n') {
        let line: String = partial.drain(..=nl).collect();
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let ev = parse(line).map_err(|e| format!("{}: {e}", path.display()))?;
        events.push(ev);
    }
    Ok(next)
}

/// One frame of the JSONL view.
fn render_events(events: &[SlideEvent], health: &[HealthEvent], source: &str) -> String {
    let mut out = String::new();
    let Some(last) = events.last() else {
        out.push_str(&format!(
            "disc top — {source}\n(waiting for the first slide event)\n"
        ));
        return out;
    };
    out.push_str(&format!(
        "disc top — {source}\n{} on {} | slide {} | window {} pts | last {} slides in view\n\n",
        last.engine,
        if last.backend.is_empty() {
            "-"
        } else {
            last.backend
        },
        last.seq,
        last.window_len,
        events.len(),
    ));
    out.push_str("phase      p50         p99         max\n");
    for (name, pick) in [
        (
            "collect",
            &(|e: &SlideEvent| e.collect_ns) as &dyn Fn(&SlideEvent) -> u64,
        ),
        ("cluster", &|e: &SlideEvent| e.cluster_ns),
        ("adoption", &|e: &SlideEvent| e.adoption_ns),
        ("slide", &|e: &SlideEvent| e.total_ns),
    ] {
        let mut vals: Vec<u64> = events.iter().map(pick).collect();
        vals.sort_unstable();
        out.push_str(&format!(
            "{name:<9}  {:<10}  {:<10}  {:<10}\n",
            fmt_ns(pct(&vals, 0.50)),
            fmt_ns(pct(&vals, 0.99)),
            fmt_ns(*vals.last().unwrap()),
        ));
    }
    let mems: Vec<u64> = events.iter().map(|e| e.mem_bytes).collect();
    let peak = mems.iter().copied().max().unwrap_or(0);
    out.push_str(&format!(
        "\nmemory     {:<10}  peak {:<10}  {}\n",
        fmt_bytes(last.mem_bytes),
        fmt_bytes(peak),
        spark(&mems),
    ));
    out.push_str(&format!(
        "activity   +{} -{} pts | {} range searches | {} ex / {} neo cores\n",
        last.inserted, last.removed, last.range_searches, last.ex_cores, last.neo_cores,
    ));
    if let Some(h) = health.last() {
        out.push_str(&format!(
            "\nhealth     {} clusters | churn {:.1}% | noise {:.1}% | \
             drift {:.2}\u{3c3} | {} alert(s) active\n",
            h.clusters,
            h.churn_ppm as f64 / 1e4,
            h.noise_ppm as f64 / 1e4,
            h.drift_ppm as f64 / 1e6,
            h.alerts_active,
        ));
        // The quality sparkline only holds audited slides — between audits
        // the gauge would just repeat itself.
        let aris: Vec<u64> = health
            .iter()
            .filter(|h| h.audited == 1)
            .map(|h| h.ari_ppm)
            .collect();
        if let Some(&latest) = aris.last() {
            out.push_str(&format!(
                "quality    ari {:.3}  {}\n",
                latest as f64 / 1e6,
                spark(&aris),
            ));
        }
    }
    out
}

/// Scrape mode: poll a `PromServer` `/metrics` endpoint.
fn watch_prom(addr: &str, refresh: std::time::Duration, once: bool) -> Result<(), String> {
    loop {
        let body = scrape(addr)?;
        let samples =
            parse_prometheus(&body).map_err(|e| format!("{addr}: bad exposition: {e}"))?;
        emit_frame(&render_prom(&samples, addr), once);
        if once {
            return Ok(());
        }
        std::thread::sleep(refresh);
    }
}

/// One plain-HTTP GET against `addr`'s `/metrics`, returning the body.
fn scrape(addr: &str) -> Result<String, String> {
    let mut stream = std::net::TcpStream::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
    stream
        .write_all(
            format!("GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        )
        .map_err(|e| format!("{addr}: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("{addr}: {e}"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("{addr}: malformed HTTP response"))?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains("200") {
        return Err(format!("{addr}: scrape failed: {status}"));
    }
    Ok(body.to_string())
}

/// One frame of the Prometheus view.
fn render_prom(samples: &[Sample], source: &str) -> String {
    let mut out = String::new();
    let slides = value_of(samples, "disc_slides_total").unwrap_or(0.0);
    out.push_str(&format!(
        "disc top — scraping {source}\n{slides:.0} slides committed\n\n"
    ));

    // Cumulative latency from the histogram series.
    let count = value_of(samples, "disc_slide_seconds_count").unwrap_or(0.0);
    let sum = value_of(samples, "disc_slide_seconds_sum").unwrap_or(0.0);
    if count > 0.0 {
        let buckets: Vec<(f64, f64)> = samples
            .iter()
            .filter(|s| s.name == "disc_slide_seconds_bucket")
            .filter_map(|s| {
                let le = s.label("le")?;
                let bound = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse().ok()?
                };
                Some((bound, s.value))
            })
            .collect();
        out.push_str(&format!(
            "slide latency  mean {}  p50 ≤{}  p99 ≤{}\n\n",
            fmt_ns((sum / count * 1e9) as u64),
            fmt_ns((bucket_quantile(&buckets, count, 0.50) * 1e9) as u64),
            fmt_ns((bucket_quantile(&buckets, count, 0.99) * 1e9) as u64),
        ));
    }

    // The per-component memory tree, indented by path depth.
    let mut components: Vec<(&str, f64)> = samples
        .iter()
        .filter(|s| s.name == "disc_mem_bytes")
        .filter_map(|s| Some((s.label("component")?, s.value)))
        .collect();
    components.sort_by(|a, b| a.0.cmp(b.0));
    if components.is_empty() {
        out.push_str("memory: no disc_mem_bytes gauges yet (has a slide committed?)\n");
    } else {
        out.push_str("memory by component\n");
        for (path, bytes) in &components {
            let depth = path.matches('/').count();
            let label = path.rsplit('/').next().unwrap_or(path);
            out.push_str(&format!(
                "{:indent$}{label:<14} {}\n",
                "",
                fmt_bytes(*bytes as u64),
                indent = 2 + depth * 2,
            ));
        }
    }
    if let Some(rss) = value_of(samples, "disc_rss_bytes") {
        out.push_str(&format!("  process RSS    {}\n", fmt_bytes(rss as u64)));
    }
    // The health pane, when the run carries the stream-health driver
    // (`--audit-every`/`--alerts`/`--health-out`).
    if let Some(drift) = value_of(samples, "disc_drift_score") {
        let churn = value_of(samples, "disc_label_churn").unwrap_or(0.0);
        let noise = value_of(samples, "disc_noise_fraction").unwrap_or(0.0);
        let clusters = value_of(samples, "disc_cluster_count").unwrap_or(0.0);
        out.push_str(&format!(
            "\nhealth     {clusters:.0} clusters | churn {:.1}% | noise {:.1}% | drift {drift:.2}\u{3c3}\n",
            churn * 100.0,
            noise * 100.0,
        ));
        if let Some(ari) = value_of(samples, "disc_quality_ari") {
            out.push_str(&format!(
                "quality    ari {ari:.3}  nmi {:.3}  purity {:.3}  ({:.0} audits)\n",
                value_of(samples, "disc_quality_nmi").unwrap_or(0.0),
                value_of(samples, "disc_quality_purity").unwrap_or(0.0),
                value_of(samples, "disc_quality_audits_total").unwrap_or(0.0),
            ));
        }
        let mut rules: Vec<(&str, bool)> = samples
            .iter()
            .filter(|s| s.name == "disc_alert_active")
            .filter_map(|s| Some((s.label("rule")?, s.value >= 1.0)))
            .collect();
        rules.sort_unstable();
        if !rules.is_empty() {
            let firing: Vec<&str> = rules
                .iter()
                .filter(|(_, active)| *active)
                .map(|(rule, _)| *rule)
                .collect();
            if firing.is_empty() {
                out.push_str(&format!(
                    "alerts     none of {} rule(s) firing\n",
                    rules.len()
                ));
            } else {
                out.push_str(&format!(
                    "alerts     {} of {} firing: {}\n",
                    firing.len(),
                    rules.len(),
                    firing.join(", "),
                ));
            }
        }
    }
    out
}

fn value_of(samples: &[Sample], name: &str) -> Option<f64> {
    samples.iter().find(|s| s.name == name).map(|s| s.value)
}

/// Upper bound of the first cumulative bucket covering quantile `q`
/// (the classic Prometheus `histogram_quantile` upper-bound estimate;
/// the last finite bound stands in for the `+Inf` bucket).
fn bucket_quantile(buckets: &[(f64, f64)], count: f64, q: f64) -> f64 {
    let rank = q * count;
    let mut last_finite = 0.0;
    for &(bound, cumulative) in buckets {
        if bound.is_finite() {
            last_finite = bound;
        }
        if cumulative >= rank {
            return if bound.is_finite() {
                bound
            } else {
                last_finite
            };
        }
    }
    last_finite
}

/// Nearest-rank percentile over an already-sorted slice.
fn pct(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// A block-character sparkline of `values`, scaled to the observed max.
fn spark(values: &[u64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    // One glyph per slide, downsampled (max per cell) to fit a terminal.
    const WIDTH: usize = 48;
    if values.is_empty() {
        return String::new();
    }
    let max = values.iter().copied().max().unwrap_or(0).max(1);
    let cell = values.len().div_ceil(WIDTH);
    values
        .chunks(cell)
        .map(|c| {
            let v = c.iter().copied().max().unwrap_or(0);
            BARS[((v * 7).div_ceil(max) as usize).min(7)]
        })
        .collect()
}

/// Humanises a nanosecond latency.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Prints one frame: clear-and-home ANSI in live mode, plain in `--once`
/// mode so piped/captured output stays readable.
fn emit_frame(frame: &str, once: bool) {
    if once {
        print!("{frame}");
    } else {
        print!("\x1b[2J\x1b[H{frame}");
    }
    let _ = std::io::stdout().flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, total_ns: u64, mem: u64) -> SlideEvent {
        SlideEvent {
            seq,
            engine: "disc",
            backend: "rtree",
            window_len: 1000,
            inserted: 50,
            removed: 50,
            collect_ns: total_ns / 2,
            cluster_ns: total_ns / 3,
            adoption_ns: total_ns / 6,
            total_ns,
            range_searches: 120,
            mem_bytes: mem,
            ..Default::default()
        }
    }

    #[test]
    fn jsonl_frame_shows_tails_and_memory() {
        let events: Vec<SlideEvent> = (1..=100)
            .map(|i| ev(i, i * 1_000, 1_000_000 + i * 10_000))
            .collect();
        let frame = render_events(&events, &[], "m.jsonl");
        assert!(frame.contains("disc top — m.jsonl"), "{frame}");
        assert!(frame.contains("disc on rtree | slide 100"), "{frame}");
        // p50 of 1..=100 µs is 50µs; p99 is 99µs; max 100µs.
        assert!(
            frame.contains("slide      50.0µs      99.0µs      100.0µs"),
            "{frame}"
        );
        // Latest and peak memory are the same here (monotone growth).
        assert!(frame.contains("peak 1.91 MiB"), "{frame}");
        assert!(frame.contains('█'), "sparkline present: {frame}");
        assert!(
            frame.contains("+50 -50 pts | 120 range searches"),
            "{frame}"
        );
    }

    #[test]
    fn empty_stream_renders_a_waiting_frame() {
        let frame = render_events(&[], &[], "m.jsonl");
        assert!(
            frame.contains("waiting for the first slide event"),
            "{frame}"
        );
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(pct(&v, 0.50), 50);
        assert_eq!(pct(&v, 0.99), 99);
        assert_eq!(pct(&v, 1.0), 100);
        assert_eq!(pct(&[7], 0.5), 7);
        assert_eq!(pct(&[], 0.5), 0);
    }

    #[test]
    fn sparkline_scales_and_downsamples() {
        assert_eq!(spark(&[]), "");
        let s = spark(&[0, 50, 100]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁') && s.ends_with('█'), "{s}");
        // 1000 values still fit the fixed width.
        let long: Vec<u64> = (0..1000).collect();
        assert!(spark(&long).chars().count() <= 48);
    }

    #[test]
    fn prom_frame_renders_the_component_tree() {
        use disc_telemetry::{Recorder, Registry};
        let reg = Registry::new();
        reg.counter_add("disc_slides_total", 12);
        reg.record_nanos("disc_slide_seconds", 2_000_000);
        reg.gauge_set_labeled("disc_mem_bytes", "component", "engine", 3_000_000.0);
        reg.gauge_set_labeled("disc_mem_bytes", "component", "engine/points", 1_000_000.0);
        reg.gauge_set_labeled("disc_mem_bytes", "component", "engine/index", 2_000_000.0);
        reg.gauge_set("disc_rss_bytes", 64.0 * 1024.0 * 1024.0);
        let samples = parse_prometheus(&reg.render_prometheus()).unwrap();
        let frame = render_prom(&samples, "127.0.0.1:9");
        assert!(frame.contains("12 slides committed"), "{frame}");
        assert!(frame.contains("slide latency  mean 2.0ms"), "{frame}");
        assert!(frame.contains("engine         2.86 MiB"), "{frame}");
        // Children are indented under their parent path.
        assert!(frame.contains("\n    points         976.6 KiB"), "{frame}");
        assert!(frame.contains("process RSS    64.00 MiB"), "{frame}");
    }

    #[test]
    fn jsonl_frame_shows_the_health_pane() {
        let events: Vec<SlideEvent> = (1..=8).map(|i| ev(i, i * 1_000, 1_000)).collect();
        let health: Vec<HealthEvent> = (1..=8)
            .map(|i| HealthEvent {
                slide: i,
                clusters: 3,
                churn_ppm: 125_000, // 12.5%
                noise_ppm: 40_000,  // 4.0%
                drift_ppm: 1_750_000,
                audited: u64::from(i % 4 == 0),
                ari_ppm: 980_000,
                nmi_ppm: 990_000,
                purity_ppm: 1_000_000,
                alerts_active: 2,
                ..Default::default()
            })
            .collect();
        let frame = render_events(&events, &health, "m.jsonl");
        assert!(
            frame.contains("health     3 clusters | churn 12.5% | noise 4.0% | drift 1.75σ | 2 alert(s) active"),
            "{frame}"
        );
        assert!(frame.contains("quality    ari 0.980"), "{frame}");
        // Only the two audited slides feed the quality sparkline.
        let quality_line = frame.lines().find(|l| l.starts_with("quality")).unwrap();
        assert_eq!(quality_line.chars().filter(|c| *c == '█').count(), 2);
        // Without health events the pane stays absent.
        let bare = render_events(&events, &[], "m.jsonl");
        assert!(!bare.contains("health"), "{bare}");
    }

    #[test]
    fn prom_frame_shows_the_health_pane() {
        use disc_telemetry::{Recorder, Registry};
        let reg = Registry::new();
        reg.counter_add("disc_slides_total", 4);
        reg.gauge_set("disc_drift_score", 0.42);
        reg.gauge_set("disc_label_churn", 0.03);
        reg.gauge_set("disc_noise_fraction", 0.10);
        reg.gauge_set("disc_cluster_count", 5.0);
        reg.gauge_set("disc_quality_ari", 0.875);
        reg.gauge_set("disc_quality_nmi", 0.9);
        reg.gauge_set("disc_quality_purity", 1.0);
        reg.counter_add("disc_quality_audits_total", 2);
        reg.gauge_set_labeled("disc_alert_active", "rule", "split", 1.0);
        reg.gauge_set_labeled("disc_alert_active", "rule", "noisy", 0.0);
        let samples = parse_prometheus(&reg.render_prometheus()).unwrap();
        let frame = render_prom(&samples, "127.0.0.1:9");
        assert!(
            frame.contains("health     5 clusters | churn 3.0% | noise 10.0% | drift 0.42σ"),
            "{frame}"
        );
        assert!(
            frame.contains("quality    ari 0.875  nmi 0.900  purity 1.000  (2 audits)"),
            "{frame}"
        );
        assert!(frame.contains("alerts     1 of 2 firing: split"), "{frame}");
        // No drift gauge → no pane (a run without the health driver).
        let bare = Registry::new();
        bare.counter_add("disc_slides_total", 1);
        let samples = parse_prometheus(&bare.render_prometheus()).unwrap();
        assert!(!render_prom(&samples, "x").contains("health"));
    }

    #[test]
    fn prom_frame_flags_missing_memory_gauges() {
        use disc_telemetry::{Recorder, Registry};
        let reg = Registry::new();
        reg.counter_add("disc_slides_total", 1);
        let samples = parse_prometheus(&reg.render_prometheus()).unwrap();
        let frame = render_prom(&samples, "x");
        assert!(frame.contains("no disc_mem_bytes gauges yet"), "{frame}");
    }

    #[test]
    fn bucket_quantile_uses_upper_bounds() {
        // 10 samples: 4 ≤ 0.001, 9 ≤ 0.01, 10 ≤ +Inf.
        let b = vec![(0.001, 4.0), (0.01, 9.0), (f64::INFINITY, 10.0)];
        assert_eq!(bucket_quantile(&b, 10.0, 0.50), 0.01);
        assert_eq!(bucket_quantile(&b, 10.0, 0.30), 0.001);
        // The +Inf bucket reports the last finite bound.
        assert_eq!(bucket_quantile(&b, 10.0, 0.999), 0.01);
    }

    #[test]
    fn tailing_resumes_mid_line_appends() {
        let dir = std::env::temp_dir().join("disc_top_tail_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.jsonl");
        let line = ev(1, 1000, 500).to_jsonl();
        // First write: one full line plus the head of a second.
        let second = ev(2, 2000, 600).to_jsonl();
        let (head, tail) = second.split_at(20);
        std::fs::write(&path, format!("{line}\n{head}")).unwrap();
        let mut file = std::fs::File::open(&path).unwrap();
        let mut partial = String::new();
        let mut events = Vec::new();
        let parse = |l: &str| SlideEvent::from_jsonl(l);
        let off = drain_new_lines(&mut file, 0, &mut partial, &mut events, &path, &parse).unwrap();
        assert_eq!(events.len(), 1, "partial line must not parse yet");
        // The writer finishes the second line; the tail picks it up.
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        writeln!(f, "{tail}").unwrap();
        drop(f);
        let mut file = std::fs::File::open(&path).unwrap();
        drain_new_lines(&mut file, off, &mut partial, &mut events, &path, &parse).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].seq, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scrape_reads_a_live_prom_server() {
        use disc_telemetry::{PromServer, Recorder, Registry};
        use std::sync::Arc;
        let reg = Arc::new(Registry::new());
        reg.gauge_set_labeled("disc_mem_bytes", "component", "engine", 1234.0);
        let server = PromServer::spawn("127.0.0.1:0", reg).unwrap();
        let addr = server.local_addr().to_string();
        let body = scrape(&addr).unwrap();
        assert!(body.contains("# TYPE disc_mem_bytes gauge"), "{body}");
        let samples = parse_prometheus(&body).unwrap();
        let frame = render_prom(&samples, &addr);
        assert!(frame.contains("engine         1.2 KiB"), "{frame}");
        server.shutdown();
    }
}
