//! Minimal CSV import/export for point streams and cluster snapshots.
//!
//! Used by the Fig. 12 reproduction (cluster illustrations) to dump
//! `(coords..., cluster)` rows that any plotting tool can render, and to let
//! users feed their own point streams into the examples.

use crate::stream::Record;
use disc_geom::Point;
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

/// Writes records as CSV: one row per point, `D` coordinate columns followed
/// by an optional integer label column (empty when unlabelled).
pub fn write_records<const D: usize>(path: &Path, records: &[Record<D>]) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut out = BufWriter::new(file);
    for r in records {
        for i in 0..D {
            if i > 0 {
                write!(out, ",")?;
            }
            write!(out, "{}", r.point[i])?;
        }
        match r.truth {
            Some(l) => writeln!(out, ",{l}")?,
            None => writeln!(out, ",")?,
        }
    }
    out.flush()
}

/// Writes a labelled snapshot: coordinates plus a cluster label, with `-1`
/// standing for noise.
pub fn write_snapshot<const D: usize>(path: &Path, rows: &[(Point<D>, i64)]) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut out = BufWriter::new(file);
    writeln!(
        out,
        "{},cluster",
        (0..D)
            .map(|i| format!("x{i}"))
            .collect::<Vec<_>>()
            .join(",")
    )?;
    for (p, label) in rows {
        for i in 0..D {
            write!(out, "{},", p[i])?;
        }
        writeln!(out, "{label}")?;
    }
    out.flush()
}

/// Parses one coordinate cell, rejecting anything the engine itself would
/// reject: `f64::parse` happily accepts `NaN`, `inf`, and overflow
/// spellings like `1e999`, none of which are valid point coordinates.
fn parse_finite(field: &str, lineno: usize) -> io::Result<f64> {
    let v = field.trim().parse::<f64>().map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("line {}: bad coordinate {field:?}: {e}", lineno + 1),
        )
    })?;
    if !v.is_finite() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("line {}: non-finite coordinate {field:?}", lineno + 1),
        ));
    }
    Ok(v)
}

/// Reads records written by [`write_records`]. Rows with a trailing label
/// column become labelled records.
///
/// Every malformed input — wrong arity, non-numeric or non-finite cells,
/// binary garbage — yields an [`io::Error`] naming the offending line;
/// this function never panics on hostile bytes.
pub fn read_records<const D: usize>(path: &Path) -> io::Result<Vec<Record<D>>> {
    let file = std::fs::File::open(path)?;
    let reader = io::BufReader::new(file);
    let mut out = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() < D || fields.len() > D + 1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "line {}: expected {} coordinates plus an optional label, found {} fields",
                    lineno + 1,
                    D,
                    fields.len()
                ),
            ));
        }
        let mut coords = [0.0; D];
        for (i, c) in coords.iter_mut().enumerate() {
            *c = parse_finite(fields[i], lineno)?;
        }
        let truth = fields
            .get(D)
            .map(|s| s.trim())
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.parse::<u32>().map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("line {}: bad label {s:?}: {e}", lineno + 1),
                    )
                })
            })
            .transpose()?;
        out.push(Record {
            point: Point::new(coords),
            truth,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_roundtrip_through_csv() {
        let dir = std::env::temp_dir().join("disc_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.csv");
        let recs = vec![
            Record::labelled(Point::new([1.5, -2.25]), 3),
            Record::unlabelled(Point::new([0.0, 10.0])),
        ];
        write_records(&path, &recs).unwrap();
        let back: Vec<Record<2>> = read_records(&path).unwrap();
        assert_eq!(back, recs);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn snapshot_has_header_and_noise_rows() {
        let dir = std::env::temp_dir().join("disc_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.csv");
        write_snapshot(
            &path,
            &[(Point::new([1.0, 2.0]), 5), (Point::new([3.0, 4.0]), -1)],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "x0,x1,cluster");
        assert_eq!(lines[1], "1,2,5");
        assert_eq!(lines[2], "3,4,-1");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn malformed_rows_are_rejected() {
        let dir = std::env::temp_dir().join("disc_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "1.0,not_a_number\n").unwrap();
        assert!(read_records::<2>(&path).is_err());
        std::fs::write(&path, "1.0\n").unwrap();
        assert!(read_records::<2>(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}

/// Reads a snapshot written by [`write_snapshot`] back into
/// `(point, cluster)` rows (skipping the header).
pub fn read_snapshot<const D: usize>(path: &Path) -> io::Result<Vec<(Point<D>, i64)>> {
    let file = std::fs::File::open(path)?;
    let reader = io::BufReader::new(file);
    let mut out = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if lineno == 0 || line.trim().is_empty() {
            continue; // header
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != D + 1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: expected {} columns", lineno + 1, D + 1),
            ));
        }
        let mut coords = [0.0; D];
        for (i, c) in coords.iter_mut().enumerate() {
            *c = parse_finite(fields[i], lineno)?;
        }
        let label = fields[D].trim().parse::<i64>().map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: bad cluster label: {e}", lineno + 1),
            )
        })?;
        out.push((Point::new(coords), label));
    }
    Ok(out)
}

#[cfg(test)]
mod snapshot_tests {
    use super::*;

    #[test]
    fn snapshot_roundtrip() {
        let dir = std::env::temp_dir().join("disc_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap_roundtrip.csv");
        let rows = vec![
            (Point::new([1.25, -3.5]), 4i64),
            (Point::new([0.0, 0.0]), -1),
        ];
        write_snapshot(&path, &rows).unwrap();
        let back: Vec<(Point<2>, i64)> = read_snapshot(&path).unwrap();
        assert_eq!(back, rows);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn snapshot_with_wrong_arity_is_rejected() {
        let dir = std::env::temp_dir().join("disc_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap_bad.csv");
        std::fs::write(&path, "x0,x1,cluster\n1.0,2.0\n").unwrap();
        assert!(read_snapshot::<2>(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}

#[cfg(test)]
mod hardening_tests {
    use super::*;
    use proptest::prelude::*;

    fn write_corpus(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("disc_csv_hardening");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, bytes).unwrap();
        path
    }

    /// Curated hostile inputs: every one must come back as `io::Error`
    /// with `InvalidData`, never a panic and never a silently-accepted
    /// record.
    #[test]
    fn corpus_of_malformed_streams_is_rejected() {
        let corpus: &[(&str, &[u8])] = &[
            ("overlong_row.csv", b"1.0,2.0,3,junk\n"),
            ("way_too_many.csv", b"1,2,3,4,5,6,7,8,9\n"),
            ("non_numeric.csv", b"1.0,two\n"),
            ("nan_coord.csv", b"NaN,2.0\n"),
            ("inf_coord.csv", b"1.0,inf\n"),
            ("neg_inf_coord.csv", b"-inf,2.0\n"),
            ("overflow_coord.csv", b"1e999,2.0\n"),
            ("embedded_nul.csv", b"1.0,2.\x000\n"),
            ("nul_field.csv", b"\0,\0\n"),
            ("bad_label.csv", b"1.0,2.0,minus-one\n"),
            ("short_row.csv", b"1.0\n"),
            ("invalid_utf8.csv", &[0x31, 0x2c, 0xff, 0xfe, 0x0a]),
        ];
        for (name, bytes) in corpus {
            let path = write_corpus(name, bytes);
            match read_records::<2>(&path) {
                Err(e) => assert!(
                    e.kind() == io::ErrorKind::InvalidData,
                    "{name}: wrong error kind {:?}",
                    e.kind()
                ),
                Ok(recs) => panic!("{name}: accepted as {recs:?}"),
            }
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn corpus_of_malformed_snapshots_is_rejected() {
        let corpus: &[(&str, &[u8])] = &[
            ("s_overlong.csv", b"x0,x1,cluster\n1.0,2.0,3,extra\n"),
            ("s_nan.csv", b"x0,x1,cluster\nNaN,2.0,3\n"),
            ("s_inf.csv", b"x0,x1,cluster\n1.0,1e999,3\n"),
            ("s_nul.csv", b"x0,x1,cluster\n1.0,\0,3\n"),
            ("s_float_label.csv", b"x0,x1,cluster\n1.0,2.0,3.5\n"),
            ("s_short.csv", b"x0,x1,cluster\n1.0\n"),
        ];
        for (name, bytes) in corpus {
            let path = write_corpus(name, bytes);
            assert!(read_snapshot::<2>(&path).is_err(), "{name}: accepted");
            std::fs::remove_file(&path).unwrap();
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Round-trip: any finite stream survives write → read unchanged.
        #[test]
        fn record_roundtrip_is_lossless(
            xs in prop::collection::vec(-1.0e9..1.0e9f64, 2..40),
            labelled in prop::bool::ANY,
            case in 0u64..u64::MAX,
        ) {
            let recs: Vec<Record<2>> = xs
                .chunks_exact(2)
                .enumerate()
                .map(|(i, c)| {
                    let p = Point::new([c[0], c[1]]);
                    if labelled {
                        Record::labelled(p, i as u32)
                    } else {
                        Record::unlabelled(p)
                    }
                })
                .collect();
            let path = write_corpus(&format!("rt_{case}.csv"), b"");
            write_records(&path, &recs).unwrap();
            let back: Vec<Record<2>> = read_records(&path).unwrap();
            prop_assert_eq!(back, recs);
            std::fs::remove_file(&path).unwrap();
        }

        /// Arbitrary bytes fed to the readers must return — Ok or Err —
        /// without panicking.
        #[test]
        fn readers_never_panic_on_arbitrary_bytes(
            bytes in prop::collection::vec(0u8..=255, 0..200),
            case in 0u64..u64::MAX,
        ) {
            let path = write_corpus(&format!("fuzz_{case}.csv"), &bytes);
            let _ = read_records::<2>(&path);
            let _ = read_records::<4>(&path);
            let _ = read_snapshot::<2>(&path);
            let _ = read_snapshot::<3>(&path);
            std::fs::remove_file(&path).unwrap();
        }
    }
}
