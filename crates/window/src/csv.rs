//! Minimal CSV import/export for point streams and cluster snapshots.
//!
//! Used by the Fig. 12 reproduction (cluster illustrations) to dump
//! `(coords..., cluster)` rows that any plotting tool can render, and to let
//! users feed their own point streams into the examples.

use crate::stream::Record;
use disc_geom::Point;
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

/// Writes records as CSV: one row per point, `D` coordinate columns followed
/// by an optional integer label column (empty when unlabelled).
pub fn write_records<const D: usize>(path: &Path, records: &[Record<D>]) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut out = BufWriter::new(file);
    for r in records {
        for i in 0..D {
            if i > 0 {
                write!(out, ",")?;
            }
            write!(out, "{}", r.point[i])?;
        }
        match r.truth {
            Some(l) => writeln!(out, ",{l}")?,
            None => writeln!(out, ",")?,
        }
    }
    out.flush()
}

/// Writes a labelled snapshot: coordinates plus a cluster label, with `-1`
/// standing for noise.
pub fn write_snapshot<const D: usize>(path: &Path, rows: &[(Point<D>, i64)]) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut out = BufWriter::new(file);
    writeln!(
        out,
        "{},cluster",
        (0..D)
            .map(|i| format!("x{i}"))
            .collect::<Vec<_>>()
            .join(",")
    )?;
    for (p, label) in rows {
        for i in 0..D {
            write!(out, "{},", p[i])?;
        }
        writeln!(out, "{label}")?;
    }
    out.flush()
}

/// Reads records written by [`write_records`]. Rows with a trailing label
/// column become labelled records.
pub fn read_records<const D: usize>(path: &Path) -> io::Result<Vec<Record<D>>> {
    let file = std::fs::File::open(path)?;
    let reader = io::BufReader::new(file);
    let mut out = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() < D {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: expected {} coordinates", lineno + 1, D),
            ));
        }
        let mut coords = [0.0; D];
        for (i, c) in coords.iter_mut().enumerate() {
            *c = fields[i].trim().parse::<f64>().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad coordinate {:?}: {e}", lineno + 1, fields[i]),
                )
            })?;
        }
        let truth = fields
            .get(D)
            .map(|s| s.trim())
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.parse::<u32>().map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("line {}: bad label {s:?}: {e}", lineno + 1),
                    )
                })
            })
            .transpose()?;
        out.push(Record {
            point: Point::new(coords),
            truth,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_roundtrip_through_csv() {
        let dir = std::env::temp_dir().join("disc_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.csv");
        let recs = vec![
            Record::labelled(Point::new([1.5, -2.25]), 3),
            Record::unlabelled(Point::new([0.0, 10.0])),
        ];
        write_records(&path, &recs).unwrap();
        let back: Vec<Record<2>> = read_records(&path).unwrap();
        assert_eq!(back, recs);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn snapshot_has_header_and_noise_rows() {
        let dir = std::env::temp_dir().join("disc_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.csv");
        write_snapshot(
            &path,
            &[(Point::new([1.0, 2.0]), 5), (Point::new([3.0, 4.0]), -1)],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "x0,x1,cluster");
        assert_eq!(lines[1], "1,2,5");
        assert_eq!(lines[2], "3,4,-1");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn malformed_rows_are_rejected() {
        let dir = std::env::temp_dir().join("disc_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "1.0,not_a_number\n").unwrap();
        assert!(read_records::<2>(&path).is_err());
        std::fs::write(&path, "1.0\n").unwrap();
        assert!(read_records::<2>(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}

/// Reads a snapshot written by [`write_snapshot`] back into
/// `(point, cluster)` rows (skipping the header).
pub fn read_snapshot<const D: usize>(path: &Path) -> io::Result<Vec<(Point<D>, i64)>> {
    let file = std::fs::File::open(path)?;
    let reader = io::BufReader::new(file);
    let mut out = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if lineno == 0 || line.trim().is_empty() {
            continue; // header
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != D + 1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: expected {} columns", lineno + 1, D + 1),
            ));
        }
        let mut coords = [0.0; D];
        for (i, c) in coords.iter_mut().enumerate() {
            *c = fields[i].trim().parse::<f64>().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad coordinate: {e}", lineno + 1),
                )
            })?;
        }
        let label = fields[D].trim().parse::<i64>().map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: bad cluster label: {e}", lineno + 1),
            )
        })?;
        out.push((Point::new(coords), label));
    }
    Ok(out)
}

#[cfg(test)]
mod snapshot_tests {
    use super::*;

    #[test]
    fn snapshot_roundtrip() {
        let dir = std::env::temp_dir().join("disc_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap_roundtrip.csv");
        let rows = vec![
            (Point::new([1.25, -3.5]), 4i64),
            (Point::new([0.0, 0.0]), -1),
        ];
        write_snapshot(&path, &rows).unwrap();
        let back: Vec<(Point<2>, i64)> = read_snapshot(&path).unwrap();
        assert_eq!(back, rows);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn snapshot_with_wrong_arity_is_rejected() {
        let dir = std::env::temp_dir().join("disc_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap_bad.csv");
        std::fs::write(&path, "x0,x1,cluster\n1.0,2.0\n").unwrap();
        assert!(read_snapshot::<2>(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
