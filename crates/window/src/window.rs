//! The count-based sliding window driver.

use crate::stream::Record;
use disc_geom::{Point, PointId};

/// One advance of the sliding window: the points entering (`Δin`) and
/// leaving (`Δout`), each tagged with its stable arrival id.
#[derive(Clone, Debug, Default)]
pub struct SlideBatch<const D: usize> {
    /// Points entering the window, in arrival order.
    pub incoming: Vec<(PointId, Point<D>)>,
    /// Points leaving the window, in arrival order.
    pub outgoing: Vec<(PointId, Point<D>)>,
}

impl<const D: usize> SlideBatch<D> {
    /// Net change in window population.
    pub fn net(&self) -> isize {
        self.incoming.len() as isize - self.outgoing.len() as isize
    }
}

/// Drives a finite record stream through a count-based sliding window.
///
/// Ids are arrival indices (`PointId(i)` for the i-th record), so every
/// consumer can recover a record's stride slot from its id.
///
/// ```
/// use disc_window::{SlidingWindow, Record};
/// use disc_geom::Point;
///
/// let recs: Vec<Record<2>> = (0..10)
///     .map(|i| Record::unlabelled(Point::new([i as f64, 0.0])))
///     .collect();
/// let mut w = SlidingWindow::new(recs, 4, 2);
/// let fill = w.fill();
/// assert_eq!(fill.incoming.len(), 4);
/// assert!(fill.outgoing.is_empty());
/// let step = w.advance().unwrap();
/// assert_eq!(step.incoming.len(), 2);
/// assert_eq!(step.outgoing.len(), 2);
/// assert_eq!(step.outgoing[0].0.raw(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct SlidingWindow<const D: usize> {
    records: Vec<Record<D>>,
    window: usize,
    stride: usize,
    /// Index of the first record of the *current* window; `None` before
    /// `fill` was called.
    start: Option<usize>,
}

impl<const D: usize> SlidingWindow<D> {
    /// Creates a window driver. Panics if `window` or `stride` is zero or
    /// `stride > window` (the model requires strides to tile the window).
    pub fn new(records: Vec<Record<D>>, window: usize, stride: usize) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(stride > 0, "stride must be positive");
        assert!(stride <= window, "stride must not exceed the window");
        SlidingWindow {
            records,
            window,
            stride,
            start: None,
        }
    }

    /// Re-creates a driver mid-stream, as if `fill` and enough `advance`
    /// calls had already consumed the stream up to window start `start`
    /// (an arrival index, as persisted in a checkpoint's driver section).
    /// The next [`advance`](Self::advance) emits the slide that moves the
    /// window from `start` to `start + stride`.
    ///
    /// Panics under the same conditions as [`new`](Self::new), plus when
    /// `start` is not a stride multiple or lies beyond the stream.
    pub fn resume_at(records: Vec<Record<D>>, window: usize, stride: usize, start: usize) -> Self {
        let mut w = SlidingWindow::new(records, window, stride);
        assert!(
            start.is_multiple_of(stride),
            "resume start must be a stride multiple"
        );
        assert!(
            start + window <= w.records.len().max(window),
            "resume start lies beyond the stream"
        );
        w.start = Some(start);
        w
    }

    /// Index of the first record of the current window (`None` before
    /// `fill`).
    pub fn start(&self) -> Option<usize> {
        self.start
    }

    /// Window size in points.
    pub fn window_size(&self) -> usize {
        self.window
    }

    /// Stride size in points.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Total records in the backing stream.
    pub fn stream_len(&self) -> usize {
        self.records.len()
    }

    /// Number of `advance` calls available after `fill`.
    pub fn remaining_slides(&self) -> usize {
        let consumed = match self.start {
            None => 0,
            Some(s) => s + self.window,
        };
        if consumed == 0 {
            if self.records.len() < self.window {
                return 0;
            }
            return (self.records.len() - self.window) / self.stride;
        }
        (self.records.len() - consumed) / self.stride
    }

    /// Fills the initial window. Must be called once, first.
    ///
    /// Returns a batch whose `incoming` holds the first `window` records
    /// (or every record, if the stream is shorter).
    pub fn fill(&mut self) -> SlideBatch<D> {
        assert!(self.start.is_none(), "fill must only be called once");
        let n = self.window.min(self.records.len());
        self.start = Some(0);
        SlideBatch {
            incoming: (0..n)
                .map(|i| (PointId(i as u64), self.records[i].point))
                .collect(),
            outgoing: Vec::new(),
        }
    }

    /// Advances by one stride. Returns `None` when the stream cannot supply
    /// a full stride anymore.
    pub fn advance(&mut self) -> Option<SlideBatch<D>> {
        let start = self.start.expect("advance before fill");
        let end = start + self.window;
        if end + self.stride > self.records.len() {
            return None;
        }
        let batch = SlideBatch {
            outgoing: (start..start + self.stride)
                .map(|i| (PointId(i as u64), self.records[i].point))
                .collect(),
            incoming: (end..end + self.stride)
                .map(|i| (PointId(i as u64), self.records[i].point))
                .collect(),
        };
        self.start = Some(start + self.stride);
        Some(batch)
    }

    /// Ids and points of the current window, in arrival order.
    pub fn current(&self) -> impl Iterator<Item = (PointId, Point<D>)> + '_ {
        let start = self.start.expect("current before fill");
        let end = (start + self.window).min(self.records.len());
        (start..end).map(|i| (PointId(i as u64), self.records[i].point))
    }

    /// Ground-truth labels of the current window (parallel to [`current`]):
    /// `(id, Some(label))` for labelled records.
    ///
    /// [`current`]: SlidingWindow::current
    pub fn current_truth(&self) -> impl Iterator<Item = (PointId, Option<u32>)> + '_ {
        let start = self.start.expect("current_truth before fill");
        let end = (start + self.window).min(self.records.len());
        (start..end).map(|i| (PointId(i as u64), self.records[i].truth))
    }

    /// Number of points in the current window.
    pub fn current_len(&self) -> usize {
        let start = self.start.expect("current_len before fill");
        (start + self.window).min(self.records.len()) - start
    }
}

impl<const D: usize> disc_telemetry::MemoryFootprint for SlidingWindow<D> {
    /// The driver buffers the whole backing stream (it replays arrival
    /// indices), so its footprint is the record vector — dominated by the
    /// stream length, not the window size. The CLI publishes this as the
    /// `window` component so memory curves separate driver buffer from
    /// engine state.
    fn footprint(&self) -> disc_telemetry::FootprintNode {
        disc_telemetry::FootprintNode::leaf(
            "window",
            self.records.capacity() * std::mem::size_of::<Record<D>>(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recs(n: usize) -> Vec<Record<1>> {
        (0..n)
            .map(|i| Record::unlabelled(Point::new([i as f64])))
            .collect()
    }

    #[test]
    fn fill_then_slides_partition_the_stream() {
        let mut w = SlidingWindow::new(recs(20), 8, 4);
        assert_eq!(w.remaining_slides(), 3);
        let fill = w.fill();
        assert_eq!(fill.incoming.len(), 8);
        assert_eq!(w.current_len(), 8);

        let s1 = w.advance().unwrap();
        assert_eq!(
            s1.outgoing
                .iter()
                .map(|(id, _)| id.raw())
                .collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(
            s1.incoming
                .iter()
                .map(|(id, _)| id.raw())
                .collect::<Vec<_>>(),
            vec![8, 9, 10, 11]
        );
        let s2 = w.advance().unwrap();
        assert_eq!(s2.incoming[0].0.raw(), 12);
        let s3 = w.advance().unwrap();
        assert_eq!(s3.incoming[3].0.raw(), 19);
        assert!(w.advance().is_none(), "stream exhausted");
    }

    #[test]
    fn current_tracks_the_window_contents() {
        let mut w = SlidingWindow::new(recs(12), 6, 3);
        w.fill();
        w.advance().unwrap();
        let ids: Vec<u64> = w.current().map(|(id, _)| id.raw()).collect();
        assert_eq!(ids, vec![3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn short_stream_fills_partially_and_never_advances() {
        let mut w = SlidingWindow::new(recs(5), 8, 2);
        assert_eq!(w.remaining_slides(), 0);
        let fill = w.fill();
        assert_eq!(fill.incoming.len(), 5);
        assert!(w.advance().is_none());
    }

    #[test]
    fn stride_equal_to_window_replaces_everything() {
        let mut w = SlidingWindow::new(recs(12), 4, 4);
        w.fill();
        let s = w.advance().unwrap();
        assert_eq!(s.outgoing.len(), 4);
        assert_eq!(s.incoming.len(), 4);
        assert_eq!(s.net(), 0);
        let ids: Vec<u64> = w.current().map(|(id, _)| id.raw()).collect();
        assert_eq!(ids, vec![4, 5, 6, 7]);
    }

    #[test]
    #[should_panic(expected = "stride must not exceed")]
    fn oversized_stride_is_rejected() {
        let _ = SlidingWindow::new(recs(10), 4, 5);
    }

    #[test]
    fn resume_at_continues_exactly_where_a_fresh_run_would_be() {
        // Reference: fill + 2 slides.
        let mut fresh = SlidingWindow::new(recs(20), 8, 4);
        fresh.fill();
        fresh.advance().unwrap();
        fresh.advance().unwrap();

        let mut resumed = SlidingWindow::resume_at(recs(20), 8, 4, 8);
        assert_eq!(resumed.start(), Some(8));
        assert_eq!(
            resumed.current().collect::<Vec<_>>(),
            fresh.current().collect::<Vec<_>>()
        );
        assert_eq!(resumed.remaining_slides(), fresh.remaining_slides());
        let (a, b) = (fresh.advance().unwrap(), resumed.advance().unwrap());
        assert_eq!(a.incoming, b.incoming);
        assert_eq!(a.outgoing, b.outgoing);
        assert!(fresh.advance().is_none() && resumed.advance().is_none());
    }

    #[test]
    #[should_panic(expected = "stride multiple")]
    fn resume_off_stride_is_rejected() {
        let _ = SlidingWindow::resume_at(recs(20), 8, 4, 3);
    }

    #[test]
    #[should_panic(expected = "beyond the stream")]
    fn resume_past_the_stream_is_rejected() {
        let _ = SlidingWindow::resume_at(recs(20), 8, 4, 16);
    }

    #[test]
    fn truth_labels_follow_the_window() {
        let records: Vec<Record<1>> = (0..10)
            .map(|i| Record::labelled(Point::new([i as f64]), (i % 3) as u32))
            .collect();
        let mut w = SlidingWindow::new(records, 4, 2);
        w.fill();
        w.advance().unwrap();
        let truths: Vec<Option<u32>> = w.current_truth().map(|(_, t)| t).collect();
        assert_eq!(truths, vec![Some(2), Some(0), Some(1), Some(2)]);
    }
}
