//! Synthetic workload generators.
//!
//! The paper evaluates on four real datasets that are not redistributable
//! (DTG is proprietary; GeoLife/COVID-19/IRIS require external downloads).
//! Each is replaced by a generator that reproduces the *structural* property
//! the evaluation exercises — see `DESIGN.md` §4 for the substitution
//! rationale. The synthetic **Maze** workload of §VI-E is re-implemented
//! faithfully (random seeds spreading into labelled trajectories).
//!
//! All generators are deterministic given their RNG seed, so experiments are
//! reproducible run-to-run.

use crate::stream::Record;
use disc_geom::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Recommended parameters for a generator, mirroring the role of the
/// paper's Table II (threshold values and window sizes), scaled to laptop
/// size. Stride defaults to 5% of the window, the paper's drill-down
/// setting.
#[derive(Clone, Copy, Debug)]
pub struct Profile {
    /// Dataset name as used in figures.
    pub name: &'static str,
    /// Dimensionality of the generator's points.
    pub dim: usize,
    /// Density threshold τ (MinPts, self-inclusive).
    pub tau: usize,
    /// Distance threshold ε.
    pub eps: f64,
    /// Default window size (points).
    pub window: usize,
    /// Total stream length to generate for the default experiments.
    pub stream_len: usize,
}

/// Table II analogue: the default profile of every dataset generator.
pub fn profiles() -> [Profile; 5] {
    [
        DTG_PROFILE,
        GEOLIFE_PROFILE,
        COVID_PROFILE,
        IRIS_PROFILE,
        MAZE_PROFILE,
    ]
}

/// DTG-like vehicle stream (2D), paper default: τ=372, ε=0.002, W=2M.
/// Scaled: dense road traffic with congestion hot-spots.
pub const DTG_PROFILE: Profile = Profile {
    name: "DTG",
    dim: 2,
    tau: 12,
    eps: 0.45,
    window: 16_000,
    stream_len: 120_000,
};

/// GeoLife-like trajectory stream (3D), paper: τ=7, ε=0.01, W=200K.
pub const GEOLIFE_PROFILE: Profile = Profile {
    name: "GeoLife",
    dim: 3,
    tau: 7,
    eps: 0.9,
    window: 12_000,
    stream_len: 90_000,
};

/// COVID-like sparse geo-tagged stream (2D), paper: τ=5, ε=1.2, W=15K.
pub const COVID_PROFILE: Profile = Profile {
    name: "COVID-19",
    dim: 2,
    tau: 5,
    eps: 1.2,
    window: 4_000,
    stream_len: 30_000,
};

/// IRIS-like earthquake stream (4D), paper: τ=9, ε=2, W=200K.
pub const IRIS_PROFILE: Profile = Profile {
    name: "IRIS",
    dim: 4,
    tau: 9,
    eps: 2.0,
    window: 12_000,
    stream_len: 90_000,
};

/// Maze synthetic stream (2D) with ground-truth labels.
pub const MAZE_PROFILE: Profile = Profile {
    name: "Maze",
    dim: 2,
    tau: 6,
    eps: 0.6,
    window: 12_000,
    stream_len: 90_000,
};

// ---------------------------------------------------------------------
// Maze (§VI-E, faithful re-implementation)
// ---------------------------------------------------------------------

/// The paper's Maze workload: `seeds` random walkers placed on a jittered
/// grid spread out over time; every emitted point is labelled with its
/// walker id, and each walker's trajectory forms one ground-truth cluster.
///
/// Walkers are mean-reverting (they orbit their origin) so that distinct
/// trajectories wind and lengthen as the window grows — the shapes get more
/// complicated, exactly the property Fig. 9 exploits — without ever fusing
/// into one blob. Emission is round-robin, so a window of size `w` holds
/// the most recent `w / seeds` fixes of every trajectory.
pub fn maze(n: usize, seeds: usize, rng_seed: u64) -> Vec<Record<2>> {
    assert!(seeds > 0);
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let side = (seeds as f64).sqrt().ceil() as usize;
    let spacing = 10.0;
    let orbit = 3.2; // max wander radius: trajectories stay separated
    let step = 0.18; // < eps, keeps each trajectory ε-connected

    struct Walker {
        origin: Point<2>,
        pos: Point<2>,
        heading: f64,
    }
    let mut walkers: Vec<Walker> = (0..seeds)
        .map(|s| {
            let gx = (s % side) as f64 * spacing + rng.gen_range(-1.0..1.0);
            let gy = (s / side) as f64 * spacing + rng.gen_range(-1.0..1.0);
            let origin = Point::new([gx, gy]);
            Walker {
                origin,
                pos: origin,
                heading: rng.gen_range(0.0..std::f64::consts::TAU),
            }
        })
        .collect();

    let mut out = Vec::with_capacity(n);
    let mut s = 0usize;
    while out.len() < n {
        let w = &mut walkers[s];
        // Persistent heading with small turns; strong pull back when the
        // walker strays past its orbit radius.
        w.heading += rng.gen_range(-0.6..0.6);
        let mut dx = step * w.heading.cos();
        let mut dy = step * w.heading.sin();
        let off = [w.pos[0] - w.origin[0], w.pos[1] - w.origin[1]];
        let r = (off[0] * off[0] + off[1] * off[1]).sqrt();
        if r > orbit {
            // Turn towards home.
            let home = (w.origin[1] - w.pos[1]).atan2(w.origin[0] - w.pos[0]);
            w.heading = home + rng.gen_range(-0.4..0.4);
            dx = step * w.heading.cos();
            dy = step * w.heading.sin();
        }
        w.pos = Point::new([w.pos[0] + dx, w.pos[1] + dy]);
        let jitter = 0.03;
        let p = Point::new([
            w.pos[0] + rng.gen_range(-jitter..jitter),
            w.pos[1] + rng.gen_range(-jitter..jitter),
        ]);
        out.push(Record::labelled(p, s as u32));
        s = (s + 1) % seeds;
    }
    out
}

// ---------------------------------------------------------------------
// DTG-like (vehicles on a road grid with congestion)
// ---------------------------------------------------------------------

/// DTG substitute: commercial vehicles driving a Manhattan road grid.
///
/// Roads are axis-parallel lines spaced `5.0` apart in a `[0,100]²` city.
/// Each vehicle follows its road with a small lateral GPS error and slows
/// down by 12× inside randomly placed congestion zones, producing the
/// dense, elongated, *fine-grained* clusters that force a small ε — the
/// property the paper uses DTG for (distinguishing nearby roads).
pub fn dtg_like(n: usize, rng_seed: u64) -> Vec<Record<2>> {
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let gap = 5.0;
    let extent = 100.0;
    let lanes = (extent / gap) as usize + 1;
    let vehicles = 220usize;
    let base_speed = 0.9;
    let congestion_factor = 12.0;

    // Congestion zones: (road axis, lane index, centre, half-length).
    struct Zone {
        horizontal: bool,
        lane: usize,
        center: f64,
        half: f64,
    }
    let zones: Vec<Zone> = (0..28)
        .map(|_| Zone {
            horizontal: rng.gen_bool(0.5),
            lane: rng.gen_range(0..lanes),
            center: rng.gen_range(10.0..90.0),
            half: rng.gen_range(1.5..3.5),
        })
        .collect();

    struct Vehicle {
        horizontal: bool,
        lane: usize,
        pos: f64,
        dir: f64,
    }
    let mut fleet: Vec<Vehicle> = (0..vehicles)
        .map(|_| Vehicle {
            horizontal: rng.gen_bool(0.5),
            lane: rng.gen_range(0..lanes),
            pos: rng.gen_range(0.0..extent),
            dir: if rng.gen_bool(0.5) { 1.0 } else { -1.0 },
        })
        .collect();

    let mut out = Vec::with_capacity(n);
    let mut v = 0usize;
    while out.len() < n {
        let veh = &mut fleet[v];
        let congested = zones.iter().any(|z| {
            z.horizontal == veh.horizontal
                && z.lane == veh.lane
                && (veh.pos - z.center).abs() <= z.half
        });
        let speed = if congested {
            base_speed / congestion_factor
        } else {
            base_speed
        };
        veh.pos += veh.dir * speed * rng.gen_range(0.6..1.4);
        if veh.pos < 0.0 || veh.pos > extent {
            // Turn onto a random crossing road at the boundary.
            veh.pos = veh.pos.clamp(0.0, extent);
            veh.dir = -veh.dir;
            veh.lane = rng.gen_range(0..lanes);
        } else if rng.gen_bool(0.02) {
            // Occasional turn at an intersection.
            veh.horizontal = !veh.horizontal;
            let lane = (veh.pos / gap).round() as usize;
            let new_pos = veh.lane as f64 * gap;
            veh.lane = lane.min(lanes - 1);
            veh.pos = new_pos;
        }
        let lateral = veh.lane as f64 * gap + rng.gen_range(-0.06..0.06);
        let along = veh.pos;
        let p = if veh.horizontal {
            Point::new([along, lateral])
        } else {
            Point::new([lateral, along])
        };
        out.push(Record::unlabelled(p));
        v = (v + 1) % vehicles;
    }
    out
}

// ---------------------------------------------------------------------
// GeoLife-like (3D commuter trajectories between hubs)
// ---------------------------------------------------------------------

/// GeoLife substitute: users commuting between city hubs in 3D
/// (`x`, `y`, scaled altitude), medium-density trajectory clusters.
pub fn geolife_like(n: usize, rng_seed: u64) -> Vec<Record<3>> {
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let hubs: Vec<[f64; 3]> = (0..18)
        .map(|_| {
            [
                rng.gen_range(0.0..100.0),
                rng.gen_range(0.0..100.0),
                rng.gen_range(0.0..4.0),
            ]
        })
        .collect();

    struct User {
        from: usize,
        to: usize,
        t: f64,
        speed: f64,
    }
    let users_n = 60usize;
    let mut users: Vec<User> = (0..users_n)
        .map(|_| User {
            from: rng.gen_range(0..hubs.len()),
            to: rng.gen_range(0..hubs.len()),
            t: rng.gen_range(0.0..1.0),
            speed: rng.gen_range(0.004..0.012),
        })
        .collect();

    let mut out = Vec::with_capacity(n);
    let mut u = 0usize;
    while out.len() < n {
        let user = &mut users[u];
        user.t += user.speed;
        if user.t >= 1.0 {
            user.from = user.to;
            user.to = rng.gen_range(0..hubs.len());
            user.t = 0.0;
        }
        let a = &hubs[user.from];
        let b = &hubs[user.to];
        let t = user.t;
        let noise = 0.25;
        let p = Point::new([
            a[0] + (b[0] - a[0]) * t + rng.gen_range(-noise..noise),
            a[1] + (b[1] - a[1]) * t + rng.gen_range(-noise..noise),
            a[2] + (b[2] - a[2]) * t + rng.gen_range(-0.05..0.05),
        ]);
        out.push(Record::unlabelled(p));
        u = (u + 1) % users_n;
    }
    out
}

// ---------------------------------------------------------------------
// COVID-like (sparse 2D geo-tagged events with heavy noise)
// ---------------------------------------------------------------------

/// COVID-19 substitute: population-weighted city centres plus a large
/// uniform-noise fraction; sparse, small-window workload.
pub fn covid_like(n: usize, rng_seed: u64) -> Vec<Record<2>> {
    let mut rng = StdRng::seed_from_u64(rng_seed);
    struct City {
        center: [f64; 2],
        sigma: f64,
        weight: f64,
    }
    let cities: Vec<City> = (0..40)
        .map(|i| City {
            center: [rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)],
            sigma: rng.gen_range(0.4..1.2),
            // Zipf-ish weights: a few megacities dominate.
            weight: 1.0 / (i + 1) as f64,
        })
        .collect();
    let total: f64 = cities.iter().map(|c| c.weight).sum();

    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        if rng.gen_bool(0.30) {
            out.push(Record::unlabelled(Point::new([
                rng.gen_range(0.0..100.0),
                rng.gen_range(0.0..100.0),
            ])));
            continue;
        }
        let mut pick = rng.gen_range(0.0..total);
        let mut idx = 0usize;
        for (i, c) in cities.iter().enumerate() {
            if pick < c.weight {
                idx = i;
                break;
            }
            pick -= c.weight;
        }
        let c = &cities[idx];
        // Box-Muller for a Gaussian scatter around the city centre.
        let (u1, u2): (f64, f64) = (rng.gen_range(1e-9..1.0), rng.gen_range(0.0..1.0));
        let r = (-2.0 * u1.ln()).sqrt() * c.sigma;
        let th = std::f64::consts::TAU * u2;
        out.push(Record::unlabelled(Point::new([
            c.center[0] + r * th.cos(),
            c.center[1] + r * th.sin(),
        ])));
    }
    out
}

// ---------------------------------------------------------------------
// IRIS-like (4D earthquake events along fault bands)
// ---------------------------------------------------------------------

/// IRIS substitute: seismic events along fault-line bands in the scaled 4D
/// space `(lat, lon, depth/10, magnitude×10)` the paper uses.
pub fn iris_like(n: usize, rng_seed: u64) -> Vec<Record<4>> {
    let mut rng = StdRng::seed_from_u64(rng_seed);
    struct Fault {
        a: [f64; 2],
        b: [f64; 2],
        depth: f64,
        mag: f64,
    }
    let faults: Vec<Fault> = (0..14)
        .map(|_| {
            let a = [rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)];
            let ang = rng.gen_range(0.0..std::f64::consts::TAU);
            let len = rng.gen_range(15.0..45.0);
            Fault {
                a,
                b: [a[0] + len * ang.cos(), a[1] + len * ang.sin()],
                depth: rng.gen_range(0.5..6.0),
                mag: rng.gen_range(2.5..6.5),
            }
        })
        .collect();

    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        // 12% teleseismic noise scattered over the whole space.
        if rng.gen_bool(0.12) {
            out.push(Record::unlabelled(Point::new([
                rng.gen_range(0.0..100.0),
                rng.gen_range(0.0..100.0),
                rng.gen_range(0.0..8.0),
                rng.gen_range(25.0..70.0),
            ])));
            continue;
        }
        let f = &faults[rng.gen_range(0..faults.len())];
        let t: f64 = rng.gen_range(0.0..1.0);
        let jitter = 0.5;
        out.push(Record::unlabelled(Point::new([
            f.a[0] + (f.b[0] - f.a[0]) * t + rng.gen_range(-jitter..jitter),
            f.a[1] + (f.b[1] - f.a[1]) * t + rng.gen_range(-jitter..jitter),
            f.depth + rng.gen_range(-0.4..0.4),
            f.mag * 10.0 + rng.gen_range(-3.0..3.0),
        ])));
    }
    out
}

// ---------------------------------------------------------------------
// Generic workloads for tests and examples
// ---------------------------------------------------------------------

/// Uniform noise in `[0, extent]^D`.
pub fn uniform<const D: usize>(n: usize, extent: f64, rng_seed: u64) -> Vec<Record<D>> {
    let mut rng = StdRng::seed_from_u64(rng_seed);
    (0..n)
        .map(|_| {
            let mut c = [0.0; D];
            for x in &mut c {
                *x = rng.gen_range(0.0..extent);
            }
            Record::unlabelled(Point::new(c))
        })
        .collect()
}

/// `k` Gaussian blobs with ground-truth labels, blob `i` centred on a
/// jittered grid cell; emission is round-robin so every window holds every
/// blob.
pub fn gaussian_blobs<const D: usize>(
    n: usize,
    k: usize,
    sigma: f64,
    rng_seed: u64,
) -> Vec<Record<D>> {
    assert!(k > 0);
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let side = (k as f64).powf(1.0 / D as f64).ceil() as usize;
    let spacing = 12.0 * sigma.max(1.0);
    let centers: Vec<[f64; D]> = (0..k)
        .map(|i| {
            let mut c = [0.0; D];
            let mut rem = i;
            for x in c.iter_mut() {
                *x = (rem % side) as f64 * spacing + rng.gen_range(-1.0..1.0);
                rem /= side;
            }
            c
        })
        .collect();
    (0..n)
        .map(|i| {
            let b = i % k;
            let mut c = centers[b];
            for x in &mut c {
                let (u1, u2): (f64, f64) = (rng.gen_range(1e-9..1.0), rng.gen_range(0.0..1.0));
                *x += (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos() * sigma;
            }
            Record::labelled(Point::new(c), b as u32)
        })
        .collect()
}

/// Adversarial split/merge stream for stress-testing cluster lifecycle
/// tracking and drift detection: two 2D Gaussian blobs whose centre
/// separation oscillates as `d(t) = 6 + 4.5·cos(2πt/4000)` — from 10.5
/// (far apart, two clean clusters) down to 1.5 (overlapping, one merged
/// cluster) and back, so every period forces a merge and a split.
/// Emission alternates between blobs; ground truth is the emitting blob,
/// which a clusterer cannot recover while merged — quality dips are the
/// *expected* signal, not a bug.
pub fn split_merge(n: usize, rng_seed: u64) -> Vec<Record<2>> {
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let sigma = 0.35;
    (0..n)
        .map(|i| {
            let d = 6.0 + 4.5 * (std::f64::consts::TAU * i as f64 / 4000.0).cos();
            let b = i % 2;
            // Blobs sit symmetrically about x = 0 on the x-axis.
            let cx = if b == 0 { -d / 2.0 } else { d / 2.0 };
            let mut c = [cx, 0.0];
            for x in &mut c {
                let (u1, u2): (f64, f64) = (rng.gen_range(1e-9..1.0), rng.gen_range(0.0..1.0));
                *x += (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos() * sigma;
            }
            Record::labelled(Point::new(c), b as u32)
        })
        .collect()
}

// ---------------------------------------------------------------------
// Netflow-like (network anomaly detection, the intro's third application)
// ---------------------------------------------------------------------

/// Network-flow features for online anomaly detection (the paper's §I cites
/// unsupervised network anomaly detection as a target application; noise
/// points under density clustering are the anomaly candidates).
///
/// 3D behavioural feature space `(log bytes, log duration, dst-port class)`:
/// normal traffic concentrates in a handful of dense service profiles
/// (web, streaming, DNS, mail, ssh); anomalies — port scans, exfiltration
/// bursts — are scattered singletons (~1.5% of flows). Ground truth labels
/// the service profile; anomalies carry `truth = None`, so precision/recall
/// of "noise = anomaly" can be measured directly.
pub fn netflow_like(n: usize, rng_seed: u64) -> Vec<Record<3>> {
    let mut rng = StdRng::seed_from_u64(rng_seed);
    // (centre, spread, weight) per service profile.
    let profiles: [([f64; 3], f64, f64); 5] = [
        ([8.0, 1.0, 2.0], 0.5, 0.40),  // web browsing
        ([14.0, 5.0, 2.5], 0.6, 0.20), // video streaming
        ([4.0, -2.0, 1.0], 0.3, 0.20), // DNS
        ([9.5, 2.5, 3.5], 0.5, 0.12),  // mail
        ([7.0, 4.0, 5.0], 0.4, 0.08),  // ssh sessions
    ];
    let total: f64 = profiles.iter().map(|(_, _, w)| w).sum();

    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        if rng.gen_bool(0.015) {
            // Anomaly: uniformly scattered, far from every profile more
            // often than not.
            out.push(Record {
                point: Point::new([
                    rng.gen_range(0.0..20.0),
                    rng.gen_range(-4.0..8.0),
                    rng.gen_range(0.0..8.0),
                ]),
                truth: None,
            });
            continue;
        }
        let mut pick = rng.gen_range(0.0..total);
        let mut idx = 0usize;
        for (i, (_, _, w)) in profiles.iter().enumerate() {
            if pick < *w {
                idx = i;
                break;
            }
            pick -= *w;
        }
        let (c, sigma, _) = &profiles[idx];
        let mut coords = [0.0; 3];
        for (x, ctr) in coords.iter_mut().zip(c.iter()) {
            let (u1, u2): (f64, f64) = (rng.gen_range(1e-9..1.0), rng.gen_range(0.0..1.0));
            *x = ctr + (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos() * sigma;
        }
        out.push(Record::labelled(Point::new(coords), idx as u32));
    }
    out
}

// ---------------------------------------------------------------------
// Multi-density stress workload
// ---------------------------------------------------------------------

/// A density-contrast stress workload: `k` blobs whose densities differ by
/// an order of magnitude each (σ doubling, population fixed), plus uniform
/// background noise. Single-threshold density clustering is known to be
/// awkward on such data — which makes it a good stress case for the
/// *exactness* of incremental maintenance (splits and dissipations happen
/// at very different rates per blob).
pub fn multi_density<const D: usize>(n: usize, k: usize, rng_seed: u64) -> Vec<Record<D>> {
    assert!(k > 0);
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let spacing = 40.0;
    let centers: Vec<[f64; D]> = (0..k)
        .map(|i| {
            let mut c = [0.0; D];
            c[0] = i as f64 * spacing;
            c
        })
        .collect();
    (0..n)
        .map(|i| {
            if i % 17 == 0 {
                let mut c = [0.0; D];
                for x in &mut c {
                    *x = rng.gen_range(-10.0..(k as f64 * spacing));
                }
                return Record::unlabelled(Point::new(c));
            }
            let b = i % k;
            let sigma = 0.3 * (1 << b) as f64; // 0.3, 0.6, 1.2, ...
            let mut c = centers[b];
            for x in &mut c {
                let (u1, u2): (f64, f64) = (rng.gen_range(1e-9..1.0), rng.gen_range(0.0..1.0));
                *x += (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos() * sigma;
            }
            Record::labelled(Point::new(c), b as u32)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(maze(500, 10, 42), maze(500, 10, 42));
        assert_eq!(dtg_like(500, 7), dtg_like(500, 7));
        assert_eq!(geolife_like(500, 7), geolife_like(500, 7));
        assert_eq!(covid_like(500, 7), covid_like(500, 7));
        assert_eq!(iris_like(500, 7), iris_like(500, 7));
        assert_ne!(maze(500, 10, 42), maze(500, 10, 43));
        assert_eq!(split_merge(500, 7), split_merge(500, 7));
        assert_ne!(split_merge(500, 7), split_merge(500, 8));
    }

    #[test]
    fn split_merge_oscillates_between_separated_and_overlapping() {
        let recs = split_merge(8000, 3);
        assert_eq!(recs.len(), 8000);
        assert!(recs.iter().all(|r| r.truth.is_some()));
        // At phase 0 (t≈0) the blobs sit ±5.25 from the origin; at phase π
        // (t≈2000) they sit ±0.75 and overlap heavily. Check mean |x| per
        // blob in each regime.
        let mean_absx = |range: std::ops::Range<usize>| -> f64 {
            let pts: Vec<f64> = recs[range].iter().map(|r| r.point[0].abs()).collect();
            pts.iter().sum::<f64>() / pts.len() as f64
        };
        let split_phase = mean_absx(0..200);
        let merged_phase = mean_absx(1900..2100);
        assert!(split_phase > 4.0, "split phase |x| ≈ {split_phase}");
        assert!(merged_phase < 1.2, "merged phase |x| ≈ {merged_phase}");
        // Alternating emission: each blob appears once per pair.
        assert!(recs
            .chunks(2)
            .all(|c| c[0].truth == Some(0) && c[1].truth == Some(1)));
    }

    #[test]
    fn maze_labels_every_point_and_interleaves_seeds() {
        let recs = maze(1000, 25, 1);
        assert_eq!(recs.len(), 1000);
        assert!(recs.iter().all(|r| r.truth.is_some()));
        // Round-robin: the first 25 records cover all 25 seeds.
        let mut seen: Vec<u32> = recs[..25].iter().map(|r| r.truth.unwrap()).collect();
        seen.sort();
        assert_eq!(seen, (0..25).collect::<Vec<_>>());
    }

    #[test]
    fn maze_trajectories_stay_near_their_origin() {
        let recs = maze(4000, 16, 3);
        // Walkers orbit within ~orbit + step of their grid origin (spacing
        // 10), so points labelled s stay inside a ball of radius 5 around
        // a lattice point.
        for r in &recs {
            let s = r.truth.unwrap() as usize;
            let side = 4;
            let ox = (s % side) as f64 * 10.0;
            let oy = (s / side) as f64 * 10.0;
            let d = ((r.point[0] - ox).powi(2) + (r.point[1] - oy).powi(2)).sqrt();
            assert!(d < 5.5, "walker {s} strayed {d}");
        }
    }

    #[test]
    fn maze_consecutive_fixes_are_eps_connected() {
        let seeds = 10;
        let recs = maze(2000, seeds, 9);
        // Per-seed consecutive emissions are one step (+jitter) apart.
        for s in 0..seeds {
            let fixes: Vec<_> = recs
                .iter()
                .filter(|r| r.truth == Some(s as u32))
                .map(|r| r.point)
                .collect();
            for w in fixes.windows(2) {
                assert!(
                    w[0].dist(&w[1]) < MAZE_PROFILE.eps,
                    "trajectory gap exceeds eps"
                );
            }
        }
    }

    #[test]
    fn dtg_points_hug_the_road_grid() {
        let recs = dtg_like(3000, 11);
        let gap = 5.0;
        let mut on_road = 0usize;
        for r in &recs {
            let near = |v: f64| (v / gap - (v / gap).round()).abs() * gap < 0.1;
            if near(r.point[0]) || near(r.point[1]) {
                on_road += 1;
            }
        }
        assert!(
            on_road as f64 > 0.95 * recs.len() as f64,
            "{on_road}/{} fixes on roads",
            recs.len()
        );
    }

    #[test]
    fn covid_contains_noise_and_hotspots() {
        let recs = covid_like(5000, 5);
        assert_eq!(recs.len(), 5000);
        // Density check: some point should have many neighbours within 1.2
        // (a city), while the global average is far lower.
        let sample = &recs[..400];
        let mut max_neigh = 0usize;
        let mut total = 0usize;
        for a in sample {
            let n = recs
                .iter()
                .filter(|b| a.point.within(&b.point, 1.2))
                .count();
            max_neigh = max_neigh.max(n);
            total += n;
        }
        let avg = total as f64 / sample.len() as f64;
        assert!(max_neigh as f64 > 4.0 * avg, "max {max_neigh} vs avg {avg}");
    }

    #[test]
    fn iris_is_four_dimensional_with_bands() {
        let recs = iris_like(2000, 13);
        assert!(recs.iter().all(|r| r.point.as_slice().len() == 4));
        let depths: Vec<f64> = recs.iter().map(|r| r.point[2]).collect();
        let min = depths.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = depths.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 1.0, "depth channel must vary");
    }

    #[test]
    fn blobs_are_separated_and_labelled() {
        let recs = gaussian_blobs::<2>(900, 3, 0.5, 21);
        assert_eq!(recs.len(), 900);
        for r in &recs {
            assert!(r.truth.unwrap() < 3);
        }
        // Points of the same blob are much closer on average than points of
        // different blobs.
        let same: Vec<f64> = recs
            .windows(6)
            .filter(|w| w[0].truth == w[3].truth)
            .map(|w| w[0].point.dist(&w[3].point))
            .collect();
        let diff: Vec<f64> = recs
            .windows(2)
            .filter(|w| w[0].truth != w[1].truth)
            .map(|w| w[0].point.dist(&w[1].point))
            .collect();
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(avg(&same) * 2.0 < avg(&diff));
    }

    #[test]
    fn netflow_anomalies_are_rare_and_unlabelled() {
        let recs = netflow_like(8000, 3);
        let anomalies = recs.iter().filter(|r| r.truth.is_none()).count();
        let frac = anomalies as f64 / recs.len() as f64;
        assert!((0.005..0.04).contains(&frac), "anomaly rate {frac}");
        // Normal flows concentrate: a sampled normal point has far more
        // close neighbours than a sampled anomaly.
        let near = |a: &Record<3>| {
            recs.iter()
                .filter(|b| a.point.within(&b.point, 0.8))
                .count()
        };
        let normal_avg: f64 = recs
            .iter()
            .filter(|r| r.truth.is_some())
            .take(50)
            .map(|r| near(r) as f64)
            .sum::<f64>()
            / 50.0;
        let anom_avg: f64 = {
            let anoms: Vec<&Record<3>> =
                recs.iter().filter(|r| r.truth.is_none()).take(30).collect();
            anoms.iter().map(|r| near(r) as f64).sum::<f64>() / anoms.len() as f64
        };
        assert!(
            normal_avg > 10.0 * anom_avg.max(1.0),
            "normal {normal_avg} vs anomaly {anom_avg}"
        );
    }

    #[test]
    fn multi_density_blobs_have_contrasting_spread() {
        let recs = multi_density::<2>(3000, 3, 5);
        let spread = |b: u32| -> f64 {
            let pts: Vec<_> = recs.iter().filter(|r| r.truth == Some(b)).collect();
            let cx = pts.iter().map(|r| r.point[0]).sum::<f64>() / pts.len() as f64;
            (pts.iter().map(|r| (r.point[0] - cx).powi(2)).sum::<f64>() / pts.len() as f64).sqrt()
        };
        assert!(
            spread(2) > 3.0 * spread(0),
            "{} vs {}",
            spread(2),
            spread(0)
        );
        assert!(recs.iter().any(|r| r.truth.is_none()), "noise present");
    }

    #[test]
    fn profiles_match_generator_dimensions() {
        for p in profiles() {
            assert!(p.tau >= 2);
            assert!(p.eps > 0.0);
            assert!(p.window <= p.stream_len);
            match p.name {
                "DTG" | "COVID-19" | "Maze" => assert_eq!(p.dim, 2),
                "GeoLife" => assert_eq!(p.dim, 3),
                "IRIS" => assert_eq!(p.dim, 4),
                other => panic!("unknown profile {other}"),
            }
        }
    }
}
