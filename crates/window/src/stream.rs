//! Stream records.

use disc_geom::Point;

/// One record of a point stream.
///
/// `truth` carries an optional ground-truth cluster label used for ARI
/// quality measurements (the Maze generator labels every point with its
/// seed id; the DTG-style experiments use DBSCAN's own output as truth,
/// exactly as the paper does).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Record<const D: usize> {
    /// Spatial coordinates.
    pub point: Point<D>,
    /// Ground-truth cluster label, if the generator knows one.
    /// `None` also encodes "ground-truth noise" for labelled generators
    /// that emit genuine noise points.
    pub truth: Option<u32>,
}

impl<const D: usize> Record<D> {
    /// An unlabelled record.
    pub fn unlabelled(point: Point<D>) -> Self {
        Record { point, truth: None }
    }

    /// A record with a ground-truth label.
    pub fn labelled(point: Point<D>, label: u32) -> Self {
        Record {
            point,
            truth: Some(label),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let p = Point::new([1.0, 2.0]);
        assert_eq!(Record::unlabelled(p).truth, None);
        assert_eq!(Record::labelled(p, 7).truth, Some(7));
    }
}
