//! Sliding-window streaming machinery and workload generators.
//!
//! The paper evaluates DISC under the **count-based sliding window** model:
//! the window holds the most recent `window` points and advances by
//! `stride` points at a time; one advance retires the oldest stride
//! (`Δout`) and admits the newest (`Δin`). This crate provides:
//!
//! * [`SlidingWindow`] — turns any finite record stream into a sequence of
//!   [`SlideBatch`]es (the `Δin`/`Δout` pairs every clustering method in the
//!   workspace consumes);
//! * [`datasets`] — synthetic generators standing in for the paper's four
//!   real datasets (DTG, GeoLife, COVID-19, IRIS) plus a faithful
//!   re-implementation of the synthetic **Maze** workload, each documented
//!   with the structural property it preserves;
//! * [`csv`] — minimal CSV import/export for cluster snapshots (Fig. 12).

pub mod csv;
pub mod datasets;
pub mod stream;
pub mod timewindow;
pub mod window;

pub use stream::Record;
pub use timewindow::{TimeWindow, TimedRecord};
pub use window::{SlideBatch, SlidingWindow};
