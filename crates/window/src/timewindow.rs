//! The time-based sliding window driver.
//!
//! §II-B: the sliding window model is either *count-based* (window and
//! stride measured in numbers of points — [`SlidingWindow`]) or
//! *time-based* (measured in time units — this driver). "The clustering
//! algorithm proposed in this paper is not subject to how those parameters
//! are measured and will work with either" — the DISC engine consumes the
//! same [`SlideBatch`]es from both, and slide populations simply vary with
//! the arrival rate here.
//!
//! [`SlidingWindow`]: crate::SlidingWindow

use crate::stream::Record;
use crate::window::SlideBatch;
use disc_geom::PointId;

/// A record with an event timestamp.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimedRecord<const D: usize> {
    /// Event time (any monotone unit).
    pub time: f64,
    /// The spatial record.
    pub record: Record<D>,
}

/// Drives a time-stamped, time-ordered record stream through a time-based
/// sliding window: the window covers `(t_end - window, t_end]` and `t_end`
/// advances by `stride` time units per slide.
///
/// Ids are arrival indices, exactly as in the count-based driver, so every
/// consumer (including [`Disc`]) works unchanged; only the batch sizes
/// fluctuate with the arrival rate.
///
/// [`Disc`]: ../../disc_core/struct.Disc.html
#[derive(Clone, Debug)]
pub struct TimeWindow<const D: usize> {
    records: Vec<TimedRecord<D>>,
    window: f64,
    stride: f64,
    /// Current window end time; `None` before `fill`.
    t_end: Option<f64>,
    /// Index of the first record inside the window.
    lo: usize,
    /// Index one past the last record inside the window.
    hi: usize,
}

impl<const D: usize> TimeWindow<D> {
    /// Creates a time-based window driver. `records` must be sorted by
    /// time (panics otherwise); `window` and `stride` are positive
    /// durations with `stride <= window`.
    pub fn new(records: Vec<TimedRecord<D>>, window: f64, stride: f64) -> Self {
        assert!(
            window > 0.0 && window.is_finite(),
            "window must be positive"
        );
        assert!(
            stride > 0.0 && stride.is_finite(),
            "stride must be positive"
        );
        assert!(stride <= window, "stride must not exceed the window");
        assert!(
            records.windows(2).all(|w| w[0].time <= w[1].time),
            "records must be sorted by time"
        );
        TimeWindow {
            records,
            window,
            stride,
            t_end: None,
            lo: 0,
            hi: 0,
        }
    }

    /// Window duration.
    pub fn window(&self) -> f64 {
        self.window
    }

    /// Stride duration.
    pub fn stride(&self) -> f64 {
        self.stride
    }

    /// The current window interval `(start, end]`, if filled.
    pub fn interval(&self) -> Option<(f64, f64)> {
        self.t_end.map(|e| (e - self.window, e))
    }

    fn batch_for(&mut self, new_end: f64) -> SlideBatch<D> {
        let new_start = new_end - self.window;
        let mut batch = SlideBatch::default();
        // Retire records at or before the new start.
        while self.lo < self.hi && self.records[self.lo].time <= new_start {
            batch
                .outgoing
                .push((PointId(self.lo as u64), self.records[self.lo].record.point));
            self.lo += 1;
        }
        // Admit records up to the new end.
        while self.hi < self.records.len() && self.records[self.hi].time <= new_end {
            batch
                .incoming
                .push((PointId(self.hi as u64), self.records[self.hi].record.point));
            self.hi += 1;
        }
        self.t_end = Some(new_end);
        batch
    }

    /// Fills the initial window, ending at `first_time + window`.
    /// Must be called once, first. Panics on an empty stream.
    pub fn fill(&mut self) -> SlideBatch<D> {
        assert!(self.t_end.is_none(), "fill must only be called once");
        assert!(!self.records.is_empty(), "empty stream");
        let end = self.records[0].time + self.window;
        self.batch_for(end)
    }

    /// Advances the window end by one stride. Returns `None` once the end
    /// moves past the last record's timestamp (every record processed).
    pub fn advance(&mut self) -> Option<SlideBatch<D>> {
        let end = self.t_end.expect("advance before fill");
        let last = self.records.last().expect("empty stream").time;
        if end >= last {
            return None;
        }
        Some(self.batch_for(end + self.stride))
    }

    /// Ids and points currently inside the window, in arrival order.
    pub fn current(&self) -> impl Iterator<Item = (PointId, disc_geom::Point<D>)> + '_ {
        self.records[self.lo..self.hi]
            .iter()
            .enumerate()
            .map(move |(k, r)| (PointId((self.lo + k) as u64), r.record.point))
    }

    /// Number of points currently inside the window.
    pub fn current_len(&self) -> usize {
        self.hi - self.lo
    }
}

/// Stamps a record stream with synthetic arrival times at a (possibly
/// bursty) rate: record `i` arrives at `sum of gaps`, where the gap
/// pattern repeats `gaps` cyclically. Handy for testing time-based windows
/// with non-uniform arrival rates.
pub fn stamp_with_gaps<const D: usize>(
    records: Vec<Record<D>>,
    gaps: &[f64],
) -> Vec<TimedRecord<D>> {
    assert!(!gaps.is_empty() && gaps.iter().all(|g| *g >= 0.0));
    let mut t = 0.0;
    records
        .into_iter()
        .enumerate()
        .map(|(i, record)| {
            t += gaps[i % gaps.len()];
            TimedRecord { time: t, record }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_geom::Point;

    fn recs(times: &[f64]) -> Vec<TimedRecord<1>> {
        times
            .iter()
            .enumerate()
            .map(|(i, &t)| TimedRecord {
                time: t,
                record: Record::unlabelled(Point::new([i as f64])),
            })
            .collect()
    }

    #[test]
    fn fill_covers_first_window_duration() {
        let mut w = TimeWindow::new(recs(&[0.0, 1.0, 2.0, 5.0, 11.0]), 10.0, 2.0);
        let fill = w.fill();
        // Window ends at 0 + 10: records at t ≤ 10 enter.
        assert_eq!(fill.incoming.len(), 4);
        assert!(fill.outgoing.is_empty());
        assert_eq!(w.interval(), Some((0.0, 10.0)));
    }

    #[test]
    fn advance_retires_by_time_not_count() {
        let mut w = TimeWindow::new(recs(&[0.0, 1.0, 2.0, 5.0, 11.0, 12.0]), 10.0, 2.0);
        w.fill();
        let s = w.advance().unwrap(); // window (2, 12]
                                      // Outgoing: t ≤ 2 → records 0,1,2. Incoming: 10 < t ≤ 12 → 11,12.
        assert_eq!(s.outgoing.len(), 3);
        assert_eq!(s.incoming.len(), 2);
        assert_eq!(w.current_len(), 3);
        assert!(w.advance().is_none(), "end reached the last record");
    }

    #[test]
    fn bursty_rates_give_uneven_batches() {
        // 1 point per unit for 10 units, then a burst of 20 in one unit.
        let mut times: Vec<f64> = (0..10).map(|i| i as f64).collect();
        times.extend((0..20).map(|i| 10.0 + i as f64 * 0.05));
        let mut w = TimeWindow::new(recs(&times), 5.0, 1.0);
        w.fill();
        let mut sizes = Vec::new();
        while let Some(b) = w.advance() {
            sizes.push(b.incoming.len());
        }
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max >= 10 && min <= 1, "burst must show up: {sizes:?}");
    }

    #[test]
    fn stamp_with_gaps_is_monotone() {
        let recs: Vec<Record<1>> = (0..10)
            .map(|i| Record::unlabelled(Point::new([i as f64])))
            .collect();
        let stamped = stamp_with_gaps(recs, &[1.0, 0.0, 3.0]);
        assert_eq!(stamped.len(), 10);
        assert!(stamped.windows(2).all(|w| w[0].time <= w[1].time));
        assert_eq!(stamped[0].time, 1.0);
        assert_eq!(stamped[2].time, 4.0);
    }

    #[test]
    #[should_panic(expected = "sorted by time")]
    fn unsorted_records_rejected() {
        let _ = TimeWindow::new(recs(&[1.0, 0.5]), 2.0, 1.0);
    }

    #[test]
    fn current_reports_window_contents() {
        let mut w = TimeWindow::new(recs(&[0.0, 4.0, 8.0, 12.0]), 10.0, 4.0);
        w.fill();
        w.advance().unwrap(); // window (4, 14]
        let ids: Vec<u64> = w.current().map(|(id, _)| id.raw()).collect();
        assert_eq!(ids, vec![2, 3]);
    }
}
