//! Property tests for the sliding-window driver: the batches must
//! partition the stream exactly, and the window contents must always match
//! a direct slice of the stream.

use disc_geom::Point;
use disc_window::{Record, SlidingWindow};
use proptest::prelude::*;

fn records(n: usize) -> Vec<Record<1>> {
    (0..n)
        .map(|i| Record::unlabelled(Point::new([i as f64])))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn batches_partition_the_stream(
        stream_len in 1usize..500,
        window in 1usize..200,
        stride_seed in 1usize..200,
    ) {
        let window = window.min(stream_len);
        let stride = stride_seed.min(window);
        let mut w = SlidingWindow::new(records(stream_len), window, stride);

        let fill = w.fill();
        prop_assert_eq!(fill.incoming.len(), window.min(stream_len));
        prop_assert!(fill.outgoing.is_empty());

        // Window = stream[start..start+window] after every advance.
        let mut start = 0usize;
        let mut total_in = fill.incoming.len();
        let mut total_out = 0usize;
        while let Some(batch) = w.advance() {
            start += stride;
            prop_assert_eq!(batch.incoming.len(), stride);
            prop_assert_eq!(batch.outgoing.len(), stride);
            total_in += batch.incoming.len();
            total_out += batch.outgoing.len();

            let ids: Vec<u64> = w.current().map(|(id, _)| id.raw()).collect();
            let expect: Vec<u64> = (start as u64..(start + window) as u64).collect();
            prop_assert_eq!(ids, expect);
            prop_assert_eq!(w.current_len(), window);
        }
        // Everything that entered minus everything that left is the window.
        prop_assert_eq!(total_in - total_out, w.current_len());
        // No more than a stride's worth of records remains unconsumed.
        prop_assert!(stream_len - (start + w.current_len()).min(stream_len) < stride);
    }

    #[test]
    fn remaining_slides_predicts_advances(
        stream_len in 1usize..400,
        window in 1usize..150,
        stride_seed in 1usize..150,
    ) {
        let window = window.min(stream_len);
        let stride = stride_seed.min(window);
        let mut w = SlidingWindow::new(records(stream_len), window, stride);
        let predicted = w.remaining_slides();
        w.fill();
        let mut actual = 0usize;
        while w.advance().is_some() {
            actual += 1;
        }
        prop_assert_eq!(predicted, actual);
    }

    #[test]
    fn ids_are_arrival_indices(
        stream_len in 10usize..300,
        window in 5usize..100,
    ) {
        let window = window.min(stream_len);
        let mut w = SlidingWindow::new(records(stream_len), window, window.max(1) / 2 + 1);
        w.fill();
        for (id, p) in w.current() {
            prop_assert_eq!(id.raw() as f64, p[0]);
        }
    }
}
