//! Cluster lineage tracking across slides.
//!
//! The paper motivates DISC with monitoring applications (traffic
//! congestion, community tracking) that care not just about the current
//! clustering but about *how clusters evolve*: the §III-C taxonomy of
//! emergence, expansion, shrink, split, merger and dissipation. The engine
//! reports per-slide counts in [`SlideStats`]; this tracker turns
//! consecutive snapshots into an explicit event log with cluster lineage,
//! entirely on top of the public API (so it works with any
//! assignment source shaped like `Vec<(PointId, i64)>`, not just DISC).
//!
//! Matching rule: clusters of consecutive snapshots are linked when they
//! share points; a current cluster descends from the previous cluster that
//! contributes the most points to it.
//!
//! [`SlideStats`]: crate::SlideStats

use disc_geom::{FxHashMap, PointId};

/// A lineage event between two consecutive snapshots.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Evolution {
    /// A cluster with no ancestor appeared.
    Emerged {
        /// The new cluster.
        cluster: i64,
        /// Its population.
        size: usize,
    },
    /// A previous cluster has no descendant.
    Dissipated {
        /// The vanished cluster.
        cluster: i64,
        /// Its population before vanishing.
        size: usize,
    },
    /// One previous cluster feeds several current clusters.
    Split {
        /// The ancestor.
        from: i64,
        /// The descendants (≥ 2).
        into: Vec<i64>,
    },
    /// Several previous clusters feed one current cluster.
    Merged {
        /// The ancestors (≥ 2).
        from: Vec<i64>,
        /// The descendant.
        into: i64,
    },
    /// Single ancestor, single descendant, population grew.
    Expanded {
        /// The ancestor.
        from: i64,
        /// The descendant.
        into: i64,
        /// Population change (> 0).
        delta: isize,
    },
    /// Single ancestor, single descendant, population shrank or held.
    Shrunk {
        /// The ancestor.
        from: i64,
        /// The descendant.
        into: i64,
        /// Population change (≤ 0).
        delta: isize,
    },
}

/// Tracks cluster lineage from a stream of assignment snapshots.
///
/// ```
/// use disc_core::{ClusterTracker, Evolution};
/// use disc_geom::PointId;
///
/// let mut t = ClusterTracker::new();
/// t.observe(&[(PointId(0), 1), (PointId(1), 1)]);
/// // The cluster keeps its two members and gains one: expansion.
/// let events = t.observe(&[(PointId(0), 1), (PointId(1), 1), (PointId(2), 1)]);
/// assert_eq!(events, vec![Evolution::Expanded { from: 1, into: 1, delta: 1 }]);
/// ```
#[derive(Debug, Default)]
pub struct ClusterTracker {
    prev: FxHashMap<PointId, i64>,
    prev_sizes: FxHashMap<i64, usize>,
    slide: u64,
}

impl ClusterTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        ClusterTracker::default()
    }

    /// Number of snapshots observed.
    pub fn slides_seen(&self) -> u64 {
        self.slide
    }

    /// Feeds the next snapshot (`(id, cluster)`, `-1` = noise) and returns
    /// the evolution events since the previous snapshot. The first call
    /// reports every cluster as `Emerged`.
    pub fn observe(&mut self, assignment: &[(PointId, i64)]) -> Vec<Evolution> {
        self.slide += 1;
        let mut sizes: FxHashMap<i64, usize> = FxHashMap::default();
        // flow[(prev, cur)] = number of shared points.
        let mut flow: FxHashMap<(i64, i64), usize> = FxHashMap::default();
        for (id, cluster) in assignment {
            if *cluster < 0 {
                continue;
            }
            *sizes.entry(*cluster).or_insert(0) += 1;
            if let Some(&p) = self.prev.get(id) {
                if p >= 0 {
                    *flow.entry((p, *cluster)).or_insert(0) += 1;
                }
            }
        }

        // Dominant ancestor per current cluster, dominant descendant per
        // previous cluster.
        let mut ancestor: FxHashMap<i64, i64> = FxHashMap::default();
        let mut best_in: FxHashMap<i64, usize> = FxHashMap::default();
        for (&(p, c), &n) in &flow {
            if n > best_in.get(&c).copied().unwrap_or(0) {
                best_in.insert(c, n);
                ancestor.insert(c, p);
            }
        }

        let mut events = Vec::new();
        // Group current clusters by ancestor.
        let mut children: FxHashMap<i64, Vec<i64>> = FxHashMap::default();
        for &c in sizes.keys() {
            match ancestor.get(&c) {
                Some(&p) => children.entry(p).or_default().push(c),
                None => events.push(Evolution::Emerged {
                    cluster: c,
                    size: sizes[&c],
                }),
            }
        }
        // Previous clusters without any descendant dissipated.
        for (&p, &size) in &self.prev_sizes {
            if !children.contains_key(&p) {
                events.push(Evolution::Dissipated { cluster: p, size });
            }
        }
        // Splits / merges / expansion / shrink.
        // A "merge" is a current cluster that is the dominant descendant of
        // several previous clusters.
        let mut merged_into: FxHashMap<i64, Vec<i64>> = FxHashMap::default();
        let mut descendant: FxHashMap<i64, i64> = FxHashMap::default();
        let mut best_out: FxHashMap<i64, usize> = FxHashMap::default();
        for (&(p, c), &n) in &flow {
            if n > best_out.get(&p).copied().unwrap_or(0) {
                best_out.insert(p, n);
                descendant.insert(p, c);
            }
        }
        for (&p, &c) in &descendant {
            merged_into.entry(c).or_default().push(p);
        }
        for (p, mut kids) in children {
            kids.sort_unstable();
            if kids.len() >= 2 {
                events.push(Evolution::Split {
                    from: p,
                    into: kids,
                });
                continue;
            }
            let c = kids[0];
            let mut sources = merged_into.get(&c).cloned().unwrap_or_default();
            sources.sort_unstable();
            if sources.len() >= 2 {
                // Report each merge once, keyed by its destination: only
                // when p is the smallest source.
                if sources.first() == Some(&p) {
                    events.push(Evolution::Merged {
                        from: sources,
                        into: c,
                    });
                }
                continue;
            }
            let before = self.prev_sizes.get(&p).copied().unwrap_or(0) as isize;
            let delta = sizes[&c] as isize - before;
            if delta > 0 {
                events.push(Evolution::Expanded {
                    from: p,
                    into: c,
                    delta,
                });
            } else {
                events.push(Evolution::Shrunk {
                    from: p,
                    into: c,
                    delta,
                });
            }
        }

        self.prev = assignment.iter().copied().collect();
        self.prev_sizes = sizes;
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(entries: &[(u64, i64)]) -> Vec<(PointId, i64)> {
        entries.iter().map(|&(i, c)| (PointId(i), c)).collect()
    }

    #[test]
    fn first_snapshot_emerges_everything() {
        let mut t = ClusterTracker::new();
        let events = t.observe(&snap(&[(0, 1), (1, 1), (2, 2), (3, -1)]));
        let mut emerged: Vec<i64> = events
            .iter()
            .filter_map(|e| match e {
                Evolution::Emerged { cluster, .. } => Some(*cluster),
                _ => None,
            })
            .collect();
        emerged.sort_unstable();
        assert_eq!(emerged, vec![1, 2]);
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn stable_cluster_shrinks_or_expands() {
        let mut t = ClusterTracker::new();
        t.observe(&snap(&[(0, 5), (1, 5), (2, 5)]));
        let events = t.observe(&snap(&[(1, 5), (2, 5), (3, 5), (4, 5)]));
        assert_eq!(
            events,
            vec![Evolution::Expanded {
                from: 5,
                into: 5,
                delta: 1
            }]
        );
        let events = t.observe(&snap(&[(3, 5), (4, 5)]));
        assert_eq!(
            events,
            vec![Evolution::Shrunk {
                from: 5,
                into: 5,
                delta: -2
            }]
        );
    }

    #[test]
    fn split_is_detected() {
        let mut t = ClusterTracker::new();
        t.observe(&snap(&[(0, 1), (1, 1), (2, 1), (3, 1)]));
        let events = t.observe(&snap(&[(0, 1), (1, 1), (2, 9), (3, 9)]));
        assert!(events.contains(&Evolution::Split {
            from: 1,
            into: vec![1, 9]
        }));
    }

    #[test]
    fn merge_is_detected_once() {
        let mut t = ClusterTracker::new();
        t.observe(&snap(&[(0, 1), (1, 1), (2, 2), (3, 2)]));
        let events = t.observe(&snap(&[(0, 7), (1, 7), (2, 7), (3, 7)]));
        let merges: Vec<&Evolution> = events
            .iter()
            .filter(|e| matches!(e, Evolution::Merged { .. }))
            .collect();
        assert_eq!(merges.len(), 1);
        assert_eq!(
            merges[0],
            &Evolution::Merged {
                from: vec![1, 2],
                into: 7
            }
        );
    }

    #[test]
    fn dissipation_and_emergence_coexist() {
        let mut t = ClusterTracker::new();
        t.observe(&snap(&[(0, 1), (1, 1)]));
        let events = t.observe(&snap(&[(5, 3), (6, 3)]));
        assert!(events.contains(&Evolution::Dissipated {
            cluster: 1,
            size: 2
        }));
        assert!(events.contains(&Evolution::Emerged {
            cluster: 3,
            size: 2
        }));
    }

    #[test]
    fn noise_points_are_ignored_for_lineage() {
        let mut t = ClusterTracker::new();
        t.observe(&snap(&[(0, 1), (1, -1)]));
        let events = t.observe(&snap(&[(0, 1), (1, 1)]));
        assert_eq!(
            events,
            vec![Evolution::Expanded {
                from: 1,
                into: 1,
                delta: 1
            }]
        );
    }

    #[test]
    fn end_to_end_with_disc_on_maze() {
        use crate::{Disc, DiscConfig};
        use disc_window::{datasets, SlidingWindow};
        let recs = datasets::maze(2500, 10, 77);
        let mut w = SlidingWindow::new(recs, 600, 120);
        let mut disc = Disc::new(DiscConfig::new(0.6, 5));
        let mut tracker = ClusterTracker::new();
        disc.apply(&w.fill());
        let first = tracker.observe(&disc.assignments());
        assert!(first.iter().all(|e| matches!(e, Evolution::Emerged { .. })));
        let mut total = 0usize;
        while let Some(b) = w.advance() {
            disc.apply(&b);
            total += tracker.observe(&disc.assignments()).len();
        }
        assert!(total > 0, "a maze stream must produce evolution events");
    }
}
