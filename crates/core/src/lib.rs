//! `disc-core` — the DISC algorithm (ICDE 2021).
//!
//! DISC (*Density-based Incremental Striding Cluster*) maintains an **exact**
//! DBSCAN clustering of a sliding window over a point stream. Whenever the
//! window advances by one stride, [`Disc::apply`] ingests the batch of
//! entering (`Δin`) and leaving (`Δout`) points and updates the clustering in
//! two steps that mirror the paper:
//!
//! 1. **COLLECT** (Alg. 1, [`collect`]): update every affected point's
//!    neighbour count `n_ε`, maintain the R-tree, and identify the
//!    *ex-cores* (cores that lost core status or left) and *neo-cores*
//!    (points that just gained core status).
//! 2. **CLUSTER** (Alg. 2, [`cluster`]): for one representative of every
//!    retro-reachable class of ex-cores, check whether its *minimal bonding
//!    cores* `M⁻` stay density-connected (split vs. shrink), using the
//!    **MS-BFS** early-terminating multi-starter search ([`msbfs`]) and the
//!    R-tree's epoch-based probing; then process neo-cores, merging or
//!    emerging clusters by inspecting the labels of `M⁺`.
//!
//! The result after every slide is guaranteed to be DBSCAN-equivalent: the
//! core partition is identical and every border is attached to a cluster
//! with a core in its ε-neighbourhood (DBSCAN itself leaves multi-cluster
//! borders ambiguous). The property tests in this crate and the
//! `disc-baselines` crate verify that equivalence against a from-scratch
//! DBSCAN oracle on randomised streams.
//!
//! # Quick start
//!
//! ```
//! use disc_core::{Disc, DiscConfig, PointLabel};
//! use disc_window::{SlidingWindow, datasets};
//!
//! let records = datasets::gaussian_blobs::<2>(2_000, 3, 0.5, 42);
//! let mut window = SlidingWindow::new(records, 800, 40);
//! let mut disc = Disc::new(DiscConfig::new(1.0, 5));
//!
//! disc.apply(&window.fill());
//! while let Some(batch) = window.advance() {
//!     disc.apply(&batch);
//! }
//! let clusters = disc.num_clusters();
//! assert!(clusters >= 3, "three blobs expected, found {clusters}");
//! ```

pub mod cluster;
pub mod collect;
pub mod config;
pub mod dsu;
pub mod engine;
pub mod kdistance;
pub mod label;
pub mod materialized;
pub mod msbfs;
pub mod record;
pub mod state;
pub mod stats;
pub mod store;
pub mod tracker;

pub use config::{DiscConfig, IndexBackend};
pub use engine::{Disc, SlideError};
pub use label::{ClusterId, PointLabel};
pub use materialized::GraphDisc;
pub use state::{backend_of, EngineState, PointState, StateError};
pub use stats::SlideStats;
pub use tracker::{ClusterTracker, Evolution};
