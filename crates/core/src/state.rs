//! Engine state snapshot/restore — the in-memory half of durability.
//!
//! [`EngineState`] is a plain-data image of everything a [`Disc`] engine
//! needs to resume exactly where it stopped: the configuration, the slide
//! counter, every window point's record, and the raw cluster union-find.
//! The spatial index is deliberately *not* serialized structurally — it is
//! derived data, rebuilt from the window points via `bulk_insert` on
//! restore, which keeps the format backend-independent (one checkpoint
//! restores into either `Disc<D>` or `Disc<D, GridIndex<D>>`).
//!
//! [`Disc::from_state`] validates the image before constructing anything:
//! a checkpoint decoded from disk is untrusted input, and a malformed one
//! must produce a typed [`StateError`], never a partially-built engine.

use crate::config::{DiscConfig, IndexBackend};
use crate::dsu::Dsu;
use crate::engine::{Disc, SlideError};
use crate::label::ClusterId;
use crate::record::PointRecord;
use crate::store::PointStore;
use disc_geom::{FxHashSet, Point, PointId};
use disc_index::SpatialBackend;
use disc_window::SlideBatch;

/// One window point as serialized into a checkpoint.
///
/// `in_window` is omitted: between slides every live record is in the
/// window (ghosts exist only mid-slide, and state is only exported between
/// slides).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PointState<const D: usize> {
    /// Stable arrival id.
    pub id: PointId,
    /// Spatial location.
    pub point: Point<D>,
    /// Self-inclusive ε-neighbour count.
    pub n_eps: u32,
    /// Core status frozen at the end of the last slide.
    pub prev_core: bool,
    /// Raw cluster id (`u32::MAX` when never clustered).
    pub cid: u32,
    /// Adopter core for border points.
    pub adopter: Option<PointId>,
}

/// A complete, self-contained image of a [`Disc`] engine between slides.
#[derive(Clone, Debug, PartialEq)]
pub struct EngineState<const D: usize> {
    /// The configuration in force.
    pub config: DiscConfig,
    /// Committed slides so far.
    pub slide_seq: u64,
    /// Every window point, sorted by arrival id.
    pub points: Vec<PointState<D>>,
    /// Cluster union-find parent vector.
    pub dsu_parent: Vec<u32>,
    /// Cluster union-find size vector.
    pub dsu_size: Vec<u32>,
}

/// Why an [`EngineState`] cannot be restored.
///
/// Returned by [`Disc::from_state`]; every variant names the part of the
/// image that failed validation so corrupted checkpoints are diagnosable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StateError {
    /// The configuration is unusable (non-positive ε, zero τ, …).
    InvalidConfig(String),
    /// The union-find vectors are malformed (length mismatch,
    /// out-of-bounds parent, cycle).
    InvalidDsu(String),
    /// A point record is malformed; names the offending id.
    InvalidRecord(PointId, String),
    /// Replaying a WAL batch on top of the restored state failed — the log
    /// does not continue the checkpoint it was paired with.
    Replay {
        /// 1-based sequence number of the slide that failed to apply.
        slide: u64,
        /// The underlying rejection.
        error: SlideError,
    },
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            StateError::InvalidDsu(msg) => write!(f, "invalid cluster union-find: {msg}"),
            StateError::InvalidRecord(id, msg) => write!(f, "invalid record for {id}: {msg}"),
            StateError::Replay { slide, error } => {
                write!(f, "replaying slide {slide}: {error}")
            }
        }
    }
}

impl std::error::Error for StateError {}

impl<const D: usize, B: SpatialBackend<D>> Disc<D, B> {
    /// Exports a complete image of the engine's state.
    ///
    /// Must be called *between* slides (the only time a `&self` method can
    /// run), when no ghosts are live and every record is in the window.
    /// Points are sorted by id so the image — and any checkpoint written
    /// from it — is byte-deterministic for a given engine state.
    pub fn export_state(&self) -> EngineState<D> {
        let mut points: Vec<PointState<D>> = self
            .points
            .iter()
            .map(|(id, rec)| {
                debug_assert!(rec.in_window, "ghost {id} live during export");
                PointState {
                    id,
                    point: rec.point,
                    n_eps: rec.n_eps,
                    prev_core: rec.prev_core,
                    cid: rec.cid.0,
                    adopter: rec.adopter,
                }
            })
            .collect();
        points.sort_unstable_by_key(|p| p.id);
        EngineState {
            config: self.cfg,
            slide_seq: self.slide_seq(),
            points,
            dsu_parent: self.clusters.parent_slice().to_vec(),
            dsu_size: self.clusters.size_slice().to_vec(),
        }
    }

    /// Rebuilds an engine from an exported image.
    ///
    /// Validates the image exhaustively first — configuration bounds,
    /// union-find well-formedness, per-record finiteness, cluster-id
    /// bounds, adopter resolvability, duplicate ids — and only then
    /// constructs the engine, rebuilding the spatial index from the window
    /// points via `bulk_insert`. On `Err` nothing is constructed; a
    /// corrupt image can never yield a partially-restored engine.
    ///
    /// The restored engine reports exactly the same `assignments()`,
    /// `num_clusters()`, `census()` and `snapshot()` as the engine that
    /// exported the image.
    pub fn from_state(state: EngineState<D>) -> Result<Self, StateError> {
        let cfg = state.config;
        if !(cfg.eps > 0.0 && cfg.eps.is_finite()) {
            return Err(StateError::InvalidConfig(format!(
                "eps must be positive and finite, got {}",
                cfg.eps
            )));
        }
        if cfg.tau < 1 {
            return Err(StateError::InvalidConfig("tau must be at least 1".into()));
        }

        let clusters =
            Dsu::from_parts(state.dsu_parent, state.dsu_size).map_err(StateError::InvalidDsu)?;
        let dsu_len = clusters.len() as u32;

        let mut seen: FxHashSet<PointId> = FxHashSet::default();
        for p in &state.points {
            if !seen.insert(p.id) {
                return Err(StateError::InvalidRecord(p.id, "duplicate id".into()));
            }
            if !p.point.is_finite() {
                return Err(StateError::InvalidRecord(
                    p.id,
                    "non-finite coordinates".into(),
                ));
            }
            if p.n_eps < 1 {
                return Err(StateError::InvalidRecord(
                    p.id,
                    "n_eps below the self-count of 1".into(),
                ));
            }
            let is_core = p.n_eps as usize >= cfg.tau;
            if is_core && p.cid >= dsu_len {
                return Err(StateError::InvalidRecord(
                    p.id,
                    format!("core cluster id {} outside dsu of {dsu_len} slots", p.cid),
                ));
            }
            if p.cid != u32::MAX && p.cid >= dsu_len {
                return Err(StateError::InvalidRecord(
                    p.id,
                    format!("cluster id {} outside dsu of {dsu_len} slots", p.cid),
                ));
            }
            if let Some(a) = p.adopter {
                if is_core {
                    return Err(StateError::InvalidRecord(
                        p.id,
                        format!("core point carries adopter {a}"),
                    ));
                }
                if !seen.contains(&a) && !state.points.iter().any(|q| q.id == a) {
                    return Err(StateError::InvalidRecord(
                        p.id,
                        format!("adopter {a} is not in the window"),
                    ));
                }
            }
        }

        // Validation passed: build the engine in one go.
        let mut points: PointStore<D> = PointStore::new();
        if let (Some(first), Some(last)) = (state.points.first(), state.points.last()) {
            let span = (last.id.raw() - first.id.raw() + 1) as usize;
            points.reserve_span(span.max(state.points.len()));
        }
        let mut items: Vec<(PointId, Point<D>)> = Vec::with_capacity(state.points.len());
        for p in &state.points {
            items.push((p.id, p.point));
            points.insert(
                p.id,
                PointRecord {
                    point: p.point,
                    n_eps: p.n_eps,
                    in_window: true,
                    prev_core: p.prev_core,
                    cid: ClusterId(p.cid),
                    adopter: p.adopter,
                },
            );
        }
        let mut tree = B::with_eps_hint(cfg.eps);
        tree.bulk_insert(items);

        let mut disc = Disc::with_index(cfg);
        disc.points = points;
        disc.tree = tree;
        disc.clusters = clusters;
        disc.set_slide_seq(state.slide_seq);
        Ok(disc)
    }

    /// Restores an engine from `state` and replays `tail` — the committed
    /// slide batches logged *after* the state was exported, in order.
    ///
    /// This is the recovery path: load the last checkpoint, then replay the
    /// WAL tail. Returns the recovered engine and the number of replayed
    /// slides. A batch the engine rejects turns into
    /// [`StateError::Replay`] naming the failing slide — a WAL that does
    /// not continue its checkpoint fails loudly instead of silently
    /// producing a diverged clustering.
    pub fn recover<I>(state: EngineState<D>, tail: I) -> Result<(Self, u64), StateError>
    where
        I: IntoIterator<Item = SlideBatch<D>>,
    {
        let mut disc = Self::from_state(state)?;
        let mut replayed = 0u64;
        for batch in tail {
            let slide = disc.slide_seq() + 1;
            disc.try_apply(&batch)
                .map_err(|error| StateError::Replay { slide, error })?;
            replayed += 1;
        }
        Ok((disc, replayed))
    }
}

/// Declares which engine instantiation a checkpoint restores into; used by
/// drivers to reject a checkpoint written for the other backend *type*
/// before attempting a restore (the format itself is backend-independent).
pub fn backend_of<const D: usize>(state: &EngineState<D>) -> IndexBackend {
    state.config.backend
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_index::{CurveIndex, GridIndex, RTree};

    fn stream(n: u64) -> Vec<(PointId, Point<2>)> {
        (0..n)
            .map(|i| {
                (
                    PointId(i),
                    Point::new([(i % 13) as f64 * 0.4, (i / 13) as f64 * 0.4]),
                )
            })
            .collect()
    }

    fn engine_after_slides<B: SpatialBackend<2>>(slides: usize) -> Disc<2, B> {
        let pts = stream(120);
        let mut disc: Disc<2, B> = Disc::with_index(DiscConfig::new(0.9, 4));
        disc.apply(&SlideBatch {
            incoming: pts[..60].to_vec(),
            outgoing: Vec::new(),
        });
        for s in 0..slides {
            let lo = s * 10;
            disc.apply(&SlideBatch {
                incoming: pts[60 + lo..70 + lo].to_vec(),
                outgoing: pts[lo..lo + 10].to_vec(),
            });
        }
        disc
    }

    fn roundtrip<B: SpatialBackend<2>>() {
        let disc: Disc<2, B> = engine_after_slides(3);
        let state = disc.export_state();
        assert_eq!(state.slide_seq, 4);
        assert!(state.points.windows(2).all(|w| w[0].id < w[1].id));
        let mut back: Disc<2, B> = Disc::from_state(state.clone()).unwrap();
        assert_eq!(back.slide_seq(), disc.slide_seq());
        assert_eq!(back.assignments(), disc.assignments());
        assert_eq!(back.num_clusters(), disc.num_clusters());
        assert_eq!(back.census(), disc.census());
        assert_eq!(back.snapshot(), disc.snapshot());
        back.check_invariants();
        // The image itself is stable under a second export.
        assert_eq!(back.export_state(), state);
    }

    #[test]
    fn export_restores_identically_on_rtree() {
        roundtrip::<RTree<2>>();
    }

    #[test]
    fn export_restores_identically_on_grid() {
        roundtrip::<GridIndex<2>>();
    }

    #[test]
    fn export_restores_identically_on_curve() {
        roundtrip::<CurveIndex<2>>();
    }

    #[test]
    fn restored_engine_continues_like_the_original() {
        let pts = stream(120);
        let mut original: Disc<2> = engine_after_slides(2);
        let mut restored: Disc<2> = Disc::from_state(original.export_state()).unwrap();
        for s in 2..4 {
            let lo = s * 10;
            let batch = SlideBatch {
                incoming: pts[60 + lo..70 + lo].to_vec(),
                outgoing: pts[lo..lo + 10].to_vec(),
            };
            original.apply(&batch);
            restored.apply(&batch);
            assert_eq!(original.assignments(), restored.assignments());
        }
        restored.check_invariants();
    }

    #[test]
    fn recover_replays_the_tail() {
        let pts = stream(120);
        let mut original: Disc<2> = engine_after_slides(1);
        let state = original.export_state();
        let mut tail = Vec::new();
        for s in 1..4 {
            let lo = s * 10;
            let batch = SlideBatch {
                incoming: pts[60 + lo..70 + lo].to_vec(),
                outgoing: pts[lo..lo + 10].to_vec(),
            };
            original.apply(&batch);
            tail.push(batch);
        }
        let (mut recovered, replayed) = Disc::<2>::recover(state, tail).unwrap();
        assert_eq!(replayed, 3);
        assert_eq!(recovered.slide_seq(), original.slide_seq());
        assert_eq!(recovered.assignments(), original.assignments());
        recovered.check_invariants();
    }

    #[test]
    fn recover_rejects_a_wal_that_does_not_continue_the_checkpoint() {
        let disc: Disc<2> = engine_after_slides(1);
        let state = disc.export_state();
        // A batch retiring a point that is not in the window cannot be a
        // committed continuation of this checkpoint.
        let bogus = SlideBatch::<2> {
            incoming: Vec::new(),
            outgoing: vec![(PointId(9999), Point::new([0.0, 0.0]))],
        };
        let err = match Disc::<2>::recover(state, vec![bogus]) {
            Ok(_) => panic!("bogus tail replayed"),
            Err(e) => e,
        };
        match err {
            StateError::Replay { slide, error } => {
                assert_eq!(slide, 3);
                assert_eq!(error, SlideError::UnknownOutgoing(PointId(9999)));
            }
            other => panic!("expected Replay, got {other:?}"),
        }
    }

    #[test]
    fn malformed_images_are_rejected() {
        let disc: Disc<2> = engine_after_slides(1);
        let good = disc.export_state();

        let mut bad = good.clone();
        bad.config.eps = f64::NAN;
        assert!(matches!(
            Disc::<2>::from_state(bad),
            Err(StateError::InvalidConfig(_))
        ));

        let mut bad = good.clone();
        bad.config.tau = 0;
        assert!(matches!(
            Disc::<2>::from_state(bad),
            Err(StateError::InvalidConfig(_))
        ));

        let mut bad = good.clone();
        bad.dsu_parent[0] = 9999;
        assert!(matches!(
            Disc::<2>::from_state(bad),
            Err(StateError::InvalidDsu(_))
        ));

        let mut bad = good.clone();
        let n = bad.dsu_parent.len();
        if n >= 2 {
            bad.dsu_parent[0] = 1;
            bad.dsu_parent[1] = 0;
            assert!(matches!(
                Disc::<2>::from_state(bad),
                Err(StateError::InvalidDsu(_))
            ));
        }

        let mut bad = good.clone();
        bad.points[0].point = Point::new([f64::INFINITY, 0.0]);
        let id = bad.points[0].id;
        match Disc::<2>::from_state(bad) {
            Err(StateError::InvalidRecord(bad_id, msg)) => {
                assert_eq!(bad_id, id);
                assert_eq!(msg, "non-finite coordinates");
            }
            Err(other) => panic!("wrong error: {other}"),
            Ok(_) => panic!("non-finite image restored"),
        }

        let mut bad = good.clone();
        let dup = bad.points[0];
        bad.points.push(dup);
        assert!(matches!(
            Disc::<2>::from_state(bad),
            Err(StateError::InvalidRecord(_, _))
        ));

        let mut bad = good.clone();
        bad.points[0].n_eps = 0;
        assert!(matches!(
            Disc::<2>::from_state(bad),
            Err(StateError::InvalidRecord(_, _))
        ));

        let mut bad = good.clone();
        let core_idx = bad
            .points
            .iter()
            .position(|p| p.n_eps as usize >= bad.config.tau)
            .expect("stream produces cores");
        bad.points[core_idx].cid = u32::MAX - 1;
        assert!(matches!(
            Disc::<2>::from_state(bad),
            Err(StateError::InvalidRecord(_, _))
        ));

        let mut bad = good.clone();
        let border_idx = bad.points.iter().position(|p| p.adopter.is_some());
        if let Some(i) = border_idx {
            bad.points[i].adopter = Some(PointId(123_456));
            assert!(matches!(
                Disc::<2>::from_state(bad),
                Err(StateError::InvalidRecord(_, _))
            ));
        }

        // The pristine image still restores.
        assert!(Disc::<2>::from_state(good).is_ok());
    }

    #[test]
    fn backend_of_reads_the_declared_backend() {
        let disc: Disc<2> = engine_after_slides(0);
        assert_eq!(backend_of(&disc.export_state()), IndexBackend::RTree);
    }
}
