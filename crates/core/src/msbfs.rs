//! Connectivity checking over the (non-materialised) core graph.
//!
//! Whether an ex-core splits its cluster reduces to: are the minimal
//! bonding cores `M⁻` still density-connected in the current window? The
//! vertices of the graph are the current core points, edges are ε-proximity,
//! and edges are discovered by range searches — the paper deliberately does
//! *not* materialise the graph (Ω(n²) maintenance).
//!
//! Four strategies are provided, selected by [`DiscConfig`]'s two toggles
//! (the Fig. 8 ablation grid):
//!
//! * **MS-BFS** (§IV-A, Alg. 3): one BFS per starter, advanced round-robin;
//!   searches that meet merge their queues (tracked in a thread union-find).
//!   Terminates as soon as one search remains — a *shrink* is confirmed
//!   after exploring only the region between the starters, not the whole
//!   cluster.
//! * **sequential BFS** (ablation): full single-source BFS per component.
//! * each of the above with or without **epoch-based probing** of the
//!   R-tree (visited marks in the index vs. a side hash set).
//!
//! [`DiscConfig`]: crate::DiscConfig

use crate::dsu::Dsu;
use crate::engine::Disc;
use disc_geom::{FxHashMap, PointId};
use disc_index::{ProbeOutcome, SpatialBackend};
use std::collections::VecDeque;

/// Result of a connectivity check over a starter set.
#[derive(Debug)]
pub struct Connectivity {
    /// Number of connected components among the starters.
    pub ncc: usize,
    /// Fully-enumerated components that must be relabelled with fresh
    /// cluster ids. The surviving component (which keeps the old id) is
    /// *not* listed — MS-BFS never fully explores it. Lists may contain a
    /// few duplicate ids; relabelling is idempotent.
    pub detached: Vec<Vec<PointId>>,
    /// A representative core of the surviving component (used by the
    /// cross-class split fixup, see `cluster.rs`).
    pub survivor_rep: PointId,
    /// Queue expansions (vertex pops) this check performed, under the
    /// *same* accounting for every strategy: each dequeued vertex counts
    /// once, whether popped by a round-robin MS-BFS thread or a sequential
    /// BFS. Identical inputs explored to completion therefore report
    /// identical rounds across strategies (early termination is the only
    /// legitimate source of divergence), which is what makes the Fig. 8
    /// ablation numbers comparable. The telemetry layer aggregates these
    /// per slide.
    pub rounds: usize,
}

impl<const D: usize, B: SpatialBackend<D>> Disc<D, B> {
    /// Checks how many connected components of the current core graph the
    /// `starters` fall into, dispatching on the configured strategy.
    ///
    /// `starters` must be current core points, pairwise distinct.
    pub(crate) fn check_connectivity(&mut self, starters: &[PointId]) -> Connectivity {
        debug_assert!(!starters.is_empty());
        if starters.len() == 1 {
            return Connectivity {
                ncc: 1,
                detached: Vec::new(),
                survivor_rep: starters[0],
                rounds: 0,
            };
        }
        match (self.cfg.enable_msbfs, self.cfg.enable_epoch_probe) {
            (true, true) => self.msbfs(starters, true),
            (true, false) => self.msbfs(starters, false),
            (false, true) => self.sequential_bfs(starters, true),
            (false, false) => self.sequential_bfs(starters, false),
        }
    }

    /// Multi-starter BFS (Alg. 3). `use_epoch` selects the probing flavour.
    ///
    /// ## Wide execution
    ///
    /// When the engine pool is wider than 1, each sweep over the active
    /// searches first scans the balls of every search's *next* vertex (its
    /// queue front) in parallel on the frozen index, then replays the exact
    /// sequential round-robin using those precomputed hits. Speculated
    /// fronts are stable within a sweep because merges append the loser's
    /// queue at the winner's *back*; a pop that was not speculated (e.g. a
    /// queue that was empty at sweep start and gained items mid-sweep)
    /// falls back to a synchronous scan. The speculation map is keyed by
    /// vertex id and persists across sweeps, so work is never thrown away:
    /// a vertex scanned on behalf of a search that got merged is consumed
    /// when the winning search eventually pops it.
    ///
    /// The wide path always runs the *plain side-map* flavour, which is
    /// bit-identical to the epoch flavour in everything this function
    /// returns: both defer unions until after the hit loop, and the epoch
    /// probe's fresh/foreign lists come out in the same traversal order as
    /// a plain filtered scan (pruned regions contribute only same-owner
    /// entries the plain filter drops anyway). Only index counters differ.
    fn msbfs(&mut self, starters: &[PointId], use_epoch: bool) -> Connectivity {
        let eps = self.cfg.eps;
        let tau = self.cfg.tau;
        let k = starters.len();
        let wide = self.pool.width() > 1;
        let use_epoch = use_epoch && !wide;
        let mut spec: FxHashMap<PointId, Vec<PointId>> = FxHashMap::default();

        let mut threads = Dsu::new();
        let mut queues: Vec<VecDeque<PointId>> = Vec::with_capacity(k);
        let mut visited: Vec<Vec<PointId>> = Vec::with_capacity(k);
        // Side ownership map for the non-epoch flavour.
        let mut owner_of: FxHashMap<PointId, u32> = FxHashMap::default();

        let probe = if use_epoch {
            Some(self.tree.begin_epoch())
        } else {
            None
        };
        for (slot, &s) in starters.iter().enumerate() {
            let t = threads.alloc();
            debug_assert_eq!(t as usize, slot);
            let mut q = VecDeque::new();
            q.push_back(s);
            queues.push(q);
            visited.push(vec![s]);
            // Starters count as visited from the outset (Alg. 3 line 4):
            // the first probe that reaches a foreign starter merges the two
            // searches without that starter ever probing on its own.
            match probe {
                Some(probe) => {
                    let marked = self
                        .tree
                        .mark_visited(probe, &self.points.point_at(s), s, t);
                    debug_assert!(marked, "starter {s} missing from the index");
                }
                None => {
                    owner_of.insert(s, t);
                }
            }
        }
        let mut out = ProbeOutcome::default();
        let mut plain_hits: Vec<PointId> = Vec::new();

        let mut active: Vec<u32> = (0..k as u32).collect();
        let mut detached: Vec<Vec<PointId>> = Vec::new();
        let mut rounds = 0usize;

        while active.len() > 1 {
            if wide {
                // Speculate this sweep's pops: every active root will pop
                // its current queue front. Scan those balls concurrently.
                let mut fronts: Vec<PointId> = Vec::new();
                for &t in &active {
                    if threads.find(t) != t {
                        continue;
                    }
                    if let Some(&f) = queues[t as usize].front() {
                        if !spec.contains_key(&f) {
                            fronts.push(f);
                        }
                    }
                }
                self.speculate_core_balls(&fronts, &mut spec);
            }
            let mut made_progress = false;
            let mut slot_idx = 0;
            while slot_idx < active.len() {
                if active.len() <= 1 {
                    break;
                }
                let t = active[slot_idx];
                // The slot may have been merged into another active root
                // during this round.
                if threads.find(t) != t {
                    active.swap_remove(slot_idx);
                    continue;
                }
                let Some(r) = queues[t as usize].pop_front() else {
                    // Exhausted: this thread fully enumerated a component
                    // that detaches from the cluster (Alg. 3 line 6).
                    detached.push(std::mem::take(&mut visited[t as usize]));
                    active.swap_remove(slot_idx);
                    continue;
                };
                rounds += 1;
                made_progress = true;

                let center = self.points.point_at(r);
                let mut merge_with: Vec<u32> = Vec::new();

                if let Some(probe) = probe {
                    out.clear();
                    let points = &self.points;
                    let threads_ref = &mut threads;
                    let mut is_vertex =
                        |id: PointId| points.get(id).map(|p| p.is_core(tau)).unwrap_or(false);
                    let mut resolve = |o: u32| threads_ref.find(o);
                    self.tree.epoch_probe(
                        probe,
                        &center,
                        eps,
                        t,
                        &mut resolve,
                        &mut is_vertex,
                        &mut out,
                    );
                    for &(id, _) in &out.fresh {
                        visited[t as usize].push(id);
                        queues[t as usize].push_back(id);
                    }
                    for &(_, other) in &out.foreign {
                        merge_with.push(other);
                    }
                } else {
                    plain_hits.clear();
                    if let Some(hits) = spec.remove(&r) {
                        // Nothing mutated records or the index since the
                        // speculative scan, so its core-filtered hits are
                        // exactly what a scan right now would produce.
                        plain_hits.extend(hits);
                    } else {
                        let points = &self.points;
                        self.tree.for_each_in_ball(&center, eps, |id, _| {
                            if points.get(id).map(|p| p.is_core(tau)).unwrap_or(false) {
                                plain_hits.push(id);
                            }
                        });
                    }
                    for &id in &plain_hits {
                        match owner_of.get(&id) {
                            None => {
                                owner_of.insert(id, t);
                                visited[t as usize].push(id);
                                queues[t as usize].push_back(id);
                            }
                            Some(&o) => {
                                if threads.find(o) != threads.find(t) {
                                    merge_with.push(o);
                                }
                            }
                        }
                    }
                }

                // Merge the threads that met (Alg. 3 lines 10-11).
                for other in merge_with {
                    let ra = threads.find(t);
                    let rb = threads.find(other);
                    if ra == rb {
                        continue;
                    }
                    let winner = threads.union(ra, rb);
                    let loser = if winner == ra { rb } else { ra };
                    let q = std::mem::take(&mut queues[loser as usize]);
                    queues[winner as usize].extend(q);
                    let v = std::mem::take(&mut visited[loser as usize]);
                    visited[winner as usize].extend(v);
                }
                // `t` may have lost its root status in the merge.
                if threads.find(t) != t {
                    active.swap_remove(slot_idx);
                } else {
                    slot_idx += 1;
                }
            }
            debug_assert!(
                made_progress || active.len() <= 1,
                "MS-BFS made no progress with multiple active threads"
            );
        }

        // Exactly one thread survives the loop; any of its starters
        // represents the surviving component.
        let root = threads.find(active[0]);
        let survivor_rep = visited[root as usize][0];
        Connectivity {
            ncc: detached.len() + 1,
            detached,
            survivor_rep,
            rounds,
        }
    }

    /// Scans the ε-balls of `fronts` concurrently over the frozen index,
    /// filtering each to current core points, and records the results in
    /// `spec` keyed by vertex. The core filter is safe to evaluate inside
    /// the workers because MS-BFS mutates neither records nor the index.
    /// Per-task index counters merge back in task order.
    fn speculate_core_balls(
        &mut self,
        fronts: &[PointId],
        spec: &mut FxHashMap<PointId, Vec<PointId>>,
    ) {
        if fronts.is_empty() {
            return;
        }
        let eps = self.cfg.eps;
        let tau = self.cfg.tau;
        let tree = &self.tree;
        let points = &self.points;
        let tasks = self.pool.run(fronts.len(), |i| {
            let center = points.point_at(fronts[i]);
            let mut hits: Vec<PointId> = Vec::new();
            let mut stats = disc_index::Stats::default();
            tree.scan_ball(
                &center,
                eps,
                |id, _| {
                    if points.get(id).map(|p| p.is_core(tau)).unwrap_or(false) {
                        hits.push(id);
                    }
                },
                &mut stats,
            );
            (hits, stats)
        });
        for (i, (hits, stats)) in tasks.into_iter().enumerate() {
            self.tree.stats_mut().merge(&stats);
            spec.insert(fronts[i], hits);
        }
    }

    /// Ablation baseline: full single-source BFS per component, no early
    /// termination. The first component found keeps the old cluster id.
    fn sequential_bfs(&mut self, starters: &[PointId], use_epoch: bool) -> Connectivity {
        let eps = self.cfg.eps;
        let tau = self.cfg.tau;

        let probe = if use_epoch {
            Some(self.tree.begin_epoch())
        } else {
            None
        };
        let mut seen: FxHashMap<PointId, ()> = FxHashMap::default();
        let mut components: Vec<Vec<PointId>> = Vec::new();
        let mut out = ProbeOutcome::default();
        let mut plain_hits: Vec<PointId> = Vec::new();
        let mut threads = Dsu::new(); // one slot per component for the probe
        let mut rounds = 0usize;

        for &s in starters {
            if seen.contains_key(&s) {
                continue;
            }
            let slot = threads.alloc();
            let mut comp = vec![s];
            seen.insert(s, ());
            // Pre-mark the starter, exactly as `msbfs` does (Alg. 3
            // line 4): without this its own first probe reports it fresh,
            // re-enqueues it, and pays one extra pop plus one extra range
            // search per component.
            if let Some(probe) = probe {
                let marked = self
                    .tree
                    .mark_visited(probe, &self.points.point_at(s), s, slot);
                debug_assert!(marked, "starter {s} missing from the index");
            }
            let mut queue: VecDeque<PointId> = VecDeque::new();
            queue.push_back(s);
            while let Some(r) = queue.pop_front() {
                rounds += 1;
                let center = self.points.point_at(r);
                if let Some(probe) = probe {
                    out.clear();
                    let points = &self.points;
                    let mut is_vertex =
                        |id: PointId| points.get(id).map(|p| p.is_core(tau)).unwrap_or(false);
                    let mut resolve = |o: u32| o;
                    self.tree.epoch_probe(
                        probe,
                        &center,
                        eps,
                        slot,
                        &mut resolve,
                        &mut is_vertex,
                        &mut out,
                    );
                    debug_assert!(
                        out.foreign.is_empty(),
                        "maximal components cannot touch each other"
                    );
                    for &(id, _) in &out.fresh {
                        seen.insert(id, ());
                        comp.push(id);
                        queue.push_back(id);
                    }
                } else {
                    plain_hits.clear();
                    let points = &self.points;
                    self.tree.for_each_in_ball(&center, eps, |id, _| {
                        if points.get(id).map(|p| p.is_core(tau)).unwrap_or(false) {
                            plain_hits.push(id);
                        }
                    });
                    for &id in &plain_hits {
                        if seen.insert(id, ()).is_none() {
                            comp.push(id);
                            queue.push_back(id);
                        }
                    }
                }
            }
            components.push(comp);
        }

        let ncc = components.len();
        let survivor_rep = components[0][0];
        // Keep the old id for the first component; relabel the rest.
        let detached = components.split_off(1);
        Connectivity {
            ncc,
            detached,
            survivor_rep,
            rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::DiscConfig;
    use crate::engine::Disc;
    use disc_geom::{Point, PointId};
    use disc_window::SlideBatch;

    /// Builds an engine over a fixed point set (eps 1.2, tau 3: interior
    /// line points are cores).
    fn engine(cfg: DiscConfig, pts: &[(u64, f64, f64)]) -> Disc<2> {
        let mut disc = Disc::new(cfg);
        disc.apply(&SlideBatch {
            incoming: pts
                .iter()
                .map(|&(i, x, y)| (PointId(i), Point::new([x, y])))
                .collect(),
            outgoing: vec![],
        });
        disc
    }

    fn configs() -> [DiscConfig; 4] {
        let c = DiscConfig::new(1.2, 3);
        [
            c,
            c.without_msbfs(),
            c.without_epoch_probe(),
            c.without_msbfs().without_epoch_probe(),
        ]
    }

    /// Two line clusters; starters drawn from both must yield ncc = 2 under
    /// every strategy, with consistent detached/survivor bookkeeping.
    #[test]
    fn all_variants_count_two_components() {
        for cfg in configs() {
            let pts: Vec<(u64, f64, f64)> = (0..5)
                .map(|i| (i, i as f64, 0.0))
                .chain((0..5).map(|i| (10 + i, 20.0 + i as f64, 0.0)))
                .collect();
            let mut disc = engine(cfg, &pts);
            // Cores: interior points of each line (ids 1..4 and 11..14).
            let starters = vec![PointId(2), PointId(12)];
            let conn = disc.check_connectivity(&starters);
            assert_eq!(conn.ncc, 2, "config {cfg:?}");
            assert_eq!(conn.detached.len(), 1);
            // The detached side plus the survivor cover both starters.
            let detached_has_2 = conn.detached[0].contains(&PointId(2));
            let detached_has_12 = conn.detached[0].contains(&PointId(12));
            assert!(detached_has_2 ^ detached_has_12);
            assert!(
                !conn.detached[0].contains(&conn.survivor_rep),
                "survivor must not be in the detached component"
            );
        }
    }

    /// Starters of one component must always merge to ncc = 1 without
    /// enumerating anything.
    #[test]
    fn all_variants_agree_on_connected_starters() {
        for cfg in configs() {
            let pts: Vec<(u64, f64, f64)> = (0..9).map(|i| (i, i as f64, 0.0)).collect();
            let mut disc = engine(cfg, &pts);
            let starters = vec![PointId(1), PointId(4), PointId(7)];
            let conn = disc.check_connectivity(&starters);
            assert_eq!(conn.ncc, 1, "config {cfg:?}");
            assert!(conn.detached.is_empty());
            assert!(starters.contains(&conn.survivor_rep));
        }
    }

    /// Three separate components: ncc = 3 and exactly two enumerated.
    #[test]
    fn all_variants_count_three_components() {
        for cfg in configs() {
            let pts: Vec<(u64, f64, f64)> = (0..4)
                .map(|i| (i, i as f64, 0.0))
                .chain((0..4).map(|i| (10 + i, 50.0 + i as f64, 0.0)))
                .chain((0..4).map(|i| (20 + i, 100.0 + i as f64, 0.0)))
                .collect();
            let mut disc = engine(cfg, &pts);
            let starters = vec![PointId(1), PointId(11), PointId(21)];
            let conn = disc.check_connectivity(&starters);
            assert_eq!(conn.ncc, 3, "config {cfg:?}");
            assert_eq!(conn.detached.len(), 2);
        }
    }

    /// A single starter short-circuits with no searches at all.
    #[test]
    fn single_starter_short_circuits() {
        let pts: Vec<(u64, f64, f64)> = (0..4).map(|i| (i, i as f64, 0.0)).collect();
        let mut disc = engine(DiscConfig::new(1.2, 3), &pts);
        let before = disc.index_stats().range_searches;
        let conn = disc.check_connectivity(&[PointId(1)]);
        assert_eq!(conn.ncc, 1);
        assert_eq!(conn.survivor_rep, PointId(1));
        assert_eq!(disc.index_stats().range_searches, before);
    }

    /// The `rounds` counter uses the same accounting — one unit per
    /// dequeued vertex — in every strategy. On fully-enumerated inputs
    /// (disjoint singleton-core components: no early termination is
    /// possible) all four config variants must therefore report the *same*
    /// ncc, survivor and rounds, and rounds must equal the number of cores
    /// expanded.
    #[test]
    fn rounds_agree_across_strategies_when_enumeration_is_exhaustive() {
        // k components, each a lone core (center + 2 borders within ε):
        // every BFS thread pops exactly its starter and finds no further
        // core, so each strategy performs exactly k expansions.
        let k = 4u64;
        let pts: Vec<(u64, f64, f64)> = (0..k)
            .flat_map(|i| {
                let x = i as f64 * 100.0;
                // Borders sit 2.0 apart (> ε), so only the center reaches
                // n_ε = 3 ≥ τ; each component holds exactly one core.
                [
                    (10 * i, x, 0.0),
                    (10 * i + 1, x + 1.0, 0.0),
                    (10 * i + 2, x - 1.0, 0.0),
                ]
            })
            .collect();
        let starters: Vec<PointId> = (0..k).map(|i| PointId(10 * i)).collect();
        let mut seen: Option<(usize, usize)> = None;
        for cfg in configs() {
            let mut disc = engine(cfg, &pts);
            let conn = disc.check_connectivity(&starters);
            assert_eq!(conn.ncc, k as usize, "config {cfg:?}");
            assert_eq!(conn.rounds, k as usize, "one pop per core, {cfg:?}");
            match seen {
                None => seen = Some((conn.ncc, conn.rounds)),
                Some(prev) => assert_eq!(prev, (conn.ncc, conn.rounds), "config {cfg:?}"),
            }
        }
    }

    /// Full streams driven through the round-robin and sequential variants
    /// must agree on the per-slide instance and starter counts (the checks
    /// run are determined by the classes, not the strategy). Rounds now
    /// share one unit — vertex pops — so the round-robin count can only be
    /// *lower* (early termination stops enumerating the surviving
    /// component), never higher and never a different unit.
    #[test]
    fn stream_instances_and_starters_match_between_strategies() {
        let pts: Vec<(u64, f64, f64)> = (0..9).map(|i| (i, i as f64 * 0.5, 0.0)).collect();
        let mut fast = engine(DiscConfig::new(0.6, 3), &pts);
        let mut slow = engine(DiscConfig::new(0.6, 3).without_msbfs(), &pts);
        // Remove the bridge: one split, detected by both variants.
        let cut = SlideBatch {
            incoming: vec![],
            outgoing: vec![(PointId(4), Point::new([2.0, 0.0]))],
        };
        let sf = fast.apply(&cut);
        let ss = slow.apply(&cut);
        assert_eq!(sf.splits, 1);
        assert_eq!(sf.splits, ss.splits);
        assert_eq!(sf.msbfs_instances, ss.msbfs_instances);
        assert_eq!(sf.msbfs_starters, ss.msbfs_starters);
        assert!(sf.msbfs_rounds >= 1);
        assert!(
            sf.msbfs_rounds <= ss.msbfs_rounds,
            "round-robin may stop early but never pops more: {} vs {}",
            sf.msbfs_rounds,
            ss.msbfs_rounds
        );
        // The partitions must match; which fragment keeps the old label is
        // a strategy-dependent (and semantically arbitrary) choice.
        let partition = |a: Vec<(PointId, i64)>| {
            let mut groups: std::collections::BTreeMap<i64, Vec<PointId>> =
                std::collections::BTreeMap::new();
            for (id, label) in a {
                groups.entry(label).or_default().push(id);
            }
            let mut parts: Vec<Vec<PointId>> = groups.into_values().collect();
            parts.sort();
            parts
        };
        assert_eq!(partition(fast.assignments()), partition(slow.assignments()));
    }

    /// MS-BFS with epoch probing must issue far fewer searches than the
    /// exhaustive sequential variant when starters share a component
    /// through a large cluster.
    #[test]
    fn msbfs_terminates_early_on_shrink() {
        let line: Vec<(u64, f64, f64)> = (0..120).map(|i| (i, i as f64 * 0.5, 0.0)).collect();
        let mut fast = engine(DiscConfig::new(1.2, 3), &line);
        let mut slow = engine(DiscConfig::new(1.2, 3).without_msbfs(), &line);
        // Adjacent starters near one end of a long line.
        let starters = vec![PointId(10), PointId(12)];
        let f0 = fast.index_stats().range_searches;
        fast.check_connectivity(&starters);
        let fast_probes = fast.index_stats().range_searches - f0;
        let s0 = slow.index_stats().range_searches;
        slow.check_connectivity(&starters);
        let slow_probes = slow.index_stats().range_searches - s0;
        assert!(
            fast_probes * 5 < slow_probes,
            "early exit: {fast_probes} vs full traversal {slow_probes}"
        );
    }
}
