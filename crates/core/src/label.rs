//! Public label types.

use std::fmt;

/// A raw cluster identifier.
///
/// Raw ids are allocated when clusters emerge or split off and are unioned
/// when clusters merge; the *canonical* id of a cluster is the union-find
/// root, which is what every public API reports. Ids are never reused.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClusterId(pub u32);

impl fmt::Debug for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// The DBSCAN category and cluster membership of one window point.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PointLabel {
    /// A core point (`n_ε ≥ τ`) of the given cluster.
    Core(ClusterId),
    /// A non-core point within ε of at least one core of the cluster.
    Border(ClusterId),
    /// Neither core nor within ε of any core.
    Noise,
}

impl PointLabel {
    /// The cluster this point belongs to, if any.
    pub fn cluster(&self) -> Option<ClusterId> {
        match self {
            PointLabel::Core(c) | PointLabel::Border(c) => Some(*c),
            PointLabel::Noise => None,
        }
    }

    /// Whether this is a core label.
    pub fn is_core(&self) -> bool {
        matches!(self, PointLabel::Core(_))
    }

    /// Cluster id as `i64`, with `-1` for noise — the snapshot/CSV format.
    pub fn as_i64(&self) -> i64 {
        match self.cluster() {
            Some(c) => c.0 as i64,
            None => -1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let c = ClusterId(3);
        assert_eq!(PointLabel::Core(c).cluster(), Some(c));
        assert_eq!(PointLabel::Border(c).cluster(), Some(c));
        assert_eq!(PointLabel::Noise.cluster(), None);
        assert!(PointLabel::Core(c).is_core());
        assert!(!PointLabel::Border(c).is_core());
        assert_eq!(PointLabel::Noise.as_i64(), -1);
        assert_eq!(PointLabel::Border(c).as_i64(), 3);
        assert_eq!(format!("{c}"), "c3");
    }
}
