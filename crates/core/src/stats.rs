//! Per-slide statistics.

use disc_index::Stats as IndexStats;

/// What happened during one [`Disc::apply`] call.
///
/// The cluster-evolution counters follow the taxonomy of §III-C: splits and
/// shrinks/dissipations are driven by ex-cores; merges, expansions and
/// emergences by neo-cores.
///
/// [`Disc::apply`]: crate::Disc::apply
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SlideStats {
    /// Points that entered the window this slide.
    pub inserted: usize,
    /// Points that left the window this slide.
    pub removed: usize,
    /// Ex-cores identified (Def. 1).
    pub ex_cores: usize,
    /// Neo-cores identified (Def. 2).
    pub neo_cores: usize,
    /// Retro-reachable ex-core classes actually examined (≤ `ex_cores`;
    /// the gap is the redundant work Theorem 1 eliminates).
    pub ex_classes: usize,
    /// Nascent-reachable neo-core classes examined.
    pub neo_classes: usize,
    /// Cluster splits observed.
    pub splits: usize,
    /// Cluster mergers observed.
    pub merges: usize,
    /// New clusters that emerged.
    pub emerged: usize,
    /// Border points that needed a fallback adoption search.
    pub adoption_searches: usize,
    /// Index counters accumulated during this slide.
    pub index: IndexStats,
    /// Wall-clock duration of the whole `apply` call.
    pub elapsed: std::time::Duration,
    /// Time spent in COLLECT (Alg. 1): `n_ε` maintenance, index updates,
    /// ex-/neo-core identification.
    pub collect_time: std::time::Duration,
    /// Time spent in CLUSTER (Alg. 2): ex-core and neo-core phases,
    /// connectivity checks, ghost eviction.
    pub cluster_time: std::time::Duration,
    /// Time spent in the final adoption pass (§V label maintenance).
    pub adoption_time: std::time::Duration,
}

impl SlideStats {
    /// Range searches executed during the slide (the paper's Fig. 7 metric).
    pub fn range_searches(&self) -> u64 {
        self.index.range_searches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_searches_delegates_to_index_stats() {
        let mut s = SlideStats::default();
        s.index.range_searches = 42;
        assert_eq!(s.range_searches(), 42);
    }
}
