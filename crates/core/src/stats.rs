//! Per-slide statistics.

use disc_index::Stats as IndexStats;

/// What happened during one [`Disc::apply`] call.
///
/// The cluster-evolution counters follow the taxonomy of §III-C: splits and
/// shrinks/dissipations are driven by ex-cores; merges, expansions and
/// emergences by neo-cores.
///
/// [`Disc::apply`]: crate::Disc::apply
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SlideStats {
    /// Points that entered the window this slide.
    pub inserted: usize,
    /// Points that left the window this slide.
    pub removed: usize,
    /// Ex-cores identified (Def. 1).
    pub ex_cores: usize,
    /// Neo-cores identified (Def. 2).
    pub neo_cores: usize,
    /// Retro-reachable ex-core classes actually examined (≤ `ex_cores`;
    /// the gap is the redundant work Theorem 1 eliminates).
    pub ex_classes: usize,
    /// Nascent-reachable neo-core classes examined.
    pub neo_classes: usize,
    /// Cluster splits observed.
    pub splits: usize,
    /// Cluster mergers observed.
    pub merges: usize,
    /// New clusters that emerged.
    pub emerged: usize,
    /// Border points that needed a fallback adoption search.
    pub adoption_searches: usize,
    /// Connectivity-check instances run (MS-BFS, Alg. 3).
    pub msbfs_instances: usize,
    /// Starters across all connectivity checks (one BFS thread each).
    pub msbfs_starters: usize,
    /// Queue expansions (vertex pops) across all connectivity checks —
    /// the same accounting for every search strategy, so ablation variants
    /// are directly comparable. Early termination pops fewer vertices.
    pub msbfs_rounds: usize,
    /// Index counters accumulated during this slide.
    pub index: IndexStats,
    /// Wall-clock duration of the whole `apply` call.
    pub elapsed: std::time::Duration,
    /// Time spent in COLLECT (Alg. 1): `n_ε` maintenance, index updates,
    /// ex-/neo-core identification.
    pub collect_time: std::time::Duration,
    /// Time spent in CLUSTER (Alg. 2): ex-core and neo-core phases,
    /// connectivity checks, ghost eviction.
    pub cluster_time: std::time::Duration,
    /// Time spent in the final adoption pass (§V label maintenance).
    pub adoption_time: std::time::Duration,
    /// Estimated engine-state heap bytes after the slide committed (the
    /// [`MemoryFootprint`](disc_telemetry::MemoryFootprint) total over
    /// points, index, DSU and bookkeeping sets). Zero when the engine does
    /// not account (recorder disabled skips the walk).
    pub mem_bytes: u64,
}

impl SlideStats {
    /// Range searches executed during the slide (the paper's Fig. 7 metric).
    pub fn range_searches(&self) -> u64 {
        self.index.range_searches
    }

    /// Renders this slide as a structured telemetry event (the JSONL /
    /// event-sink schema). `seq` is the engine's slide sequence number and
    /// `window_len` the window size after the slide.
    pub fn to_event(
        &self,
        seq: u64,
        engine: &'static str,
        backend: &'static str,
        window_len: usize,
    ) -> disc_telemetry::SlideEvent {
        disc_telemetry::SlideEvent {
            seq,
            engine,
            backend,
            window_len,
            inserted: self.inserted,
            removed: self.removed,
            ex_cores: self.ex_cores,
            neo_cores: self.neo_cores,
            ex_classes: self.ex_classes,
            neo_classes: self.neo_classes,
            splits: self.splits,
            merges: self.merges,
            emerged: self.emerged,
            adoption_searches: self.adoption_searches,
            msbfs_instances: self.msbfs_instances,
            msbfs_starters: self.msbfs_starters,
            msbfs_rounds: self.msbfs_rounds,
            collect_ns: self.collect_time.as_nanos() as u64,
            cluster_ns: self.cluster_time.as_nanos() as u64,
            adoption_ns: self.adoption_time.as_nanos() as u64,
            total_ns: self.elapsed.as_nanos() as u64,
            range_searches: self.index.range_searches,
            epoch_probes: self.index.epoch_probes,
            nodes_visited: self.index.nodes_visited,
            distance_checks: self.index.distance_checks,
            subtrees_pruned: self.index.subtrees_pruned,
            mem_bytes: self.mem_bytes,
        }
    }

    /// Publishes this slide to `rec`: per-phase latency histograms, the
    /// engine's evolution counters, and the index counter deltas. One call
    /// per slide, after the slide committed — errors abort before this
    /// point, so a failed slide records nothing.
    pub fn publish_to(
        &self,
        rec: &dyn disc_telemetry::Recorder,
        seq: u64,
        engine: &'static str,
        backend: &'static str,
        window_len: usize,
    ) {
        if !rec.enabled() {
            return;
        }
        rec.counter_add("disc_slides_total", 1);
        rec.counter_add("disc_points_inserted_total", self.inserted as u64);
        rec.counter_add("disc_points_removed_total", self.removed as u64);
        rec.counter_add("disc_ex_cores_total", self.ex_cores as u64);
        rec.counter_add("disc_neo_cores_total", self.neo_cores as u64);
        rec.counter_add("disc_ex_classes_total", self.ex_classes as u64);
        rec.counter_add("disc_neo_classes_total", self.neo_classes as u64);
        rec.counter_add("disc_cluster_splits_total", self.splits as u64);
        rec.counter_add("disc_cluster_merges_total", self.merges as u64);
        rec.counter_add("disc_clusters_emerged_total", self.emerged as u64);
        rec.counter_add(
            "disc_adoption_searches_total",
            self.adoption_searches as u64,
        );
        rec.counter_add("disc_msbfs_instances_total", self.msbfs_instances as u64);
        rec.counter_add("disc_msbfs_starters_total", self.msbfs_starters as u64);
        rec.counter_add("disc_msbfs_rounds_total", self.msbfs_rounds as u64);
        rec.record_duration("disc_slide_seconds", self.elapsed);
        rec.record_duration("disc_collect_seconds", self.collect_time);
        rec.record_duration("disc_cluster_seconds", self.cluster_time);
        rec.record_duration("disc_adoption_seconds", self.adoption_time);
        rec.gauge_set("disc_window_points", window_len as f64);
        self.index.publish_to(rec);
        rec.emit(&self.to_event(seq, engine, backend, window_len));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_searches_delegates_to_index_stats() {
        let mut s = SlideStats::default();
        s.index.range_searches = 42;
        assert_eq!(s.range_searches(), 42);
    }
}
