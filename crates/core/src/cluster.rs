//! The CLUSTER step (paper Alg. 2): cluster evolution from ex-cores and
//! neo-cores, plus label maintenance (§V).

use crate::collect::CollectOutcome;
use crate::engine::Disc;
use crate::label::ClusterId;
use crate::stats::SlideStats;
use disc_geom::{FxHashSet, PointId};
use disc_index::SpatialBackend;

impl<const D: usize, B: SpatialBackend<D>> Disc<D, B> {
    /// Runs CLUSTER for one slide. The final adoption pass is a separate
    /// call from `apply` so its duration is measured on its own.
    pub(crate) fn cluster(&mut self, outcome: &CollectOutcome, stats: &mut SlideStats) {
        self.ex_core_phase(&outcome.ex_cores, stats);

        // Alg. 2 line 8: the departed ex-cores are no longer needed once
        // every retro-reachable class has been examined.
        for id in &outcome.ghosts {
            let rec = self.points.remove(*id).expect("ghost record vanished");
            let removed = self.tree.remove(*id, rec.point);
            debug_assert!(removed, "ghost {id} missing from the index");
        }

        self.neo_core_phase(&outcome.neo_cores, stats);
    }

    // ------------------------------------------------------------------
    // Ex-cores: splits, shrinks, dissipations (Alg. 2 lines 1-8)
    // ------------------------------------------------------------------

    fn ex_core_phase(&mut self, ex_cores: &[PointId], stats: &mut SlideStats) {
        let eps = self.cfg.eps;
        let tau = self.cfg.tau;

        let mut remaining: FxHashSet<PointId> = ex_cores.iter().copied().collect();
        // Buffers reused across classes.
        let mut r_minus: Vec<PointId> = Vec::new();
        let mut m_minus: Vec<PointId> = Vec::new();
        let mut m_seen: FxHashSet<PointId> = FxHashSet::default();
        // Classes gathered in pass 1: `(previous cluster root, M⁻)`. The
        // roots must be read *before* any relabelling, so the connectivity
        // checks are deferred to pass 2.
        let mut classes: Vec<(u32, Vec<PointId>)> = Vec::new();

        while let Some(&seed) = remaining.iter().next() {
            stats.ex_classes += 1;
            r_minus.clear();
            m_minus.clear();
            m_seen.clear();

            // Gather R⁻(seed) by BFS over directly retro-reachable ex-cores
            // (one range search per member — Theorem 1 guarantees no other
            // ex-core of the class will ever be searched again), collecting
            // the minimal bonding cores M⁻ on the way.
            r_minus.push(seed);
            remaining.remove(&seed);
            let mut i = 0;
            while i < r_minus.len() {
                let r = r_minus[i];
                i += 1;
                let center = self.points.at(r).point;

                // The scan doubles as label maintenance for the ex-core
                // itself: any current core in range can adopt it.
                let mut my_adopter: Option<PointId> = None;

                let points = &mut self.points;
                let needs_adoption = &mut self.needs_adoption;
                let mut discovered_ex: Vec<PointId> = Vec::new();
                self.tree.for_each_in_ball(&center, eps, |qid, _| {
                    if qid == r {
                        return;
                    }
                    let Some(q) = points.get_mut(qid) else {
                        return;
                    };
                    if q.is_ex_core(tau) {
                        discovered_ex.push(qid);
                    } else if q.core_in_both(tau) {
                        if m_seen.insert(qid) {
                            m_minus.push(qid);
                        }
                        // Smallest qualifying id wins, so the adopter does
                        // not depend on the index's traversal order.
                        if my_adopter.is_none_or(|a| qid < a) {
                            my_adopter = Some(qid);
                        }
                    } else if q.is_core(tau) {
                        // A neo-core: not part of M⁻ (Def. 4 requires core
                        // in both windows) but a legal adopter.
                        if my_adopter.is_none_or(|a| qid < a) {
                            my_adopter = Some(qid);
                        }
                    } else if q.in_window && q.adopter == Some(r) {
                        // A border that leaned on this ex-core.
                        q.adopter = None;
                        needs_adoption.insert(qid);
                    }
                });
                for qid in discovered_ex {
                    if remaining.remove(&qid) {
                        r_minus.push(qid);
                    }
                }
                if let Some(rec) = self.points.get_mut(r) {
                    if rec.in_window {
                        rec.adopter = my_adopter;
                        if my_adopter.is_none() {
                            // No core in range right now; a neo-core scan may
                            // still adopt it, otherwise it is noise.
                            self.needs_adoption.insert(r);
                        }
                    }
                }
            }

            // M⁻ empty means the region dissipated — nothing to relabel.
            // Otherwise record the class under its previous cluster's root
            // (still untouched by any relabelling at this point).
            if let Some(&first) = m_minus.first() {
                let root = self.clusters.find(self.points.at(first).cid.0);
                classes.push((root, m_minus.clone()));
                self.emit_prov(disc_telemetry::ProvenanceKind::RetroClassFormed {
                    rep: seed.0,
                    size: r_minus.len() as u64,
                });
            } else {
                self.emit_prov(disc_telemetry::ProvenanceKind::ClusterDied {
                    rep: seed.0,
                    size: r_minus.len() as u64,
                });
            }
        }

        // Pass 2: decide the evolution type per class (Alg. 2 lines 4-6).
        // A single bonding core cannot witness a split on its own (every
        // previous path through the class can be respliced through that one
        // core); two or more get a density-connectedness check.
        // Only splitting checks contribute survivor reps: a fragment that
        // disconnected from its cluster necessarily flanks some break whose
        // class's check saw ≥2 components, so every candidate holder of the
        // old id is the survivor of a *splitting* check (or was enumerated
        // and relabelled). Shrink-only classes never produce extra holders.
        let mut outcomes: Vec<(u32, PointId)> = Vec::new();
        for (root, m_minus) in &classes {
            if m_minus.len() < 2 {
                continue; // a single bonding core is respliceable: shrink
            }
            let conn = self.instrumented_connectivity(m_minus, stats);
            if conn.ncc > 1 {
                stats.splits += 1;
                self.emit_prov(disc_telemetry::ProvenanceKind::ClusterSplit {
                    old: *root as u64,
                    parts: conn.ncc as u64,
                    rep: conn.survivor_rep.0,
                });
                self.relabel_detached(&conn.detached, tau);
                outcomes.push((*root, conn.survivor_rep));
            }
        }

        // Cross-class split fixup. Per-class checks detect every split (if
        // all classes of a cluster report their M⁻ connected, any broken
        // previous path can be respliced segment-by-segment through the
        // connected M⁻ of the segment's class — so the cluster cannot have
        // split). But when a cluster IS cut by several classes at once, each
        // check independently lets its own survivor keep the old id, which
        // can leave two now-disconnected fragments carrying it. For every
        // previous cluster touched by ≥2 classes of which ≥1 split, one
        // more connectivity check over the survivors' representatives
        // detaches all but one of them. Split slides are rare, so the
        // common shrink-only path never pays for this.
        outcomes.sort_unstable_by_key(|(root, _)| *root);
        let mut i = 0;
        while i < outcomes.len() {
            let root = outcomes[i].0;
            let mut j = i;
            while j < outcomes.len() && outcomes[j].0 == root {
                j += 1;
            }
            if j - i >= 2 {
                let mut reps: Vec<PointId> = outcomes[i..j].iter().map(|(_, rep)| *rep).collect();
                reps.sort_unstable();
                reps.dedup();
                // A rep whose component was since relabelled by another
                // class's check no longer holds the old id — only actual
                // holders need disambiguation.
                reps.retain(|rep| {
                    let cid = self.points.at(*rep).cid.0;
                    self.clusters.find(cid) == root
                });
                if reps.len() >= 2 {
                    let conn = self.instrumented_connectivity(&reps, stats);
                    if conn.ncc > 1 {
                        self.emit_prov(disc_telemetry::ProvenanceKind::ClusterSplit {
                            old: root as u64,
                            parts: conn.ncc as u64,
                            rep: conn.survivor_rep.0,
                        });
                        self.relabel_detached(&conn.detached, tau);
                    }
                }
            }
            i = j;
        }
    }

    /// One connectivity check with its full observability envelope: the
    /// per-slide MS-BFS counters, a `msbfs` span carrying the check's index
    /// work, and the `msbfs_started` / `msbfs_terminated` provenance pair.
    /// `AllMet` is Alg. 3's early termination (all starters met in one
    /// component); `Exhausted` means some thread enumerated a detached
    /// component to the end.
    fn instrumented_connectivity(
        &mut self,
        starters: &[PointId],
        stats: &mut SlideStats,
    ) -> crate::msbfs::Connectivity {
        let rep = starters[0].0;
        self.emit_prov(disc_telemetry::ProvenanceKind::MsBfsStarted {
            rep,
            starters: starters.len() as u64,
        });
        let sp = self.tracer.begin("msbfs");
        let before = self.tracer.enabled().then(|| *self.tree.stats());
        let conn = self.check_connectivity(starters);
        if let Some(b) = before {
            let mut args = self.tree.stats().since(&b).span_args();
            args.push(("starters", starters.len() as u64));
            args.push(("rounds", conn.rounds as u64));
            args.push(("ncc", conn.ncc as u64));
            self.tracer.end_with_args(sp, &args);
        }
        stats.msbfs_instances += 1;
        stats.msbfs_starters += starters.len();
        stats.msbfs_rounds += conn.rounds;
        self.emit_prov(disc_telemetry::ProvenanceKind::MsBfsTerminated {
            rep,
            reason: if conn.ncc == 1 {
                disc_telemetry::MsBfsReason::AllMet
            } else {
                disc_telemetry::MsBfsReason::Exhausted
            },
            rounds: conn.rounds as u64,
        });
        conn
    }

    /// Assigns one fresh cluster id per detached component.
    fn relabel_detached(&mut self, detached: &[Vec<PointId>], tau: usize) {
        for comp in detached {
            let fresh = ClusterId(self.clusters.alloc());
            for id in comp {
                if let Some(rec) = self.points.get_mut(*id) {
                    debug_assert!(rec.is_core(tau));
                    rec.cid = fresh;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Neo-cores: merges, expansions, emergences (Alg. 2 lines 9-13)
    // ------------------------------------------------------------------

    fn neo_core_phase(&mut self, neo_cores: &[PointId], stats: &mut SlideStats) {
        let eps = self.cfg.eps;
        let tau = self.cfg.tau;

        let mut remaining: FxHashSet<PointId> = neo_cores.iter().copied().collect();
        let mut r_plus: Vec<PointId> = Vec::new();
        let mut m_cids: Vec<u32> = Vec::new();
        // Orphans adopted during this phase: when several neo-cores reach
        // the same orphan, the smallest id must win regardless of the order
        // the classes are visited in (backend-independent determinism).
        // Adopters that survived from earlier slides are never replaced.
        let mut adopted_here: FxHashSet<PointId> = FxHashSet::default();

        while let Some(&seed) = remaining.iter().next() {
            stats.neo_classes += 1;
            r_plus.clear();
            m_cids.clear();

            // Gather R⁺(seed) over directly nascent-reachable neo-cores;
            // M⁺ members only contribute their cluster ids — unlike M⁻,
            // no connectivity check is ever needed (§III-C).
            r_plus.push(seed);
            remaining.remove(&seed);
            let mut i = 0;
            while i < r_plus.len() {
                let r = r_plus[i];
                i += 1;
                let center = self.points.at(r).point;

                let points = &mut self.points;
                let mut discovered_neo: Vec<PointId> = Vec::new();
                let m_cids_ref = &mut m_cids;
                let adopted_here_ref = &mut adopted_here;
                self.tree.for_each_in_ball(&center, eps, |qid, _| {
                    if qid == r {
                        return;
                    }
                    let Some(q) = points.get_mut(qid) else {
                        return;
                    };
                    if q.is_neo_core(tau) {
                        discovered_neo.push(qid);
                    } else if q.core_in_both(tau) {
                        m_cids_ref.push(q.cid.0);
                    } else if q.in_window && !q.is_core(tau) {
                        // Label maintenance: the neo-core adopts nearby
                        // orphaned non-cores on the spot (§V). Among the
                        // neo-cores competing this slide the smallest id
                        // wins; adopters from earlier slides stand.
                        if q.adopter.is_none() {
                            q.adopter = Some(r);
                            adopted_here_ref.insert(qid);
                        } else if adopted_here_ref.contains(&qid) && q.adopter > Some(r) {
                            q.adopter = Some(r);
                        }
                    }
                });
                for qid in discovered_neo {
                    if remaining.remove(&qid) {
                        r_plus.push(qid);
                    }
                }
            }

            // Resolve the class's cluster id.
            let assigned = if m_cids.is_empty() {
                // Emergence: a brand-new cluster of neo-cores only.
                stats.emerged += 1;
                let fresh = ClusterId(self.clusters.alloc());
                self.emit_prov(disc_telemetry::ProvenanceKind::ClusterEmerged {
                    cluster: fresh.0 as u64,
                    rep: seed.0,
                    size: r_plus.len() as u64,
                });
                fresh
            } else {
                let mut root = self.clusters.find(m_cids[0]);
                let mut distinct = 1;
                for &c in &m_cids[1..] {
                    let rc = self.clusters.find(c);
                    if rc != root {
                        distinct += 1;
                        root = self.clusters.union(root, rc);
                    }
                }
                if distinct > 1 {
                    stats.merges += 1;
                    self.emit_prov(disc_telemetry::ProvenanceKind::ClusterMerge {
                        winner: root as u64,
                        merged: distinct as u64,
                        rep: seed.0,
                    });
                }
                ClusterId(root)
            };
            for id in &r_plus {
                let rec = self.points.get_mut(*id).expect("neo-core vanished");
                debug_assert!(rec.is_core(tau));
                rec.cid = assigned;
                // A neo-core sheds any border bookkeeping it carried.
                rec.adopter = None;
                self.needs_adoption.remove(id);
            }
        }
    }

    // ------------------------------------------------------------------
    // Final adoption pass (§V, "updated later by examining neighbours")
    // ------------------------------------------------------------------

    pub(crate) fn adoption_pass(&mut self, stats: &mut SlideStats) {
        let eps = self.cfg.eps;
        let tau = self.cfg.tau;
        let pending: Vec<PointId> = self.needs_adoption.drain().collect();
        for id in pending {
            let Some(rec) = self.points.get(id) else {
                continue; // departed this slide
            };
            if rec.is_core(tau) || rec.adopter.is_some() || !rec.in_window {
                continue; // resolved some other way meanwhile
            }
            let center = rec.point;
            stats.adoption_searches += 1;
            let points = &self.points;
            let mut adopter: Option<PointId> = None;
            self.tree.for_each_in_ball(&center, eps, |qid, _| {
                if qid != id && adopter.is_none_or(|a| qid < a) {
                    if let Some(q) = points.get(qid) {
                        if q.is_core(tau) {
                            adopter = Some(qid);
                        }
                    }
                }
            });
            self.points.get_mut(id).expect("record vanished").adopter = adopter;
            if let Some(core) = adopter {
                self.emit_prov(disc_telemetry::ProvenanceKind::Adoption {
                    border: id.0,
                    core: core.0,
                });
            }
        }
    }
}
