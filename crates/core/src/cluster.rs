//! The CLUSTER step (paper Alg. 2): cluster evolution from ex-cores and
//! neo-cores, plus label maintenance (§V).

use crate::collect::CollectOutcome;
use crate::engine::Disc;
use crate::label::ClusterId;
use crate::stats::SlideStats;
use disc_geom::{FxHashSet, PointId};
use disc_index::SpatialBackend;

impl<const D: usize, B: SpatialBackend<D>> Disc<D, B> {
    /// Runs CLUSTER for one slide. The final adoption pass is a separate
    /// call from `apply` so its duration is measured on its own.
    pub(crate) fn cluster(&mut self, outcome: &CollectOutcome, stats: &mut SlideStats) {
        self.ex_core_phase(&outcome.ex_cores, stats);

        // Alg. 2 line 8: the departed ex-cores are no longer needed once
        // every retro-reachable class has been examined.
        for id in &outcome.ghosts {
            let rec = self.points.remove(*id).expect("ghost record vanished");
            let removed = self.tree.remove(*id, rec.point);
            debug_assert!(removed, "ghost {id} missing from the index");
        }

        self.neo_core_phase(&outcome.neo_cores, stats);
    }

    // ------------------------------------------------------------------
    // Ex-cores: splits, shrinks, dissipations (Alg. 2 lines 1-8)
    // ------------------------------------------------------------------

    fn ex_core_phase(&mut self, ex_cores: &[PointId], stats: &mut SlideStats) {
        let eps = self.cfg.eps;
        let tau = self.cfg.tau;

        // Every member this phase ever scans is an ex-core, and Theorem 1
        // guarantees each is scanned exactly once — so the phase's entire
        // ball workload is known up front. When the engine is wide,
        // prefetch all of it in parallel over the frozen index (ghosts
        // included; they leave only after this phase). `scan_ball` runs the
        // same traversal as `for_each_in_ball`, so each prefetched ball
        // preserves the exact hit order the sequential path sees — which
        // the M⁻ ordering (and with it MS-BFS slot assignment) depends on.
        let mut prefetched: disc_geom::FxHashMap<PointId, Vec<PointId>> =
            if self.pool.width() > 1 && !ex_cores.is_empty() {
                self.par_prefetch_balls(ex_cores)
            } else {
                disc_geom::FxHashMap::default()
            };

        let mut remaining: FxHashSet<PointId> = ex_cores.iter().copied().collect();
        // Buffers reused across classes.
        let mut r_minus: Vec<PointId> = Vec::new();
        let mut m_minus: Vec<PointId> = Vec::new();
        let mut m_seen: FxHashSet<PointId> = FxHashSet::default();
        let mut ball_buf: Vec<PointId> = Vec::new();
        let mut discovered_ex: Vec<PointId> = Vec::new();
        // Classes gathered in pass 1: `(previous cluster root, M⁻)`. The
        // roots must be read *before* any relabelling, so the connectivity
        // checks are deferred to pass 2.
        let mut classes: Vec<(u32, Vec<PointId>)> = Vec::new();

        // Seeds in slice order (ghosts first, then ids ascending — see
        // COLLECT's canonical classification): deterministic regardless of
        // the hash set's iteration order.
        for &seed in ex_cores {
            if !remaining.remove(&seed) {
                continue; // already absorbed into an earlier class
            }
            stats.ex_classes += 1;
            r_minus.clear();
            m_minus.clear();
            m_seen.clear();

            // Gather R⁻(seed) by BFS over directly retro-reachable ex-cores
            // (one range search per member — Theorem 1 guarantees no other
            // ex-core of the class will ever be searched again), collecting
            // the minimal bonding cores M⁻ on the way.
            r_minus.push(seed);
            let mut i = 0;
            while i < r_minus.len() {
                let r = r_minus[i];
                i += 1;
                let center = self.points.point_at(r);

                let owned: Vec<PointId>;
                let ball: &[PointId] = if let Some(b) = prefetched.remove(&r) {
                    owned = b;
                    &owned
                } else {
                    ball_buf.clear();
                    let buf = &mut ball_buf;
                    self.tree
                        .for_each_in_ball(&center, eps, |qid, _| buf.push(qid));
                    &ball_buf
                };

                // The scan doubles as label maintenance for the ex-core
                // itself: any current core in range can adopt it.
                let mut my_adopter: Option<PointId> = None;
                discovered_ex.clear();
                for &qid in ball {
                    if qid == r {
                        continue;
                    }
                    let Some(q) = self.points.get_mut(qid) else {
                        continue;
                    };
                    if q.is_ex_core(tau) {
                        discovered_ex.push(qid);
                    } else if q.core_in_both(tau) {
                        if m_seen.insert(qid) {
                            m_minus.push(qid);
                        }
                        // Smallest qualifying id wins, so the adopter does
                        // not depend on the index's traversal order.
                        if my_adopter.is_none_or(|a| qid < a) {
                            my_adopter = Some(qid);
                        }
                    } else if q.is_core(tau) {
                        // A neo-core: not part of M⁻ (Def. 4 requires core
                        // in both windows) but a legal adopter.
                        if my_adopter.is_none_or(|a| qid < a) {
                            my_adopter = Some(qid);
                        }
                    } else if q.in_window && q.adopter == Some(r) {
                        // A border that leaned on this ex-core.
                        q.adopter = None;
                        self.needs_adoption.insert(qid);
                    }
                }
                for &qid in &discovered_ex {
                    if remaining.remove(&qid) {
                        r_minus.push(qid);
                    }
                }
                if let Some(rec) = self.points.get_mut(r) {
                    if rec.in_window {
                        rec.adopter = my_adopter;
                        if my_adopter.is_none() {
                            // No core in range right now; a neo-core scan may
                            // still adopt it, otherwise it is noise.
                            self.needs_adoption.insert(r);
                        }
                    }
                }
            }

            // M⁻ empty means the region dissipated — nothing to relabel.
            // Otherwise record the class under its previous cluster's root
            // (still untouched by any relabelling at this point).
            if let Some(&first) = m_minus.first() {
                let root = self.clusters.find(self.points.meta_at(first).cid.0);
                classes.push((root, m_minus.clone()));
                self.emit_prov(disc_telemetry::ProvenanceKind::RetroClassFormed {
                    rep: seed.0,
                    size: r_minus.len() as u64,
                });
            } else {
                self.emit_prov(disc_telemetry::ProvenanceKind::ClusterDied {
                    rep: seed.0,
                    size: r_minus.len() as u64,
                });
            }
        }

        // Pass 2: decide the evolution type per class (Alg. 2 lines 4-6).
        // A single bonding core cannot witness a split on its own (every
        // previous path through the class can be respliced through that one
        // core); two or more get a density-connectedness check.
        // Only splitting checks contribute survivor reps: a fragment that
        // disconnected from its cluster necessarily flanks some break whose
        // class's check saw ≥2 components, so every candidate holder of the
        // old id is the survivor of a *splitting* check (or was enumerated
        // and relabelled). Shrink-only classes never produce extra holders.
        let mut outcomes: Vec<(u32, PointId)> = Vec::new();
        for (root, m_minus) in &classes {
            if m_minus.len() < 2 {
                continue; // a single bonding core is respliceable: shrink
            }
            let conn = self.instrumented_connectivity(m_minus, stats);
            if conn.ncc > 1 {
                stats.splits += 1;
                self.emit_prov(disc_telemetry::ProvenanceKind::ClusterSplit {
                    old: *root as u64,
                    parts: conn.ncc as u64,
                    rep: conn.survivor_rep.0,
                });
                self.relabel_detached(&conn.detached, tau);
                outcomes.push((*root, conn.survivor_rep));
            }
        }

        // Cross-class split fixup. Per-class checks detect every split (if
        // all classes of a cluster report their M⁻ connected, any broken
        // previous path can be respliced segment-by-segment through the
        // connected M⁻ of the segment's class — so the cluster cannot have
        // split). But when a cluster IS cut by several classes at once, each
        // check independently lets its own survivor keep the old id, which
        // can leave two now-disconnected fragments carrying it. For every
        // previous cluster touched by ≥2 classes of which ≥1 split, one
        // more connectivity check over the survivors' representatives
        // detaches all but one of them. Split slides are rare, so the
        // common shrink-only path never pays for this.
        outcomes.sort_unstable_by_key(|(root, _)| *root);
        let mut i = 0;
        while i < outcomes.len() {
            let root = outcomes[i].0;
            let mut j = i;
            while j < outcomes.len() && outcomes[j].0 == root {
                j += 1;
            }
            if j - i >= 2 {
                let mut reps: Vec<PointId> = outcomes[i..j].iter().map(|(_, rep)| *rep).collect();
                reps.sort_unstable();
                reps.dedup();
                // A rep whose component was since relabelled by another
                // class's check no longer holds the old id — only actual
                // holders need disambiguation.
                reps.retain(|rep| {
                    let cid = self.points.meta_at(*rep).cid.0;
                    self.clusters.find(cid) == root
                });
                if reps.len() >= 2 {
                    let conn = self.instrumented_connectivity(&reps, stats);
                    if conn.ncc > 1 {
                        self.emit_prov(disc_telemetry::ProvenanceKind::ClusterSplit {
                            old: root as u64,
                            parts: conn.ncc as u64,
                            rep: conn.survivor_rep.0,
                        });
                        self.relabel_detached(&conn.detached, tau);
                    }
                }
            }
            i = j;
        }
    }

    /// One connectivity check with its full observability envelope: the
    /// per-slide MS-BFS counters, a `msbfs` span carrying the check's index
    /// work, and the `msbfs_started` / `msbfs_terminated` provenance pair.
    /// `AllMet` is Alg. 3's early termination (all starters met in one
    /// component); `Exhausted` means some thread enumerated a detached
    /// component to the end.
    fn instrumented_connectivity(
        &mut self,
        starters: &[PointId],
        stats: &mut SlideStats,
    ) -> crate::msbfs::Connectivity {
        let rep = starters[0].0;
        self.emit_prov(disc_telemetry::ProvenanceKind::MsBfsStarted {
            rep,
            starters: starters.len() as u64,
        });
        let sp = self.tracer.begin("msbfs");
        let before = self.tracer.enabled().then(|| *self.tree.stats());
        let conn = self.check_connectivity(starters);
        if let Some(b) = before {
            let mut args = self.tree.stats().since(&b).span_args();
            args.push(("starters", starters.len() as u64));
            args.push(("rounds", conn.rounds as u64));
            args.push(("ncc", conn.ncc as u64));
            self.tracer.end_with_args(sp, &args);
        }
        stats.msbfs_instances += 1;
        stats.msbfs_starters += starters.len();
        stats.msbfs_rounds += conn.rounds;
        self.emit_prov(disc_telemetry::ProvenanceKind::MsBfsTerminated {
            rep,
            reason: if conn.ncc == 1 {
                disc_telemetry::MsBfsReason::AllMet
            } else {
                disc_telemetry::MsBfsReason::Exhausted
            },
            rounds: conn.rounds as u64,
        });
        conn
    }

    /// Assigns one fresh cluster id per detached component.
    fn relabel_detached(&mut self, detached: &[Vec<PointId>], tau: usize) {
        for comp in detached {
            let fresh = ClusterId(self.clusters.alloc());
            for id in comp {
                if let Some(rec) = self.points.get_mut(*id) {
                    debug_assert!(rec.is_core(tau));
                    rec.cid = fresh;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Neo-cores: merges, expansions, emergences (Alg. 2 lines 9-13)
    // ------------------------------------------------------------------

    fn neo_core_phase(&mut self, neo_cores: &[PointId], stats: &mut SlideStats) {
        let eps = self.cfg.eps;
        let tau = self.cfg.tau;

        // Mirror image of the ex-core phase's prefetch: every member is a
        // neo-core and each is scanned once, so the whole workload is known
        // up front. Prefetched here (not earlier) because the ghosts left
        // the index between the phases; per-ball hit order is preserved.
        let mut prefetched: disc_geom::FxHashMap<PointId, Vec<PointId>> =
            if self.pool.width() > 1 && !neo_cores.is_empty() {
                self.par_prefetch_balls(neo_cores)
            } else {
                disc_geom::FxHashMap::default()
            };

        let mut remaining: FxHashSet<PointId> = neo_cores.iter().copied().collect();
        let mut r_plus: Vec<PointId> = Vec::new();
        let mut m_cids: Vec<u32> = Vec::new();
        let mut ball_buf: Vec<PointId> = Vec::new();
        let mut discovered_neo: Vec<PointId> = Vec::new();
        // Orphans adopted during this phase: when several neo-cores reach
        // the same orphan, the smallest id must win regardless of the order
        // the classes are visited in (backend-independent determinism).
        // Adopters that survived from earlier slides are never replaced.
        let mut adopted_here: FxHashSet<PointId> = FxHashSet::default();

        // Seeds in slice order (ids ascending), like the ex-core phase.
        for &seed in neo_cores {
            if !remaining.remove(&seed) {
                continue; // already absorbed into an earlier class
            }
            stats.neo_classes += 1;
            r_plus.clear();
            m_cids.clear();

            // Gather R⁺(seed) over directly nascent-reachable neo-cores;
            // M⁺ members only contribute their cluster ids — unlike M⁻,
            // no connectivity check is ever needed (§III-C).
            r_plus.push(seed);
            let mut i = 0;
            while i < r_plus.len() {
                let r = r_plus[i];
                i += 1;
                let center = self.points.point_at(r);

                let owned: Vec<PointId>;
                let ball: &[PointId] = if let Some(b) = prefetched.remove(&r) {
                    owned = b;
                    &owned
                } else {
                    ball_buf.clear();
                    let buf = &mut ball_buf;
                    self.tree
                        .for_each_in_ball(&center, eps, |qid, _| buf.push(qid));
                    &ball_buf
                };

                discovered_neo.clear();
                for &qid in ball {
                    if qid == r {
                        continue;
                    }
                    let Some(q) = self.points.get_mut(qid) else {
                        continue;
                    };
                    if q.is_neo_core(tau) {
                        discovered_neo.push(qid);
                    } else if q.core_in_both(tau) {
                        m_cids.push(q.cid.0);
                    } else if q.in_window && !q.is_core(tau) {
                        // Label maintenance: the neo-core adopts nearby
                        // orphaned non-cores on the spot (§V). Among the
                        // neo-cores competing this slide the smallest id
                        // wins; adopters from earlier slides stand.
                        if q.adopter.is_none() {
                            q.adopter = Some(r);
                            adopted_here.insert(qid);
                        } else if adopted_here.contains(&qid) && q.adopter > Some(r) {
                            q.adopter = Some(r);
                        }
                    }
                }
                for &qid in &discovered_neo {
                    if remaining.remove(&qid) {
                        r_plus.push(qid);
                    }
                }
            }

            // Resolve the class's cluster id.
            let assigned = if m_cids.is_empty() {
                // Emergence: a brand-new cluster of neo-cores only.
                stats.emerged += 1;
                let fresh = ClusterId(self.clusters.alloc());
                self.emit_prov(disc_telemetry::ProvenanceKind::ClusterEmerged {
                    cluster: fresh.0 as u64,
                    rep: seed.0,
                    size: r_plus.len() as u64,
                });
                fresh
            } else {
                let mut root = self.clusters.find(m_cids[0]);
                let mut distinct = 1;
                for &c in &m_cids[1..] {
                    let rc = self.clusters.find(c);
                    if rc != root {
                        distinct += 1;
                        root = self.clusters.union(root, rc);
                    }
                }
                if distinct > 1 {
                    stats.merges += 1;
                    self.emit_prov(disc_telemetry::ProvenanceKind::ClusterMerge {
                        winner: root as u64,
                        merged: distinct as u64,
                        rep: seed.0,
                    });
                }
                ClusterId(root)
            };
            for id in &r_plus {
                let rec = self.points.get_mut(*id).expect("neo-core vanished");
                debug_assert!(rec.is_core(tau));
                rec.cid = assigned;
                // A neo-core sheds any border bookkeeping it carried.
                rec.adopter = None;
                self.needs_adoption.remove(id);
            }
        }
    }

    // ------------------------------------------------------------------
    // Final adoption pass (§V, "updated later by examining neighbours")
    // ------------------------------------------------------------------

    pub(crate) fn adoption_pass(&mut self, stats: &mut SlideStats) {
        let eps = self.cfg.eps;
        let tau = self.cfg.tau;
        let mut pending: Vec<PointId> = self.needs_adoption.drain().collect();
        // Canonical order (the set's iteration order is an insertion-history
        // artifact). The pass only writes each pending point's own adopter,
        // so neither the searched set nor any result depends on order — but
        // pinning it keeps the provenance stream identical across runs.
        pending.sort_unstable();
        // Skip-checks are stable for the same reason, so they can run up
        // front: the survivors are exactly the points the inline sequential
        // check would search.
        pending.retain(|&id| {
            self.points
                .get(id) // departed this slide → gone
                .is_some_and(|rec| !rec.is_core(tau) && rec.adopter.is_none() && rec.in_window)
        });
        let mut prefetched: disc_geom::FxHashMap<PointId, Vec<PointId>> =
            if self.pool.width() > 1 && !pending.is_empty() {
                self.par_prefetch_balls(&pending)
            } else {
                disc_geom::FxHashMap::default()
            };
        let mut ball_buf: Vec<PointId> = Vec::new();
        for id in pending {
            let center = self.points.point_at(id);
            stats.adoption_searches += 1;
            let owned: Vec<PointId>;
            let ball: &[PointId] = if let Some(b) = prefetched.remove(&id) {
                owned = b;
                &owned
            } else {
                ball_buf.clear();
                let buf = &mut ball_buf;
                self.tree
                    .for_each_in_ball(&center, eps, |qid, _| buf.push(qid));
                &ball_buf
            };
            let mut adopter: Option<PointId> = None;
            for &qid in ball {
                if qid != id && adopter.is_none_or(|a| qid < a) {
                    if let Some(q) = self.points.get(qid) {
                        if q.is_core(tau) {
                            adopter = Some(qid);
                        }
                    }
                }
            }
            self.points.get_mut(id).expect("record vanished").adopter = adopter;
            if let Some(core) = adopter {
                self.emit_prov(disc_telemetry::ProvenanceKind::Adoption {
                    border: id.0,
                    core: core.0,
                });
            }
        }
    }
}
